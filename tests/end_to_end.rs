//! Full-stack integration: the Inversion file system over the storage
//! engine over simulated devices, including whole-system crash recovery.

mod common;

use common::Devices;
use inversion::{CreateMode, InvError, InversionFs, OpenMode, SeekWhence, CHUNK_SIZE};

#[test]
fn filesystem_survives_clean_shutdown_and_reattach() {
    let devices = Devices::new();
    let payload: Vec<u8> = (0..3 * CHUNK_SIZE + 99).map(|i| (i % 239) as u8).collect();
    {
        let db = devices.format();
        let fs = InversionFs::format(db).unwrap();
        let mut c = fs.client();
        c.p_mkdir("/data").unwrap();
        c.write_all("/data/blob", CreateMode::default(), &payload)
            .unwrap();
        // Clean shutdown: everything committed; Db dropped.
    }
    let db = devices.recover();
    let fs = InversionFs::attach(db).unwrap();
    let mut c = fs.client();
    assert_eq!(c.read_to_vec("/data/blob", None).unwrap(), payload);
    let stat = c.p_stat("/data/blob", None).unwrap();
    assert_eq!(stat.size as usize, payload.len());
    // The recovered system is fully writable.
    c.write_all("/data/post_recovery", CreateMode::default(), b"alive")
        .unwrap();
    assert_eq!(
        c.read_to_vec("/data/post_recovery", None).unwrap(),
        b"alive"
    );
}

#[test]
fn crash_mid_transaction_loses_only_uncommitted_work() {
    let devices = Devices::new();
    {
        let db = devices.format();
        let fs = InversionFs::format(db).unwrap();
        let mut c = fs.client();
        c.write_all("/committed", CreateMode::default(), b"safe")
            .unwrap();

        // A transaction that writes a lot (forcing dirty-page writeback to
        // the device) and then CRASHES before commit.
        c.p_begin().unwrap();
        let fd = c.p_creat("/uncommitted", CreateMode::default()).unwrap();
        c.p_write(fd, &vec![0xEEu8; 5 * CHUNK_SIZE]).unwrap();
        let fd2 = c.p_open("/committed", OpenMode::ReadWrite, None).unwrap();
        c.p_write(fd2, b"OVERWRITTEN-BUT-NOT-COMMITTED").unwrap();
        // Simulate the crash: leak the client so not even an abort record
        // is written, then drop every in-memory structure.
        std::mem::forget(c);
    }
    // Recovery is instantaneous: reopen and look.
    let db = devices.recover();
    let fs = InversionFs::attach(db).unwrap();
    let mut c = fs.client();
    assert_eq!(
        c.read_to_vec("/committed", None).unwrap(),
        b"safe",
        "committed data must survive the crash untouched"
    );
    assert!(
        matches!(c.p_stat("/uncommitted", None), Err(InvError::NoSuchPath(_))),
        "uncommitted create must have vanished"
    );
}

#[test]
fn crash_preserves_multi_file_atomicity() {
    let devices = Devices::new();
    {
        let db = devices.format();
        let fs = InversionFs::format(db).unwrap();
        let mut c = fs.client();
        c.write_all("/a", CreateMode::default(), b"a1").unwrap();
        c.write_all("/b", CreateMode::default(), b"b1").unwrap();
        c.p_begin().unwrap();
        let fa = c.p_open("/a", OpenMode::ReadWrite, None).unwrap();
        let fb = c.p_open("/b", OpenMode::ReadWrite, None).unwrap();
        c.p_write(fa, b"a2").unwrap();
        c.p_close(fa).unwrap(); // a's new version flushed into the txn...
        c.p_write(fb, b"b2").unwrap();
        std::mem::forget(c); // ...crash before commit.
    }
    let db = devices.recover();
    let fs = InversionFs::attach(db).unwrap();
    let mut c = fs.client();
    assert_eq!(c.read_to_vec("/a", None).unwrap(), b"a1");
    assert_eq!(c.read_to_vec("/b", None).unwrap(), b"b1");
}

#[test]
fn time_travel_works_across_recovery() {
    let devices = Devices::new();
    let t_v1;
    {
        let db = devices.format();
        let fs = InversionFs::format(db).unwrap();
        let mut c = fs.client();
        c.write_all("/doc", CreateMode::default(), b"version 1")
            .unwrap();
        t_v1 = fs.db().now();
        c.p_begin().unwrap();
        let fd = c.p_open("/doc", OpenMode::ReadWrite, None).unwrap();
        c.p_write(fd, b"version 2").unwrap();
        c.p_close(fd).unwrap();
        c.p_commit().unwrap();
    }
    let db = devices.recover();
    let fs = InversionFs::attach(db).unwrap();
    let mut c = fs.client();
    assert_eq!(c.read_to_vec("/doc", None).unwrap(), b"version 2");
    // Commit times live in the status file; history survives restarts.
    assert_eq!(c.read_to_vec("/doc", Some(t_v1)).unwrap(), b"version 1");
}

#[test]
fn large_file_random_access_through_the_whole_stack() {
    let devices = Devices::new();
    let db = devices.format();
    let fs = InversionFs::format(db).unwrap();
    let mut c = fs.client();

    let size = 20 * CHUNK_SIZE + 1000;
    let data: Vec<u8> = (0..size).map(|i| (i * 31 % 251) as u8).collect();
    c.write_all("/big", CreateMode::default(), &data).unwrap();

    let fd = c.p_open("/big", OpenMode::Read, None).unwrap();
    // Probe assorted offsets, including chunk boundaries.
    for &off in &[
        0usize,
        1,
        CHUNK_SIZE - 1,
        CHUNK_SIZE,
        CHUNK_SIZE + 1,
        7 * CHUNK_SIZE - 3,
        size - 10,
    ] {
        c.p_lseek(fd, off as i64, SeekWhence::Set).unwrap();
        let mut buf = [0u8; 10];
        let n = c.p_read(fd, &mut buf).unwrap();
        assert_eq!(&buf[..n], &data[off..(off + 10).min(size)], "offset {off}");
    }
    c.p_close(fd).unwrap();
}

#[test]
fn queries_and_file_api_see_the_same_transactions() {
    let devices = Devices::new();
    let db = devices.format();
    let fs = InversionFs::format(db).unwrap();
    let mut c = fs.client();

    c.p_begin().unwrap();
    let fd = c
        .p_creat("/pending", CreateMode::default().owned_by("mao"))
        .unwrap();
    c.p_write(fd, b"12345678").unwrap();
    c.p_close(fd).unwrap();
    // Not committed yet. A current-snapshot reader would *block* on the
    // writer's two-phase lock, so read through a historical snapshot at
    // "now": lock-free, and it sees only committed state.
    let mut h = fs.db().snapshot_at(fs.db().now());
    let r = h
        .query(r#"retrieve (n.filename) from n in naming where n.filename = "pending""#)
        .unwrap();
    assert!(r.rows.is_empty(), "uncommitted file visible to a query");

    c.p_commit().unwrap();
    let mut s = fs.db().begin().unwrap();
    let r = s
        .query(
            r#"retrieve (a.size) from n in naming, a in fileatt
               where n.file = a.file and n.filename = "pending""#,
        )
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0][0], minidb::Datum::Int8(8));
    s.commit().unwrap();
}

#[test]
fn renaming_a_directory_moves_its_subtree() {
    // The naming table stores parent *oids*, so renaming a directory is a
    // single-row update and the whole subtree follows — no per-file work.
    let devices = Devices::new();
    let fs = InversionFs::format(devices.format()).unwrap();
    let mut c = fs.client();
    c.p_mkdir("/proj").unwrap();
    c.p_mkdir("/proj/src").unwrap();
    c.write_all("/proj/src/main.c", CreateMode::default(), b"int main;")
        .unwrap();
    c.write_all("/proj/README", CreateMode::default(), b"docs")
        .unwrap();

    c.p_rename("/proj", "/project-1.0").unwrap();
    assert!(c.p_stat("/proj", None).is_err());
    assert_eq!(
        c.read_to_vec("/project-1.0/src/main.c", None).unwrap(),
        b"int main;"
    );
    assert_eq!(c.read_to_vec("/project-1.0/README", None).unwrap(), b"docs");
    // path_of reflects the move.
    let mut s = fs.db().begin().unwrap();
    let oid = fs.resolve(&mut s, "/project-1.0/src/main.c", None).unwrap();
    assert_eq!(
        fs.path_of(&mut s, oid, None).unwrap(),
        "/project-1.0/src/main.c"
    );
    s.commit().unwrap();
}

#[test]
fn unicode_filenames_roundtrip() {
    let devices = Devices::new();
    let fs = InversionFs::format(devices.format()).unwrap();
    let mut c = fs.client();
    let names = [
        "mesure-α.dat",
        "研究ノート.txt",
        "schneefläche_übersicht",
        "emoji-📦",
    ];
    c.p_mkdir("/intl").unwrap();
    for (i, n) in names.iter().enumerate() {
        c.write_all(
            &format!("/intl/{n}"),
            CreateMode::default(),
            format!("data {i}").as_bytes(),
        )
        .unwrap();
    }
    let listed: Vec<String> = c
        .p_readdir("/intl", None)
        .unwrap()
        .into_iter()
        .map(|(n, _)| n)
        .collect();
    assert_eq!(listed.len(), names.len());
    for (i, n) in names.iter().enumerate() {
        assert_eq!(
            c.read_to_vec(&format!("/intl/{n}"), None).unwrap(),
            format!("data {i}").as_bytes()
        );
    }
    // Queries see the same names.
    let mut s = fs.db().begin().unwrap();
    let r = s
        .query(r#"retrieve (n.filename) from n in naming where n.filename = "研究ノート.txt""#)
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    s.commit().unwrap();
}

#[test]
fn rename_into_own_subtree_rejected() {
    // Moving a directory under itself would create a cycle in parent
    // pointers; the rename must fail and leave the tree untouched.
    let devices = Devices::new();
    let fs = InversionFs::format(devices.format()).unwrap();
    let mut c = fs.client();
    c.p_mkdir("/a").unwrap();
    c.p_mkdir("/a/b").unwrap();
    c.write_all("/a/b/f", CreateMode::default(), b"x").unwrap();
    assert!(matches!(
        c.p_rename("/a", "/a/b/a"),
        Err(InvError::Invalid(_))
    ));
    // Deeper variants too.
    c.p_mkdir("/a/b/c").unwrap();
    assert!(c.p_rename("/a", "/a/b/c/a").is_err());
    // Everything is where it was.
    assert_eq!(c.read_to_vec("/a/b/f", None).unwrap(), b"x");
    // A sibling rename of the same directory still works.
    c.p_rename("/a", "/renamed").unwrap();
    assert_eq!(c.read_to_vec("/renamed/b/f", None).unwrap(), b"x");
}
