//! Shared fixtures for the cross-crate integration tests.

use minidb::{shared_device, Db, DbConfig, DeviceId, GenericManager, SharedDevice, Smgr};
use simdev::{DiskProfile, MagneticDisk, SimClock};

/// A persistent set of devices a database can be opened on, crashed, and
/// recovered from.
pub struct Devices {
    pub clock: SimClock,
    pub data: SharedDevice,
    pub log: SharedDevice,
    pub catalog: SharedDevice,
}

#[allow(dead_code)] // Each integration test uses the subset it needs.
impl Devices {
    pub fn new() -> Devices {
        let clock = SimClock::new();
        Devices {
            data: shared_device(MagneticDisk::new(
                "data",
                clock.clone(),
                DiskProfile::tiny_for_tests(1 << 16),
            )),
            log: shared_device(MagneticDisk::new(
                "log",
                clock.clone(),
                DiskProfile::tiny_for_tests(1 << 12),
            )),
            catalog: shared_device(MagneticDisk::new(
                "catalog",
                clock.clone(),
                DiskProfile::tiny_for_tests(1 << 12),
            )),
            clock,
        }
    }

    /// Formats a fresh database on these devices.
    pub fn format(&self) -> Db {
        let mut smgr = Smgr::new();
        smgr.register(
            DeviceId::DEFAULT,
            Box::new(GenericManager::format(self.data.clone()).unwrap()),
        )
        .unwrap();
        Db::open(
            self.clock.clone(),
            smgr,
            self.log.clone(),
            self.catalog.clone(),
            DbConfig::default(),
        )
        .unwrap()
    }

    /// Recovers the database after a crash or shutdown — the paper's
    /// "essentially instantaneous" recovery: just re-attach.
    pub fn recover(&self) -> Db {
        let mut smgr = Smgr::new();
        smgr.register(
            DeviceId::DEFAULT,
            Box::new(GenericManager::attach(self.data.clone()).unwrap()),
        )
        .unwrap();
        Db::recover(
            self.clock.clone(),
            smgr,
            self.log.clone(),
            self.catalog.clone(),
            DbConfig::default(),
        )
        .unwrap()
    }
}
