//! Structural-verification tests: `Db::check_all` / `pg_check` against
//! crash-injected workloads (must stay clean — crash debris is not
//! corruption) and against deliberately corrupted devices (must not).

mod common;

use common::Devices;
use inversion::{CreateMode, InversionFs, SeekWhence, CHUNK_SIZE};
use proptest::prelude::*;

/// Workload steps for the crash-injection property. Every step auto-commits
/// except the one the crash lands on, which runs inside an open transaction.
#[derive(Debug, Clone)]
enum Op {
    Write { file: u8, len: usize, fill: u8 },
    Overwrite { file: u8, at: u64, len: usize },
    Truncate { file: u8, len: u64 },
    Delete { file: u8 },
}

fn path(file: u8) -> String {
    format!("/f{}", file % 4)
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), 1..2 * CHUNK_SIZE, any::<u8>())
            .prop_map(|(file, len, fill)| Op::Write { file, len, fill }),
        (any::<u8>(), 0..3 * CHUNK_SIZE as u64, 1..CHUNK_SIZE)
            .prop_map(|(file, at, len)| Op::Overwrite { file, at, len }),
        (any::<u8>(), 0..2 * CHUNK_SIZE as u64)
            .prop_map(|(file, len)| Op::Truncate { file, len }),
        any::<u8>().prop_map(|file| Op::Delete { file }),
    ]
}

/// Applies one step; errors (file missing, etc.) are part of the workload.
fn apply(c: &mut inversion::InvClient, op: &Op) {
    match op {
        Op::Write { file, len, fill } => {
            c.write_all(&path(*file), CreateMode::default(), &vec![*fill; *len])
                .ok();
        }
        Op::Overwrite { file, at, len } => {
            if let Ok(fd) = c.p_open(&path(*file), inversion::OpenMode::ReadWrite, None) {
                c.p_lseek(fd, *at as i64, SeekWhence::Set).ok();
                c.p_write(fd, &vec![0xAB; *len]).ok();
                c.p_close(fd).ok();
            }
        }
        Op::Truncate { file, len } => {
            if let Ok(fd) = c.p_open(&path(*file), inversion::OpenMode::ReadWrite, None) {
                c.p_ftruncate(fd, *len).ok();
                c.p_close(fd).ok();
            }
        }
        Op::Delete { file } => {
            c.p_unlink(&path(*file)).ok();
        }
    }
}

/// Asserts every verifier — engine, file system, and the `pg_check`
/// relation — reports a clean database.
fn assert_clean(fs: &InversionFs) {
    let findings = fs.db().check_all();
    assert_eq!(findings, vec![], "Db::check_all after recovery");
    assert_eq!(fs.check(), vec![], "InversionFs::check after recovery");
    let mut s = fs.db().begin().unwrap();
    let res = s
        .query("retrieve (c.relation, c.code, c.detail) from c in pg_check")
        .unwrap();
    s.commit().unwrap();
    assert_eq!(res.rows, Vec::<Vec<minidb::Datum>>::new(), "pg_check rows");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // The paper's no-fsck claim, mechanized: kill a random workload at a
    // random point (mid-transaction included), reopen the devices, and the
    // structural verifier must find nothing — uncommitted debris is
    // invisible by construction, never corruption.
    #[test]
    fn crash_anywhere_leaves_zero_findings(
        ops in prop::collection::vec(op_strategy(), 1..12),
        kill_at in 0..12usize,
    ) {
        let devices = Devices::new();
        {
            let db = devices.format();
            let fs = InversionFs::format(db).unwrap();
            let mut c = fs.client();
            for (i, op) in ops.iter().enumerate() {
                if i == kill_at {
                    // Crash mid-transaction: the step's writes may reach
                    // disk (evictions, eager index writes) but must never
                    // become visible or trip the verifier.
                    c.p_begin().ok();
                    apply(&mut c, op);
                    break;
                }
                apply(&mut c, op);
            }
            std::mem::forget(c);
            std::mem::forget(fs);
        }
        let fs = InversionFs::attach(devices.recover()).unwrap();
        assert_clean(&fs);
        // And the surviving data is still writable: recovery is complete.
        let mut c = fs.client();
        c.write_all("/after", CreateMode::default(), b"alive").unwrap();
        assert_clean(&fs);
    }
}

#[test]
fn double_crash_during_recovery_workload_stays_clean() {
    let devices = Devices::new();
    {
        let fs = InversionFs::format(devices.format()).unwrap();
        let mut c = fs.client();
        c.write_all("/a", CreateMode::default(), &vec![1; CHUNK_SIZE + 7])
            .unwrap();
        c.p_begin().unwrap();
        let fd = c.p_creat("/doomed", CreateMode::default()).unwrap();
        c.p_write(fd, &vec![2; 3 * CHUNK_SIZE]).unwrap();
        std::mem::forget(c);
    }
    // First recovery immediately crashes mid-write again.
    {
        let fs = InversionFs::attach(devices.recover()).unwrap();
        let mut c = fs.client();
        c.p_begin().unwrap();
        let fd = c.p_creat("/doomed2", CreateMode::default()).unwrap();
        c.p_write(fd, &vec![3; CHUNK_SIZE]).unwrap();
        std::mem::forget(c);
    }
    let fs = InversionFs::attach(devices.recover()).unwrap();
    assert_clean(&fs);
    let mut c = fs.client();
    assert_eq!(c.read_to_vec("/a", None).unwrap(), vec![1; CHUNK_SIZE + 7]);
    assert!(c.p_stat("/doomed", None).is_err());
    assert!(c.p_stat("/doomed2", None).is_err());
}

#[test]
fn pg_check_detects_media_corruption() {
    let devices = Devices::new();
    let marker = b"corruption-target-payload";
    {
        let fs = InversionFs::format(devices.format()).unwrap();
        let mut c = fs.client();
        c.write_all(
            "/victim",
            CreateMode::default(),
            &marker.repeat(CHUNK_SIZE / marker.len()),
        )
        .unwrap();
        assert_clean(&fs);
    }
    // Scribble over the page header of whichever device block holds the
    // marker bytes — simulated media failure underneath the engine.
    {
        let mut dev = devices.data.lock();
        let bs = dev.block_size();
        let mut buf = vec![0u8; bs];
        let mut hit = None;
        for blk in 0..dev.nblocks() {
            dev.read_block(blk, &mut buf).unwrap();
            if buf
                .windows(marker.len())
                .any(|w| w == marker)
            {
                hit = Some(blk);
                break;
            }
        }
        let blk = hit.expect("marker bytes must be on the data device");
        dev.read_block(blk, &mut buf).unwrap();
        // Lie about the slot count: far more slots than the page can hold.
        buf[2..4].copy_from_slice(&u16::MAX.to_le_bytes());
        dev.write_block(blk, &buf).unwrap();
    }
    let fs = InversionFs::attach(devices.recover()).unwrap();
    let findings = fs.db().check_all();
    assert!(
        findings.iter().any(|f| f.code == "page-invariant"),
        "corrupted header must be reported, got {findings:?}"
    );
    let mut s = fs.db().begin().unwrap();
    let res = s
        .query("retrieve (c.relation, c.code) from c in pg_check")
        .unwrap();
    s.commit().unwrap();
    assert!(!res.rows.is_empty(), "pg_check must surface the findings");
}
