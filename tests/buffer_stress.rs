//! Concurrency stress for the sharded buffer manager: many threads hammer a
//! pool sized far below the working set with mixed point reads, sequential
//! scans, and appends. The suite proves the accounting invariant
//! (`hits + misses == accesses`), the absence of deadlock, and that every
//! committed write is durable after `flush_all`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use minidb::buffer::BufferPool;
use minidb::smgr::{shared_device, GenericManager, Smgr};
use minidb::{DeviceId, Oid, RelId};
use simdev::{DiskProfile, MagneticDisk, SimClock};

const DEV: DeviceId = DeviceId::DEFAULT;

/// A registered smgr with `nrels` relations of `blocks_per_rel` blocks each,
/// every block stamped with a recognizable header.
fn setup(nrels: u32, blocks_per_rel: u64) -> (Arc<Smgr>, Vec<RelId>) {
    let clock = SimClock::new();
    let dev = shared_device(MagneticDisk::new(
        "stress",
        clock,
        DiskProfile::tiny_for_tests(1 << 14),
    ));
    let mut smgr = Smgr::new();
    smgr.register(DEV, Box::new(GenericManager::format(dev).unwrap()))
        .unwrap();
    let rels: Vec<RelId> = (0..nrels).map(|i| Oid(100 + i)).collect();
    for &rel in &rels {
        smgr.with(DEV, |m| m.create_rel(rel)).unwrap();
        let mut page = vec![0u8; minidb::page::PAGE_SIZE];
        for blk in 0..blocks_per_rel {
            stamp(&mut page, rel, blk, 0);
            smgr.with(DEV, |m| m.extend(rel, &page).map(|_| ())).unwrap();
        }
    }
    (Arc::new(smgr), rels)
}

/// Stamps a page with its identity and a version counter so readers can
/// detect both torn pages and stale bytes.
fn stamp(page: &mut [u8], rel: RelId, blkno: u64, version: u64) {
    page[0..4].copy_from_slice(&rel.0.to_le_bytes());
    page[4..12].copy_from_slice(&blkno.to_le_bytes());
    page[12..20].copy_from_slice(&version.to_le_bytes());
    // Mirror the version at the tail: a torn read would disagree.
    let n = page.len();
    page[n - 8..].copy_from_slice(&version.to_le_bytes());
}

/// `get_page` with backpressure: a transiently exhausted shard (every frame
/// pinned by other threads) is retried, since pins are short-lived here. A
/// bounded retry count keeps a genuine deadlock or leak detectable.
fn get_retry(pool: &BufferPool, smgr: &Smgr, rel: RelId, blk: u64) -> minidb::PinnedPage {
    for _ in 0..100_000 {
        match pool.get_page(smgr, DEV, rel, blk) {
            Ok(pin) => return pin,
            Err(_) => std::thread::yield_now(),
        }
    }
    panic!("pool stayed exhausted: pins are leaking");
}

/// `new_page` with the same backpressure handling.
fn new_retry(pool: &BufferPool, smgr: &Smgr, rel: RelId) -> (u64, minidb::PinnedPage) {
    for _ in 0..100_000 {
        match pool.new_page(smgr, DEV, rel) {
            Ok(r) => return r,
            Err(_) => std::thread::yield_now(),
        }
    }
    panic!("pool stayed exhausted: pins are leaking");
}

fn read_stamp(page: &[u8]) -> (u32, u64, u64, u64) {
    let rel = u32::from_le_bytes(page[0..4].try_into().unwrap());
    let blk = u64::from_le_bytes(page[4..12].try_into().unwrap());
    let ver = u64::from_le_bytes(page[12..20].try_into().unwrap());
    let tail = u64::from_le_bytes(page[page.len() - 8..].try_into().unwrap());
    (rel, blk, ver, tail)
}

/// 12 threads, a 16-frame pool, a 160-block working set: point reads,
/// sequential scans, version-bumping writes, and appends, all interleaved.
/// Each block is write-owned by one thread (readers are unrestricted), so
/// every observed version must be one the owner actually wrote.
#[test]
fn mixed_workload_accounting_and_durability() {
    const THREADS: u32 = 12;
    const BLOCKS: u64 = 40;
    const ROUNDS: u64 = 60;
    let (smgr, rels) = setup(4, BLOCKS);
    let pool = Arc::new(BufferPool::with_shards(16, 4));
    pool.set_prefetch_window(0); // Exact accounting: demand fetches only.
    let accesses = Arc::new(AtomicU64::new(0));

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let smgr = Arc::clone(&smgr);
            let pool = Arc::clone(&pool);
            let accesses = Arc::clone(&accesses);
            let rels = rels.clone();
            std::thread::spawn(move || {
                let mut my_versions = vec![0u64; (rels.len() as u64 * BLOCKS) as usize];
                let mut rng = 0x9e37_79b9_u64.wrapping_mul(t as u64 + 1) | 1;
                let mut next = move || {
                    rng ^= rng << 13;
                    rng ^= rng >> 7;
                    rng ^= rng << 17;
                    rng
                };
                for round in 0..ROUNDS {
                    let rel = rels[(next() % rels.len() as u64) as usize];
                    match round % 4 {
                        // Point reads of random blocks.
                        0 => {
                            for _ in 0..8 {
                                let blk = next() % BLOCKS;
                                let pin = get_retry(&pool, &smgr, rel, blk);
                                accesses.fetch_add(1, Ordering::SeqCst);
                                let (r, b, v, tail) = read_stamp(pin.read().data());
                                assert_eq!((r, b), (rel.0, blk), "page identity");
                                assert_eq!(v, tail, "torn page");
                            }
                        }
                        // A short sequential scan.
                        1 => {
                            let start = next() % BLOCKS;
                            for blk in start..(start + 8).min(BLOCKS) {
                                let pin = get_retry(&pool, &smgr, rel, blk);
                                accesses.fetch_add(1, Ordering::SeqCst);
                                assert_eq!(read_stamp(pin.read().data()).1, blk);
                            }
                        }
                        // Writes to blocks this thread owns (blk % THREADS == t).
                        2 => {
                            for _ in 0..4 {
                                let blk = {
                                    let raw = next() % BLOCKS;
                                    raw - (raw % THREADS as u64) + t as u64
                                };
                                if blk >= BLOCKS {
                                    continue;
                                }
                                let ri = rels.iter().position(|&r| r == rel).unwrap();
                                let slot = ri as u64 * BLOCKS + blk;
                                my_versions[slot as usize] += 1;
                                let pin = get_retry(&pool, &smgr, rel, blk);
                                accesses.fetch_add(1, Ordering::SeqCst);
                                let mut page = pin.write();
                                stamp(page.data_mut(), rel, blk, my_versions[slot as usize]);
                            }
                        }
                        // Appends: fresh pages under pool pressure.
                        _ => {
                            let (blk, pin) = new_retry(&pool, &smgr, rel);
                            let mut page = pin.write();
                            stamp(page.data_mut(), rel, blk, u64::MAX);
                        }
                    }
                }
                my_versions
            })
        })
        .collect();

    let mut owned_versions: Vec<Vec<u64>> = Vec::new();
    for h in handles {
        owned_versions.push(h.join().expect("worker panicked (deadlock or assert)"));
    }

    // Accounting: every demand access is exactly one hit or one miss.
    let s = pool.stats();
    let total = accesses.load(Ordering::SeqCst);
    assert_eq!(s.hits + s.misses, total, "accounting drift: {s:?}");
    assert!(s.misses > 0 && s.evictions > 0, "pool was under pressure: {s:?}");
    assert!(pool.len() <= 16, "capacity respected");
    assert_eq!(pool.check_consistency(), Vec::<String>::new());

    // Durability: flush everything, then read straight from the device and
    // check each owned block carries the owner's final version.
    pool.flush_all(&smgr).unwrap();
    let mut page = vec![0u8; minidb::page::PAGE_SIZE];
    for (ri, &rel) in rels.iter().enumerate() {
        for blk in 0..BLOCKS {
            smgr.with(DEV, |m| m.read(rel, blk, &mut page)).unwrap();
            let (r, b, v, tail) = read_stamp(&page);
            assert_eq!((r, b), (rel.0, blk), "identity on device");
            assert_eq!(v, tail, "torn page on device");
            let owner = (blk % THREADS as u64) as usize;
            let expect = owned_versions[owner][ri as u64 as usize * BLOCKS as usize + blk as usize];
            assert_eq!(
                v, expect,
                "rel {rel} blk {blk}: device has version {v}, owner wrote {expect}"
            );
        }
    }
}

/// Heavy sharing: every thread reads the same tiny hot set plus a cold tail,
/// with read-ahead enabled. Accounting must still balance — prefetched pages
/// count as `prefetches`, never as demand misses.
#[test]
fn shared_hot_set_with_readahead_balances_books() {
    const THREADS: u32 = 8;
    const BLOCKS: u64 = 64;
    let (smgr, rels) = setup(1, BLOCKS);
    let rel = rels[0];
    let pool = Arc::new(BufferPool::with_shards(32, 4));
    let accesses = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let smgr = Arc::clone(&smgr);
            let pool = Arc::clone(&pool);
            let accesses = Arc::clone(&accesses);
            std::thread::spawn(move || {
                // Each thread alternates a full sequential scan with a
                // burst of point reads on the first 8 blocks.
                for blk in 0..BLOCKS {
                    let pin = get_retry(&pool, &smgr, rel, blk);
                    accesses.fetch_add(1, Ordering::SeqCst);
                    assert_eq!(read_stamp(pin.read().data()).1, blk);
                }
                for i in 0..32u64 {
                    let blk = (i + t as u64) % 8;
                    let pin = get_retry(&pool, &smgr, rel, blk);
                    accesses.fetch_add(1, Ordering::SeqCst);
                    assert_eq!(read_stamp(pin.read().data()).1, blk);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker panicked");
    }
    let s = pool.stats();
    assert_eq!(
        s.hits + s.misses,
        accesses.load(Ordering::SeqCst),
        "accounting drift: {s:?}"
    );
    assert!(s.prefetches > 0, "sequential scans should prefetch: {s:?}");
    assert_eq!(pool.check_consistency(), Vec::<String>::new());
}

/// Pin storms: threads repeatedly pin several pages at once while others
/// force evictions. No deadlock, and pinned pages always survive.
///
/// 8 threads × 3 simultaneous pins can demand 24 frames from a 16-frame
/// pool, so batch acquisition MUST release what it holds before retrying —
/// threads that spin on the third pin while holding two starve each other
/// (the pin-wait analogue of lock-ordering deadlock). The all-or-nothing
/// retry below is the discipline real multi-page callers need.
#[test]
fn pin_storm_under_eviction_pressure() {
    const THREADS: u32 = 8;
    const BLOCKS: u64 = 48;
    let (smgr, rels) = setup(1, BLOCKS);
    let rel = rels[0];
    let pool = Arc::new(BufferPool::with_shards(16, 4));
    pool.set_prefetch_window(0);
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let smgr = Arc::clone(&smgr);
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || {
                for round in 0..50u64 {
                    let base = (t as u64 * 5 + round) % (BLOCKS - 3);
                    let mut attempts = 0u64;
                    let pins: Vec<_> = loop {
                        let acquired: Result<Vec<_>, _> = (base..base + 3)
                            .map(|b| pool.get_page(&smgr, DEV, rel, b))
                            .collect();
                        match acquired {
                            Ok(pins) => break pins,
                            // Exhausted: drop any partial batch (the Err
                            // already released it) and yield so holders
                            // can finish their round.
                            Err(_) => {
                                attempts += 1;
                                assert!(attempts < 1_000_000, "pin storm livelocked");
                                std::thread::yield_now();
                            }
                        }
                    };
                    // While pinned, the frames must keep their identity even
                    // as other threads churn the rest of the pool.
                    for (i, pin) in pins.iter().enumerate() {
                        assert_eq!(read_stamp(pin.read().data()).1, base + i as u64);
                    }
                    let clone = pins[0].clone();
                    drop(pins);
                    assert_eq!(read_stamp(clone.read().data()).1, base);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker panicked");
    }
    assert_eq!(pool.check_consistency(), Vec::<String>::new());
    assert!(pool.len() <= 16);
}
