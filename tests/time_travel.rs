//! Cross-layer time-travel tests: many versions, vacuum + archive,
//! namespace history, migration, and the query-language bracket syntax.

mod common;

use common::Devices;
use inversion::{CreateMode, InversionFs, OpenMode, SeekWhence};
use minidb::vacuum::vacuum;
use minidb::{Datum, DeviceId};
use simdev::SimInstant;

fn fresh_fs() -> InversionFs {
    InversionFs::format(Devices::new().format()).unwrap()
}

#[test]
fn every_intermediate_version_is_recoverable() {
    let fs = fresh_fs();
    let mut c = fs.client();
    let mut stamps: Vec<(SimInstant, Vec<u8>)> = Vec::new();

    c.write_all("/evolving", CreateMode::default(), b"v0")
        .unwrap();
    stamps.push((fs.db().now(), b"v0".to_vec()));
    for v in 1..20u8 {
        c.p_begin().unwrap();
        let fd = c.p_open("/evolving", OpenMode::ReadWrite, None).unwrap();
        let content = format!("v{v}-{}", "x".repeat(v as usize * 7));
        c.p_write(fd, content.as_bytes()).unwrap();
        c.p_close(fd).unwrap();
        c.p_commit().unwrap();
        stamps.push((fs.db().now(), content.into_bytes()));
    }
    // "All old versions of files are visible."
    for (t, expect) in &stamps {
        let got = c.read_to_vec("/evolving", Some(*t)).unwrap();
        assert_eq!(&got[..expect.len()], &expect[..], "at {t}");
    }
}

#[test]
fn fine_grained_beats_daily_snapshots() {
    // Plan 9 and 3DFS snapshot once a day; Inversion sees *every* commit.
    // Three commits within one simulated second are all distinguishable.
    let fs = fresh_fs();
    let mut c = fs.client();
    let mut ts = Vec::new();
    for v in 0..3 {
        c.p_begin().unwrap();
        let fd = match c.p_open("/rapid", OpenMode::ReadWrite, None) {
            Ok(fd) => fd,
            Err(_) => c.p_creat("/rapid", CreateMode::default()).unwrap(),
        };
        c.p_lseek(fd, 0, SeekWhence::Set).unwrap();
        c.p_write(fd, format!("{v}").as_bytes()).unwrap();
        c.p_close(fd).unwrap();
        c.p_commit().unwrap();
        ts.push(fs.db().now());
    }
    assert!(ts[2].since(ts[0]).as_secs_f64() < 1.0, "commits were fast");
    for (v, t) in ts.iter().enumerate() {
        assert_eq!(
            c.read_to_vec("/rapid", Some(*t)).unwrap(),
            format!("{v}").as_bytes()
        );
    }
}

#[test]
fn namespace_time_travel_rename_and_unlink() {
    let fs = fresh_fs();
    let mut c = fs.client();
    c.p_mkdir("/old").unwrap();
    c.p_mkdir("/new").unwrap();
    c.write_all("/old/name", CreateMode::default(), b"data")
        .unwrap();
    let t_old = fs.db().now();

    c.p_rename("/old/name", "/new/name").unwrap();
    let t_renamed = fs.db().now();
    c.p_unlink("/new/name").unwrap();

    // Present: gone everywhere.
    assert!(c.p_stat("/old/name", None).is_err());
    assert!(c.p_stat("/new/name", None).is_err());
    // At t_old it was at the old path (and not the new one).
    assert_eq!(c.read_to_vec("/old/name", Some(t_old)).unwrap(), b"data");
    assert!(c.p_stat("/new/name", Some(t_old)).is_err());
    // After the rename it was at the new path only.
    assert_eq!(
        c.read_to_vec("/new/name", Some(t_renamed)).unwrap(),
        b"data"
    );
    assert!(c.p_stat("/old/name", Some(t_renamed)).is_err());
    // Historical directory listings agree.
    let entries = c.p_readdir("/old", Some(t_old)).unwrap();
    assert_eq!(entries.len(), 1);
    assert!(c.p_readdir("/old", Some(t_renamed)).unwrap().is_empty());
}

#[test]
fn history_survives_the_vacuum_cleaner_via_archive() {
    let fs = fresh_fs();
    let mut c = fs.client();
    c.write_all("/f", CreateMode::default(), b"alpha").unwrap();
    let t_alpha = fs.db().now();
    c.p_begin().unwrap();
    let fd = c.p_open("/f", OpenMode::ReadWrite, None).unwrap();
    c.p_write(fd, b"bravo").unwrap();
    c.p_close(fd).unwrap();
    c.p_commit().unwrap();

    // Vacuum the file's data relation: the dead "alpha" chunk moves to an
    // archive relation.
    let stat = c.p_stat("/f", None).unwrap();
    let stats = vacuum(fs.db(), stat.datarel, DeviceId::DEFAULT).unwrap();
    assert_eq!(stats.archived, 1);
    assert_eq!(stats.kept, 1);

    // Present reads come from the compacted heap...
    assert_eq!(c.read_to_vec("/f", None).unwrap(), b"bravo");
    // ...historical reads are served from the archive.
    assert_eq!(c.read_to_vec("/f", Some(t_alpha)).unwrap(), b"alpha");
}

#[test]
fn no_history_files_forget_after_vacuum() {
    let fs = fresh_fs();
    let mut c = fs.client();
    c.write_all("/scratch", CreateMode::default().without_history(), b"one")
        .unwrap();
    let t_one = fs.db().now();
    c.p_begin().unwrap();
    let fd = c.p_open("/scratch", OpenMode::ReadWrite, None).unwrap();
    c.p_write(fd, b"two").unwrap();
    c.p_close(fd).unwrap();
    c.p_commit().unwrap();

    // Before vacuum, history still available (nothing collected yet).
    assert_eq!(c.read_to_vec("/scratch", Some(t_one)).unwrap(), b"one");
    let stat = c.p_stat("/scratch", None).unwrap();
    let stats = vacuum(fs.db(), stat.datarel, DeviceId::DEFAULT).unwrap();
    assert_eq!(stats.discarded, 1);
    assert_eq!(stats.archived, 0);
    // "For files in which the user has no interest in maintaining history,
    // POSTGRES can be instructed not to save old versions."
    assert_eq!(
        c.read_to_vec("/scratch", Some(t_one)).unwrap(),
        b"\0\0\0"[..3].to_vec()
    );
}

#[test]
fn query_language_bracket_time_travel_on_naming() {
    let fs = fresh_fs();
    let mut c = fs.client();
    c.write_all("/ephemeral", CreateMode::default(), b"x")
        .unwrap();
    let t_alive = fs.db().now().as_nanos();
    c.p_unlink("/ephemeral").unwrap();

    let mut s = fs.db().begin().unwrap();
    let now_rows = s
        .query(r#"retrieve (n.filename) from n in naming where n.filename = "ephemeral""#)
        .unwrap();
    assert!(now_rows.rows.is_empty());
    let then_rows = s
        .query(&format!(
            r#"retrieve (n.filename) from n in naming[{t_alive}] where n.filename = "ephemeral""#
        ))
        .unwrap();
    assert_eq!(then_rows.rows, vec![vec![Datum::Text("ephemeral".into())]]);
    s.commit().unwrap();
}

#[test]
fn historical_opens_are_strictly_read_only() {
    let fs = fresh_fs();
    let mut c = fs.client();
    c.write_all("/f", CreateMode::default(), b"data").unwrap();
    let t = fs.db().now();
    assert!(c.p_open("/f", OpenMode::ReadWrite, Some(t)).is_err());
    let fd = c.p_open("/f", OpenMode::Read, Some(t)).unwrap();
    assert!(c.p_write(fd, b"nope").is_err());
    c.p_close(fd).unwrap();
}

#[test]
fn time_travel_before_creation_sees_nothing() {
    let fs = fresh_fs();
    let t0 = fs.db().now();
    let mut c = fs.client();
    c.write_all("/later", CreateMode::default(), b"x").unwrap();
    assert!(c.p_stat("/later", Some(t0)).is_err());
    assert!(c.p_stat("/later", Some(SimInstant::EPOCH)).is_err());
    // Root itself exists from format time.
    assert!(!c.p_readdir("/", Some(fs.db().now())).unwrap().is_empty());
}
