//! Property-based tests: the Inversion file API against an in-memory model,
//! plus invariants on the codec and chunk layers.

mod common;

use common::Devices;
use inversion::{compress, CreateMode, InversionFs, OpenMode, SeekWhence, CHUNK_SIZE};
use proptest::prelude::*;

/// Operations the model understands.
#[derive(Debug, Clone)]
enum Op {
    Write { offset: u64, data: Vec<u8> },
    Read { offset: u64, len: usize },
    Seal, // Commit and reopen the file.
}

fn op_strategy(max_file: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..max_file, prop::collection::vec(any::<u8>(), 1..2000))
            .prop_map(|(offset, data)| Op::Write { offset, data }),
        (0..max_file, 1..3000usize).prop_map(|(offset, len)| Op::Read { offset, len }),
        Just(Op::Seal),
    ]
}

/// A trivial reference model: a growable byte vector.
#[derive(Default)]
struct Model {
    bytes: Vec<u8>,
}

impl Model {
    fn write(&mut self, offset: u64, data: &[u8]) {
        let end = offset as usize + data.len();
        if self.bytes.len() < end {
            self.bytes.resize(end, 0);
        }
        self.bytes[offset as usize..end].copy_from_slice(data);
    }

    fn read(&self, offset: u64, len: usize) -> Vec<u8> {
        let off = offset as usize;
        if off >= self.bytes.len() {
            return Vec::new();
        }
        self.bytes[off..(off + len).min(self.bytes.len())].to_vec()
    }
}

fn run_ops_against_model(ops: Vec<Op>, compressed: bool) {
    let fs = InversionFs::format(Devices::new().format()).unwrap();
    let mut c = fs.client();
    let mode = if compressed {
        CreateMode::default().compressed()
    } else {
        CreateMode::default()
    };
    c.p_begin().unwrap();
    let mut fd = c.p_creat("/model", mode).unwrap();
    let mut model = Model::default();

    for op in ops {
        match op {
            Op::Write { offset, data } => {
                c.p_lseek(fd, offset as i64, SeekWhence::Set).unwrap();
                c.p_write(fd, &data).unwrap();
                model.write(offset, &data);
            }
            Op::Read { offset, len } => {
                c.p_lseek(fd, offset as i64, SeekWhence::Set).unwrap();
                let mut buf = vec![0u8; len];
                let n = c.p_read(fd, &mut buf).unwrap();
                assert_eq!(
                    &buf[..n],
                    &model.read(offset, len)[..],
                    "read at {offset}+{len}"
                );
            }
            Op::Seal => {
                c.p_close(fd).unwrap();
                c.p_commit().unwrap();
                c.p_begin().unwrap();
                fd = c.p_open("/model", OpenMode::ReadWrite, None).unwrap();
            }
        }
    }
    // Final full-file comparison after commit.
    c.p_close(fd).unwrap();
    c.p_commit().unwrap();
    let all = c.read_to_vec("/model", None).unwrap();
    assert_eq!(all, model.bytes);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn file_api_matches_byte_vector_model(
        ops in prop::collection::vec(op_strategy(3 * CHUNK_SIZE as u64), 1..25)
    ) {
        run_ops_against_model(ops, false);
    }

    #[test]
    fn compressed_files_match_model_too(
        ops in prop::collection::vec(op_strategy(2 * CHUNK_SIZE as u64), 1..15)
    ) {
        run_ops_against_model(ops, true);
    }

    #[test]
    fn compression_roundtrips_arbitrary_bytes(data in prop::collection::vec(any::<u8>(), 0..9000)) {
        let c = compress::compress(&data);
        let d = compress::decompress(&c);
        prop_assert_eq!(d.as_deref(), Some(&data[..]));
    }

    #[test]
    fn decompress_never_panics_on_garbage(data in prop::collection::vec(any::<u8>(), 0..4000)) {
        let _ = compress::decompress(&data);
    }

    #[test]
    fn split_range_partitions_exactly(offset in 0u64..10_000_000, len in 0usize..100_000) {
        let parts = inversion::chunk::split_range(offset, len);
        // Lengths sum to the request.
        prop_assert_eq!(parts.iter().map(|p| p.2).sum::<usize>(), len);
        // Pieces are contiguous and in order.
        let mut pos = offset;
        for (chunkno, start, take) in parts {
            prop_assert_eq!(inversion::chunk::chunk_start(chunkno) + start as u64, pos);
            prop_assert!(start + take <= CHUNK_SIZE);
            pos += take as u64;
        }
    }

    #[test]
    fn row_codec_roundtrips(
        ints in prop::collection::vec(any::<i64>(), 0..6),
        text in ".{0,80}",
        blob in prop::collection::vec(any::<u8>(), 0..500),
    ) {
        let mut row: Vec<minidb::Datum> = ints.into_iter().map(minidb::Datum::Int8).collect();
        row.push(minidb::Datum::Text(text));
        row.push(minidb::Datum::Bytes(blob));
        row.push(minidb::Datum::Null);
        let enc = minidb::encode_row(&row);
        prop_assert_eq!(minidb::decode_row(&enc).unwrap(), row);
    }

    #[test]
    fn btree_agrees_with_sorted_map(keys in prop::collection::vec(0i32..500, 1..120)) {
        let db = minidb::Db::open_in_memory().unwrap();
        let rel = db.create_table(
            "t",
            minidb::Schema::new([("k", minidb::TypeId::INT4)]),
        ).unwrap();
        let idx = db.create_index("t_k", rel, &["k"]).unwrap();
        let mut s = db.begin().unwrap();
        let mut counts = std::collections::BTreeMap::new();
        for k in &keys {
            s.insert(rel, vec![minidb::Datum::Int4(*k)]).unwrap();
            *counts.entry(*k).or_insert(0usize) += 1;
        }
        for (k, n) in counts {
            let hits = s.index_scan_eq(idx, &[minidb::Datum::Int4(k)]).unwrap();
            prop_assert_eq!(hits.len(), n, "key {}", k);
        }
        s.commit().unwrap();
    }
}

/// Operations for the buffer-pool model check.
#[derive(Debug, Clone)]
enum PoolOp {
    /// Read a block and compare against the shadow.
    Get { blk: u8 },
    /// Read a block and overwrite it with fresh bytes (dirties the frame).
    Dirty { blk: u8, fill: u8 },
    /// Write every dirty page back.
    Flush,
    /// Flush then drop the entire cache.
    FlushClear,
    /// Drop one relation's pages without writeback.
    Discard,
    /// Read-ahead hint over the whole relation.
    Prefetch,
}

fn pool_op_strategy(nblocks: u8) -> impl Strategy<Value = PoolOp> {
    // The shim's `prop_oneof!` has no weights; repeating the read/write
    // arms biases the mix toward them.
    prop_oneof![
        (0..nblocks).prop_map(|blk| PoolOp::Get { blk }),
        (0..nblocks).prop_map(|blk| PoolOp::Get { blk }),
        (0..nblocks, any::<u8>()).prop_map(|(blk, fill)| PoolOp::Dirty { blk, fill }),
        (0..nblocks, any::<u8>()).prop_map(|(blk, fill)| PoolOp::Dirty { blk, fill }),
        Just(PoolOp::Flush),
        Just(PoolOp::FlushClear),
        Just(PoolOp::Discard),
        Just(PoolOp::Prefetch),
    ]
}

// Model-checks the sharded buffer pool against a flat shadow map: whatever
// interleaving of get/dirty/flush/clear/discard/prefetch runs (with a pool
// far smaller than the block set, so evictions are constant), a read must
// never serve stale bytes and a flush must never lose a dirty page.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn buffer_pool_matches_shadow_map(
        ops in prop::collection::vec(pool_op_strategy(24), 1..60),
        capacity in 4usize..10,
        nshards in 1usize..4,
    ) {
        use minidb::buffer::BufferPool;
        use minidb::smgr::{shared_device, GenericManager, Smgr};
        use minidb::{DeviceId, Oid};
        use simdev::{DiskProfile, MagneticDisk, SimClock};

        const NBLOCKS: u8 = 24;
        let dev = DeviceId::DEFAULT;
        let rel = Oid(42);
        let clock = SimClock::new();
        let disk = shared_device(MagneticDisk::new(
            "prop", clock, DiskProfile::tiny_for_tests(4096),
        ));
        let mut smgr = Smgr::new();
        smgr.register(dev, Box::new(GenericManager::format(disk).unwrap())).unwrap();
        smgr.with(dev, |m| m.create_rel(rel)).unwrap();

        let pool = BufferPool::with_shards(capacity, nshards);
        // The shadows: `mem` is what a reader through the pool must see,
        // `disk_shadow` what a flush guarantees on the device. They diverge
        // only between a dirty and its writeback.
        let mut mem: std::collections::HashMap<u64, u8> = std::collections::HashMap::new();
        let mut disk_shadow: std::collections::HashMap<u64, u8> = std::collections::HashMap::new();
        for b in 0..NBLOCKS as u64 {
            let (_, pin) = pool.new_page(&smgr, dev, rel).unwrap();
            pin.write().data_mut().fill(b as u8);
            mem.insert(b, b as u8);
            disk_shadow.insert(b, b as u8);
        }
        pool.flush_all(&smgr).unwrap();

        let mut accesses = 0u64;
        for op in ops {
            match op {
                PoolOp::Get { blk } => {
                    let blk = blk as u64;
                    let pin = pool.get_page(&smgr, dev, rel, blk).unwrap();
                    accesses += 1;
                    let got = pin.read().data()[0];
                    prop_assert_eq!(got, mem[&blk], "stale read of block {}", blk);
                }
                PoolOp::Dirty { blk, fill } => {
                    let blk = blk as u64;
                    let pin = pool.get_page(&smgr, dev, rel, blk).unwrap();
                    accesses += 1;
                    let before = pin.read().data()[0];
                    prop_assert_eq!(before, mem[&blk]);
                    pin.write().data_mut().fill(fill);
                    mem.insert(blk, fill);
                }
                PoolOp::Flush => {
                    pool.flush_all(&smgr).unwrap();
                    disk_shadow = mem.clone();
                }
                PoolOp::FlushClear => {
                    pool.flush_and_clear(&smgr).unwrap();
                    disk_shadow = mem.clone();
                }
                PoolOp::Discard => {
                    // Dropping the cache without writeback: unflushed
                    // dirties are lost, but evicted-and-written-back pages
                    // may have reached the device already — either shadow
                    // is a legal next observation. Re-seed both from what
                    // the device actually holds.
                    pool.discard_rel(rel);
                    let mut page = vec![0u8; minidb::page::PAGE_SIZE];
                    for b in 0..NBLOCKS as u64 {
                        smgr.with(dev, |m| m.read(rel, b, &mut page)).unwrap();
                        let on_disk = page[0];
                        prop_assert!(
                            on_disk == disk_shadow[&b] || on_disk == mem[&b],
                            "block {} on device is {}, expected {} (flushed) or {} (evicted)",
                            b, on_disk, disk_shadow[&b], mem[&b]
                        );
                        mem.insert(b, on_disk);
                        disk_shadow.insert(b, on_disk);
                    }
                }
                PoolOp::Prefetch => {
                    pool.prefetch(&smgr, dev, rel, 0, NBLOCKS as usize);
                }
            }
            prop_assert_eq!(pool.check_consistency(), Vec::<String>::new());
        }
        // Invariants at the end of every interleaving: accounting balances
        // and a final flush makes memory and device agree everywhere.
        let s = pool.stats();
        prop_assert_eq!(s.hits + s.misses, accesses, "accounting: {:?}", s);
        pool.flush_all(&smgr).unwrap();
        let mut page = vec![0u8; minidb::page::PAGE_SIZE];
        for b in 0..NBLOCKS as u64 {
            smgr.with(dev, |m| m.read(rel, b, &mut page)).unwrap();
            prop_assert_eq!(page[0], mem[&b], "block {} lost after flush", b);
        }
    }
}

/// Actions for the commit-path crash test: up to one open transaction per
/// table, interleaved freely, with power failures anywhere in between.
#[derive(Debug, Clone)]
enum CrashOp {
    Begin(u8),
    Insert(u8),
    Commit(u8),
    Abort(u8),
    Crash,
    /// Drive a full checkpoint cycle (drain dirty pages, truncate the log).
    Checkpoint,
    /// Fail the data device after `n` more writes, attempt a checkpoint,
    /// then pull the plug: the cycle dies mid-drain with the log intact.
    CrashDuringCheckpoint(u64),
    /// Fail the log device after `fuse` more writes, commit table `t`'s
    /// transaction, then pull the plug: the commit's log force tears
    /// partway through its destage.
    CrashDuringCommit { t: u8, fuse: u64 },
}

fn crash_op_strategy() -> impl Strategy<Value = CrashOp> {
    prop_oneof![
        (0u8..2).prop_map(CrashOp::Begin),
        (0u8..2).prop_map(CrashOp::Insert),
        (0u8..2).prop_map(CrashOp::Insert),
        (0u8..2).prop_map(CrashOp::Commit),
        (0u8..2).prop_map(CrashOp::Abort),
        Just(CrashOp::Crash),
        Just(CrashOp::Checkpoint),
        (1u64..8).prop_map(CrashOp::CrashDuringCheckpoint),
        (0u8..2, 1u64..5).prop_map(|(t, fuse)| CrashOp::CrashDuringCommit { t, fuse }),
    ]
}

/// Devices whose writes sit in a volatile cache until synced, so a crash
/// loses exactly what the commit path failed to force.
struct CrashRig {
    clock: simdev::SimClock,
    data: minidb::SharedDevice,
    log: minidb::SharedDevice,
    catalog: minidb::SharedDevice,
    handles: Vec<simdev::CacheCrashHandle>,
    /// Fault plans on the *inner* disks: an armed write fuse fires while a
    /// sync destages the volatile cache, tearing the destage partway.
    data_faults: simdev::FaultPlan,
    log_faults: simdev::FaultPlan,
}

impl CrashRig {
    fn new() -> CrashRig {
        let clock = simdev::SimClock::new();
        let mut handles = Vec::new();
        let mut plans = Vec::new();
        let mut cached = |name: &str, nblocks: u64| {
            let disk = simdev::MagneticDisk::new(
                name,
                clock.clone(),
                simdev::DiskProfile::tiny_for_tests(nblocks),
            );
            plans.push(disk.fault_plan());
            let (dev, handle) = simdev::WriteCacheDisk::new(Box::new(disk));
            handles.push(handle);
            minidb::shared_device(dev)
        };
        let data = cached("data", 1 << 16);
        let log = cached("log", 1 << 12);
        let catalog = cached("catalog", 1 << 12);
        drop(cached);
        let data_faults = plans[0].clone();
        let log_faults = plans[1].clone();
        CrashRig { clock, data, log, catalog, handles, data_faults, log_faults }
    }

    fn open(&self, fresh: bool, window_us: u64) -> minidb::Db {
        let mut smgr = minidb::Smgr::new();
        let mgr = if fresh {
            minidb::GenericManager::format(self.data.clone()).unwrap()
        } else {
            minidb::GenericManager::attach(self.data.clone()).unwrap()
        };
        smgr.register(minidb::DeviceId::DEFAULT, Box::new(mgr)).unwrap();
        let config = minidb::DbConfig {
            group_commit_window: simdev::SimDuration::from_micros(window_us),
            ..minidb::DbConfig::default()
        };
        let open = if fresh { minidb::Db::open } else { minidb::Db::recover };
        open(
            self.clock.clone(),
            smgr,
            self.log.clone(),
            self.catalog.clone(),
            config,
        )
        .unwrap()
    }

    /// Power failure: every unsynced write on every device vanishes.
    fn crash(&self) {
        for h in &self.handles {
            h.drop_unsynced();
        }
    }
}

/// The process dies: leak open sessions, stop the checkpointer without a
/// final flush, drop the volatile caches, reattach.
fn crash_and_reopen(
    rig: &CrashRig,
    db: minidb::Db,
    sessions: &mut [Option<minidb::Session>; 2],
    pending: &mut [Vec<i64>; 2],
    window_us: u64,
) -> minidb::Db {
    for slot in sessions.iter_mut() {
        if let Some(s) = slot.take() {
            std::mem::forget(s);
        }
    }
    *pending = [Vec::new(), Vec::new()];
    db.simulate_crash();
    rig.crash();
    drop(db);
    rig.open(false, window_us)
}

/// Runs one interleaving and checks, after every crash and at the end,
/// that acknowledged commits are visible, unacknowledged work is not, and
/// the structural verifier finds nothing wrong. A commit whose log force
/// failed partway is *indeterminate* until the next crash resolves it: the
/// table must then show either exactly the acknowledged rows or exactly
/// those plus the whole limbo transaction — never a fraction of it.
fn run_crash_ops(ops: Vec<CrashOp>, window_us: u64) {
    let rig = CrashRig::new();
    let mut db = rig.open(true, window_us);
    for t in 0..2 {
        db.create_table(&format!("t{t}"), minidb::Schema::new([("v", minidb::TypeId::INT8)]))
            .unwrap();
    }
    db.flush_caches().unwrap(); // Setup must survive the first crash.

    let rels = |db: &minidb::Db| {
        [db.relation_id("t0").unwrap(), db.relation_id("t1").unwrap()]
    };
    let verify = |db: &minidb::Db,
                  committed: &mut [Vec<i64>; 2],
                  indeterminate: &mut [Vec<i64>; 2]| {
        assert!(db.check_all().is_empty(), "verifier: {:?}", db.check_all());
        let rel = rels(db);
        let mut s = db.begin().unwrap();
        for t in 0..2 {
            let mut got: Vec<i64> = s
                .seq_scan(rel[t])
                .unwrap()
                .into_iter()
                .map(|(_, row)| match row[0] {
                    minidb::Datum::Int8(v) => v,
                    ref other => panic!("bad datum {other:?}"),
                })
                .collect();
            got.sort_unstable();
            let mut want = committed[t].clone();
            want.sort_unstable();
            if indeterminate[t].is_empty() {
                assert_eq!(
                    got, want,
                    "table t{t}: acknowledged commits must be exactly the visible rows"
                );
            } else {
                let mut with_limbo = want.clone();
                with_limbo.extend_from_slice(&indeterminate[t]);
                with_limbo.sort_unstable();
                assert!(
                    got == want || got == with_limbo,
                    "table t{t}: a torn commit must be all-or-nothing; \
                     got {got:?}, acknowledged {want:?}, limbo {:?}",
                    indeterminate[t]
                );
                // The crash resolved the limbo transaction one way or the
                // other; what is visible now is the durable truth.
                committed[t] = got.clone();
                indeterminate[t].clear();
            }
        }
        s.commit().unwrap();
    };

    let mut sessions: [Option<minidb::Session>; 2] = [None, None];
    let mut committed: [Vec<i64>; 2] = [Vec::new(), Vec::new()];
    let mut pending: [Vec<i64>; 2] = [Vec::new(), Vec::new()];
    let mut indeterminate: [Vec<i64>; 2] = [Vec::new(), Vec::new()];
    let mut next = 0i64;

    for op in ops {
        match op {
            CrashOp::Begin(t) => {
                let t = t as usize;
                if sessions[t].is_none() {
                    sessions[t] = Some(db.begin().unwrap());
                }
            }
            CrashOp::Insert(t) => {
                let t = t as usize;
                if let Some(s) = sessions[t].as_mut() {
                    next += 1;
                    s.insert(rels(&db)[t], vec![minidb::Datum::Int8(next)]).unwrap();
                    pending[t].push(next);
                }
            }
            CrashOp::Commit(t) => {
                let t = t as usize;
                if let Some(mut s) = sessions[t].take() {
                    s.commit().unwrap();
                    committed[t].append(&mut pending[t]);
                }
            }
            CrashOp::Abort(t) => {
                let t = t as usize;
                if let Some(mut s) = sessions[t].take() {
                    s.abort().unwrap();
                    pending[t].clear();
                }
            }
            CrashOp::Crash => {
                db = crash_and_reopen(&rig, db, &mut sessions, &mut pending, window_us);
                verify(&db, &mut committed, &mut indeterminate);
            }
            CrashOp::Checkpoint => {
                db.checkpoint().unwrap();
            }
            CrashOp::CrashDuringCheckpoint(fuse) => {
                // The cycle dies mid-drain: some data pages destage, the
                // rest are lost, and the log is never truncated. Recovery
                // must replay over whatever mix landed.
                rig.data_faults.fail_after_writes(fuse);
                let _ = db.checkpoint();
                rig.data_faults.clear_write_fault();
                db = crash_and_reopen(&rig, db, &mut sessions, &mut pending, window_us);
                verify(&db, &mut committed, &mut indeterminate);
            }
            CrashOp::CrashDuringCommit { t, fuse } => {
                let t = t as usize;
                if let Some(mut s) = sessions[t].take() {
                    rig.log_faults.fail_after_writes(fuse);
                    match s.commit() {
                        Ok(()) => committed[t].append(&mut pending[t]),
                        Err(_) => {
                            // The force tore partway through its destage:
                            // whether the commit record became durable is
                            // unknown until recovery looks.
                            indeterminate[t].append(&mut pending[t]);
                            std::mem::forget(s);
                        }
                    }
                    rig.log_faults.clear_write_fault();
                    db = crash_and_reopen(&rig, db, &mut sessions, &mut pending, window_us);
                    verify(&db, &mut committed, &mut indeterminate);
                }
            }
        }
    }
    for slot in sessions.iter_mut() {
        if let Some(mut s) = slot.take() {
            s.abort().unwrap();
        }
    }
    verify(&db, &mut committed, &mut indeterminate);
}

// The commit path's whole durability contract, under both the direct
// (window 0) and group-commit paths: scoped flushes and batched records
// must never acknowledge a commit the devices can lose, and must never
// resurrect work that was aborted or in flight at the crash.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn acknowledged_commits_survive_crashes(
        ops in prop::collection::vec(crash_op_strategy(), 1..40),
        group_commit in any::<bool>(),
    ) {
        run_crash_ops(ops, if group_commit { 50 } else { 0 });
    }
}

// ---------------------------------------------------------------------------
// Differential query oracle: the cost-based planner + volcano executor
// against the retained reference interpreter
// (`minidb::query::reference`), over randomly generated POSTQUEL.

/// A self-contained xorshift generator so query shapes are derived from one
/// proptest-supplied seed (the vendored proptest shim has no recursive or
/// flat-mapped strategies).
struct Qrng(u64);

impl Qrng {
    fn new(seed: u64) -> Qrng {
        Qrng(seed | 1)
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
    fn chance(&mut self, pct: u64) -> bool {
        self.below(100) < pct
    }
    fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }
}

/// The oracle's fixed schema: three small tables, B-tree indexes on `t1.a`
/// and `t2.k` so the planner's index choices are actually on the table.
const ORACLE_TABLES: [(&str, &[(&str, bool)]); 3] = [
    ("t1", &[("a", true), ("b", true), ("s", false)]),
    ("t2", &[("k", true), ("v", false)]),
    ("t3", &[("x", true), ("y", true)]),
];

const ORACLE_WORDS: [&str; 4] = ["red", "blue", "green", ""];

fn oracle_db(seed: u64) -> minidb::Db {
    use minidb::{Datum, Schema, TypeId};
    let db = minidb::Db::open_in_memory().unwrap();
    for (name, cols) in ORACLE_TABLES {
        let schema = Schema::new(
            cols.iter()
                .map(|(c, int)| (*c, if *int { TypeId::INT4 } else { TypeId::TEXT }))
                .collect::<Vec<_>>(),
        );
        db.create_table(name, schema).unwrap();
    }
    let t1 = db.relation_id("t1").unwrap();
    let t2 = db.relation_id("t2").unwrap();
    db.create_index("t1_a", t1, &["a"]).unwrap();
    db.create_index("t2_k", t2, &["k"]).unwrap();

    // Collision-heavy small values with occasional nulls, so joins match,
    // groups repeat, and index probes return several rows.
    let mut rng = Qrng::new(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut s = db.begin().unwrap();
    for (name, cols) in ORACLE_TABLES {
        let rel = db.relation_id(name).unwrap();
        let nrows = 3 + rng.below(6);
        for _ in 0..nrows {
            let row: Vec<Datum> = cols
                .iter()
                .map(|(_, int)| {
                    if rng.chance(12) {
                        Datum::Null
                    } else if *int {
                        Datum::Int4(rng.below(6) as i32)
                    } else {
                        Datum::Text(rng.pick(&ORACLE_WORDS).to_string())
                    }
                })
                .collect();
            s.insert(rel, row).unwrap();
        }
    }
    s.commit().unwrap();
    db
}

/// One generated range variable: `rN in <table>`.
struct OracleVar {
    var: String,
    table: usize,
}

fn gen_vars(rng: &mut Qrng) -> Vec<OracleVar> {
    let n = 1 + rng.below(3) as usize; // 1..=3 range variables
    (0..n)
        .map(|i| OracleVar {
            var: format!("r{i}"),
            table: rng.below(3) as usize,
        })
        .collect()
}

fn int_col(rng: &mut Qrng, v: &OracleVar) -> String {
    let cols = ORACLE_TABLES[v.table].1;
    let ints: Vec<&str> = cols.iter().filter(|(_, i)| *i).map(|(c, _)| *c).collect();
    format!("{}.{}", v.var, rng.pick(&ints))
}

fn text_col(v: &OracleVar) -> Option<String> {
    let cols = ORACLE_TABLES[v.table].1;
    cols.iter()
        .find(|(_, int)| !*int)
        .map(|(c, _)| format!("{}.{}", v.var, c))
}

/// One comparison that can never raise an evaluation error (the planner
/// reorders conjunct evaluation, so error-capable predicates would make
/// error *ordering* observable — that divergence is documented, not hidden).
fn gen_comparison(rng: &mut Qrng, vars: &[OracleVar]) -> String {
    let ops = ["=", "!=", "<", "<=", ">", ">="];
    let v = rng.pick(vars);
    match rng.below(10) {
        // Int column vs small literal: the planner's index-pin bread and
        // butter (t1.a / t2.k hit the indexes).
        0..=4 => format!(
            "{} {} {}",
            int_col(rng, v),
            rng.pick(&ops),
            rng.below(6)
        ),
        // Cross-type literal pins: floats and an out-of-int4-range value,
        // exercising the "exact coercion or no index" guard in both paths.
        5 => format!("{} = {}", int_col(rng, v), rng.pick(&["2.0", "3.5", "5000000000"])),
        // Int column vs int column (possibly cross-variable: a join pred).
        6..=7 => {
            let w = rng.pick(vars);
            format!("{} {} {}", int_col(rng, v), rng.pick(&ops), int_col(rng, w))
        }
        // Text equality against the vocabulary.
        _ => match text_col(v) {
            Some(c) => format!("{c} = \"{}\"", rng.pick(&ORACLE_WORDS)),
            None => format!("{} >= {}", int_col(rng, v), rng.below(6)),
        },
    }
}

fn gen_qual(rng: &mut Qrng, vars: &[OracleVar]) -> Option<String> {
    let n = rng.below(4); // 0..=3 conjuncts
    if n == 0 {
        return None;
    }
    let mut parts: Vec<String> = (0..n).map(|_| gen_comparison(rng, vars)).collect();
    if rng.chance(20) {
        let i = rng.below(parts.len() as u64) as usize;
        parts[i] = format!("not ({})", parts[i]);
    }
    // Mostly `and` (exercises conjunct pushdown); occasionally an `or`
    // pair, which must stay above the scans as a residual filter.
    if parts.len() >= 2 && rng.chance(25) {
        let b = parts.pop().unwrap();
        let a = parts.pop().unwrap();
        parts.push(format!("({a} or {b})"));
    }
    Some(parts.join(" and "))
}

/// Plain targets: named columns and simple arithmetic.
fn gen_targets(rng: &mut Qrng, vars: &[OracleVar]) -> Vec<(String, String)> {
    let n = 1 + rng.below(3);
    (0..n)
        .map(|i| {
            let v = rng.pick(vars);
            match rng.below(4) {
                0 => {
                    let e = format!("{} + {}", int_col(rng, v), rng.below(4));
                    (format!("c{i}"), e)
                }
                1 => match text_col(v) {
                    Some(c) => (format!("c{i}"), c),
                    None => (format!("c{i}"), int_col(rng, v)),
                },
                _ => (format!("c{i}"), int_col(rng, v)),
            }
        })
        .collect()
}

/// Aggregate targets: `sum`/`avg` only over int columns (float addition
/// order would otherwise be observable), `count`/`min`/`max` over anything.
fn gen_agg_targets(rng: &mut Qrng, vars: &[OracleVar]) -> Vec<(String, String)> {
    let mut out = Vec::new();
    if rng.chance(50) {
        // A group key makes it an implicit GroupAggregate.
        let v = rng.pick(vars);
        out.push(("g".to_string(), int_col(rng, v)));
    }
    let n = 1 + rng.below(2);
    for i in 0..n {
        let v = rng.pick(vars);
        let e = match rng.below(5) {
            0 => "count()".to_string(),
            1 => format!("count({})", int_col(rng, v)),
            2 => format!("sum({})", int_col(rng, v)),
            3 => format!("avg({})", int_col(rng, v)),
            _ => format!("min({})", int_col(rng, v)),
        };
        out.push((format!("a{i}"), e));
    }
    out
}

struct OracleQuery {
    source: String,
    sort_keys: Vec<(String, bool)>,
    /// The sort covers every output column, so even a `limit` cut is
    /// deterministic (ties are full-row duplicates).
    fully_sorted: bool,
    limited: bool,
}

fn gen_retrieve(rng: &mut Qrng) -> OracleQuery {
    let vars = gen_vars(rng);
    let targets = if rng.chance(25) {
        gen_agg_targets(rng, &vars)
    } else {
        gen_targets(rng, &vars)
    };
    let qual = gen_qual(rng, &vars);

    let names: Vec<String> = targets.iter().map(|(n, _)| n.clone()).collect();
    let mut sort_keys: Vec<(String, bool)> = Vec::new();
    if rng.chance(60) {
        let mut pool = names.clone();
        let take = 1 + rng.below(pool.len() as u64);
        for _ in 0..take {
            let i = rng.below(pool.len() as u64) as usize;
            sort_keys.push((pool.remove(i), rng.chance(40)));
        }
    }
    let fully_sorted = sort_keys.len() == names.len() && !names.is_empty();
    let limited = fully_sorted && rng.chance(40);

    let mut q = String::from("retrieve (");
    q.push_str(
        &targets
            .iter()
            .map(|(n, e)| format!("{n} = {e}"))
            .collect::<Vec<_>>()
            .join(", "),
    );
    q.push_str(") from ");
    q.push_str(
        &vars
            .iter()
            .map(|v| format!("{} in {}", v.var, ORACLE_TABLES[v.table].0))
            .collect::<Vec<_>>()
            .join(", "),
    );
    if let Some(w) = &qual {
        q.push_str(&format!(" where {w}"));
    }
    if !sort_keys.is_empty() {
        let keys: Vec<String> = sort_keys
            .iter()
            .map(|(k, desc)| if *desc { format!("{k} desc") } else { k.clone() })
            .collect();
        q.push_str(&format!(" sort by {}", keys.join(", ")));
    }
    if limited {
        q.push_str(&format!(" limit {}", rng.below(6)));
    }
    OracleQuery {
        source: q,
        sort_keys,
        fully_sorted,
        limited,
    }
}

fn canon(rows: &[Vec<minidb::Datum>]) -> Vec<Vec<u8>> {
    let mut keys: Vec<Vec<u8>> = rows.iter().map(|r| minidb::encode_row(r)).collect();
    keys.sort();
    keys
}

fn assert_sorted_by(
    rows: &[Vec<minidb::Datum>],
    columns: &[String],
    keys: &[(String, bool)],
    q: &str,
) {
    let idx: Vec<(usize, bool)> = keys
        .iter()
        .map(|(k, d)| (columns.iter().position(|c| c == k).unwrap(), *d))
        .collect();
    for w in rows.windows(2) {
        for &(i, desc) in &idx {
            let ord = w[0][i].cmp_total(&w[1][i]);
            let ord = if desc { ord.reverse() } else { ord };
            match ord {
                std::cmp::Ordering::Less => break,
                std::cmp::Ordering::Equal => continue,
                std::cmp::Ordering::Greater => panic!("output not sorted for {q}"),
            }
        }
    }
}

fn check_retrieve_oracle(seed: u64) {
    let db = oracle_db(seed);
    let mut rng = Qrng::new(seed);
    // Several queries per database amortize the setup and let index and
    // heap paths see identical data.
    for _ in 0..4 {
        let gen = gen_retrieve(&mut rng);
        let q = &gen.source;
        let mut s = db.begin().unwrap();
        let planned = s.query(q);
        let reference = minidb::query::reference::query(&mut s, q);
        s.commit().unwrap();
        match (planned, reference) {
            (Ok(p), Ok(r)) => {
                assert_eq!(p.columns, r.columns, "columns diverge for {q}");
                if gen.fully_sorted {
                    // Fully sorted output (even under limit) is one exact
                    // sequence: total order over every column.
                    assert_eq!(p.rows, r.rows, "sorted rows diverge for {q}");
                } else {
                    assert!(!gen.limited, "limit requires a full sort");
                    assert_eq!(canon(&p.rows), canon(&r.rows), "multisets diverge for {q}");
                }
                if !gen.sort_keys.is_empty() {
                    assert_sorted_by(&p.rows, &p.columns, &gen.sort_keys, q);
                    assert_sorted_by(&r.rows, &r.columns, &gen.sort_keys, q);
                }
            }
            (Err(pe), Err(re)) => {
                assert_eq!(
                    std::mem::discriminant(&pe),
                    std::mem::discriminant(&re),
                    "error kinds diverge for {q}: planned {pe}, reference {re}"
                );
            }
            (p, r) => panic!(
                "paths diverge for {q}: planned {:?}, reference {:?}",
                p.map(|x| x.rows.len()),
                r.map(|x| x.rows.len())
            ),
        }
    }
}

/// One mutation statement rendered to source.
fn gen_mutation(rng: &mut Qrng) -> String {
    let t = rng.below(3) as usize;
    let (name, cols) = ORACLE_TABLES[t];
    let var = OracleVar {
        var: "m".into(),
        table: t,
    };
    match rng.below(3) {
        0 => {
            // Append with a random subset of columns set.
            let mut sets: Vec<String> = Vec::new();
            for (c, int) in cols {
                if !rng.chance(70) {
                    continue;
                }
                if *int {
                    sets.push(format!("{c} = {}", rng.below(6)));
                } else {
                    sets.push(format!("{c} = \"{}\"", rng.pick(&ORACLE_WORDS)));
                }
            }
            if sets.is_empty() {
                format!("append {name} ({} = {})", cols[0].0, 1)
            } else {
                format!("append {name} ({})", sets.join(", "))
            }
        }
        1 => {
            let qual = gen_qual(rng, std::slice::from_ref(&var))
                .map(|w| format!(" where {w}"))
                .unwrap_or_default();
            format!("delete m from m in {name}{qual}")
        }
        _ => {
            let (c, int) = *rng.pick(cols);
            let set = if int {
                format!("{c} = {}", rng.below(6))
            } else {
                format!("{c} = \"{}\"", rng.pick(&ORACLE_WORDS))
            };
            let qual = gen_qual(rng, std::slice::from_ref(&var))
                .map(|w| format!(" where {w}"))
                .unwrap_or_default();
            format!("replace m ({set}) from m in {name}{qual}")
        }
    }
}

/// Mutations run against two identically seeded databases — planned on
/// one, reference on the other — and every table must end up identical.
fn check_mutation_oracle(seed: u64) {
    let planned_db = oracle_db(seed);
    let reference_db = oracle_db(seed);
    let mut rng = Qrng::new(seed.rotate_left(17));
    for _ in 0..6 {
        let q = gen_mutation(&mut rng);
        let mut ps = planned_db.begin().unwrap();
        let mut rs = reference_db.begin().unwrap();
        let p = ps.query(&q);
        let r = minidb::query::reference::query(&mut rs, &q);
        ps.commit().unwrap();
        rs.commit().unwrap();
        match (p, r) {
            (Ok(p), Ok(r)) => assert_eq!(p.affected, r.affected, "affected diverges for {q}"),
            (Err(pe), Err(re)) => assert_eq!(
                std::mem::discriminant(&pe),
                std::mem::discriminant(&re),
                "error kinds diverge for {q}"
            ),
            (p, r) => panic!("paths diverge for {q}: planned {p:?}, reference {r:?}"),
        }
    }
    for (name, _) in ORACLE_TABLES {
        let rel = planned_db.relation_id(name).unwrap();
        let mut ps = planned_db.begin().unwrap();
        let mut rs = reference_db.begin().unwrap();
        let p: Vec<_> = ps.seq_scan(rel).unwrap().into_iter().map(|(_, r)| r).collect();
        let rel_r = reference_db.relation_id(name).unwrap();
        let r: Vec<_> = rs.seq_scan(rel_r).unwrap().into_iter().map(|(_, r)| r).collect();
        ps.commit().unwrap();
        rs.commit().unwrap();
        assert_eq!(canon(&p), canon(&r), "table {name} diverges after mutations");
    }
}

// The differential oracle proper: 256 retrieve cases (each running four
// generated queries) and 64 mutation schedules. Any divergence between the
// cost-based pipeline and the reference interpreter fails with the exact
// POSTQUEL source that triggered it.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn planned_executor_matches_reference_interpreter(seed in any::<u64>()) {
        check_retrieve_oracle(seed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn planned_mutations_match_reference_interpreter(seed in any::<u64>()) {
        check_mutation_oracle(seed);
    }
}

#[test]
fn coalescer_equivalence_small_vs_large_writes() {
    // Writing N bytes as many small sequential writes must produce exactly
    // the same file as one large write.
    let sizes = [1usize, 7, 64, 255, 1000];
    let total = CHUNK_SIZE + 777;
    let data: Vec<u8> = (0..total).map(|i| (i % 249) as u8).collect();
    let fs = InversionFs::format(Devices::new().format()).unwrap();
    let mut c = fs.client();
    c.write_all("/whole", CreateMode::default(), &data).unwrap();
    for (i, sz) in sizes.iter().enumerate() {
        let path = format!("/pieces{i}");
        c.p_begin().unwrap();
        let fd = c.p_creat(&path, CreateMode::default()).unwrap();
        for chunk in data.chunks(*sz) {
            c.p_write(fd, chunk).unwrap();
        }
        c.p_close(fd).unwrap();
        c.p_commit().unwrap();
        assert_eq!(c.read_to_vec(&path, None).unwrap(), data, "piece size {sz}");
    }
}
