//! Property-based tests: the Inversion file API against an in-memory model,
//! plus invariants on the codec and chunk layers.

mod common;

use common::Devices;
use inversion::{compress, CreateMode, InversionFs, OpenMode, SeekWhence, CHUNK_SIZE};
use proptest::prelude::*;

/// Operations the model understands.
#[derive(Debug, Clone)]
enum Op {
    Write { offset: u64, data: Vec<u8> },
    Read { offset: u64, len: usize },
    Seal, // Commit and reopen the file.
}

fn op_strategy(max_file: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..max_file, prop::collection::vec(any::<u8>(), 1..2000))
            .prop_map(|(offset, data)| Op::Write { offset, data }),
        (0..max_file, 1..3000usize).prop_map(|(offset, len)| Op::Read { offset, len }),
        Just(Op::Seal),
    ]
}

/// A trivial reference model: a growable byte vector.
#[derive(Default)]
struct Model {
    bytes: Vec<u8>,
}

impl Model {
    fn write(&mut self, offset: u64, data: &[u8]) {
        let end = offset as usize + data.len();
        if self.bytes.len() < end {
            self.bytes.resize(end, 0);
        }
        self.bytes[offset as usize..end].copy_from_slice(data);
    }

    fn read(&self, offset: u64, len: usize) -> Vec<u8> {
        let off = offset as usize;
        if off >= self.bytes.len() {
            return Vec::new();
        }
        self.bytes[off..(off + len).min(self.bytes.len())].to_vec()
    }
}

fn run_ops_against_model(ops: Vec<Op>, compressed: bool) {
    let fs = InversionFs::format(Devices::new().format()).unwrap();
    let mut c = fs.client();
    let mode = if compressed {
        CreateMode::default().compressed()
    } else {
        CreateMode::default()
    };
    c.p_begin().unwrap();
    let mut fd = c.p_creat("/model", mode).unwrap();
    let mut model = Model::default();

    for op in ops {
        match op {
            Op::Write { offset, data } => {
                c.p_lseek(fd, offset as i64, SeekWhence::Set).unwrap();
                c.p_write(fd, &data).unwrap();
                model.write(offset, &data);
            }
            Op::Read { offset, len } => {
                c.p_lseek(fd, offset as i64, SeekWhence::Set).unwrap();
                let mut buf = vec![0u8; len];
                let n = c.p_read(fd, &mut buf).unwrap();
                assert_eq!(
                    &buf[..n],
                    &model.read(offset, len)[..],
                    "read at {offset}+{len}"
                );
            }
            Op::Seal => {
                c.p_close(fd).unwrap();
                c.p_commit().unwrap();
                c.p_begin().unwrap();
                fd = c.p_open("/model", OpenMode::ReadWrite, None).unwrap();
            }
        }
    }
    // Final full-file comparison after commit.
    c.p_close(fd).unwrap();
    c.p_commit().unwrap();
    let all = c.read_to_vec("/model", None).unwrap();
    assert_eq!(all, model.bytes);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn file_api_matches_byte_vector_model(
        ops in prop::collection::vec(op_strategy(3 * CHUNK_SIZE as u64), 1..25)
    ) {
        run_ops_against_model(ops, false);
    }

    #[test]
    fn compressed_files_match_model_too(
        ops in prop::collection::vec(op_strategy(2 * CHUNK_SIZE as u64), 1..15)
    ) {
        run_ops_against_model(ops, true);
    }

    #[test]
    fn compression_roundtrips_arbitrary_bytes(data in prop::collection::vec(any::<u8>(), 0..9000)) {
        let c = compress::compress(&data);
        let d = compress::decompress(&c);
        prop_assert_eq!(d.as_deref(), Some(&data[..]));
    }

    #[test]
    fn decompress_never_panics_on_garbage(data in prop::collection::vec(any::<u8>(), 0..4000)) {
        let _ = compress::decompress(&data);
    }

    #[test]
    fn split_range_partitions_exactly(offset in 0u64..10_000_000, len in 0usize..100_000) {
        let parts = inversion::chunk::split_range(offset, len);
        // Lengths sum to the request.
        prop_assert_eq!(parts.iter().map(|p| p.2).sum::<usize>(), len);
        // Pieces are contiguous and in order.
        let mut pos = offset;
        for (chunkno, start, take) in parts {
            prop_assert_eq!(inversion::chunk::chunk_start(chunkno) + start as u64, pos);
            prop_assert!(start + take <= CHUNK_SIZE);
            pos += take as u64;
        }
    }

    #[test]
    fn row_codec_roundtrips(
        ints in prop::collection::vec(any::<i64>(), 0..6),
        text in ".{0,80}",
        blob in prop::collection::vec(any::<u8>(), 0..500),
    ) {
        let mut row: Vec<minidb::Datum> = ints.into_iter().map(minidb::Datum::Int8).collect();
        row.push(minidb::Datum::Text(text));
        row.push(minidb::Datum::Bytes(blob));
        row.push(minidb::Datum::Null);
        let enc = minidb::encode_row(&row);
        prop_assert_eq!(minidb::decode_row(&enc).unwrap(), row);
    }

    #[test]
    fn btree_agrees_with_sorted_map(keys in prop::collection::vec(0i32..500, 1..120)) {
        let db = minidb::Db::open_in_memory().unwrap();
        let rel = db.create_table(
            "t",
            minidb::Schema::new([("k", minidb::TypeId::INT4)]),
        ).unwrap();
        let idx = db.create_index("t_k", rel, &["k"]).unwrap();
        let mut s = db.begin().unwrap();
        let mut counts = std::collections::BTreeMap::new();
        for k in &keys {
            s.insert(rel, vec![minidb::Datum::Int4(*k)]).unwrap();
            *counts.entry(*k).or_insert(0usize) += 1;
        }
        for (k, n) in counts {
            let hits = s.index_scan_eq(idx, &[minidb::Datum::Int4(k)]).unwrap();
            prop_assert_eq!(hits.len(), n, "key {}", k);
        }
        s.commit().unwrap();
    }
}

#[test]
fn coalescer_equivalence_small_vs_large_writes() {
    // Writing N bytes as many small sequential writes must produce exactly
    // the same file as one large write.
    let sizes = [1usize, 7, 64, 255, 1000];
    let total = CHUNK_SIZE + 777;
    let data: Vec<u8> = (0..total).map(|i| (i % 249) as u8).collect();
    let fs = InversionFs::format(Devices::new().format()).unwrap();
    let mut c = fs.client();
    c.write_all("/whole", CreateMode::default(), &data).unwrap();
    for (i, sz) in sizes.iter().enumerate() {
        let path = format!("/pieces{i}");
        c.p_begin().unwrap();
        let fd = c.p_creat(&path, CreateMode::default()).unwrap();
        for chunk in data.chunks(*sz) {
            c.p_write(fd, chunk).unwrap();
        }
        c.p_close(fd).unwrap();
        c.p_commit().unwrap();
        assert_eq!(c.read_to_vec(&path, None).unwrap(), data, "piece size {sz}");
    }
}
