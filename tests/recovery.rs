//! Crash matrices and fault injection: the paper's "fast recovery" claims
//! under hostile conditions.

mod common;

use common::Devices;
use inversion::{CreateMode, InversionFs, OpenMode};
use minidb::{Datum, Schema, TypeId};

#[test]
fn repeated_crash_recover_cycles_are_stable() {
    let devices = Devices::new();
    {
        let db = devices.format();
        let fs = InversionFs::format(db).unwrap();
        let mut c = fs.client();
        c.write_all("/gen0", CreateMode::default(), b"0").unwrap();
    }
    for generation in 1..=5u8 {
        let db = devices.recover();
        let fs = InversionFs::attach(db).unwrap();
        let mut c = fs.client();
        // Everything from previous generations is intact.
        for g in 0..generation {
            assert_eq!(
                c.read_to_vec(&format!("/gen{g}"), None).unwrap(),
                format!("{g}").as_bytes(),
                "generation {g} lost after {generation} crashes"
            );
        }
        // Write one more committed file and one uncommitted one, then crash.
        c.write_all(
            &format!("/gen{generation}"),
            CreateMode::default(),
            format!("{generation}").as_bytes(),
        )
        .unwrap();
        c.p_begin().unwrap();
        let fd = c
            .p_creat(&format!("/doomed{generation}"), CreateMode::default())
            .unwrap();
        c.p_write(fd, b"never").unwrap();
        std::mem::forget(c);
    }
    let db = devices.recover();
    let fs = InversionFs::attach(db).unwrap();
    let mut c = fs.client();
    for g in 1..=5u8 {
        assert!(c.p_stat(&format!("/doomed{g}"), None).is_err());
    }
    assert_eq!(c.p_readdir("/", None).unwrap().len(), 6);
}

#[test]
fn recovery_needs_no_scan_of_data() {
    // "File system recovery is essentially instantaneous": recovery reads
    // device metadata, the catalog, and the status file — not the data.
    // Write a large file, then compare recovery cost to a data scan.
    let devices = Devices::new();
    let data_len = 2 << 20; // 2 MB.
    {
        let db = devices.format();
        let fs = InversionFs::format(db).unwrap();
        let mut c = fs.client();
        c.write_all("/big", CreateMode::default(), &vec![7u8; data_len])
            .unwrap();
    }
    let t0 = devices.clock.now();
    let db = devices.recover();
    let fs = InversionFs::attach(db).unwrap();
    let recovery_cost = devices.clock.now().since(t0);

    let t0 = devices.clock.now();
    let mut c = fs.client();
    c.read_to_vec("/big", None).unwrap();
    let scan_cost = devices.clock.now().since(t0);
    assert!(
        recovery_cost.as_nanos() * 4 < scan_cost.as_nanos(),
        "recovery ({recovery_cost}) should be far cheaper than reading the data ({scan_cost})"
    );
}

#[test]
fn abort_after_failed_commit_write() {
    // Inject a device failure so the commit's log force fails (under
    // no-force commit the data device is not even touched at commit); the
    // transaction must abort cleanly and the system stay usable once the
    // device heals.
    let clock = simdev::SimClock::new();
    let data = minidb::shared_device(simdev::MagneticDisk::new(
        "d",
        clock.clone(),
        simdev::DiskProfile::tiny_for_tests(1 << 14),
    ));
    let log_disk = simdev::MagneticDisk::new(
        "log",
        clock.clone(),
        simdev::DiskProfile::tiny_for_tests(1 << 10),
    );
    let faults = log_disk.fault_plan();
    let log = minidb::shared_device(log_disk);
    let cat = minidb::shared_device(simdev::MagneticDisk::new(
        "cat",
        clock.clone(),
        simdev::DiskProfile::tiny_for_tests(1 << 10),
    ));
    let mut smgr = minidb::Smgr::new();
    smgr.register(
        minidb::DeviceId::DEFAULT,
        Box::new(minidb::GenericManager::format(data).unwrap()),
    )
    .unwrap();
    let db = minidb::Db::open(clock, smgr, log, cat, minidb::DbConfig::default()).unwrap();
    let rel = db
        .create_table("t", Schema::new([("v", TypeId::INT4)]))
        .unwrap();

    // Healthy transaction first.
    let mut s = db.begin().unwrap();
    s.insert(rel, vec![Datum::Int4(1)]).unwrap();
    s.commit().unwrap();

    // Take the log device offline mid-transaction: the commit's log
    // force fails.
    let mut s = db.begin().unwrap();
    s.insert(rel, vec![Datum::Int4(2)]).unwrap();
    faults.set_offline(true);
    assert!(s.commit().is_err());
    faults.set_offline(false);

    // The failed transaction never committed; new work proceeds.
    let mut s = db.begin().unwrap();
    let rows = s.seq_scan(rel).unwrap();
    assert_eq!(rows.len(), 1, "failed commit must not be visible");
    s.insert(rel, vec![Datum::Int4(3)]).unwrap();
    s.commit().unwrap();
}

#[test]
fn instant_recovery_replays_pages_on_first_touch() {
    // No-force commit with a crash before any checkpoint: every committed
    // page image is lost from the data device and exists only as WAL
    // records. Restart must come up instantly — new transactions run right
    // away — while each stale page is replayed the first time someone
    // touches it, and a checkpoint finishes the sweep so a second crash
    // needs no replay at all.
    let clock = simdev::SimClock::new();
    let mut handles = Vec::new();
    let mut cached = |name: &str, nblocks: u64| {
        let disk = simdev::MagneticDisk::new(
            name,
            clock.clone(),
            simdev::DiskProfile::tiny_for_tests(nblocks),
        );
        let (dev, handle) = simdev::WriteCacheDisk::new(Box::new(disk));
        handles.push(handle);
        minidb::shared_device(dev)
    };
    let data = cached("data", 1 << 16);
    let log = cached("log", 1 << 13);
    let catalog = cached("catalog", 1 << 12);
    drop(cached);
    // Interval 0 disables the timed checkpoint wake-up so nothing drains
    // the dirty pages before we pull the plug.
    let config = minidb::DbConfig {
        checkpoint_interval: simdev::SimDuration::from_nanos(0),
        ..minidb::DbConfig::default()
    };
    let open = |fresh: bool| {
        let mut smgr = minidb::Smgr::new();
        let mgr = if fresh {
            minidb::GenericManager::format(data.clone()).unwrap()
        } else {
            minidb::GenericManager::attach(data.clone()).unwrap()
        };
        smgr.register(minidb::DeviceId::DEFAULT, Box::new(mgr)).unwrap();
        let open = if fresh { minidb::Db::open } else { minidb::Db::recover };
        open(clock.clone(), smgr, log.clone(), catalog.clone(), config.clone()).unwrap()
    };

    let db = open(true);
    let rel = db.create_table("t", Schema::new([("v", TypeId::INT8)])).unwrap();
    db.flush_caches().unwrap(); // The empty table survives the crash.
    let mut want = Vec::new();
    for batch in 0..6i64 {
        let mut s = db.begin().unwrap();
        for i in 0..100i64 {
            let v = batch * 100 + i;
            s.insert(rel, vec![Datum::Int8(v)]).unwrap();
            want.push(v);
        }
        s.commit().unwrap();
    }
    db.simulate_crash();
    for h in &handles {
        h.drop_unsynced();
    }
    drop(db);

    let db = open(false);
    let after_recover = db.stats();
    // A brand-new transaction commits before any old page was replayed:
    // restart did not wait for a REDO sweep.
    let mut s = db.begin().unwrap();
    s.insert(rel, vec![Datum::Int8(600)]).unwrap();
    s.commit().unwrap();
    want.push(600);

    // First touch of the stale heap pages replays them from the log.
    let mut s = db.begin().unwrap();
    let mut got: Vec<i64> = s
        .seq_scan(rel)
        .unwrap()
        .into_iter()
        .map(|(_, row)| match row[0] {
            Datum::Int8(v) => v,
            ref other => panic!("bad datum {other:?}"),
        })
        .collect();
    s.commit().unwrap();
    got.sort_unstable();
    want.sort_unstable();
    assert_eq!(got, want, "all acknowledged commits visible after restart");
    let d = db.stats().delta(&after_recover);
    assert!(
        d.wal.replayed_pages > 0,
        "the scan must have replayed stale pages (got {})",
        d.wal.replayed_pages
    );
    assert!(
        d.wal.replayed_records > d.wal.replayed_pages,
        "each replayed page carries many records ({} records / {} pages)",
        d.wal.replayed_records,
        d.wal.replayed_pages
    );
    assert!(db.check_all().is_empty(), "verifier: {:?}", db.check_all());

    // A checkpoint completes the sweep and truncates the log: after a
    // second crash there is nothing left to replay.
    db.checkpoint().unwrap();
    db.simulate_crash();
    for h in &handles {
        h.drop_unsynced();
    }
    drop(db);
    let db = open(false);
    let before_scan = db.stats();
    let mut s = db.begin().unwrap();
    assert_eq!(s.seq_scan(rel).unwrap().len(), want.len());
    s.commit().unwrap();
    let d = db.stats().delta(&before_scan);
    assert_eq!(
        d.wal.replayed_pages, 0,
        "a checkpointed database recovers with zero replay work"
    );
    assert!(db.check_all().is_empty(), "verifier: {:?}", db.check_all());
}

#[test]
fn catalog_metadata_and_functions_recover() {
    let devices = Devices::new();
    {
        let db = devices.format();
        let fs = InversionFs::format(db).unwrap();
        inversion::types::register_standard(&fs).unwrap();
        let troff = fs.db().catalog().type_by_name("troff").unwrap();
        let mut c = fs.client();
        c.write_all(
            "/doc.t",
            CreateMode::default().with_type(troff),
            inversion::types::make_troff_document(9, &["RISC"], 8).as_bytes(),
        )
        .unwrap();
    }
    let db = devices.recover();
    let fs = InversionFs::attach(db).unwrap();
    // Function *definitions* recovered from the catalog; implementations
    // must be re-registered (like reinstalling dynamically loaded objects).
    assert!(fs.db().catalog().proc("keywords").is_ok());
    inversion::types::register_standard(&fs).unwrap();
    let mut s = fs.db().begin().unwrap();
    let r = s
        .query(r#"retrieve (k = keywords(n.file)) from n in naming where n.filename = "doc.t""#)
        .unwrap();
    assert_eq!(r.rows[0][0], Datum::Text("RISC".into()));
    s.commit().unwrap();
}

#[test]
fn open_descriptors_do_not_survive_crashes_but_files_do() {
    let devices = Devices::new();
    {
        let db = devices.format();
        let fs = InversionFs::format(db).unwrap();
        let mut c = fs.client();
        c.write_all("/f", CreateMode::default(), b"before").unwrap();
        // Open (read-only, no transaction) and crash with the fd "open".
        let _fd = c.p_open("/f", OpenMode::Read, None).unwrap();
        std::mem::forget(c);
    }
    let db = devices.recover();
    let fs = InversionFs::attach(db).unwrap();
    let mut c = fs.client();
    assert_eq!(c.read_to_vec("/f", None).unwrap(), b"before");
}
