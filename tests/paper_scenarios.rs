//! Scenario tests lifted directly from the paper's text: Table 1, the
//! example queries, the services list, and the client/server vs NFS
//! equivalence of stored data.

mod common;

use common::Devices;
use inversion::{CreateMode, InvServer, InversionFs, LargeObject, RemoteClient};
use minidb::Datum;
use simdev::{CpuModel, Endpoint, NetProfile, Network};

fn fresh_fs() -> InversionFs {
    InversionFs::format(Devices::new().format()).unwrap()
}

#[test]
fn table1_naming_entries_for_etc_passwd() {
    // Table 1: three rows chained root -> etc -> passwd via parentid.
    let fs = fresh_fs();
    let mut c = fs.client();
    c.p_mkdir("/etc").unwrap();
    c.write_all("/etc/passwd", CreateMode::default(), b"root:0:0\n")
        .unwrap();

    let mut s = fs.db().begin().unwrap();
    let r = s
        .query("retrieve (n.filename, n.parentid, n.file) from n in naming")
        .unwrap();
    assert_eq!(r.rows.len(), 3);
    let by_name = |name: &str| {
        r.rows
            .iter()
            .find(|row| row[0] == Datum::Text(name.into()))
            .unwrap_or_else(|| panic!("no row for {name}"))
            .clone()
    };
    let root = by_name("/");
    let etc = by_name("etc");
    let passwd = by_name("passwd");
    assert_eq!(root[1], Datum::Oid(0), "root's parent is the invalid oid");
    assert_eq!(etc[1], root[2], "etc's parentid is root's file oid");
    assert_eq!(passwd[1], etc[2], "passwd's parentid is etc's file oid");

    // "The name of the POSTGRES table storing data chunks for /etc/passwd
    // would be inv23114" — inv<oid> in our installation.
    let oid = passwd[2].as_oid().unwrap();
    assert!(fs.db().relation_id(&format!("inv{oid}")).is_ok());
    s.commit().unwrap();
}

#[test]
fn metadata_join_reconstructs_everything() {
    // "A simple two-way table join of naming and fileatt can construct all
    // the metadata for a given Inversion file."
    let fs = fresh_fs();
    let mut c = fs.client();
    c.write_all(
        "/data.bin",
        CreateMode::default().owned_by("mao"),
        &vec![1u8; 4096],
    )
    .unwrap();
    let mut s = fs.db().begin().unwrap();
    let r = s
        .query(
            r#"retrieve (n.filename, a.owner, a.size)
               from n in naming, a in fileatt
               where n.file = a.file and n.filename = "data.bin""#,
        )
        .unwrap();
    s.commit().unwrap();
    assert_eq!(
        r.rows,
        vec![vec![
            Datum::Text("data.bin".into()),
            Datum::Text("mao".into()),
            Datum::Int8(4096),
        ]]
    );
}

#[test]
fn remote_clients_and_direct_clients_share_one_database() {
    // "The same files can be used simultaneously by dynamically-loaded code
    // and by the more conventional client/server architecture."
    let fs = fresh_fs();
    let clock = fs.db().clock().clone();
    let net = Network::ethernet_10mbit(clock.clone());
    let mut remote = RemoteClient::connect(
        &fs,
        Endpoint::new(net, NetProfile::tcp_1993()),
        CpuModel::decsystem5900(clock),
    );

    remote.p_begin().unwrap();
    let fd = remote.p_creat("/shared", CreateMode::default()).unwrap();
    remote.p_write(fd, b"written remotely").unwrap();
    remote.p_close(fd).unwrap();
    remote.p_commit().unwrap();

    let mut local = fs.client();
    assert_eq!(
        local.read_to_vec("/shared", None).unwrap(),
        b"written remotely"
    );

    // And a server-side dispatcher shares the same files again.
    let mut srv = InvServer::new(&fs);
    let out = srv
        .handle(inversion::server::Request::Stat("/shared".into()))
        .unwrap();
    match out {
        inversion::server::Response::Stat(st) => assert_eq!(st.size, 16),
        other => panic!("unexpected response {other:?}"),
    }
}

#[test]
fn blobs_are_inversion_files() {
    // "POSTGRES supports large object storage by creating Inversion files
    // to store object data."
    let fs = fresh_fs();
    let oid;
    {
        let mut s = fs.db().begin().unwrap();
        let lo = LargeObject::create(&fs, &mut s, &CreateMode::default()).unwrap();
        lo.write_at(&mut s, 0, b"blob bytes").unwrap();
        lo.link(&mut s, "/from_database").unwrap();
        oid = lo.oid();
        s.commit().unwrap();
    }
    let mut c = fs.client();
    assert_eq!(
        c.read_to_vec("/from_database", None).unwrap(),
        b"blob bytes"
    );
    // The blob's data table is an ordinary inv<oid> relation, queryable.
    let mut s = fs.db().begin().unwrap();
    let rel = fs.db().relation_id(&format!("inv{}", oid.0)).unwrap();
    let rows = s.seq_scan(rel).unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].1[0], Datum::Int4(0)); // chunkno 0
    s.commit().unwrap();
}

#[test]
fn indices_can_be_added_at_user_discretion() {
    // "indices may be defined to make file system operations run faster, at
    // the user's discretion."
    let fs = fresh_fs();
    let mut c = fs.client();
    for i in 0..50 {
        c.write_all(
            &format!("/f{i:02}"),
            CreateMode::default().owned_by(if i % 2 == 0 { "mao" } else { "sue" }),
            b"x",
        )
        .unwrap();
    }
    let fileatt = fs.db().relation_id("fileatt").unwrap();
    fs.db()
        .create_index("fileatt_owner", fileatt, &["owner"])
        .unwrap();
    let mut s = fs.db().begin().unwrap();
    let idx = fs
        .db()
        .find_index(fileatt, &[1]) // owner is column 1
        .expect("index registered");
    let hits = s.index_scan_eq(idx, &[Datum::Text("mao".into())]).unwrap();
    assert_eq!(hits.len(), 25);
    s.commit().unwrap();
}

#[test]
fn seventeen_terabyte_offsets_are_addressable() {
    // "POSTGRES supports storage of objects up to 17.6TBytes in size" — the
    // API must accept seeks anywhere in that range (the devices here are
    // sparse, so a probe write near the limit actually works).
    let fs = fresh_fs();
    let mut c = fs.client();
    let fd = c.p_creat("/sparse17tb", CreateMode::default()).unwrap();
    let far = 17_000_000_000_000i64; // 17 TB.
    assert_eq!(
        c.p_lseek(fd, far, inversion::SeekWhence::Set).unwrap(),
        far as u64
    );
    // Note: we only check the seek; materializing a chunk there is valid
    // but would allocate a 17 TB-offset chunk number.
    let chunkno = inversion::chunk::chunk_of(far as u64);
    assert!(chunkno < i32::MAX as u32, "chunk number still fits int4");
    c.p_close(fd).unwrap();
}

#[test]
fn query_language_defines_run_end_to_end() {
    // `define type`, `define function`, and a query using both — the full
    // extensibility loop from the paper's "Exploiting Type and Function
    // Extensibility" section.
    let fs = fresh_fs();
    fs.db().functions().register("test.first_byte", {
        let fs2 = fs.clone();
        move |s, args| {
            let oid = minidb::Oid(args[0].as_oid()?);
            let bytes = fs2
                .read_file(s, oid, None)
                .map_err(|e| minidb::DbError::Eval(e.to_string()))?;
            Ok(Datum::Int4(bytes.first().copied().unwrap_or(0) as i32))
        }
    });
    let mut c = fs.client();
    c.write_all("/hdf1", CreateMode::default(), &[42u8, 1, 2])
        .unwrap();
    let mut s = fs.db().begin().unwrap();
    s.query("define type hdf").unwrap();
    s.query(r#"define function first_byte (1) returns int4 as "test.first_byte" for hdf"#)
        .unwrap();
    let r = s
        .query(r#"retrieve (v = first_byte(n.file)) from n in naming where n.filename = "hdf1""#)
        .unwrap();
    assert_eq!(r.rows[0][0], Datum::Int4(42));
    s.commit().unwrap();
}
