//! Integration tests for the queryable statistics subsystem: the
//! `minidb::stats` registry, the `pg_stat_*` virtual relations, and the file
//! system's `inv_stat` counters, exercised through the full stack.

mod common;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use common::Devices;
use inversion::{CreateMode, InversionFs, CHUNK_SIZE};
use minidb::{Datum, Db, Schema, TypeId};

fn int8(d: &Datum) -> i64 {
    match d {
        Datum::Int8(n) => *n,
        other => panic!("expected int8, got {other:?}"),
    }
}

/// Re-reading a file's chunks must come from the buffer cache: the hit
/// ratio rises on the second pass, and the acceptance query
/// `retrieve (s.hits) from s in pg_stat_buffer` sees it live.
#[test]
fn buffer_hit_ratio_rises_on_reread() {
    let fs = InversionFs::format(Devices::new().format()).unwrap();
    let mut c = fs.client();
    let data: Vec<u8> = (0..3 * CHUNK_SIZE).map(|i| (i % 251) as u8).collect();
    c.write_all("/warm", CreateMode::default(), &data).unwrap();

    let cold = fs.db().stats();
    assert_eq!(c.read_to_vec("/warm", None).unwrap(), data);
    let first = fs.db().stats().delta(&cold);
    assert_eq!(c.read_to_vec("/warm", None).unwrap(), data);
    let second = fs.db().stats().delta(&cold).delta(&first);

    let ratio = |b: &minidb::BufferStats| b.hits as f64 / (b.hits + b.misses).max(1) as f64;
    assert!(second.buffer.misses <= first.buffer.misses);
    assert!(
        ratio(&second.buffer) >= ratio(&first.buffer),
        "re-read hit ratio {} must not drop below first-read {}",
        ratio(&second.buffer),
        ratio(&first.buffer)
    );
    assert!(second.buffer.hits > 0, "re-read must hit the cache");

    // The same counters through the query language.
    let mut s = fs.db().begin().unwrap();
    let res = s.query("retrieve (s.hits) from s in pg_stat_buffer").unwrap();
    s.commit().unwrap();
    assert_eq!(res.rows.len(), 1);
    assert!(int8(&res.rows[0][0]) > 0, "pg_stat_buffer.hits live value");
}

/// Runs a cold sequential scan over a multi-page relation on a database
/// configured with the given read-ahead window, returning the buffer-cache
/// counter growth for the scan as seen through `pg_stat_buffer`.
fn cold_scan_buffer_delta(prefetch_window: usize) -> minidb::BufferStats {
    let db = Db::open_in_memory_with(minidb::DbConfig {
        prefetch_window,
        ..minidb::DbConfig::default()
    })
    .unwrap();
    let rel = db
        .create_table("big", Schema::new([("v", TypeId::TEXT)]))
        .unwrap();
    let mut s = db.begin().unwrap();
    // ~260 rows of ~400 bytes: a couple dozen heap pages, several extents.
    for i in 0..260 {
        s.insert(rel, vec![Datum::Text(format!("{i:0>400}"))]).unwrap();
    }
    s.commit().unwrap();
    db.flush_caches().unwrap(); // The scan starts stone cold.

    let before = db.buffer_stats();
    let mut s = db.begin().unwrap();
    let scanned = s.query("retrieve (t.v) from t in big").unwrap();
    let after = s.query(
        "retrieve (b.hits, b.misses, b.prefetches, b.prefetch_hits) from b in pg_stat_buffer",
    )
    .unwrap();
    s.commit().unwrap();
    assert_eq!(scanned.rows.len(), 260);

    minidb::BufferStats {
        hits: (int8(&after.rows[0][0]) as u64) - before.hits,
        misses: (int8(&after.rows[0][1]) as u64) - before.misses,
        prefetches: (int8(&after.rows[0][2]) as u64) - before.prefetches,
        prefetch_hits: (int8(&after.rows[0][3]) as u64) - before.prefetch_hits,
        ..minidb::BufferStats::default()
    }
}

/// Read-ahead efficacy: a cold sequential heap scan with prefetching on
/// must record prefetch hits and a strictly higher hit rate than the same
/// scan with prefetching disabled.
#[test]
fn readahead_raises_cold_scan_hit_rate() {
    let with = cold_scan_buffer_delta(8);
    let without = cold_scan_buffer_delta(0);

    assert_eq!(without.prefetches, 0);
    assert_eq!(without.prefetch_hits, 0);
    assert!(with.prefetches > 0, "scan must trigger read-ahead: {with:?}");
    assert!(with.prefetch_hits > 0, "read-ahead pages must be used: {with:?}");
    assert!(
        with.misses < without.misses,
        "prefetch must absorb demand misses: {with:?} vs {without:?}"
    );
    let rate = |b: &minidb::BufferStats| b.hits as f64 / (b.hits + b.misses).max(1) as f64;
    assert!(
        rate(&with) > rate(&without),
        "hit rate with prefetch ({:.3}) must beat without ({:.3})",
        rate(&with),
        rate(&without)
    );
}

/// Two transactions inserting into the same relation contend on its write
/// lock; the loser's wait shows up in the lock counters and in
/// `pg_stat_lock`.
#[test]
fn lock_waits_counted_under_contention() {
    let db = Db::open_in_memory().unwrap();
    let rel = db
        .create_table("contended", Schema::new([("v", TypeId::INT4)]))
        .unwrap();

    let mut holder = db.begin().unwrap();
    holder.insert(rel, vec![Datum::Int4(1)]).unwrap();

    let entered = Arc::new(AtomicBool::new(false));
    let db2 = db.clone();
    let flag = Arc::clone(&entered);
    let waiter = std::thread::spawn(move || {
        let mut s = db2.begin().unwrap();
        flag.store(true, Ordering::SeqCst);
        s.insert(rel, vec![Datum::Int4(2)]).unwrap();
        s.commit().unwrap();
    });

    // Let the second transaction reach the lock queue before releasing.
    while !entered.load(Ordering::SeqCst) {
        std::thread::yield_now();
    }
    std::thread::sleep(std::time::Duration::from_millis(100));
    holder.commit().unwrap();
    waiter.join().unwrap();

    let lock = db.stats().lock;
    assert!(lock.acquisitions >= 2);
    assert!(lock.waits >= 1, "blocked transaction must count as a wait");
    assert_eq!(lock.deadlocks, 0);
    assert_eq!(lock.timeouts, 0);

    let mut s = db.begin().unwrap();
    let res = s
        .query("retrieve (l.acquisitions, l.waits) from l in pg_stat_lock")
        .unwrap();
    s.commit().unwrap();
    assert!(int8(&res.rows[0][0]) >= 2);
    assert!(int8(&res.rows[0][1]) >= 1);
}

/// Transaction outcomes land in `pg_stat_xact`, heap/btree traffic in
/// `pg_stat_relation`, and per-device I/O in `pg_stat_device`.
#[test]
fn xact_relation_and_device_stats_queryable() {
    let fs = InversionFs::format(Devices::new().format()).unwrap();
    let mut c = fs.client();
    c.write_all("/a", CreateMode::default(), b"aaaa").unwrap();
    c.p_begin().unwrap();
    let fd = c.p_creat("/b", CreateMode::default()).unwrap();
    c.p_write(fd, b"bbbb").unwrap();
    c.p_close(fd).unwrap();
    c.p_abort().unwrap();

    let snap = fs.db().stats();
    assert!(snap.xact.commits >= 1);
    assert!(snap.xact.aborts >= 1);
    assert!(snap.heap.appends >= 1);
    assert!(snap.btree.inserts >= 1);
    assert!(!snap.devices.is_empty());
    assert!(snap.devices.iter().any(|d| d.writes > 0));

    let mut s = fs.db().begin().unwrap();
    let xact = s
        .query("retrieve (x.commits, x.aborts) from x in pg_stat_xact")
        .unwrap();
    let rel = s
        .query("retrieve (r.heap_appends, r.btree_inserts) from r in pg_stat_relation")
        .unwrap();
    let dev = s
        .query("retrieve (d.name, d.writes) from d in pg_stat_device")
        .unwrap();
    s.commit().unwrap();
    assert!(int8(&xact.rows[0][0]) >= 1);
    assert!(int8(&xact.rows[0][1]) >= 1);
    assert!(int8(&rel.rows[0][0]) >= 1);
    assert!(int8(&rel.rows[0][1]) >= 1);
    assert!(!dev.rows.is_empty());
    assert!(dev.rows.iter().any(|r| int8(&r[1]) > 0));
}

/// The file system's own counters surface in `inv_stat` with live values.
#[test]
fn inv_stat_reflects_file_operations() {
    let fs = InversionFs::format(Devices::new().format()).unwrap();
    let mut c = fs.client();
    let data: Vec<u8> = vec![7u8; 2 * CHUNK_SIZE];
    c.write_all("/f", CreateMode::default(), &data).unwrap();
    assert_eq!(c.read_to_vec("/f", None).unwrap().len(), data.len());

    let mut s = fs.db().begin().unwrap();
    let res = s.query("retrieve (i.op, i.count) from i in inv_stat").unwrap();
    s.commit().unwrap();
    let count = |op: &str| {
        res.rows
            .iter()
            .find(|r| r[0] == Datum::Text(op.into()))
            .map(|r| int8(&r[1]))
            .unwrap_or_else(|| panic!("no inv_stat row for {op}"))
    };
    assert_eq!(count("creat"), 1);
    assert!(count("write") >= 1);
    assert!(count("chunk_writes") >= 2, "two chunks stored");
    assert!(count("chunk_reads") >= 2, "two chunks fetched");
    assert_eq!(count("bytes_written"), data.len() as i64);
}

/// Snapshots must be safe to take while other threads are mutating the
/// database — the registry is read with relaxed atomics, never locked.
#[test]
fn snapshots_safe_under_concurrent_workload() {
    let fs = InversionFs::format(Devices::new().format()).unwrap();
    let stop = Arc::new(AtomicBool::new(false));

    let mut writers = Vec::new();
    for w in 0..3u32 {
        let fs = fs.clone();
        writers.push(std::thread::spawn(move || {
            let mut c = fs.client();
            for i in 0..8 {
                let path = format!("/w{w}_{i}");
                loop {
                    match c.write_all(&path, CreateMode::default(), &[w as u8; 64]) {
                        Ok(()) | Err(inversion::InvError::Exists(_)) => break,
                        Err(_) => std::thread::yield_now(), // 2PL conflict: retry.
                    }
                }
            }
        }));
    }

    let reader = {
        let fs = fs.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut snaps = 0u64;
            while !stop.load(Ordering::SeqCst) {
                let snap = fs.db().stats();
                let _ = snap.to_json();
                let _ = fs.stats().rows();
                snaps += 1;
            }
            snaps
        })
    };

    for w in writers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::SeqCst);
    let snaps = reader.join().unwrap();
    assert!(snaps > 0);

    let snap = fs.db().stats();
    assert!(snap.xact.commits >= 24, "all writer transactions counted");
    // Counters count calls: 2PL conflicts retry write_all, so creats can
    // exceed the 24 files but never undercount them.
    assert!(fs.stats().creats.get() >= 24);
}

/// No-force commit: a write transaction pays exactly one log force and
/// zero data-page writes at commit, no matter how much dirty data (its
/// own or a bystander's) is resident in the buffer cache.
#[test]
fn single_table_commit_costs_one_log_force() {
    let db = Db::open_in_memory().unwrap();
    let big = db
        .create_table("big", Schema::new([("v", TypeId::TEXT)]))
        .unwrap();
    let small = db
        .create_table("small", Schema::new([("v", TypeId::INT4)]))
        .unwrap();

    // Populate `big` across many heap pages so the cache is full of it.
    let mut s = db.begin().unwrap();
    for i in 0..260 {
        s.insert(big, vec![Datum::Text(format!("{i:0>400}"))]).unwrap();
    }
    s.commit().unwrap();

    // Re-dirty a pile of big's pages in a transaction that stays open, so
    // the pool holds dirty pages a whole-pool flush would have written.
    let mut bystander = db.begin().unwrap();
    for i in 0..40 {
        bystander
            .insert(big, vec![Datum::Text(format!("x{i:0>400}"))])
            .unwrap();
    }

    let before = db.stats();
    let mut s = db.begin().unwrap();
    s.insert(small, vec![Datum::Int4(7)]).unwrap();
    s.commit().unwrap();
    let d = db.stats().delta(&before);

    assert_eq!(d.xact.commits, 1);
    assert_eq!(
        d.xact.sync_calls, 1,
        "a commit must cost exactly one log force"
    );
    assert_eq!(d.xact.batched_records, 1);
    assert_eq!(
        d.xact.pages_flushed_at_commit, 0,
        "no-force commit: the bystander's dirty pages (and our own) stay \
         cached for the checkpointer"
    );
    bystander.abort().unwrap();
}

/// The read-only fast path through the POSTQUEL executor: a retrieve-only
/// transaction flushes nothing and syncs nothing at commit.
#[test]
fn retrieve_only_transaction_commits_without_io() {
    let db = Db::open_in_memory().unwrap();
    let rel = db
        .create_table("t", Schema::new([("v", TypeId::INT4)]))
        .unwrap();
    let mut s = db.begin().unwrap();
    for i in 0..10 {
        s.insert(rel, vec![Datum::Int4(i)]).unwrap();
    }
    s.commit().unwrap();

    let before = db.stats();
    let mut s = db.begin().unwrap();
    let res = s.query("retrieve (t.v) from t in t").unwrap();
    s.commit().unwrap();
    let d = db.stats().delta(&before);

    assert_eq!(res.rows.len(), 10);
    assert_eq!(d.xact.commits, 1);
    assert_eq!(d.xact.pages_flushed_at_commit, 0, "read-only: nothing to flush");
    assert_eq!(d.xact.sync_calls, 0, "read-only: no device sync");
    assert_eq!(d.xact.batched_records, 0, "read-only: no commit record");
}

/// The same fast path end-to-end through the file system: a transaction
/// that only reads commits via `p_commit` with zero flushes and syncs.
#[test]
fn readonly_file_transaction_commits_without_io() {
    let fs = InversionFs::format(Devices::new().format()).unwrap();
    let mut c = fs.client();
    let data = vec![3u8; CHUNK_SIZE];
    c.write_all("/ro", CreateMode::default(), &data).unwrap();

    let before = fs.db().stats();
    c.p_begin().unwrap();
    let fd = c.p_open("/ro", inversion::OpenMode::Read, None).unwrap();
    let mut buf = vec![0u8; data.len()];
    let n = c.p_read(fd, &mut buf).unwrap();
    // No p_close before the commit: atime-only writeback is deferred to
    // close, so this transaction is genuinely read-only end to end.
    c.p_commit().unwrap();
    let d = fs.db().stats().delta(&before);

    assert_eq!(n, data.len());
    assert_eq!(d.xact.commits, 1);
    assert_eq!(d.xact.pages_flushed_at_commit, 0, "p_commit of a read: no flush");
    assert_eq!(d.xact.sync_calls, 0, "p_commit of a read: no sync");
    assert_eq!(d.xact.batched_records, 0, "p_commit of a read: no record");
}

/// The new commit-path counters are queryable through `pg_stat_xact`.
#[test]
fn commit_counters_queryable_through_pg_stat_xact() {
    let db = Db::open_in_memory().unwrap();
    let rel = db
        .create_table("t", Schema::new([("v", TypeId::INT4)]))
        .unwrap();
    let mut s = db.begin().unwrap();
    s.insert(rel, vec![Datum::Int4(1)]).unwrap();
    s.commit().unwrap();

    let mut s = db.begin().unwrap();
    let res = s
        .query(
            "retrieve (x.commits, x.group_commits, x.batched_records, \
             x.pages_flushed_at_commit, x.sync_calls) from x in pg_stat_xact",
        )
        .unwrap();
    s.commit().unwrap();
    let row = &res.rows[0];
    assert!(int8(&row[0]) >= 1, "commits");
    assert!(int8(&row[2]) >= 1, "batched_records");
    assert_eq!(int8(&row[3]), 0, "no-force commit flushes no pages");
    assert!(int8(&row[4]) >= 1, "sync_calls");
}

/// Virtual relations have no history: time-travel brackets are rejected
/// instead of silently returning current counters.
#[test]
fn virtual_relations_reject_time_travel() {
    let fs = InversionFs::format(Devices::new().format()).unwrap();
    let mut s = fs.db().begin().unwrap();
    let err = s
        .query("retrieve (b.hits) from b in pg_stat_buffer[123456]")
        .unwrap_err();
    s.commit().unwrap();
    assert!(
        err.to_string().contains("no history"),
        "got unexpected error: {err}"
    );
}

// ---------------------------------------------------------------------------
// Planner counters (`pg_stat_planner`) and the cost of access-method choice.

/// The planner's access-method choice is not just cosmetic: an equality
/// pin on an indexed column must both bump `index_scans_chosen` and touch
/// fewer buffer pages than the unbounded sequential scan of the same
/// multi-page table.
#[test]
fn index_choice_reads_fewer_pages_than_seq_scan() {
    let db = Db::open_in_memory().unwrap();
    let rel = db
        .create_table(
            "big",
            Schema::new([("k", TypeId::INT4), ("pad", TypeId::TEXT)]),
        )
        .unwrap();
    db.create_index("big_k", rel, &["k"]).unwrap();
    let mut s = db.begin().unwrap();
    for k in 0..1000 {
        s.insert(rel, vec![Datum::Int4(k), Datum::Text(format!("{k:0>200}"))])
            .unwrap();
    }
    s.commit().unwrap();

    let before = db.stats();
    let mut s = db.begin().unwrap();
    let res = s
        .query("retrieve (b.pad) from b in big where b.k = 617")
        .unwrap();
    s.commit().unwrap();
    let probe = db.stats().delta(&before);
    assert_eq!(res.rows.len(), 1);
    assert_eq!(probe.planner.plans_built, 1);
    assert_eq!(probe.planner.index_scans_chosen, 1, "pin must use big_k");
    assert_eq!(probe.planner.seq_scans_chosen, 0);

    let before = db.stats();
    let mut s = db.begin().unwrap();
    let res = s.query("retrieve (b.pad) from b in big").unwrap();
    s.commit().unwrap();
    let seq = db.stats().delta(&before);
    assert_eq!(res.rows.len(), 1000);
    assert_eq!(seq.planner.seq_scans_chosen, 1, "no bound, no index");
    assert_eq!(seq.planner.index_scans_chosen, 0);

    let probe_pages = probe.buffer.hits + probe.buffer.misses;
    let seq_pages = seq.buffer.hits + seq.buffer.misses;
    assert!(
        probe_pages < seq_pages,
        "index probe touched {probe_pages} pages, seq scan {seq_pages}: \
         the chosen plan must be cheaper, not just differently labelled"
    );
}

/// Planning without executing (`explain`) stays on the read-only commit
/// fast path: no heap scan runs, nothing flushes, nothing syncs.
#[test]
fn explain_only_transaction_commits_without_io() {
    let db = Db::open_in_memory().unwrap();
    let rel = db
        .create_table("t", Schema::new([("v", TypeId::INT4)]))
        .unwrap();
    let mut s = db.begin().unwrap();
    for i in 0..10 {
        s.insert(rel, vec![Datum::Int4(i)]).unwrap();
    }
    s.commit().unwrap();

    let before = db.stats();
    let mut s = db.begin().unwrap();
    let res = s
        .query("explain retrieve (t.v) from t in t where t.v = 3")
        .unwrap();
    s.commit().unwrap();
    let d = db.stats().delta(&before);

    assert!(!res.rows.is_empty(), "explain returns the plan tree");
    assert_eq!(d.planner.plans_built, 1);
    assert_eq!(d.heap.scans, 0, "explain plans the scan but never runs it");
    assert_eq!(d.xact.commits, 1);
    assert_eq!(d.xact.pages_flushed_at_commit, 0, "plan-only: nothing to flush");
    assert_eq!(d.xact.sync_calls, 0, "plan-only: no device sync");
    assert_eq!(d.xact.batched_records, 0, "plan-only: no commit record");
}

// ---------------------------------------------------------------------------
// Wire/session-pool network counters (`pg_stat_net`).

/// Every frame the client sends is a frame the server counts in, and vice
/// versa — the aggregate counters and the per-session `pg_stat_net` row
/// must both agree exactly with the client's own accounting.
#[test]
fn net_counters_match_the_client_exactly() {
    use inversion::{InvServerPool, PoolConfig, WireClient};
    use simdev::duplex_pair;

    let fs = InversionFs::open_in_memory().unwrap();
    let pool = InvServerPool::new(&fs, PoolConfig::default());
    let (client_end, server_end) = duplex_pair();
    pool.serve_duplex(server_end);
    let mut c = WireClient::new(client_end);

    let fd = c.creat("/net", CreateMode::default()).unwrap();
    let payload = vec![7u8; 3 * 8192 + 100];
    assert_eq!(c.write_bulk(fd, &payload).unwrap(), payload.len());
    c.close(fd).unwrap();
    c.stat("/net").unwrap();
    assert!(c.stat("/does-not-exist").is_err()); // Errors are frames too.

    let st = fs.stats();
    let cs = c.stats();
    assert!(cs.frames_out.get() >= 8, "bulk write must pipeline frames");
    assert_eq!(st.net_frames_in.get(), cs.frames_out.get());
    assert_eq!(st.net_frames_out.get(), cs.frames_in.get());
    assert_eq!(st.net_bytes_in.get(), cs.bytes_out.get());
    assert_eq!(st.net_bytes_out.get(), cs.bytes_in.get());

    // The same numbers through the query language, per session.
    let mut s = fs.db().begin().unwrap();
    let res = s
        .query(
            "retrieve (n.session, n.state, n.frames_in, n.frames_out, \
             n.bytes_in, n.bytes_out) from n in pg_stat_net",
        )
        .unwrap();
    s.commit().unwrap();
    assert_eq!(res.rows.len(), 1, "one live session");
    let row = &res.rows[0];
    assert_eq!(int8(&row[2]) as u64, cs.frames_out.get());
    assert_eq!(int8(&row[3]) as u64, cs.frames_in.get());
    assert_eq!(int8(&row[4]) as u64, cs.bytes_out.get());
    assert_eq!(int8(&row[5]) as u64, cs.bytes_in.get());

    drop(c);
    pool.shutdown();
}

/// With a one-slot queue and the workers paused, a burst of pipelined
/// requests must block the connection's reader and count `queue_full`
/// events; once the gate opens, every queued request is still answered.
#[test]
fn tiny_queue_bound_counts_queue_full_events() {
    use inversion::pool::ServiceGate;
    use inversion::server::Request;
    use inversion::{InvServerPool, PoolConfig, WireClient};
    use simdev::duplex_pair;
    use std::time::{Duration, Instant};

    let gate = Arc::new(ServiceGate::new());
    let fs = InversionFs::open_in_memory().unwrap();
    let pool = InvServerPool::new(
        &fs,
        PoolConfig {
            workers: 1,
            queue_bound: 1,
            service_gate: Some(Arc::clone(&gate)),
        },
    );
    let (client_end, server_end) = duplex_pair();
    pool.serve_duplex(server_end);
    let mut c = WireClient::new(client_end);

    gate.pause();
    const BURST: usize = 6;
    for _ in 0..BURST {
        c.send(&Request::Stat("/".into())).unwrap();
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    while fs.stats().net_queue_full.get() == 0 {
        assert!(Instant::now() < deadline, "queue_full never counted");
        std::thread::sleep(Duration::from_millis(5));
    }
    gate.resume();
    for _ in 0..BURST {
        c.recv().unwrap();
    }
    drop(c);
    pool.shutdown();
    assert!(fs.stats().net_queue_full.get() >= 1);
}

/// Malformed frames are counted per session and in the aggregate, and the
/// session keeps serving; the `pg_stat_net` row carries the tally.
#[test]
fn decode_errors_counted_and_session_survives() {
    use inversion::server::Request;
    use inversion::wire;
    use inversion::{InvServerPool, PoolConfig, WireClient};
    use simdev::duplex_pair;
    use std::io::Write;

    let fs = InversionFs::open_in_memory().unwrap();
    let pool = InvServerPool::new(&fs, PoolConfig::default());
    let (client_end, server_end) = duplex_pair();
    pool.serve_duplex(server_end);
    let raw = client_end.clone();
    let mut c = WireClient::new(client_end);

    for _ in 0..3 {
        let mut bad = wire::encode_request(&Request::Readdir("/".into()));
        let last = bad.len() - 1;
        bad[last] ^= 0x01; // Checksum no longer matches.
        (&raw).write_all(&bad).unwrap();
        assert!(c.recv().is_err(), "corrupt frame must answer with an error");
    }
    c.stat("/").unwrap(); // Still in business.

    assert_eq!(fs.stats().net_decode_errors.get(), 3);
    let mut s = fs.db().begin().unwrap();
    let res = s
        .query("retrieve (n.decode_errors) from n in pg_stat_net")
        .unwrap();
    s.commit().unwrap();
    assert_eq!(int8(&res.rows[0][0]), 3);
    drop(c);
    pool.shutdown();
}
