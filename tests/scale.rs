//! Scale and endurance tests: many files, deep directories, big files,
//! many versions, and many transactions. Sized to run in seconds; the
//! `#[ignore]`d variants push an order of magnitude further.

mod common;

use common::Devices;
use inversion::{CreateMode, InversionFs, OpenMode, SeekWhence, CHUNK_SIZE};

fn fresh_fs() -> InversionFs {
    InversionFs::format(Devices::new().format()).unwrap()
}

#[test]
fn hundreds_of_files_in_one_directory() {
    let fs = fresh_fs();
    let mut c = fs.client();
    c.p_mkdir("/many").unwrap();
    c.p_begin().unwrap();
    for i in 0..300 {
        let fd = c
            .p_creat(&format!("/many/file_{i:04}"), CreateMode::default())
            .unwrap();
        c.p_write(fd, format!("contents of {i}").as_bytes())
            .unwrap();
        c.p_close(fd).unwrap();
    }
    c.p_commit().unwrap();

    let entries = c.p_readdir("/many", None).unwrap();
    assert_eq!(entries.len(), 300);
    // Names come back sorted (B-tree order).
    assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
    // Spot checks resolve through the index.
    for i in (0..300).step_by(37) {
        assert_eq!(
            c.read_to_vec(&format!("/many/file_{i:04}"), None).unwrap(),
            format!("contents of {i}").as_bytes()
        );
    }
}

#[test]
fn deep_directory_nesting() {
    let fs = fresh_fs();
    let mut c = fs.client();
    let mut path = String::new();
    for d in 0..40 {
        path.push_str(&format!("/d{d}"));
        c.p_mkdir(&path).unwrap();
    }
    path.push_str("/leaf");
    c.write_all(&path, CreateMode::default(), b"deep").unwrap();
    assert_eq!(c.read_to_vec(&path, None).unwrap(), b"deep");
    // path_of reconstructs the full 40-level path.
    let mut s = fs.db().begin().unwrap();
    let oid = fs.resolve(&mut s, &path, None).unwrap();
    assert_eq!(fs.path_of(&mut s, oid, None).unwrap(), path);
    s.commit().unwrap();
}

#[test]
fn many_versions_of_one_file() {
    let fs = fresh_fs();
    let mut c = fs.client();
    c.write_all("/churn", CreateMode::default(), b"v000")
        .unwrap();
    for v in 1..60 {
        c.p_begin().unwrap();
        let fd = c.p_open("/churn", OpenMode::ReadWrite, None).unwrap();
        c.p_write(fd, format!("v{v:03}").as_bytes()).unwrap();
        c.p_close(fd).unwrap();
        c.p_commit().unwrap();
    }
    assert_eq!(c.read_to_vec("/churn", None).unwrap(), b"v059");
    let hist = c.p_history("/churn").unwrap();
    assert_eq!(hist.len(), 60);
    // Sample a middle revision.
    let mid = &hist[30];
    assert_eq!(
        c.read_to_vec("/churn", Some(mid.committed_at)).unwrap(),
        b"v030"
    );
}

#[test]
fn moderately_large_file_roundtrip() {
    // ~4 MB: hundreds of chunks, deep B-tree, buffer-pool churn.
    let fs = fresh_fs();
    let mut c = fs.client();
    let size = 4 << 20;
    let data: Vec<u8> = (0..size)
        .map(|i| ((i * 2654435761usize) >> 13) as u8)
        .collect();
    c.write_all("/big4", CreateMode::default(), &data).unwrap();
    fs.db().flush_caches().unwrap();
    assert_eq!(c.read_to_vec("/big4", None).unwrap(), data);

    // Random probes after a cache flush.
    fs.db().flush_caches().unwrap();
    let fd = c.p_open("/big4", OpenMode::Read, None).unwrap();
    let mut state = 99usize;
    for _ in 0..50 {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let off = state % (size - 64);
        c.p_lseek(fd, off as i64, SeekWhence::Set).unwrap();
        let mut buf = [0u8; 64];
        c.p_read(fd, &mut buf).unwrap();
        assert_eq!(&buf[..], &data[off..off + 64], "offset {off}");
    }
    c.p_close(fd).unwrap();
}

#[test]
#[ignore = "long-running endurance variant; run with --ignored"]
fn endurance_thousands_of_transactions() {
    let fs = fresh_fs();
    let mut c = fs.client();
    c.write_all("/log", CreateMode::default(), b"").unwrap();
    for i in 0..2000u32 {
        c.p_begin().unwrap();
        let fd = c.p_open("/log", OpenMode::ReadWrite, None).unwrap();
        c.p_lseek(fd, 0, SeekWhence::End).unwrap();
        c.p_write(fd, format!("entry {i}\n").as_bytes()).unwrap();
        c.p_close(fd).unwrap();
        c.p_commit().unwrap();
    }
    let stat = c.p_stat("/log", None).unwrap();
    assert!(stat.size > 2000 * 8);
    let all = c.read_to_vec("/log", None).unwrap();
    assert!(String::from_utf8(all).unwrap().ends_with("entry 1999\n"));
}

#[test]
#[ignore = "long-running: a 64 MB file through the full stack"]
fn endurance_large_file() {
    let fs = fresh_fs();
    let mut c = fs.client();
    let size = 64 << 20;
    let chunk_pattern: Vec<u8> = (0..CHUNK_SIZE).map(|i| (i % 253) as u8).collect();
    c.p_begin().unwrap();
    let fd = c.p_creat("/huge", CreateMode::default()).unwrap();
    let mut written = 0usize;
    while written < size {
        let take = chunk_pattern.len().min(size - written);
        c.p_write(fd, &chunk_pattern[..take]).unwrap();
        written += take;
    }
    c.p_close(fd).unwrap();
    c.p_commit().unwrap();
    assert_eq!(c.p_stat("/huge", None).unwrap().size as usize, size);
}
