//! Multi-session stress for `InvServerPool`: real client threads over real
//! byte streams, a mixed file workload, a contended read-modify-write
//! counter, descriptor-table isolation, and a client that vanishes with a
//! transaction open. After the dust settles, the database must pass the
//! structural verifier with no held locks and the session accounting must
//! balance.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

use inversion::server::Request;
use inversion::{
    CreateMode, InvError, InvServerPool, InversionFs, OpenMode, PoolConfig, SeekWhence, WireClient,
};
use simdev::{duplex_pair, DuplexStream};

const THREADS: usize = 4;
const FILES_PER_THREAD: usize = 8;
const INCREMENTS_PER_THREAD: usize = 6;

fn connect(pool: &InvServerPool) -> WireClient<DuplexStream> {
    let (client_end, server_end) = duplex_pair();
    pool.serve_duplex(server_end);
    WireClient::new(client_end)
}

/// Runs `f` as one transaction, retrying the whole unit on deadlock or
/// lock timeout — the client-side idiom relation-level two-phase locking
/// demands of every multi-session workload.
fn txn_retry<T>(
    c: &mut WireClient<DuplexStream>,
    mut f: impl FnMut(&mut WireClient<DuplexStream>) -> Result<T, InvError>,
) -> T {
    for attempt in 0u64..500 {
        c.begin().unwrap();
        let r = f(c).and_then(|v| c.commit().map(|_| v));
        match r {
            Ok(v) => return v,
            Err(InvError::Db(minidb::DbError::Deadlock | minidb::DbError::LockTimeout)) => {
                let _abort_best_effort = c.abort();
                // Staggered backoff so colliding sessions fall out of
                // lockstep instead of re-deadlocking forever.
                thread::sleep(Duration::from_millis(1 + attempt % 7));
            }
            Err(other) => panic!("non-retryable error: {other:?}"),
        }
    }
    panic!("starved after 500 retries");
}

/// One attempt at an atomic counter increment through the wire; any error
/// (deadlock, lock timeout, ...) aborts and reports failure so the caller
/// can retry.
fn try_increment(c: &mut WireClient<DuplexStream>) -> Result<(), InvError> {
    c.begin()?;
    let r = (|| {
        let fd = c.open("/counter", OpenMode::ReadWrite, None)?;
        let bytes = c.read_bulk(fd, 8)?;
        let mut buf = [0u8; 8];
        buf[..bytes.len()].copy_from_slice(&bytes);
        let v = u64::from_le_bytes(buf);
        c.call(&Request::Lseek(fd, 0, SeekWhence::Set))?;
        c.call(&Request::Write(fd, (v + 1).to_le_bytes().to_vec()))?;
        c.close(fd)?;
        c.commit()
    })();
    if r.is_err() {
        let _abort_best_effort = c.abort();
    }
    r
}

#[test]
fn concurrent_sessions_mixed_workload_no_lost_updates() {
    let fs = InversionFs::open_in_memory().unwrap();
    let pool = InvServerPool::new(&fs, PoolConfig::default());

    // Seed the shared counter.
    {
        let mut c = connect(&pool);
        let fd = c.creat("/counter", CreateMode::default()).unwrap();
        c.call(&Request::Write(fd, 0u64.to_le_bytes().to_vec()))
            .unwrap();
        c.close(fd).unwrap();
    }

    let committed = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let mut c = connect(&pool);
        let committed = Arc::clone(&committed);
        handles.push(thread::spawn(move || {
            txn_retry(&mut c, |c| c.mkdir(&format!("/t{t}")));
            for j in 0..FILES_PER_THREAD {
                let path = format!("/t{t}/f{j}");
                let data: Vec<u8> = (0..700 + 13 * j).map(|i| (i * (t + 2)) as u8).collect();
                let back = txn_retry(&mut c, |c| {
                    let fd = c.creat(&path, CreateMode::default())?;
                    assert_eq!(c.write_bulk(fd, &data)?, data.len());
                    c.call(&Request::Lseek(fd, 0, SeekWhence::Set))?;
                    let back = c.read_bulk(fd, data.len())?;
                    c.close(fd)?;
                    Ok(back)
                });
                assert_eq!(back, data, "readback {path}");
            }
            let listed = txn_retry(&mut c, |c| c.readdir(&format!("/t{t}")));
            assert_eq!(listed.len(), FILES_PER_THREAD, "thread {t} directory");
            // Drop every other file; the survivors are re-checked below.
            for j in (0..FILES_PER_THREAD).step_by(2) {
                txn_retry(&mut c, |c| c.unlink(&format!("/t{t}/f{j}")));
            }
            // Contended increments: retry on deadlock/lock-timeout.
            let mut done = 0;
            let mut attempts: u64 = 0;
            while done < INCREMENTS_PER_THREAD {
                attempts += 1;
                assert!(attempts < 500, "thread {t} starved after {attempts} tries");
                if try_increment(&mut c).is_ok() {
                    done += 1;
                    committed.fetch_add(1, Ordering::SeqCst);
                } else {
                    thread::sleep(Duration::from_millis(1 + (attempts + t as u64) % 9));
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    // Every committed increment is present: no lost updates.
    let mut c = connect(&pool);
    let fd = c.open("/counter", OpenMode::Read, None).unwrap();
    let bytes = c.read_bulk(fd, 8).unwrap();
    let final_count = u64::from_le_bytes(bytes.try_into().unwrap());
    assert_eq!(final_count, committed.load(Ordering::SeqCst));
    assert_eq!(final_count, (THREADS * INCREMENTS_PER_THREAD) as u64);

    // The per-thread survivors and deletions both stuck.
    for t in 0..THREADS {
        for j in 0..FILES_PER_THREAD {
            let stat = c.stat(&format!("/t{t}/f{j}"));
            if j % 2 == 0 {
                assert!(stat.is_err(), "/t{t}/f{j} should be unlinked");
            } else {
                assert_eq!(stat.unwrap().size, (700 + 13 * j) as u64);
            }
        }
    }
    drop(c);
    pool.shutdown();

    let st = fs.stats();
    assert_eq!(st.sessions_opened.get(), st.sessions_closed.get());
    assert_eq!(fs.db().held_lock_count(), 0, "locks leaked");
    let findings = fs.db().check_all();
    assert!(findings.is_empty(), "verifier findings: {findings:?}");
}

/// File descriptors are session-scoped server state: a descriptor minted
/// for one connection means nothing on another, even while both sessions
/// are live on real threads.
#[test]
fn descriptor_tables_are_isolated_between_live_sessions() {
    let fs = InversionFs::open_in_memory().unwrap();
    let pool = InvServerPool::new(&fs, PoolConfig::default());
    let (fd_tx, fd_rx) = mpsc::channel();
    let (done_tx, done_rx) = mpsc::channel();

    let mut a = connect(&pool);
    let holder = thread::spawn(move || {
        let fd = a.creat("/iso", CreateMode::default()).unwrap();
        a.call(&Request::Write(fd, b"mine".to_vec())).unwrap();
        fd_tx.send(fd).unwrap();
        // Keep the session (and its fd) alive until the probe finishes.
        done_rx.recv().unwrap();
        a.close(fd).unwrap();
    });

    let stolen_fd = fd_rx.recv().unwrap();
    let mut b = connect(&pool);
    for req in [
        Request::Read(stolen_fd, 4),
        Request::Write(stolen_fd, b"not mine".to_vec()),
        Request::Close(stolen_fd),
    ] {
        match b.call(&req) {
            Err(InvError::BadFd(fd)) => assert_eq!(fd, stolen_fd),
            other => panic!("foreign fd must be rejected, got {other:?}"),
        }
    }
    done_tx.send(()).unwrap();
    holder.join().unwrap();
    pool.shutdown();
}

/// A client that disappears mid-transaction must leave nothing behind: the
/// transaction aborts, its rows never become visible, its locks are
/// released (a new writer can take the same path immediately), and its
/// descriptors die with the session.
#[test]
fn vanished_client_leaves_no_rows_no_locks_no_fds() {
    let fs = InversionFs::open_in_memory().unwrap();
    let pool = InvServerPool::new(&fs, PoolConfig::default());

    let mut doomed = connect(&pool);
    doomed.begin().unwrap();
    let fd = doomed.creat("/contested", CreateMode::default()).unwrap();
    doomed
        .call(&Request::Write(fd, vec![0xAB; 4096]))
        .unwrap();
    drop(doomed); // The wire goes dead with the transaction open.

    let deadline = Instant::now() + Duration::from_secs(10);
    while fs.stats().net_disconnect_aborts.get() == 0 {
        assert!(Instant::now() < deadline, "disconnect abort never observed");
        thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(fs.db().held_lock_count(), 0, "disconnect left locks behind");

    // The path is free: a new session can claim it without waiting.
    let mut successor = connect(&pool);
    assert!(successor.stat("/contested").is_err(), "rows leaked");
    let fd = successor.creat("/contested", CreateMode::default()).unwrap();
    successor
        .call(&Request::Write(fd, b"second owner".to_vec()))
        .unwrap();
    successor.close(fd).unwrap();
    assert_eq!(
        successor.stat("/contested").unwrap().size,
        "second owner".len() as u64
    );
    drop(successor);
    pool.shutdown();

    let st = fs.stats();
    assert_eq!(st.sessions_opened.get(), st.sessions_closed.get());
    assert!(st.net_disconnect_aborts.get() >= 1);
    let findings = fs.db().check_all();
    assert!(findings.is_empty(), "verifier findings: {findings:?}");
}

/// The same protocol over a real TCP socket on loopback: connect, run a
/// transaction, disconnect a second client mid-transaction, and confirm
/// the teardown path works for sockets exactly as for in-memory streams.
#[test]
fn tcp_loopback_sessions_work_end_to_end() {
    let fs = InversionFs::open_in_memory().unwrap();
    let pool = InvServerPool::new(&fs, PoolConfig::default());
    let addr = pool.listen_tcp("127.0.0.1:0").unwrap();

    let mut c = WireClient::new(std::net::TcpStream::connect(addr).unwrap());
    c.begin().unwrap();
    let fd = c.creat("/tcp", CreateMode::default()).unwrap();
    let data = vec![0x5A; 20_000];
    assert_eq!(c.write_bulk(fd, &data).unwrap(), data.len());
    c.call(&Request::Lseek(fd, 0, SeekWhence::Set)).unwrap();
    assert_eq!(c.read_bulk(fd, data.len()).unwrap(), data);
    c.close(fd).unwrap();
    c.commit().unwrap();

    // A second socket that dies mid-transaction aborts like any other.
    let mut doomed = WireClient::new(std::net::TcpStream::connect(addr).unwrap());
    doomed.begin().unwrap();
    doomed.creat("/tcp-doomed", CreateMode::default()).unwrap();
    drop(doomed);
    let deadline = Instant::now() + Duration::from_secs(10);
    while fs.stats().net_disconnect_aborts.get() == 0 {
        assert!(Instant::now() < deadline, "TCP disconnect abort never observed");
        thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(c.stat("/tcp").unwrap().size, data.len() as u64);
    assert!(c.stat("/tcp-doomed").is_err());
    drop(c);
    pool.shutdown();
    assert!(fs.db().check_all().is_empty());
}
