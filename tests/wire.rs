//! Protocol fuzz battery for `inversion::wire`: round-trips arbitrary
//! requests and responses through the one real encoder/decoder, then feeds
//! the decoder a malformed corpus — truncations, oversized length prefixes,
//! unknown opcodes, corrupted checksums, random byte flips — and checks it
//! always returns an error instead of panicking. The final tests drive the
//! same corpus at a live `InvServerPool` session over a duplex stream and
//! assert the session survives recoverable corruption without leaking its
//! transaction, while unrecoverable framing damage tears the session down
//! through the same abort path as a disconnect.

use std::io::Write;

use inversion::server::{Request, Response};
use inversion::wire::{self, FrameEvent, WireError, HEADER_LEN, MAX_PAYLOAD};
use inversion::{
    CreateMode, FileKind, FileStat, InvError, InvServerPool, InversionFs, OpenMode, PoolConfig,
    SeekWhence, SliceRange, WireClient,
};
use minidb::{DbError, DeviceId, Oid, TypeId};
use proptest::prelude::*;
use simdev::{duplex_pair, SimInstant};

// ---------------------------------------------------------------------------
// Strategies.

fn create_mode() -> impl Strategy<Value = CreateMode> {
    (
        (any::<u8>(), ".{0,12}", any::<u32>()),
        (prop::bool::ANY, prop::bool::ANY, prop::bool::ANY),
    )
        .prop_map(|((dev, owner, ftype), (comp, selfid, nohist))| {
            let mut m = CreateMode::default()
                .on_device(DeviceId(dev))
                .owned_by(owner);
            if ftype != 0 {
                m = m.with_type(TypeId(ftype));
            }
            if comp {
                m = m.compressed();
            }
            if selfid {
                m = m.self_identifying();
            }
            if nohist {
                m = m.without_history();
            }
            m
        })
}

fn timestamp() -> impl Strategy<Value = Option<SimInstant>> {
    prop_oneof![
        Just(None),
        any::<u64>().prop_map(|n| Some(SimInstant::from_nanos(n))),
    ]
}

fn whence() -> impl Strategy<Value = SeekWhence> {
    prop_oneof![
        Just(SeekWhence::Set),
        Just(SeekWhence::Cur),
        Just(SeekWhence::End),
    ]
}

fn request_strategy() -> impl Strategy<Value = Request> {
    prop_oneof![
        Just(Request::Begin),
        Just(Request::Commit),
        Just(Request::Abort),
        (".{0,24}", create_mode()).prop_map(|(p, m)| Request::Creat(p, m)),
        (".{0,24}", prop::bool::ANY, timestamp()).prop_map(|(p, rw, ts)| Request::Open(
            p,
            if rw { OpenMode::ReadWrite } else { OpenMode::Read },
            ts
        )),
        any::<i32>().prop_map(Request::Close),
        (any::<i32>(), 0usize..100_000).prop_map(|(fd, n)| Request::Read(fd, n)),
        (any::<i32>(), prop::collection::vec(any::<u8>(), 0..4000))
            .prop_map(|(fd, d)| Request::Write(fd, d)),
        (any::<i32>(), any::<i64>(), whence()).prop_map(|(fd, off, w)| Request::Lseek(fd, off, w)),
        ".{0,24}".prop_map(Request::Stat),
        ".{0,24}".prop_map(Request::Mkdir),
        ".{0,24}".prop_map(Request::Unlink),
        ".{0,24}".prop_map(Request::Readdir),
        (".{0,24}", ".{0,24}").prop_map(|(a, b)| Request::Rename(a, b)),
        (".{0,24}", any::<u64>())
            .prop_map(|(p, t)| Request::Undelete(p, SimInstant::from_nanos(t))),
        (".{0,24}", create_mode(), slice_ranges())
            .prop_map(|(d, m, rs)| Request::Slice(d, m, rs)),
    ]
}

fn slice_ranges() -> impl Strategy<Value = Vec<SliceRange>> {
    prop::collection::vec(
        (".{0,16}", any::<u64>(), any::<u64>()).prop_map(|(p, off, len)| SliceRange {
            path: p,
            offset: off,
            len,
        }),
        0..5,
    )
}

fn file_stat() -> impl Strategy<Value = FileStat> {
    (
        (any::<u32>(), prop::bool::ANY, ".{0,12}", any::<u32>()),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u32>(), any::<u32>(), any::<u8>()),
        (prop::bool::ANY, prop::bool::ANY),
    )
        .prop_map(
            |(
                (oid, dir, owner, ftype),
                (size, ctime, mtime, atime),
                (datarel, chunkidx, device),
                (comp, selfid),
            )| FileStat {
                oid: Oid(oid),
                kind: if dir { FileKind::Directory } else { FileKind::Regular },
                owner,
                ftype: if ftype == 0 { None } else { Some(TypeId(ftype)) },
                size,
                ctime: SimInstant::from_nanos(ctime),
                mtime: SimInstant::from_nanos(mtime),
                atime: SimInstant::from_nanos(atime),
                compressed: comp,
                self_identifying: selfid,
                datarel: Oid(datarel),
                chunkidx: Oid(chunkidx),
                device: DeviceId(device),
            },
        )
}

fn response_strategy() -> impl Strategy<Value = Response> {
    prop_oneof![
        Just(Response::Ok),
        any::<i32>().prop_map(Response::Fd),
        prop::collection::vec(any::<u8>(), 0..4000).prop_map(Response::Data),
        any::<u64>().prop_map(Response::Count),
        file_stat().prop_map(|s| Response::Stat(Box::new(s))),
        prop::collection::vec((".{0,12}", any::<u32>()), 0..8).prop_map(|es| Response::Entries(
            es.into_iter().map(|(n, o)| (n, Oid(o))).collect()
        )),
    ]
}

/// Errors whose wire representation is exact (the `DbError` catch-all arm
/// normalizes other engine variants to their display text; see
/// `db_error_catch_all_normalizes_to_text`).
fn exact_error() -> impl Strategy<Value = InvError> {
    prop_oneof![
        ".{0,24}".prop_map(InvError::NoSuchPath),
        ".{0,24}".prop_map(InvError::NotADirectory),
        ".{0,24}".prop_map(InvError::IsADirectory),
        ".{0,24}".prop_map(InvError::Exists),
        ".{0,24}".prop_map(InvError::NotEmpty),
        any::<i32>().prop_map(InvError::BadFd),
        any::<i32>().prop_map(InvError::ReadOnlyFd),
        ".{0,24}".prop_map(InvError::BadPath),
        ".{0,24}".prop_map(InvError::Invalid),
        Just(InvError::Db(DbError::Deadlock)),
        Just(InvError::Db(DbError::LockTimeout)),
        Just(InvError::Db(DbError::NoTransaction)),
        Just(InvError::Db(DbError::TransactionActive)),
        Just(InvError::Db(DbError::ReadOnly)),
        ".{0,24}".prop_map(|m| InvError::Db(DbError::Corrupt(m))),
    ]
}

// ---------------------------------------------------------------------------
// Round-trip properties. `Request`/`Response` do not implement `PartialEq`
// (they carry engine types that have no business being comparable), so
// equality is checked on the debug rendering and on re-encoded bytes — the
// encoder is deterministic, so byte equality is the stronger statement.

proptest! {
    #[test]
    fn request_roundtrip_is_exact(req in request_strategy()) {
        let bytes = wire::encode_request(&req);
        prop_assert_eq!(req.wire_size(), bytes.len(), "wire_size must be the encoder's size");
        let decoded = match wire::decode_request(&bytes) {
            Ok(d) => d,
            Err(e) => return Err(proptest::test_runner::TestCaseError::fail(
                format!("decode failed on {req:?}: {e}"),
            )),
        };
        prop_assert_eq!(format!("{req:?}"), format!("{decoded:?}"));
        prop_assert_eq!(&bytes, &wire::encode_request(&decoded));
    }

    #[test]
    fn response_roundtrip_is_exact(resp in response_strategy()) {
        let bytes = wire::encode_response(&Ok(resp.clone()));
        prop_assert_eq!(resp.wire_size(), bytes.len());
        let decoded = match wire::decode_response(&bytes) {
            Ok(Ok(d)) => d,
            other => return Err(proptest::test_runner::TestCaseError::fail(
                format!("decode failed on {resp:?}: {other:?}"),
            )),
        };
        prop_assert_eq!(format!("{resp:?}"), format!("{decoded:?}"));
        prop_assert_eq!(&bytes, &wire::encode_response(&Ok(decoded)));
    }

    #[test]
    fn error_roundtrip_is_exact(err in exact_error()) {
        let bytes = wire::encode_response(&Err(err.clone()));
        let decoded = match wire::decode_response(&bytes) {
            Ok(Err(d)) => d,
            other => return Err(proptest::test_runner::TestCaseError::fail(
                format!("decode failed on {err:?}: {other:?}"),
            )),
        };
        prop_assert_eq!(format!("{err:?}"), format!("{decoded:?}"));
    }

    // ------------------------------------------------------------------
    // Malformed corpus: the decoder must reject, never panic.

    #[test]
    fn truncation_always_errors(req in request_strategy(), skew in any::<u16>()) {
        let bytes = wire::encode_request(&req);
        // Every header boundary, plus a sampled interior cut.
        let mut cuts: Vec<usize> = (0..HEADER_LEN.min(bytes.len())).collect();
        cuts.push(HEADER_LEN + (skew as usize) % bytes.len().saturating_sub(HEADER_LEN).max(1));
        for cut in cuts {
            let cut = cut.min(bytes.len().saturating_sub(1));
            let prefix = &bytes[..cut];
            prop_assert!(
                wire::decode_request(prefix).is_err(),
                "prefix of {} / {} bytes must not decode", cut, bytes.len()
            );
            let mut r = std::io::Cursor::new(prefix.to_vec());
            match wire::read_frame(&mut r) {
                Ok(FrameEvent::Eof) => prop_assert!(cut == 0, "mid-frame cut read as clean EOF"),
                Ok(other) => return Err(proptest::test_runner::TestCaseError::fail(
                    format!("truncated stream produced {other:?}"),
                )),
                Err(_) => {}
            }
        }
    }

    #[test]
    fn corrupted_checksum_is_detected_and_recoverable(
        req in request_strategy(),
        flip in any::<u8>(),
    ) {
        let mut bytes = wire::encode_request(&req);
        if bytes.len() == HEADER_LEN {
            return Ok(()); // No payload byte to corrupt.
        }
        let idx = HEADER_LEN + (flip as usize) % (bytes.len() - HEADER_LEN);
        bytes[idx] ^= 0x40;
        prop_assert!(matches!(wire::decode_request(&bytes), Err(WireError::Checksum)));
        // Streaming: the corrupt frame is consumed, the next frame is fine.
        let mut stream = bytes.clone();
        stream.extend_from_slice(&wire::encode_request(&Request::Begin));
        let mut r = std::io::Cursor::new(stream);
        prop_assert!(matches!(
            wire::read_frame(&mut r),
            Ok(FrameEvent::Corrupt(WireError::Checksum))
        ));
        match wire::read_frame(&mut r) {
            Ok(FrameEvent::Frame { opcode, payload }) => {
                prop_assert!(wire::decode_request_frame(opcode, &payload).is_ok());
            }
            other => return Err(proptest::test_runner::TestCaseError::fail(
                format!("stream out of sync after corrupt frame: {other:?}"),
            )),
        }
    }

    #[test]
    fn random_mutations_never_panic(
        req in request_strategy(),
        pos in any::<u16>(),
        mask in 1..256u16,
    ) {
        let mut bytes = wire::encode_request(&req);
        let idx = (pos as usize) % bytes.len();
        bytes[idx] ^= mask as u8;
        // Any Result is acceptable (a payload flip under a luckily-matching
        // checksum can legally decode); what is being tested is "no panic,
        // no hang, no over-read".
        let _ = wire::decode_request(&bytes);
        let mut r = std::io::Cursor::new(bytes);
        let _ = wire::read_frame(&mut r);
    }

    #[test]
    fn random_garbage_never_panics(junk in prop::collection::vec(any::<u8>(), 0..600)) {
        let _ = wire::decode_request(&junk);
        let _ = wire::decode_response(&junk);
        let mut r = std::io::Cursor::new(junk);
        // Drain the stream: every event must be an error, a corrupt-frame
        // notice, a (coincidentally) well-formed frame, or EOF.
        for _ in 0..4 {
            match wire::read_frame(&mut r) {
                Ok(FrameEvent::Eof) | Err(_) => break,
                Ok(_) => {}
            }
        }
    }
}

#[test]
fn oversized_length_prefix_is_rejected_before_allocation() {
    let mut bytes = wire::encode_request(&Request::Begin);
    // Rewrite the length field (offset 8) to something absurd, far past
    // MAX_PAYLOAD; a naive decoder would try to allocate it.
    bytes[8..12].copy_from_slice(&(u32::MAX - 7).to_le_bytes());
    assert!(matches!(
        wire::decode_request(&bytes),
        Err(WireError::Oversize(_))
    ));
    let mut r = std::io::Cursor::new(bytes);
    assert!(matches!(wire::read_frame(&mut r), Err(WireError::Oversize(_))));
    assert!(MAX_PAYLOAD < (u32::MAX - 7) as usize);
}

#[test]
fn unknown_opcode_and_bad_magic_are_distinct_failures() {
    let good = wire::frame(0x0EEE, b"mystery");
    assert!(matches!(
        wire::decode_request(&good),
        Err(WireError::BadOpcode(0x0EEE))
    ));
    let mut bad_magic = wire::encode_request(&Request::Begin);
    bad_magic[0] ^= 0xFF;
    assert!(matches!(
        wire::decode_request(&bad_magic),
        Err(WireError::BadMagic(_))
    ));
    let mut bad_version = wire::encode_request(&Request::Begin);
    bad_version[4] = 99;
    assert!(matches!(
        wire::decode_request(&bad_version),
        Err(WireError::BadVersion(99))
    ));
}

/// The `DbError` catch-all arm carries the display text across the wire;
/// one more round does not change it (normalization is idempotent).
#[test]
fn db_error_catch_all_normalizes_to_text() {
    let original = InvError::Db(DbError::NotFound("relation pg_shadow".into()));
    let once = wire::decode_response(&wire::encode_response(&Err(original)))
        .expect("frame intact")
        .expect_err("error response");
    match &once {
        InvError::Db(DbError::Invalid(text)) => assert!(text.contains("pg_shadow")),
        other => panic!("expected normalized Db text, got {other:?}"),
    }
    let twice = wire::decode_response(&wire::encode_response(&Err(once.clone())))
        .expect("frame intact")
        .expect_err("error response");
    assert_eq!(format!("{once:?}"), format!("{twice:?}"));
}

// ---------------------------------------------------------------------------
// The corpus against a live server session.

/// A checksum-corrupted frame is recoverable at the framing layer: the
/// session answers it with an error response, keeps its transaction, and
/// serves the next well-formed request normally.
#[test]
fn session_survives_recoverable_corruption_without_losing_its_transaction() {
    let fs = InversionFs::open_in_memory().unwrap();
    let pool = InvServerPool::new(&fs, PoolConfig::default());
    let (client_end, server_end) = duplex_pair();
    pool.serve_duplex(server_end);
    let raw = client_end.clone(); // Clones share the connection.
    let mut c = WireClient::new(client_end);

    c.begin().unwrap();
    let fd = c.creat("/survivor", CreateMode::default()).unwrap();
    c.call(&Request::Write(fd, b"still here".to_vec())).unwrap();

    // Three corrupted frames, each answered with a decode error.
    for i in 0..3u8 {
        let mut bad = wire::encode_request(&Request::Stat(format!("/survivor{i}")));
        let last = bad.len() - 1;
        bad[last] ^= 0x55;
        (&raw).write_all(&bad).unwrap();
        match c.recv() {
            Err(InvError::Invalid(msg)) => assert!(msg.contains("wire"), "unexpected: {msg}"),
            other => panic!("corrupt frame must answer with a wire error, got {other:?}"),
        }
    }

    // The session is intact: same transaction, same fd table.
    c.call(&Request::Write(fd, b", all of it".to_vec())).unwrap();
    c.close(fd).unwrap();
    c.commit().unwrap();
    assert_eq!(
        c.stat("/survivor").unwrap().size,
        "still here, all of it".len() as u64
    );
    assert!(fs.stats().net_decode_errors.get() >= 3);
    pool.shutdown();
    assert!(fs.db().check_all().is_empty(), "structural damage");
}

/// Checksum corruption in the middle of a pipelined `write_bulk` SEGMENT
/// stream: the corrupt segment is answered with an error (never a
/// partial-write acknowledgment), the stream stays in sync, later segments
/// still land, and the session keeps its transaction — so the client can
/// abort cleanly, exactly what `WireClient::write_bulk` does when its drain
/// loop surfaces the first error.
#[test]
fn mid_bulk_write_corruption_answers_error_without_partial_ack_or_hang() {
    let fs = InversionFs::open_in_memory().unwrap();
    let pool = InvServerPool::new(&fs, PoolConfig::default());
    let (client_end, server_end) = duplex_pair();
    pool.serve_duplex(server_end);
    let raw = client_end.clone();
    let mut c = WireClient::new(client_end);

    c.begin().unwrap();
    let fd = c.creat("/bulk", CreateMode::default()).unwrap();

    // Pipeline five 8 KB segments exactly as write_bulk does, but flip a
    // payload byte in the third frame on its way out.
    let seg = vec![7u8; 8192];
    for i in 0..5 {
        let mut bytes = wire::encode_request(&Request::Write(fd, seg.clone()));
        if i == 2 {
            let last = bytes.len() - 1;
            bytes[last] ^= 0xFF;
        }
        (&raw).write_all(&bytes).unwrap();
    }
    let mut acked = 0u64;
    let mut errors = 0usize;
    for _ in 0..5 {
        match c.recv() {
            Ok(Response::Count(n)) => acked += n,
            Ok(other) => panic!("unexpected response {other:?}"),
            Err(InvError::Invalid(msg)) => {
                assert!(msg.contains("wire"), "unexpected error: {msg}");
                errors += 1;
            }
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }
    assert_eq!(errors, 1, "exactly the corrupt segment must fail");
    assert_eq!(acked, 4 * 8192, "a corrupt segment must never be acked");

    // The session resynchronized: same transaction, same fd table. The
    // client saw the failed segment, so it aborts — and nothing survives.
    c.close(fd).unwrap();
    c.abort().unwrap();
    assert!(c.stat("/bulk").is_err(), "aborted file is visible");
    pool.shutdown();
    assert!(fs.db().check_all().is_empty());
}

/// Fatal framing damage in the middle of a pipelined `read_bulk` stream:
/// already-queued segments are answered, then the session tears down and
/// — critically — closes its transport, so a client blocked awaiting the
/// rest of its pipelined responses sees EOF promptly instead of hanging.
#[test]
fn mid_bulk_fatal_damage_unblocks_pipelined_client_promptly() {
    let fs = InversionFs::open_in_memory().unwrap();
    let pool = InvServerPool::new(&fs, PoolConfig::default());
    let (client_end, server_end) = duplex_pair();
    pool.serve_duplex(server_end);
    let raw = client_end.clone();
    let mut c = WireClient::new(client_end);

    let payload: Vec<u8> = (0..3 * 8192u32).map(|i| (i % 251) as u8).collect();
    let fd = c.creat("/torn-read", CreateMode::default()).unwrap();
    assert_eq!(c.write_bulk(fd, &payload).unwrap(), payload.len());
    c.call(&Request::Lseek(fd, 0, SeekWhence::Set)).unwrap();

    // Pipeline three reads, then wreck the framing mid-stream.
    for _ in 0..3 {
        c.send(&Request::Read(fd, 8192)).unwrap();
    }
    (&raw).write_all(b"\0\0garbage, stream is dead\0\0").unwrap();

    // Drain on a helper thread so a regression (client hangs forever on
    // the transport) fails the deadline below instead of wedging the test.
    let drainer = std::thread::spawn(move || {
        let mut got = Vec::new();
        loop {
            match c.recv() {
                Ok(Response::Data(d)) => got.extend_from_slice(&d),
                Ok(other) => panic!("unexpected response {other:?}"),
                Err(_) => return got, // EOF or error: the stream ended.
            }
        }
    });
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while !drainer.is_finished() {
        assert!(
            std::time::Instant::now() < deadline,
            "client hung awaiting pipelined responses after fatal framing damage"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let got = drainer.join().unwrap();
    // In-order service: whatever arrived before the teardown is a prefix.
    assert!(got.len() <= payload.len());
    assert_eq!(got[..], payload[..got.len()]);

    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while fs.stats().sessions_closed.get() == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "session never tore down"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert!(fs.stats().net_decode_errors.get() >= 1);
    pool.shutdown();
    assert!(fs.db().check_all().is_empty());
    assert_eq!(fs.db().held_lock_count(), 0);
}

/// Unrecoverable framing damage (bad magic: the stream can never re-sync)
/// tears the session down exactly like a disconnect: the in-flight
/// transaction aborts, nothing it wrote becomes visible, no lock survives.
#[test]
fn session_dies_cleanly_on_unrecoverable_framing_damage() {
    let fs = InversionFs::open_in_memory().unwrap();
    let pool = InvServerPool::new(&fs, PoolConfig::default());
    let (client_end, server_end) = duplex_pair();
    pool.serve_duplex(server_end);
    let raw = client_end.clone();
    let mut c = WireClient::new(client_end);

    c.begin().unwrap();
    c.creat("/never-lands", CreateMode::default()).unwrap();
    (&raw).write_all(b"NOPE: this is not an Inversion frame").unwrap();

    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while fs.stats().net_disconnect_aborts.get() == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "framing damage never tore the session down"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert!(fs.stats().net_decode_errors.get() >= 1);
    let mut probe = fs.client();
    assert!(
        probe.p_stat("/never-lands", None).is_err(),
        "aborted transaction's rows are visible"
    );
    assert_eq!(fs.db().held_lock_count(), 0, "locks leaked");
    assert!(fs.db().check_all().is_empty());
    pool.shutdown();
}
