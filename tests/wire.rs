//! Protocol fuzz battery for `inversion::wire`: round-trips arbitrary
//! requests and responses through the one real encoder/decoder, then feeds
//! the decoder a malformed corpus — truncations, oversized length prefixes,
//! unknown opcodes, corrupted checksums, random byte flips — and checks it
//! always returns an error instead of panicking. The final tests drive the
//! same corpus at a live `InvServerPool` session over a duplex stream and
//! assert the session survives recoverable corruption without leaking its
//! transaction, while unrecoverable framing damage tears the session down
//! through the same abort path as a disconnect.

use std::io::Write;

use inversion::server::{Request, Response};
use inversion::wire::{self, FrameEvent, WireError, HEADER_LEN, MAX_PAYLOAD};
use inversion::{
    CreateMode, FileKind, FileStat, InvError, InvServerPool, InversionFs, OpenMode, PoolConfig,
    SeekWhence, WireClient,
};
use minidb::{DbError, DeviceId, Oid, TypeId};
use proptest::prelude::*;
use simdev::{duplex_pair, SimInstant};

// ---------------------------------------------------------------------------
// Strategies.

fn create_mode() -> impl Strategy<Value = CreateMode> {
    (
        (any::<u8>(), ".{0,12}", any::<u32>()),
        (prop::bool::ANY, prop::bool::ANY, prop::bool::ANY),
    )
        .prop_map(|((dev, owner, ftype), (comp, selfid, nohist))| {
            let mut m = CreateMode::default()
                .on_device(DeviceId(dev))
                .owned_by(owner);
            if ftype != 0 {
                m = m.with_type(TypeId(ftype));
            }
            if comp {
                m = m.compressed();
            }
            if selfid {
                m = m.self_identifying();
            }
            if nohist {
                m = m.without_history();
            }
            m
        })
}

fn timestamp() -> impl Strategy<Value = Option<SimInstant>> {
    prop_oneof![
        Just(None),
        any::<u64>().prop_map(|n| Some(SimInstant::from_nanos(n))),
    ]
}

fn whence() -> impl Strategy<Value = SeekWhence> {
    prop_oneof![
        Just(SeekWhence::Set),
        Just(SeekWhence::Cur),
        Just(SeekWhence::End),
    ]
}

fn request_strategy() -> impl Strategy<Value = Request> {
    prop_oneof![
        Just(Request::Begin),
        Just(Request::Commit),
        Just(Request::Abort),
        (".{0,24}", create_mode()).prop_map(|(p, m)| Request::Creat(p, m)),
        (".{0,24}", prop::bool::ANY, timestamp()).prop_map(|(p, rw, ts)| Request::Open(
            p,
            if rw { OpenMode::ReadWrite } else { OpenMode::Read },
            ts
        )),
        any::<i32>().prop_map(Request::Close),
        (any::<i32>(), 0usize..100_000).prop_map(|(fd, n)| Request::Read(fd, n)),
        (any::<i32>(), prop::collection::vec(any::<u8>(), 0..4000))
            .prop_map(|(fd, d)| Request::Write(fd, d)),
        (any::<i32>(), any::<i64>(), whence()).prop_map(|(fd, off, w)| Request::Lseek(fd, off, w)),
        ".{0,24}".prop_map(Request::Stat),
        ".{0,24}".prop_map(Request::Mkdir),
        ".{0,24}".prop_map(Request::Unlink),
        ".{0,24}".prop_map(Request::Readdir),
    ]
}

fn file_stat() -> impl Strategy<Value = FileStat> {
    (
        (any::<u32>(), prop::bool::ANY, ".{0,12}", any::<u32>()),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u32>(), any::<u32>(), any::<u8>()),
        (prop::bool::ANY, prop::bool::ANY),
    )
        .prop_map(
            |(
                (oid, dir, owner, ftype),
                (size, ctime, mtime, atime),
                (datarel, chunkidx, device),
                (comp, selfid),
            )| FileStat {
                oid: Oid(oid),
                kind: if dir { FileKind::Directory } else { FileKind::Regular },
                owner,
                ftype: if ftype == 0 { None } else { Some(TypeId(ftype)) },
                size,
                ctime: SimInstant::from_nanos(ctime),
                mtime: SimInstant::from_nanos(mtime),
                atime: SimInstant::from_nanos(atime),
                compressed: comp,
                self_identifying: selfid,
                datarel: Oid(datarel),
                chunkidx: Oid(chunkidx),
                device: DeviceId(device),
            },
        )
}

fn response_strategy() -> impl Strategy<Value = Response> {
    prop_oneof![
        Just(Response::Ok),
        any::<i32>().prop_map(Response::Fd),
        prop::collection::vec(any::<u8>(), 0..4000).prop_map(Response::Data),
        any::<u64>().prop_map(Response::Count),
        file_stat().prop_map(|s| Response::Stat(Box::new(s))),
        prop::collection::vec((".{0,12}", any::<u32>()), 0..8).prop_map(|es| Response::Entries(
            es.into_iter().map(|(n, o)| (n, Oid(o))).collect()
        )),
    ]
}

/// Errors whose wire representation is exact (the `DbError` catch-all arm
/// normalizes other engine variants to their display text; see
/// `db_error_catch_all_normalizes_to_text`).
fn exact_error() -> impl Strategy<Value = InvError> {
    prop_oneof![
        ".{0,24}".prop_map(InvError::NoSuchPath),
        ".{0,24}".prop_map(InvError::NotADirectory),
        ".{0,24}".prop_map(InvError::IsADirectory),
        ".{0,24}".prop_map(InvError::Exists),
        ".{0,24}".prop_map(InvError::NotEmpty),
        any::<i32>().prop_map(InvError::BadFd),
        any::<i32>().prop_map(InvError::ReadOnlyFd),
        ".{0,24}".prop_map(InvError::BadPath),
        ".{0,24}".prop_map(InvError::Invalid),
        Just(InvError::Db(DbError::Deadlock)),
        Just(InvError::Db(DbError::LockTimeout)),
        Just(InvError::Db(DbError::NoTransaction)),
        Just(InvError::Db(DbError::TransactionActive)),
        Just(InvError::Db(DbError::ReadOnly)),
        ".{0,24}".prop_map(|m| InvError::Db(DbError::Corrupt(m))),
    ]
}

// ---------------------------------------------------------------------------
// Round-trip properties. `Request`/`Response` do not implement `PartialEq`
// (they carry engine types that have no business being comparable), so
// equality is checked on the debug rendering and on re-encoded bytes — the
// encoder is deterministic, so byte equality is the stronger statement.

proptest! {
    #[test]
    fn request_roundtrip_is_exact(req in request_strategy()) {
        let bytes = wire::encode_request(&req);
        prop_assert_eq!(req.wire_size(), bytes.len(), "wire_size must be the encoder's size");
        let decoded = match wire::decode_request(&bytes) {
            Ok(d) => d,
            Err(e) => return Err(proptest::test_runner::TestCaseError::fail(
                format!("decode failed on {req:?}: {e}"),
            )),
        };
        prop_assert_eq!(format!("{req:?}"), format!("{decoded:?}"));
        prop_assert_eq!(&bytes, &wire::encode_request(&decoded));
    }

    #[test]
    fn response_roundtrip_is_exact(resp in response_strategy()) {
        let bytes = wire::encode_response(&Ok(resp.clone()));
        prop_assert_eq!(resp.wire_size(), bytes.len());
        let decoded = match wire::decode_response(&bytes) {
            Ok(Ok(d)) => d,
            other => return Err(proptest::test_runner::TestCaseError::fail(
                format!("decode failed on {resp:?}: {other:?}"),
            )),
        };
        prop_assert_eq!(format!("{resp:?}"), format!("{decoded:?}"));
        prop_assert_eq!(&bytes, &wire::encode_response(&Ok(decoded)));
    }

    #[test]
    fn error_roundtrip_is_exact(err in exact_error()) {
        let bytes = wire::encode_response(&Err(err.clone()));
        let decoded = match wire::decode_response(&bytes) {
            Ok(Err(d)) => d,
            other => return Err(proptest::test_runner::TestCaseError::fail(
                format!("decode failed on {err:?}: {other:?}"),
            )),
        };
        prop_assert_eq!(format!("{err:?}"), format!("{decoded:?}"));
    }

    // ------------------------------------------------------------------
    // Malformed corpus: the decoder must reject, never panic.

    #[test]
    fn truncation_always_errors(req in request_strategy(), skew in any::<u16>()) {
        let bytes = wire::encode_request(&req);
        // Every header boundary, plus a sampled interior cut.
        let mut cuts: Vec<usize> = (0..HEADER_LEN.min(bytes.len())).collect();
        cuts.push(HEADER_LEN + (skew as usize) % bytes.len().saturating_sub(HEADER_LEN).max(1));
        for cut in cuts {
            let cut = cut.min(bytes.len().saturating_sub(1));
            let prefix = &bytes[..cut];
            prop_assert!(
                wire::decode_request(prefix).is_err(),
                "prefix of {} / {} bytes must not decode", cut, bytes.len()
            );
            let mut r = std::io::Cursor::new(prefix.to_vec());
            match wire::read_frame(&mut r) {
                Ok(FrameEvent::Eof) => prop_assert!(cut == 0, "mid-frame cut read as clean EOF"),
                Ok(other) => return Err(proptest::test_runner::TestCaseError::fail(
                    format!("truncated stream produced {other:?}"),
                )),
                Err(_) => {}
            }
        }
    }

    #[test]
    fn corrupted_checksum_is_detected_and_recoverable(
        req in request_strategy(),
        flip in any::<u8>(),
    ) {
        let mut bytes = wire::encode_request(&req);
        if bytes.len() == HEADER_LEN {
            return Ok(()); // No payload byte to corrupt.
        }
        let idx = HEADER_LEN + (flip as usize) % (bytes.len() - HEADER_LEN);
        bytes[idx] ^= 0x40;
        prop_assert!(matches!(wire::decode_request(&bytes), Err(WireError::Checksum)));
        // Streaming: the corrupt frame is consumed, the next frame is fine.
        let mut stream = bytes.clone();
        stream.extend_from_slice(&wire::encode_request(&Request::Begin));
        let mut r = std::io::Cursor::new(stream);
        prop_assert!(matches!(
            wire::read_frame(&mut r),
            Ok(FrameEvent::Corrupt(WireError::Checksum))
        ));
        match wire::read_frame(&mut r) {
            Ok(FrameEvent::Frame { opcode, payload }) => {
                prop_assert!(wire::decode_request_frame(opcode, &payload).is_ok());
            }
            other => return Err(proptest::test_runner::TestCaseError::fail(
                format!("stream out of sync after corrupt frame: {other:?}"),
            )),
        }
    }

    #[test]
    fn random_mutations_never_panic(
        req in request_strategy(),
        pos in any::<u16>(),
        mask in 1..256u16,
    ) {
        let mut bytes = wire::encode_request(&req);
        let idx = (pos as usize) % bytes.len();
        bytes[idx] ^= mask as u8;
        // Any Result is acceptable (a payload flip under a luckily-matching
        // checksum can legally decode); what is being tested is "no panic,
        // no hang, no over-read".
        let _ = wire::decode_request(&bytes);
        let mut r = std::io::Cursor::new(bytes);
        let _ = wire::read_frame(&mut r);
    }

    #[test]
    fn random_garbage_never_panics(junk in prop::collection::vec(any::<u8>(), 0..600)) {
        let _ = wire::decode_request(&junk);
        let _ = wire::decode_response(&junk);
        let mut r = std::io::Cursor::new(junk);
        // Drain the stream: every event must be an error, a corrupt-frame
        // notice, a (coincidentally) well-formed frame, or EOF.
        for _ in 0..4 {
            match wire::read_frame(&mut r) {
                Ok(FrameEvent::Eof) | Err(_) => break,
                Ok(_) => {}
            }
        }
    }
}

#[test]
fn oversized_length_prefix_is_rejected_before_allocation() {
    let mut bytes = wire::encode_request(&Request::Begin);
    // Rewrite the length field (offset 8) to something absurd, far past
    // MAX_PAYLOAD; a naive decoder would try to allocate it.
    bytes[8..12].copy_from_slice(&(u32::MAX - 7).to_le_bytes());
    assert!(matches!(
        wire::decode_request(&bytes),
        Err(WireError::Oversize(_))
    ));
    let mut r = std::io::Cursor::new(bytes);
    assert!(matches!(wire::read_frame(&mut r), Err(WireError::Oversize(_))));
    assert!(MAX_PAYLOAD < (u32::MAX - 7) as usize);
}

#[test]
fn unknown_opcode_and_bad_magic_are_distinct_failures() {
    let good = wire::frame(0x0EEE, b"mystery");
    assert!(matches!(
        wire::decode_request(&good),
        Err(WireError::BadOpcode(0x0EEE))
    ));
    let mut bad_magic = wire::encode_request(&Request::Begin);
    bad_magic[0] ^= 0xFF;
    assert!(matches!(
        wire::decode_request(&bad_magic),
        Err(WireError::BadMagic(_))
    ));
    let mut bad_version = wire::encode_request(&Request::Begin);
    bad_version[4] = 99;
    assert!(matches!(
        wire::decode_request(&bad_version),
        Err(WireError::BadVersion(99))
    ));
}

/// The `DbError` catch-all arm carries the display text across the wire;
/// one more round does not change it (normalization is idempotent).
#[test]
fn db_error_catch_all_normalizes_to_text() {
    let original = InvError::Db(DbError::NotFound("relation pg_shadow".into()));
    let once = wire::decode_response(&wire::encode_response(&Err(original)))
        .expect("frame intact")
        .expect_err("error response");
    match &once {
        InvError::Db(DbError::Invalid(text)) => assert!(text.contains("pg_shadow")),
        other => panic!("expected normalized Db text, got {other:?}"),
    }
    let twice = wire::decode_response(&wire::encode_response(&Err(once.clone())))
        .expect("frame intact")
        .expect_err("error response");
    assert_eq!(format!("{once:?}"), format!("{twice:?}"));
}

// ---------------------------------------------------------------------------
// The corpus against a live server session.

/// A checksum-corrupted frame is recoverable at the framing layer: the
/// session answers it with an error response, keeps its transaction, and
/// serves the next well-formed request normally.
#[test]
fn session_survives_recoverable_corruption_without_losing_its_transaction() {
    let fs = InversionFs::open_in_memory().unwrap();
    let pool = InvServerPool::new(&fs, PoolConfig::default());
    let (client_end, server_end) = duplex_pair();
    pool.serve_duplex(server_end);
    let raw = client_end.clone(); // Clones share the connection.
    let mut c = WireClient::new(client_end);

    c.begin().unwrap();
    let fd = c.creat("/survivor", CreateMode::default()).unwrap();
    c.call(&Request::Write(fd, b"still here".to_vec())).unwrap();

    // Three corrupted frames, each answered with a decode error.
    for i in 0..3u8 {
        let mut bad = wire::encode_request(&Request::Stat(format!("/survivor{i}")));
        let last = bad.len() - 1;
        bad[last] ^= 0x55;
        (&raw).write_all(&bad).unwrap();
        match c.recv() {
            Err(InvError::Invalid(msg)) => assert!(msg.contains("wire"), "unexpected: {msg}"),
            other => panic!("corrupt frame must answer with a wire error, got {other:?}"),
        }
    }

    // The session is intact: same transaction, same fd table.
    c.call(&Request::Write(fd, b", all of it".to_vec())).unwrap();
    c.close(fd).unwrap();
    c.commit().unwrap();
    assert_eq!(
        c.stat("/survivor").unwrap().size,
        "still here, all of it".len() as u64
    );
    assert!(fs.stats().net_decode_errors.get() >= 3);
    pool.shutdown();
    assert!(fs.db().check_all().is_empty(), "structural damage");
}

/// Unrecoverable framing damage (bad magic: the stream can never re-sync)
/// tears the session down exactly like a disconnect: the in-flight
/// transaction aborts, nothing it wrote becomes visible, no lock survives.
#[test]
fn session_dies_cleanly_on_unrecoverable_framing_damage() {
    let fs = InversionFs::open_in_memory().unwrap();
    let pool = InvServerPool::new(&fs, PoolConfig::default());
    let (client_end, server_end) = duplex_pair();
    pool.serve_duplex(server_end);
    let raw = client_end.clone();
    let mut c = WireClient::new(client_end);

    c.begin().unwrap();
    c.creat("/never-lands", CreateMode::default()).unwrap();
    (&raw).write_all(b"NOPE: this is not an Inversion frame").unwrap();

    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while fs.stats().net_disconnect_aborts.get() == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "framing damage never tore the session down"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert!(fs.stats().net_decode_errors.get() >= 1);
    let mut probe = fs.client();
    assert!(
        probe.p_stat("/never-lands", None).is_err(),
        "aborted transaction's rows are visible"
    );
    assert_eq!(fs.db().held_lock_count(), 0, "locks leaked");
    assert!(fs.db().check_all().is_empty());
    pool.shutdown();
}
