//! Device-hierarchy integration: files on the WORM jukebox, staging-cache
//! behaviour, crash recovery across device managers, and NVRAM-backed
//! databases.

use minidb::{
    shared_device, Db, DbConfig, DeviceId, GenericManager, JukeboxConfig, JukeboxManager,
    SharedDevice, Smgr,
};
use simdev::{DiskProfile, JukeboxProfile, MagneticDisk, Nvram, OpticalJukebox, SimClock};

use inversion::{CreateMode, InversionFs};

struct Rig {
    clock: SimClock,
    disk: SharedDevice,
    jukebox: SharedDevice,
    staging: SharedDevice,
    log: SharedDevice,
    catalog: SharedDevice,
    config: DbConfig,
}

impl Rig {
    fn new() -> Rig {
        let clock = SimClock::new();
        Rig {
            config: DbConfig::default(),
            disk: shared_device(MagneticDisk::new(
                "disk",
                clock.clone(),
                DiskProfile::tiny_for_tests(1 << 15),
            )),
            jukebox: shared_device(OpticalJukebox::new(
                "sony",
                clock.clone(),
                JukeboxProfile::tiny_for_tests(),
            )),
            staging: shared_device(MagneticDisk::new(
                "staging",
                clock.clone(),
                DiskProfile::tiny_for_tests(1 << 12),
            )),
            log: shared_device(MagneticDisk::new(
                "log",
                clock.clone(),
                DiskProfile::tiny_for_tests(1 << 11),
            )),
            catalog: shared_device(MagneticDisk::new(
                "cat",
                clock.clone(),
                DiskProfile::tiny_for_tests(1 << 11),
            )),
            clock,
        }
    }

    fn jb_config() -> JukeboxConfig {
        JukeboxConfig {
            extent_pages: 4,
            cache_blocks: 16,
        }
    }

    fn format(&self) -> Db {
        let mut smgr = Smgr::new();
        smgr.register(
            DeviceId(0),
            Box::new(GenericManager::format(self.disk.clone()).unwrap()),
        )
        .unwrap();
        smgr.register(
            DeviceId(1),
            Box::new(
                JukeboxManager::format(
                    self.jukebox.clone(),
                    self.staging.clone(),
                    Self::jb_config(),
                )
                .unwrap(),
            ),
        )
        .unwrap();
        Db::open(
            self.clock.clone(),
            smgr,
            self.log.clone(),
            self.catalog.clone(),
            self.config.clone(),
        )
        .unwrap()
    }

    fn recover(&self) -> Db {
        let mut smgr = Smgr::new();
        smgr.register(
            DeviceId(0),
            Box::new(GenericManager::attach(self.disk.clone()).unwrap()),
        )
        .unwrap();
        smgr.register(
            DeviceId(1),
            Box::new(
                JukeboxManager::attach(
                    self.jukebox.clone(),
                    self.staging.clone(),
                    Self::jb_config(),
                )
                .unwrap(),
            ),
        )
        .unwrap();
        Db::recover(
            self.clock.clone(),
            smgr,
            self.log.clone(),
            self.catalog.clone(),
            self.config.clone(),
        )
        .unwrap()
    }
}

#[test]
fn jukebox_files_survive_crash_recovery() {
    let rig = Rig::new();
    let payload: Vec<u8> = (0..40_000).map(|i| (i % 241) as u8).collect();
    {
        let fs = InversionFs::format(rig.format()).unwrap();
        let mut c = fs.client();
        c.write_all(
            "/archive.dat",
            CreateMode::default().on_device(DeviceId(1)),
            &payload,
        )
        .unwrap();
        // Crash without clean shutdown: the JukeboxManager burned its dirty
        // staged blocks at commit, so committed data is on the platters.
    }
    let fs = InversionFs::attach(rig.recover()).unwrap();
    let mut c = fs.client();
    assert_eq!(c.read_to_vec("/archive.dat", None).unwrap(), payload);
    let stat = c.p_stat("/archive.dat", None).unwrap();
    assert_eq!(stat.device, DeviceId(1));
}

#[test]
fn worm_history_is_literally_immutable() {
    // Updating a jukebox-resident file appends new chunk versions; the old
    // version stays readable forever — the no-overwrite manager and the
    // write-once medium agree by design.
    let rig = Rig::new();
    let fs = InversionFs::format(rig.format()).unwrap();
    let mut c = fs.client();
    c.write_all(
        "/w",
        CreateMode::default().on_device(DeviceId(1)),
        b"first cut",
    )
    .unwrap();
    let t1 = fs.db().now();
    c.p_begin().unwrap();
    let fd = c
        .p_open("/w", inversion::OpenMode::ReadWrite, None)
        .unwrap();
    c.p_write(fd, b"SECOND!!!").unwrap();
    c.p_close(fd).unwrap();
    c.p_commit().unwrap();

    assert_eq!(c.read_to_vec("/w", None).unwrap(), b"SECOND!!!");
    assert_eq!(c.read_to_vec("/w", Some(t1)).unwrap(), b"first cut");
}

#[test]
fn staging_cache_makes_rereads_cheap() {
    // Synchronous I/O for this one: the cold/warm comparison below is a
    // fine-grained virtual-time measurement, and the async scheduler's
    // worker would charge read-ahead to whichever window it races into.
    let mut rig = Rig::new();
    rig.config.io_queue_depth = 0;
    let fs = InversionFs::format(rig.format()).unwrap();
    let mut c = fs.client();
    let data = vec![5u8; 30_000];
    c.write_all(
        "/staged",
        CreateMode::default().on_device(DeviceId(1)),
        &data,
    )
    .unwrap();
    fs.db().flush_caches().unwrap();

    let t0 = rig.clock.now();
    assert_eq!(c.read_to_vec("/staged", None).unwrap(), data);
    let cold = rig.clock.now().since(t0);
    fs.db().flush_caches().unwrap(); // Buffer pool empty; staging cache warm.
    let t0 = rig.clock.now();
    assert_eq!(c.read_to_vec("/staged", None).unwrap(), data);
    let warm = rig.clock.now().since(t0);
    assert!(
        warm.as_nanos() <= cold.as_nanos(),
        "staged reread ({warm}) should not exceed the cold read ({cold})"
    );
}

#[test]
fn files_span_devices_transparently_within_one_transaction() {
    let rig = Rig::new();
    let fs = InversionFs::format(rig.format()).unwrap();
    let mut c = fs.client();
    // One transaction touching files on both devices commits atomically.
    c.p_begin().unwrap();
    let f0 = c
        .p_creat("/on0", CreateMode::default().on_device(DeviceId(0)))
        .unwrap();
    let f1 = c
        .p_creat("/on1", CreateMode::default().on_device(DeviceId(1)))
        .unwrap();
    c.p_write(f0, b"disk data").unwrap();
    c.p_write(f1, b"worm data").unwrap();
    c.p_close(f0).unwrap();
    c.p_close(f1).unwrap();
    c.p_commit().unwrap();
    assert_eq!(c.read_to_vec("/on0", None).unwrap(), b"disk data");
    assert_eq!(c.read_to_vec("/on1", None).unwrap(), b"worm data");

    // And an aborted cross-device transaction leaves neither.
    c.p_begin().unwrap();
    let g0 = c
        .p_creat("/gone0", CreateMode::default().on_device(DeviceId(0)))
        .unwrap();
    let g1 = c
        .p_creat("/gone1", CreateMode::default().on_device(DeviceId(1)))
        .unwrap();
    c.p_write(g0, b"x").unwrap();
    c.p_write(g1, b"y").unwrap();
    c.p_close(g0).unwrap();
    c.p_close(g1).unwrap();
    c.p_abort().unwrap();
    assert!(c.p_stat("/gone0", None).is_err());
    assert!(c.p_stat("/gone1", None).is_err());
}

#[test]
fn database_runs_on_nvram_device() {
    // The paper: "Version 4.0.1 of POSTGRES supports storage on non-volatile
    // RAM, magnetic disk, and a ... jukebox." Run a whole file system on an
    // NVRAM-backed default device.
    let clock = SimClock::new();
    let nvram = shared_device(Nvram::new("nvram", clock.clone(), 2048));
    let log = shared_device(MagneticDisk::new(
        "log",
        clock.clone(),
        DiskProfile::tiny_for_tests(1 << 10),
    ));
    let cat = shared_device(MagneticDisk::new(
        "cat",
        clock.clone(),
        DiskProfile::tiny_for_tests(1 << 10),
    ));
    let mut smgr = Smgr::new();
    smgr.register(
        DeviceId::DEFAULT,
        Box::new(GenericManager::format(nvram).unwrap()),
    )
    .unwrap();
    let db = Db::open(clock.clone(), smgr, log, cat, DbConfig::default()).unwrap();
    let fs = InversionFs::format(db).unwrap();
    let mut c = fs.client();
    let t0 = clock.now();
    c.write_all("/fast", CreateMode::default(), &vec![1u8; 100_000])
        .unwrap();
    let nvram_time = clock.now().since(t0);
    assert_eq!(c.read_to_vec("/fast", None).unwrap(), vec![1u8; 100_000]);
    // NVRAM writes are orders of magnitude faster than disk would be.
    assert!(nvram_time.as_secs_f64() < 0.5, "took {nvram_time}");
}

#[test]
fn tape_jukebox_works_as_a_database_device() {
    // The paper: "In the near future, a 9 TByte Metrum VHS-form factor tape
    // jukebox will also be supported." The generic device manager runs on
    // it unchanged — location transparency includes tape.
    let clock = SimClock::new();
    // The real Metrum profile: its capacity is sparse in memory, and the
    // generic manager's metadata region needs more than the tiny test
    // profile's 64 blocks.
    let tape = shared_device(simdev::TapeJukebox::new(
        "metrum",
        clock.clone(),
        simdev::TapeProfile::metrum(),
    ));
    let log = shared_device(MagneticDisk::new(
        "log",
        clock.clone(),
        DiskProfile::tiny_for_tests(1 << 10),
    ));
    let cat = shared_device(MagneticDisk::new(
        "cat",
        clock.clone(),
        DiskProfile::tiny_for_tests(1 << 10),
    ));
    let disk = shared_device(MagneticDisk::new(
        "disk",
        clock.clone(),
        DiskProfile::tiny_for_tests(1 << 12),
    ));
    let mut smgr = Smgr::new();
    smgr.register(DeviceId(0), Box::new(GenericManager::format(disk).unwrap()))
        .unwrap();
    smgr.register(DeviceId(2), Box::new(GenericManager::format(tape).unwrap()))
        .unwrap();
    let db = Db::open(clock, smgr, log, cat, DbConfig::default()).unwrap();
    let fs = InversionFs::format(db).unwrap();
    let mut c = fs.client();
    c.write_all(
        "/on_tape",
        CreateMode::default().on_device(DeviceId(2)),
        &vec![9u8; 20_000],
    )
    .unwrap();
    assert_eq!(c.read_to_vec("/on_tape", None).unwrap(), vec![9u8; 20_000]);
    assert_eq!(c.p_stat("/on_tape", None).unwrap().device, DeviceId(2));
}
