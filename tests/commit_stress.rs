//! Concurrency stress for the group-commit path: many threads commit small
//! write transactions in lockstep rounds, so the coordinator's batching is
//! exercised hard. The suite proves the accounting invariants (every commit
//! produces exactly one durable record; batching strictly reduces device
//! syncs), the absence of deadlock in the commit coordinator, and that no
//! committed row is lost.

mod common;

use std::sync::{Arc, Barrier};

use common::Devices;
use minidb::{Datum, Db, DbConfig, Schema, TypeId};
use simdev::SimDuration;

const THREADS: usize = 8;
const ROUNDS: usize = 25;

/// Creates one private table per thread so the workload contends only on
/// the commit path, never on 2PL row locks.
fn tables(db: &Db) -> Vec<minidb::RelId> {
    (0..THREADS)
        .map(|t| {
            db.create_table(&format!("t{t}"), Schema::new([("v", TypeId::INT8)]))
                .unwrap()
        })
        .collect()
}

fn run(db: &Db) -> minidb::StatsSnapshot {
    let rels = tables(db);
    let before = db.stats();
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let db = db.clone();
            let rel = rels[t];
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                for round in 0..ROUNDS {
                    let mut s = db.begin().unwrap();
                    s.insert(rel, vec![Datum::Int8((t * ROUNDS + round) as i64)])
                        .unwrap();
                    // Arrive at the commit point together so the group
                    // commit coordinator sees real batches.
                    barrier.wait();
                    s.commit().unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker panicked (commit deadlock or assert)");
    }

    // No lost updates: every thread's table holds exactly its rows.
    let mut s = db.begin().unwrap();
    for (t, &rel) in rels.iter().enumerate() {
        let rows = s.seq_scan(rel).unwrap();
        assert_eq!(rows.len(), ROUNDS, "table t{t} lost committed rows");
        let mut vals: Vec<i64> = rows
            .iter()
            .map(|(_, r)| match r[0] {
                Datum::Int8(v) => v,
                ref other => panic!("bad datum {other:?}"),
            })
            .collect();
        vals.sort_unstable();
        let want: Vec<i64> = (0..ROUNDS).map(|i| (t * ROUNDS + i) as i64).collect();
        assert_eq!(vals, want, "table t{t} content");
    }
    s.commit().unwrap();
    assert!(db.check_all().is_empty(), "check_all: {:?}", db.check_all());
    db.stats().delta(&before)
}

/// With the group-commit window open, N×M concurrent commits must all be
/// durably recorded (commits == batched_records), batches must actually
/// form (group_commits > 0), and batching must pay off: strictly fewer
/// data-device syncs than commits.
#[test]
fn group_commit_batches_without_losing_updates() {
    let db = Devices::new().format(); // Default config: window open.
    let d = run(&db);
    let committed = (THREADS * ROUNDS) as u64;
    // The verification scan commits read-only and records nothing.
    assert_eq!(d.xact.commits, committed + 1);
    assert_eq!(
        d.xact.batched_records, committed,
        "every write commit must be durably recorded exactly once"
    );
    assert!(d.xact.group_commits > 0, "lockstep commits must batch");
    assert!(
        d.xact.sync_calls < committed,
        "batching must amortize syncs: {} syncs for {} commits",
        d.xact.sync_calls,
        committed
    );
    assert_eq!(
        d.xact.pages_flushed_at_commit, 0,
        "no-force commit must not write data pages"
    );
}

/// The same workload with the window closed is the degenerate case: still
/// no lost updates, still one record per commit, but every commit pays its
/// own sync.
#[test]
fn disabled_window_still_commits_every_record() {
    let devices = Devices::new();
    let db = {
        let mut smgr = minidb::Smgr::new();
        smgr.register(
            minidb::DeviceId::DEFAULT,
            Box::new(minidb::GenericManager::format(devices.data.clone()).unwrap()),
        )
        .unwrap();
        Db::open(
            devices.clock.clone(),
            smgr,
            devices.log.clone(),
            devices.catalog.clone(),
            DbConfig {
                group_commit_window: SimDuration::ZERO,
                ..DbConfig::default()
            },
        )
        .unwrap()
    };
    let d = run(&db);
    let committed = (THREADS * ROUNDS) as u64;
    assert_eq!(d.xact.commits, committed + 1);
    assert_eq!(d.xact.batched_records, committed);
    assert_eq!(d.xact.group_commits, 0, "window disabled: no batches");
    assert_eq!(
        d.xact.sync_calls, committed,
        "window disabled: one data sync per write commit"
    );
}
