//! Concurrency across the whole stack: multiple clients, two-phase locking,
//! transaction isolation, and shared devices.

mod common;

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use common::Devices;
use inversion::{CreateMode, InversionFs, OpenMode, SeekWhence};
use minidb::{Datum, Schema, TypeId};

fn fresh_fs() -> InversionFs {
    InversionFs::format(Devices::new().format()).unwrap()
}

#[test]
fn concurrent_clients_create_disjoint_files() {
    let fs = fresh_fs();
    let mut handles = Vec::new();
    for w in 0..4u32 {
        let fs = fs.clone();
        handles.push(std::thread::spawn(move || {
            let mut c = fs.client();
            for i in 0..5 {
                let path = format!("/w{w}_{i}");
                // 2PL lock-upgrade conflicts between concurrent creators
                // surface as Deadlock; aborted transactions retry, exactly
                // as a database client would.
                loop {
                    match c.write_all(&path, CreateMode::default(), format!("{w}:{i}").as_bytes()) {
                        Ok(()) => break,
                        Err(inversion::InvError::Exists(_)) => break,
                        Err(_) => std::thread::yield_now(),
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let mut c = fs.client();
    let entries = c.p_readdir("/", None).unwrap();
    assert_eq!(entries.len(), 20);
    for w in 0..4 {
        for i in 0..5 {
            assert_eq!(
                c.read_to_vec(&format!("/w{w}_{i}"), None).unwrap(),
                format!("{w}:{i}").as_bytes()
            );
        }
    }
}

#[test]
fn writers_to_one_file_serialize() {
    // Each transaction reads the counter file, increments, writes back.
    // 2PL (exclusive table locks) must serialize them: no lost updates.
    let fs = fresh_fs();
    let mut c = fs.client();
    c.write_all("/counter", CreateMode::default(), b"0000")
        .unwrap();

    let retries = Arc::new(AtomicU32::new(0));
    let mut handles = Vec::new();
    for _ in 0..4 {
        let fs = fs.clone();
        let retries = retries.clone();
        handles.push(std::thread::spawn(move || {
            let mut c = fs.client();
            for _ in 0..5 {
                loop {
                    c.p_begin().unwrap();
                    let attempt = (|| -> Result<(), inversion::InvError> {
                        let fd = c.p_open("/counter", OpenMode::ReadWrite, None)?;
                        let mut buf = [0u8; 4];
                        c.p_read(fd, &mut buf)?;
                        let v: u32 = std::str::from_utf8(&buf).unwrap().parse().unwrap();
                        c.p_lseek(fd, 0, SeekWhence::Set)?;
                        c.p_write(fd, format!("{:04}", v + 1).as_bytes())?;
                        c.p_close(fd)?;
                        Ok(())
                    })();
                    match attempt {
                        Ok(()) => match c.p_commit() {
                            Ok(()) => break,
                            Err(_) => retries.fetch_add(1, Ordering::SeqCst),
                        },
                        Err(_) => {
                            let _ = c.p_abort();
                            retries.fetch_add(1, Ordering::SeqCst)
                        }
                    };
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let mut c = fs.client();
    let v = c.read_to_vec("/counter", None).unwrap();
    assert_eq!(v, b"0020", "lost update detected (retries: {:?})", retries);
}

#[test]
fn readers_of_history_never_block() {
    // A long-running writer holds exclusive locks; historical readers go
    // around 2PL entirely because old versions are immutable.
    let fs = fresh_fs();
    let mut c = fs.client();
    c.write_all("/report", CreateMode::default(), b"published")
        .unwrap();
    let t_pub = fs.db().now();

    c.p_begin().unwrap();
    let fd = c.p_open("/report", OpenMode::ReadWrite, None).unwrap();
    c.p_write(fd, b"UNPUBLISHED DRAFT").unwrap();
    c.p_close(fd).unwrap();
    // Transaction still open: locks held.

    let fs2 = fs.clone();
    let reader = std::thread::spawn(move || {
        let mut rc = fs2.client();
        rc.read_to_vec("/report", Some(t_pub)).unwrap()
    });
    let seen = reader.join().unwrap();
    assert_eq!(seen, b"published");
    c.p_commit().unwrap();
}

#[test]
fn deadlocks_are_detected_and_recoverable() {
    let db = Devices::new().format();
    let a = db
        .create_table("a", Schema::new([("v", TypeId::INT4)]))
        .unwrap();
    let b = db
        .create_table("b", Schema::new([("v", TypeId::INT4)]))
        .unwrap();

    let db2 = db.clone();
    let barrier = Arc::new(std::sync::Barrier::new(2));
    let barrier2 = barrier.clone();
    let t = std::thread::spawn(move || {
        let mut s = db2.begin().unwrap();
        s.insert(b, vec![Datum::Int4(1)]).unwrap(); // lock b
        barrier2.wait();
        let r = s.insert(a, vec![Datum::Int4(1)]); // wait for a
        match r {
            Ok(_) => s.commit().map(|_| true).unwrap_or(false),
            Err(_) => {
                let _ = s.abort();
                false
            }
        }
    });
    let mut s = db.begin().unwrap();
    s.insert(a, vec![Datum::Int4(2)]).unwrap(); // lock a
    barrier.wait();
    std::thread::sleep(std::time::Duration::from_millis(50));
    let r = s.insert(b, vec![Datum::Int4(2)]); // closes the cycle
    let mine_ok = match r {
        Ok(_) => s.commit().map(|_| true).unwrap_or(false),
        Err(e) => {
            assert!(matches!(
                e,
                minidb::DbError::Deadlock | minidb::DbError::LockTimeout
            ));
            let _ = s.abort();
            false
        }
    };
    let theirs_ok = t.join().unwrap();
    assert!(
        mine_ok || theirs_ok,
        "at least one transaction must have survived the deadlock"
    );
    // The system is healthy afterwards.
    let mut s = db.begin().unwrap();
    s.insert(a, vec![Datum::Int4(3)]).unwrap();
    s.insert(b, vec![Datum::Int4(3)]).unwrap();
    s.commit().unwrap();
}

#[test]
fn isolation_no_dirty_reads_through_time_travel() {
    let fs = fresh_fs();
    let mut writer = fs.client();
    writer
        .write_all("/x", CreateMode::default(), b"clean")
        .unwrap();

    writer.p_begin().unwrap();
    let fd = writer.p_open("/x", OpenMode::ReadWrite, None).unwrap();
    writer.p_write(fd, b"dirty").unwrap();
    writer.p_close(fd).unwrap();

    // Snapshot readers at "now" see only committed state.
    let mut h = fs.db().snapshot_at(fs.db().now());
    let rel = fs.db().relation_id("naming").unwrap();
    let rows = h.seq_scan(rel).unwrap();
    assert_eq!(rows.len(), 2); // "/" and "x", nothing half-done.

    writer.p_abort().unwrap();
    let mut c = fs.client();
    assert_eq!(c.read_to_vec("/x", None).unwrap(), b"clean");
}
