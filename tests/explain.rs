//! Golden plan corpus: `explain` output for a fixed query set against a
//! deterministic database is pinned in `explain-corpus.txt`. A diff here
//! means the planner changed its mind — new access method, different cost
//! arithmetic, reshaped tree. Regenerate with
//!
//! ```text
//! cargo test --test explain regenerate_corpus -- --ignored
//! ```
//!
//! only when the change is intentional, and review the diff like code:
//! every changed line is a changed planner decision.

use minidb::{Datum, Db, Schema, TypeId};

/// A deterministic database: `emp`/`dept` (one heap page each, `emp.age`
/// indexed) and `big` (hundreds of padded rows across several pages,
/// `big.k` indexed) so the cost model's seq-vs-range choice differs
/// between small and large relations.
fn corpus_db() -> Db {
    let db = Db::open_in_memory().unwrap();
    db.create_table(
        "emp",
        Schema::new([
            ("name", TypeId::TEXT),
            ("age", TypeId::INT4),
            ("dept", TypeId::TEXT),
        ]),
    )
    .unwrap();
    let emp = db.relation_id("emp").unwrap();
    db.create_index("emp_age", emp, &["age"]).unwrap();
    db.create_table(
        "dept",
        Schema::new([("dname", TypeId::TEXT), ("floor", TypeId::INT4)]),
    )
    .unwrap();
    db.create_table(
        "big",
        Schema::new([("k", TypeId::INT4), ("pad", TypeId::TEXT)]),
    )
    .unwrap();
    let big = db.relation_id("big").unwrap();
    db.create_index("big_k", big, &["k"]).unwrap();

    let mut s = db.begin().unwrap();
    for (n, a, d) in [
        ("mao", 29, "db"),
        ("mike", 45, "db"),
        ("margo", 35, "fs"),
        ("randy", 40, "arch"),
        ("wei", 31, "db"),
    ] {
        s.query(&format!(
            r#"append emp (name = "{n}", age = {a}, dept = "{d}")"#
        ))
        .unwrap();
    }
    for (dn, f) in [("db", 4), ("fs", 5), ("arch", 1)] {
        s.query(&format!(r#"append dept (dname = "{dn}", floor = {f})"#))
            .unwrap();
    }
    for k in 0..240 {
        s.insert(
            big,
            vec![Datum::Int4(k), Datum::Text(format!("{k:0>120}"))],
        )
        .unwrap();
    }
    s.commit().unwrap();
    db
}

/// The pinned query set: every planner decision the corpus locks down.
const CORPUS_QUERIES: [&str; 22] = [
    // Constant rows and limits.
    "retrieve (two = 1 + 1)",
    "retrieve (x = 1) limit 0",
    // Sequential scans and conjunct pushdown.
    "retrieve (e.name) from e in emp",
    "retrieve (e.name) from e in emp where e.age > 30",
    // Equality pins: exact-type literals probe the index...
    "retrieve (e.name) from e in emp where e.age = 35",
    // ...while lossy or overflowing literals must not.
    "retrieve (e.name) from e in emp where e.age = 35.0",
    "retrieve (e.name) from e in emp where e.age = 5000000000",
    // Range predicates cost out to an index walk on big tables and —
    // because a B-tree descent is cheap — even on one-page ones.
    "retrieve (b.k) from b in big where b.k > 100",
    "retrieve (b.k) from b in big where b.k > 10 and b.k <= 50",
    "retrieve (e.name) from e in emp where e.age > 30 and e.age < 40",
    // Joins: from-clause order, single-variable conjuncts pushed below.
    "retrieve (e.name, d.floor) from e in emp, d in dept where e.dept = d.dname",
    "retrieve (e.name, d.floor) from e in emp, d in dept where e.dept = d.dname and e.age = 29 and d.floor > 2",
    "retrieve (e.name, d.dname, b.k) from e in emp, d in dept, b in big where e.dept = d.dname and b.k = 7",
    // Aggregates, groups, sorts, limits.
    "retrieve (n = count(), a = avg(e.age)) from e in emp",
    "retrieve (e.dept, n = count()) from e in emp sort by dept",
    "retrieve (e.name, e.age) from e in emp sort by age desc, name",
    "retrieve (e.name) from e in emp where e.age > 29 sort by name limit 2",
    // Materialization and mutations.
    "retrieve into elders (e.name) from e in emp where e.age > 40",
    "append emp (name = \"new\", age = 20)",
    "delete e from e in emp where e.age < 30",
    "replace e (age = e.age + 1) from e in emp where e.dept = \"db\"",
    // Virtual relations scan materialized rows.
    "retrieve (p.plans_built) from p in pg_stat_planner",
];

fn corpus_text() -> String {
    let db = corpus_db();
    let mut out = String::from(
        "# Pinned EXPLAIN output for the golden query set (tests/explain.rs).\n\
         # A diff here is a changed planner decision. Regenerate with\n\
         #   cargo test --test explain regenerate_corpus -- --ignored\n\
         # only when the new plans are intentional.\n",
    );
    for q in CORPUS_QUERIES {
        out.push_str(&format!("## {q}\n"));
        let mut s = db.begin().unwrap();
        let r = s.query(&format!("explain {q}")).unwrap();
        s.abort().unwrap();
        for row in &r.rows {
            match &row[0] {
                Datum::Text(line) => {
                    out.push_str(line);
                    out.push('\n');
                }
                other => panic!("explain returned non-text row {other:?}"),
            }
        }
    }
    out
}

#[test]
fn corpus_pins_planner_decisions() {
    assert_eq!(
        corpus_text(),
        include_str!("explain-corpus.txt"),
        "planner drift: the golden query set no longer plans to its pinned trees"
    );
}

#[test]
#[ignore = "rewrites tests/explain-corpus.txt"]
fn regenerate_corpus() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/explain-corpus.txt");
    std::fs::write(path, corpus_text()).unwrap();
}

/// The corpus pins text; this pins behavior: the bounded query must
/// actually choose an index and read fewer pages than the unbounded scan.
#[test]
fn bounded_predicate_prefers_index_over_seq_scan() {
    let db = corpus_db();
    let mut s = db.begin().unwrap();
    let eq = s
        .query("explain retrieve (b.pad) from b in big where b.k = 17")
        .unwrap();
    let eq = eq.to_table();
    assert!(eq.contains("Index Scan on big as b using big_k"), "{eq}");
    let range = s
        .query("explain retrieve (b.pad) from b in big where b.k >= 200")
        .unwrap();
    let range = range.to_table();
    assert!(
        range.contains("Index Range Scan on big as b using big_k"),
        "{range}"
    );
    let seq = s
        .query("explain retrieve (b.pad) from b in big")
        .unwrap()
        .to_table();
    assert!(seq.contains("Seq Scan on big as b"), "{seq}");
    s.commit().unwrap();
}

/// `explain analyze` runs the plan and annotates every node with its
/// actual row count, in the same preorder the tree renders in.
#[test]
fn explain_analyze_row_counts_match_reality() {
    let db = corpus_db();
    let mut s = db.begin().unwrap();
    let r = s
        .query("explain analyze retrieve (b.k) from b in big where b.k < 10 sort by k")
        .unwrap();
    let text = r.to_table();
    assert!(text.contains("Sort (k) (rows=10)"), "{text}");
    assert!(text.contains("Project (k) (rows=10)"), "{text}");
    s.commit().unwrap();
}
