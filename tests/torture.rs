//! The torture battery: seed-driven scenario schedules drive concurrent
//! wire sessions through transactional multi-file workloads — create/write
//! fan-out, rename trees, slice compositions, unlink/undelete churn —
//! layered with simdev fault schedules: severed links (duplex and TCP),
//! armed device read/write faults, and power cuts mid-commit and
//! mid-checkpoint. Every session keeps an append-only model of the
//! transactions the server acknowledged; after the crash the battery
//! asserts the FITO oracle: recovery completes, `Db::check_all` and
//! `InversionFs::check` report nothing, and the visible namespace and
//! bytes equal the acknowledged models exactly.
//!
//! Plans come from `bench::torture` and are pure functions of their seed;
//! `torture-corpus.txt` pins known seeds against generator drift. To
//! reproduce one schedule, feed its seed to `Schedule::new` — the plan,
//! and the serial event trace, are bit-identical on every run.

use std::io::{Read, Write};
use std::thread;
use std::time::{Duration, Instant};

use bench::torture::{
    buried_paths, exec_local, fill, fnv64, standard_battery, FaultKind, Model, Plan, Schedule,
    SessionPlan, TortureOp, UndeleteTimes,
};
use inversion::server::Request;
use inversion::{
    CreateMode, InvError, InvServerPool, InversionFs, OpenMode, PoolConfig, SeekWhence,
    WireClient, CHUNK_SIZE,
};
use simdev::duplex_pair;

/// Write-cached devices over faultable disks: a crash loses exactly what
/// was never synced, and the inner fault plans can tear a destage partway.
struct Rig {
    clock: simdev::SimClock,
    data: minidb::SharedDevice,
    log: minidb::SharedDevice,
    catalog: minidb::SharedDevice,
    handles: Vec<simdev::CacheCrashHandle>,
    data_faults: simdev::FaultPlan,
    log_faults: simdev::FaultPlan,
}

impl Rig {
    fn new() -> Rig {
        let clock = simdev::SimClock::new();
        let mut handles = Vec::new();
        let mut plans = Vec::new();
        let mut cached = |name: &str, nblocks: u64| {
            let disk = simdev::MagneticDisk::new(
                name,
                clock.clone(),
                simdev::DiskProfile::tiny_for_tests(nblocks),
            );
            plans.push(disk.fault_plan());
            let (dev, handle) = simdev::WriteCacheDisk::new(Box::new(disk));
            handles.push(handle);
            minidb::shared_device(dev)
        };
        let data = cached("data", 1 << 16);
        let log = cached("log", 1 << 12);
        let catalog = cached("catalog", 1 << 12);
        drop(cached);
        let data_faults = plans[0].clone();
        let log_faults = plans[1].clone();
        Rig { clock, data, log, catalog, handles, data_faults, log_faults }
    }

    fn open(&self, fresh: bool, window_us: u64) -> minidb::Db {
        let mut smgr = minidb::Smgr::new();
        let mgr = if fresh {
            minidb::GenericManager::format(self.data.clone()).unwrap()
        } else {
            minidb::GenericManager::attach(self.data.clone()).unwrap()
        };
        smgr.register(minidb::DeviceId::DEFAULT, Box::new(mgr)).unwrap();
        let config = minidb::DbConfig {
            group_commit_window: simdev::SimDuration::from_micros(window_us),
            ..minidb::DbConfig::default()
        };
        let open = if fresh { minidb::Db::open } else { minidb::Db::recover };
        open(self.clock.clone(), smgr, self.log.clone(), self.catalog.clone(), config).unwrap()
    }

    /// Power failure: every unsynced write on every device vanishes.
    fn crash(&self) {
        for h in &self.handles {
            h.drop_unsynced();
        }
    }
}

fn retryable(e: &InvError) -> bool {
    matches!(
        e,
        InvError::Db(minidb::DbError::Deadlock | minidb::DbError::LockTimeout)
    )
}

/// Executes one op over the wire and cross-checks read results against the
/// in-transaction scratch model.
fn exec_wire<S: Read + Write>(
    c: &mut WireClient<S>,
    op: &TortureOp,
    times: &UndeleteTimes,
    scratch: &mut Model,
) -> Result<(), InvError> {
    match op {
        TortureOp::Mkdir { path } => c.mkdir(path)?,
        TortureOp::Creat { path, len, salt, compressed } => {
            let mode = if *compressed {
                CreateMode::default().compressed()
            } else {
                CreateMode::default()
            };
            let fd = c.creat(path, mode)?;
            let data = fill(*len, *salt);
            if !data.is_empty() {
                assert_eq!(c.write_bulk(fd, &data)?, data.len());
            }
            c.close(fd)?;
        }
        TortureOp::Rewrite { path, offset, len, salt } => {
            let fd = c.open(path, OpenMode::ReadWrite, None)?;
            c.call(&Request::Lseek(fd, *offset as i64, SeekWhence::Set))?;
            assert_eq!(c.write_bulk(fd, &fill(*len, *salt))?, *len);
            c.close(fd)?;
        }
        TortureOp::Rename { from, to } => c.rename(from, to)?,
        TortureOp::Unlink { path } => c.unlink(path)?,
        TortureOp::Undelete { path } => {
            let t = *times.get(path).expect("undelete without a time anchor");
            c.undelete(path, t)?;
        }
        TortureOp::Slice { dest, ranges, compressed } => {
            let mode = if *compressed {
                CreateMode::default().compressed()
            } else {
                CreateMode::default()
            };
            let rs: Vec<inversion::SliceRange> = ranges
                .iter()
                .map(|(p, o, l)| inversion::SliceRange::new(p.clone(), *o, *l))
                .collect();
            let st = c.slice(dest, mode, &rs)?;
            let want: u64 = ranges.iter().map(|(_, _, l)| *l).sum();
            assert_eq!(st.size, want, "slice {dest} size");
        }
        TortureOp::Readdir { dir } => {
            let mut names: Vec<String> =
                c.readdir(dir)?.into_iter().map(|(n, _)| n).collect();
            names.sort();
            assert_eq!(names, scratch.expect_listing(dir), "mid-txn listing of {dir}");
        }
        TortureOp::Stat { path } => {
            let st = c.stat(path)?;
            let want = scratch.files.get(path).expect("stat target").len() as u64;
            assert_eq!(st.size, want, "mid-txn stat of {path}");
        }
        TortureOp::ReadBack { path } => {
            let want = scratch.files.get(path).expect("readback target").clone();
            let st = c.stat(path)?;
            let fd = c.open(path, OpenMode::Read, None)?;
            let got = if st.size > 0 { c.read_bulk(fd, st.size as usize)? } else { Vec::new() };
            c.close(fd)?;
            assert!(
                got == want,
                "mid-txn readback of {path}: got len {} fnv {:016x}, want len {} fnv {:016x}",
                got.len(),
                fnv64(&got),
                want.len(),
                fnv64(&want)
            );
        }
    }
    scratch.apply(op);
    Ok(())
}

/// One transaction over the wire, retried whole on deadlock/lock-timeout.
fn run_txn<S: Read + Write>(
    c: &mut WireClient<S>,
    txn: &[TortureOp],
    times: &UndeleteTimes,
    base: &Model,
) {
    for attempt in 0u64..500 {
        let mut scratch = base.clone();
        c.begin().unwrap();
        let r = (|| -> Result<(), InvError> {
            for op in txn {
                exec_wire(c, op, times, &mut scratch)?;
            }
            c.commit()
        })();
        match r {
            Ok(()) => return,
            Err(ref e) if retryable(e) => {
                let _ = c.abort();
                thread::sleep(Duration::from_millis(1 + attempt % 7));
            }
            Err(other) => panic!("non-retryable error in {txn:?}: {other:?}"),
        }
    }
    panic!("transaction starved after 500 retries");
}

/// Opens one more transaction, makes unacknowledged changes, and severs the
/// link with the transaction still open. The pool's disconnect path must
/// abort it; the model never learns of it.
fn orphan_and_sever<S: Read + Write>(mut c: WireClient<S>, dir: &str) {
    for attempt in 0u64..500 {
        c.begin().unwrap();
        let r = (|| -> Result<(), InvError> {
            let fd = c.creat(&format!("{dir}/orphan"), CreateMode::default())?;
            c.write_bulk(fd, &fill(900, 0x55))?;
            Ok(())
        })();
        match r {
            Ok(()) => break, // Leave the transaction open; drop severs the link.
            Err(ref e) if retryable(e) => {
                let _ = c.abort();
                thread::sleep(Duration::from_millis(1 + attempt % 7));
            }
            Err(other) => panic!("orphan setup failed: {other:?}"),
        }
    }
    drop(c);
}

/// One session's wire work: run every planned transaction, applying each to
/// the model only after the server acknowledged its commit.
fn session_thread<S: Read + Write>(
    mut c: WireClient<S>,
    sp: SessionPlan,
    fs: InversionFs,
    fault: FaultKind,
) -> Model {
    let mut model = Model::rooted(&sp.dir);
    let mut times = UndeleteTimes::new();
    for txn in &sp.txns {
        // Anchor a time-travel target for every file this transaction will
        // bury: a point after the last acknowledged commit, before the
        // unlink, at which the file is visible with the model's bytes.
        for path in buried_paths(txn) {
            times.insert(path, fs.db().now());
        }
        run_txn(&mut c, txn, &times, &model);
        model.apply_txn(txn);
    }
    if matches!(fault, FaultKind::LinkDropDuplex | FaultKind::LinkDropTcp) {
        orphan_and_sever(c, &sp.dir);
    }
    model
}

/// The FITO oracle: structural verifiers find nothing, and the visible
/// namespace and contents equal the acknowledged models exactly.
fn oracle(
    fs: &InversionFs,
    sessions: &[(String, Model)],
    pads: &[(String, Vec<u8>)],
    torn: &Option<(Vec<u8>, bool)>,
) {
    let findings = fs.db().check_all();
    assert!(findings.is_empty(), "Db::check_all after recovery: {findings:?}");
    let findings = fs.check();
    assert!(findings.is_empty(), "InversionFs::check after recovery: {findings:?}");
    let mut c = fs.client();
    for (_, model) in sessions {
        for dir in &model.dirs {
            let mut names: Vec<String> =
                c.p_readdir(dir, None).unwrap().into_iter().map(|(n, _)| n).collect();
            names.sort();
            assert_eq!(names, model.expect_listing(dir), "recovered listing of {dir}");
        }
        for (path, want) in &model.files {
            let got = c.read_to_vec(path, None).unwrap();
            assert!(
                got == *want,
                "recovered {path}: got len {} fnv {:016x}, want len {} fnv {:016x}",
                got.len(),
                fnv64(&got),
                want.len(),
                fnv64(want)
            );
        }
    }
    for (path, want) in pads {
        let got = c.read_to_vec(path, None).unwrap();
        assert!(got == *want, "recovered pad {path} diverged");
    }
    if let Some((want, acked)) = torn {
        match c.read_to_vec("/crash/torn", None) {
            Ok(got) => assert!(
                got == *want,
                "torn commit resurrected partially: len {} of {}",
                got.len(),
                want.len()
            ),
            Err(InvError::NoSuchPath(_)) if !acked => {} // Resolved to "never happened".
            Err(e) => panic!("torn file unreadable after recovery: {e:?}"),
        }
    }
}

/// Runs one schedule end to end: concurrent wire phase, fault layering,
/// power cut, instant recovery, oracle.
fn run_schedule(sched: Schedule) {
    let window_us = if sched.seed % 2 == 0 { 0 } else { 40 };
    let rig = Rig::new();
    let fs = InversionFs::format(rig.open(true, window_us)).unwrap();
    let plan: Plan = sched.generate();
    {
        let mut c = fs.client();
        for sp in &plan.sessions {
            c.p_mkdir(&sp.dir).unwrap();
        }
        c.p_mkdir("/crash").unwrap();
    }
    fs.db().flush_caches().unwrap(); // The stage must survive the first crash.

    let pool = InvServerPool::new(&fs, PoolConfig::default());
    let tcp_addr = if sched.fault == FaultKind::LinkDropTcp {
        Some(pool.listen_tcp("127.0.0.1:0").unwrap())
    } else {
        None
    };
    let aborts0 = fs.stats().net_disconnect_aborts.get();

    // Concurrent wire phase: one real thread per session, each over its own
    // byte stream, each on its own directory tree.
    let mut joins = Vec::new();
    for sp in plan.sessions.clone() {
        let fs_t = fs.clone();
        let fault = sched.fault;
        let dir = sp.dir.clone();
        let join = match tcp_addr {
            Some(addr) => thread::spawn(move || {
                let c = WireClient::new(std::net::TcpStream::connect(addr).unwrap());
                (dir, session_thread(c, sp, fs_t, fault))
            }),
            None => {
                let (client_end, server_end) = duplex_pair();
                pool.serve_duplex(server_end);
                thread::spawn(move || {
                    (dir, session_thread(WireClient::new(client_end), sp, fs_t, fault))
                })
            }
        };
        joins.push(join);
    }
    let results: Vec<(String, Model)> = joins.into_iter().map(|j| j.join().unwrap()).collect();

    if matches!(sched.fault, FaultKind::LinkDropDuplex | FaultKind::LinkDropTcp) {
        // Every severed session left a transaction open; the pool must
        // abort each one (releasing its locks) without being asked.
        let want = aborts0 + plan.sessions.len() as u64;
        let deadline = Instant::now() + Duration::from_secs(30);
        while fs.stats().net_disconnect_aborts.get() < want {
            assert!(
                Instant::now() < deadline,
                "severed links did not abort their transactions: {} of {want}",
                fs.stats().net_disconnect_aborts.get()
            );
            thread::sleep(Duration::from_millis(5));
        }
    }
    pool.shutdown();

    // Fault layering before the power cut.
    let mut pads: Vec<(String, Vec<u8>)> = Vec::new();
    let mut torn: Option<(Vec<u8>, bool)> = None;
    let mut inflight_ckpt: Option<thread::JoinHandle<()>> = None;
    match sched.fault {
        FaultKind::None | FaultKind::LinkDropDuplex | FaultKind::LinkDropTcp => {}
        FaultKind::DeviceWriteFault => {
            // Dirty a page, arm the data device's write path, and flush:
            // the destage must trip the fault and surface the error. The
            // loop tolerates the background checkpointer having drained
            // between the commit and the arming.
            let mut c = fs.client();
            let before = rig.data_faults.write_trips();
            for i in 0..5u8 {
                let bytes = fill(CHUNK_SIZE + 77, 0xC0 + i);
                let path = format!("/crash/pad{i}");
                c.write_all(&path, CreateMode::default(), &bytes).unwrap();
                pads.push((path, bytes));
                rig.data_faults.fail_after_writes(0);
                let flush = fs.db().flush_caches();
                rig.data_faults.clear_write_fault();
                if rig.data_faults.write_trips() > before {
                    assert!(flush.is_err(), "an armed write fault must surface an error");
                    break;
                }
            }
            assert!(
                rig.data_faults.write_trips() > before,
                "the armed write fault never tripped"
            );
        }
        FaultKind::DeviceReadFault => {
            // Truncate the log so recovery replays nothing and the cache
            // comes back truly cold; the read-fault arming happens after
            // recovery, below.
            fs.db().checkpoint().unwrap();
        }
        FaultKind::CrashMidCommit => {
            let bytes = fill(CHUNK_SIZE + 123, 0xAB);
            let mut c = fs.client();
            c.p_begin().unwrap();
            let fd = c.p_creat("/crash/torn", CreateMode::default()).unwrap();
            c.p_write(fd, &bytes).unwrap();
            c.p_close(fd).unwrap();
            rig.log_faults.fail_after_writes(sched.seed % 3);
            let acked = match c.p_commit() {
                Ok(()) => {
                    drop(c);
                    true
                }
                Err(_) => {
                    // The log force tore partway; whether the commit record
                    // became durable is unknown until recovery looks.
                    std::mem::forget(c);
                    false
                }
            };
            rig.log_faults.clear_write_fault();
            torn = Some((bytes, acked));
        }
        FaultKind::CrashMidCheckpoint => {
            // Guarantee dirty pages, then tear the checkpoint's drain.
            let mut c = fs.client();
            let bytes = fill(2 * CHUNK_SIZE, 0x5C);
            c.write_all("/crash/ckpt", CreateMode::default(), &bytes).unwrap();
            pads.push(("/crash/ckpt".into(), bytes));
            rig.data_faults.fail_after_writes(sched.seed % 4);
            let _ = fs.db().checkpoint();
            rig.data_faults.clear_write_fault();
        }
        FaultKind::CrashInFlight => {
            // Commit a pad (WAL-durable, data pages dirty in the pool),
            // pause the I/O scheduler so write-behind requests sit queued,
            // and start a checkpoint that blocks in the drain barrier. The
            // power cut below aborts the queue with those requests still
            // in flight; recovery must replay the pages from the log.
            let mut c = fs.client();
            let bytes = fill(2 * CHUNK_SIZE + 31, 0x1F);
            c.write_all("/crash/inflight", CreateMode::default(), &bytes).unwrap();
            pads.push(("/crash/inflight".into(), bytes));
            fs.db().pause_io(true);
            let fs_t = fs.clone();
            inflight_ckpt = Some(thread::spawn(move || {
                // The drain barrier errors out when the crash aborts the
                // queue; that error is the expected shape of this cycle.
                let _ = fs_t.db().checkpoint();
            }));
            let deadline = Instant::now() + Duration::from_secs(30);
            while fs.db().io_queue_depth() == 0 {
                assert!(
                    Instant::now() < deadline,
                    "the paused checkpoint never queued a write-behind request"
                );
                thread::sleep(Duration::from_millis(1));
            }
        }
    }

    // Power cut, then the paper's instant recovery: just reattach.
    fs.db().simulate_crash();
    if let Some(h) = inflight_ckpt.take() {
        // The abort inside `simulate_crash` is what unblocked it; join
        // before dropping unsynced writes so nothing races the crash.
        h.join().unwrap();
    }
    rig.crash();
    drop(pool);
    drop(fs);
    let fs = InversionFs::attach(rig.open(false, window_us)).unwrap();

    if sched.fault == FaultKind::DeviceReadFault {
        // Cold cache: the first file reads must touch the device, and an
        // armed read fault must trip (and be survivable once cleared).
        let before = rig.data_faults.read_trips();
        rig.data_faults.fail_after_reads(0);
        let mut c = fs.client();
        let mut attempted = 0usize;
        'reads: for (_, model) in &results {
            for path in model.files.keys() {
                let _ = c.read_to_vec(path, None); // Err expected; the trip counter is the oracle.
                attempted += 1;
                if rig.data_faults.read_trips() > before {
                    break 'reads;
                }
            }
        }
        rig.data_faults.clear_read_fault();
        if attempted > 0 {
            assert!(
                rig.data_faults.read_trips() > before,
                "cold-cache reads never touched the device"
            );
        }
    }

    oracle(&fs, &results, &pads, &torn);
}

fn run_kind(kind: FaultKind) {
    let battery: Vec<Schedule> =
        standard_battery().into_iter().filter(|s| s.fault == kind).collect();
    assert!(battery.len() >= 3, "battery must carry several seeds per fault kind");
    for sched in battery {
        run_schedule(sched);
    }
}

#[test]
fn battery_clean_schedules() {
    run_kind(FaultKind::None);
}

#[test]
fn battery_link_drop_duplex() {
    run_kind(FaultKind::LinkDropDuplex);
}

#[test]
fn battery_link_drop_tcp() {
    run_kind(FaultKind::LinkDropTcp);
}

#[test]
fn battery_device_write_fault() {
    run_kind(FaultKind::DeviceWriteFault);
}

#[test]
fn battery_device_read_fault() {
    run_kind(FaultKind::DeviceReadFault);
}

#[test]
fn battery_crash_mid_commit() {
    run_kind(FaultKind::CrashMidCommit);
}

#[test]
fn battery_crash_mid_checkpoint() {
    run_kind(FaultKind::CrashMidCheckpoint);
}

#[test]
fn battery_crash_in_flight() {
    run_kind(FaultKind::CrashInFlight);
}

// ---------------------------------------------------------------------------
// Seed determinism and the pinned corpus.

/// Runs a whole plan serially (round-robin across sessions) through a local
/// client and returns the full event trace: every op with its observed
/// result (listings, sizes, content hashes).
fn serial_event_trace(seed: u64) -> String {
    let plan = Schedule::new(seed, FaultKind::None).generate();
    let fs = InversionFs::open_in_memory().unwrap();
    let mut c = fs.client();
    for sp in &plan.sessions {
        c.p_mkdir(&sp.dir).unwrap();
    }
    let mut times = UndeleteTimes::new();
    let mut out = String::new();
    let rounds = plan.sessions.iter().map(|s| s.txns.len()).max().unwrap_or(0);
    for t in 0..rounds {
        for (k, sp) in plan.sessions.iter().enumerate() {
            let Some(txn) = sp.txns.get(t) else { continue };
            for path in buried_paths(txn) {
                times.insert(path, fs.db().now());
            }
            c.p_begin().unwrap();
            for op in txn {
                let ev = exec_local(&mut c, op, &times).unwrap();
                out.push_str(&format!("s{k}.t{t}: {ev}\n"));
            }
            c.p_commit().unwrap();
        }
    }
    out
}

#[test]
fn reruns_produce_identical_event_traces() {
    let a = serial_event_trace(0xDEAD_BEEF);
    let b = serial_event_trace(0xDEAD_BEEF);
    assert!(!a.is_empty());
    assert_eq!(a, b, "the same seed must replay to an identical event trace");
    let c = serial_event_trace(0xDEAD_BEF0);
    assert_ne!(a, c, "different seeds must diverge");
}

const CORPUS_SEEDS: [u64; 3] = [4919, 7001, 9973];

fn corpus_text() -> String {
    let mut out = String::from(
        "# Pinned torture plans. A diff here means the generator drifted:\n\
         # old seeds no longer reproduce old schedules. Regenerate with\n\
         #   cargo test --test torture regenerate_corpus -- --ignored\n\
         # only when the drift is intentional.\n",
    );
    for seed in CORPUS_SEEDS {
        out.push_str(&format!("## seed {seed}\n"));
        out.push_str(&Schedule::new(seed, FaultKind::None).generate().trace());
    }
    out
}

#[test]
fn corpus_pins_known_seed_plans() {
    assert_eq!(
        corpus_text(),
        include_str!("torture-corpus.txt"),
        "generator drift: known seeds no longer expand to their pinned plans"
    );
}

#[test]
#[ignore = "rewrites tests/torture-corpus.txt"]
fn regenerate_corpus() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/torture-corpus.txt");
    std::fs::write(path, corpus_text()).unwrap();
}

// ---------------------------------------------------------------------------
// The rename/undelete race: two sessions fight over one directory entry.

fn connect(pool: &InvServerPool) -> WireClient<simdev::DuplexStream> {
    let (client_end, server_end) = duplex_pair();
    pool.serve_duplex(server_end);
    WireClient::new(client_end)
}

/// Attempts `f` as one transaction until it commits or fails for a
/// non-retryable reason; returns the terminal result.
fn race_txn<T>(
    c: &mut WireClient<simdev::DuplexStream>,
    mut f: impl FnMut(&mut WireClient<simdev::DuplexStream>) -> Result<T, InvError>,
) -> Result<T, InvError> {
    for attempt in 0u64..500 {
        c.begin().unwrap();
        let r = f(c).and_then(|v| c.commit().map(|_| v));
        match r {
            Ok(v) => return Ok(v),
            Err(ref e) if retryable(e) => {
                let _ = c.abort();
                thread::sleep(Duration::from_millis(1 + attempt % 7));
            }
            Err(other) => {
                let _ = c.abort();
                return Err(other);
            }
        }
    }
    panic!("race transaction starved");
}

#[test]
fn rename_undelete_race_serializes_to_one_legal_outcome() {
    let fs = InversionFs::open_in_memory().unwrap();
    let pool = InvServerPool::new(&fs, PoolConfig::default());
    let old_bytes = fill(1500, 1);
    let new_bytes = fill(900, 2);

    // Stage: /race/t exists with old_bytes, gets unlinked; /race/a holds
    // new_bytes. Two sessions then race to claim the name /race/t — one by
    // renaming /race/a onto it, one by undeleting the buried file.
    let t_alive;
    {
        let mut c = fs.client();
        c.p_mkdir("/race").unwrap();
        c.write_all("/race/t", CreateMode::default(), &old_bytes).unwrap();
        t_alive = fs.db().now();
        c.p_unlink("/race/t").unwrap();
        c.write_all("/race/a", CreateMode::default(), &new_bytes).unwrap();
    }

    let mut rename_side = connect(&pool);
    let mut undelete_side = connect(&pool);
    let renamer = thread::spawn(move || {
        race_txn(&mut rename_side, |c| c.rename("/race/a", "/race/t"))
    });
    let undeleter = thread::spawn(move || {
        race_txn(&mut undelete_side, |c| c.undelete("/race/t", t_alive))
    });
    let rename_result = renamer.join().unwrap();
    let undelete_result = undeleter.join().unwrap();

    // Exactly one side claims the entry; the loser must see Exists.
    let rename_won = rename_result.is_ok();
    let undelete_won = undelete_result.is_ok();
    assert!(
        rename_won ^ undelete_won,
        "exactly one contender may win: rename {rename_result:?}, undelete {undelete_result:?}"
    );
    for r in [&rename_result, &undelete_result] {
        if let Err(e) = r {
            assert!(matches!(e, InvError::Exists(_)), "loser must fail with Exists: {e:?}");
        }
    }

    let mut c = fs.client();
    let got = c.read_to_vec("/race/t", None).unwrap();
    if rename_won {
        assert_eq!(got, new_bytes, "rename won: /race/t must hold the renamed bytes");
        assert!(matches!(
            c.p_stat("/race/a", None),
            Err(InvError::NoSuchPath(_))
        ));
    } else {
        assert_eq!(got, old_bytes, "undelete won: /race/t must hold the resurrected bytes");
        assert_eq!(c.read_to_vec("/race/a", None).unwrap(), new_bytes);
    }
    pool.shutdown();
    let findings = fs.db().check_all();
    assert!(findings.is_empty(), "check_all: {findings:?}");
    let findings = fs.check();
    assert!(findings.is_empty(), "fs.check: {findings:?}");
}
