//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. eager index write-through under buffer pressure (the paper's
//!    create-time penalty) on vs off;
//! 2. buffer cache size (64 as shipped, 300 as deployed, 1024);
//! 3. PRESTOserve board size for NFS random writes (the Figure 6 effect);
//! 4. chunk compression on vs off (storage + random access cost);
//! 5. write coalescing: 256-byte writes inside one transaction vs
//!    auto-committed.

use bench::report::{human_bytes, print_header};
use bench::testbed::{InversionTestbed, NfsTestbed};
use bench::workload::{measure_create, measure_write_ops, BenchFs, InversionLocal, UltrixNfs, MB};
use inversion::{CreateMode, OpenMode, SeekWhence};

fn main() {
    print_header("Ablation 1: eager index write-through (25 MB create, in-process)");
    for eager in [true, false] {
        let mut sys = InversionLocal::new(InversionTestbed::with_config(300, eager));
        let t = measure_create(&mut sys, 25 * MB);
        println!("  eager_index_writes = {eager:<5} -> create = {t:.1}s");
    }
    println!("  (the interleaved-index penalty the paper blames for slow creation)");

    print_header("Ablation 2: buffer cache size (rereading a 2 MB working set)");
    // Cold costs are cache-independent; the pool size decides how much of a
    // working set *stays* resident. Read 2 MB of random pages twice: with
    // 64 frames (512 KB) the second pass misses again; with 300+ frames the
    // set fits and the second pass is nearly free.
    for buffers in [64usize, 300, 1024] {
        let tb = InversionTestbed::with_config(buffers, true);
        let clock = tb.clock.clone();
        let mut sys = InversionLocal::new(tb);
        measure_create(&mut sys, 25 * MB);
        sys.flush_caches();
        let unit = sys.page_unit();
        let mut page = vec![0u8; unit];
        let pass = |sys: &mut InversionLocal, page: &mut Vec<u8>| {
            for i in 0..256usize {
                sys.read_at(((i * 7919) % 256 * unit) as u64, page);
            }
        };
        let t0 = clock.now();
        pass(&mut sys, &mut page);
        let cold = clock.now().since(t0).as_secs_f64();
        let t0 = clock.now();
        pass(&mut sys, &mut page);
        let warm = clock.now().since(t0).as_secs_f64();
        println!("  {buffers:>5} buffers -> first pass {cold:.2}s, second pass {warm:.3}s");
    }

    print_header("Ablation 3: PRESTOserve size (1 MB random page writes over NFS)");
    for blocks in [0u64, 16, 128, 512] {
        let nvram = if blocks == 0 { None } else { Some(blocks) };
        let mut sys = UltrixNfs::new(NfsTestbed::with_nvram_blocks(nvram));
        measure_create(&mut sys, 25 * MB);
        let (_, _, rand) = measure_write_ops(&mut sys, 25 * MB);
        println!(
            "  NVRAM {:>8} -> random 1 MB write = {rand:.2}s",
            if blocks == 0 {
                "none".to_string()
            } else {
                human_bytes(blocks * 8192)
            }
        );
    }
    println!("  (1 MB fits a 128-block board: no disk writes at all — the Figure 6 cliff)");

    print_header("Ablation 4: chunk compression (4 MB of troff-like text)");
    {
        let text = inversion::types::make_troff_document(7, &["storage"], 40_000).into_bytes();
        let data = &text[..(4 * MB as usize).min(text.len())];
        for compressed in [false, true] {
            let tb = InversionTestbed::paper();
            let clock = tb.clock.clone();
            let mut c = tb.fs.client();
            let mode = if compressed {
                CreateMode::default().compressed()
            } else {
                CreateMode::default()
            };
            let t0 = clock.now();
            c.write_all("/doc", mode, data).unwrap();
            let write_t = clock.now().since(t0).as_secs_f64();
            // Stored bytes.
            let stat = c.p_stat("/doc", None).unwrap();
            let mut s = tb.fs.db().begin().unwrap();
            let stored: usize = s
                .seq_scan(stat.datarel)
                .unwrap()
                .iter()
                .map(|(_, r)| r[1].as_bytes().unwrap().len())
                .sum();
            s.commit().unwrap();
            tb.fs.db().flush_caches().unwrap();
            // Random access cost on the compressed representation.
            let fd = c.p_open("/doc", OpenMode::Read, None).unwrap();
            let t0 = clock.now();
            let mut buf = [0u8; 64];
            for i in 0..32u64 {
                c.p_lseek(
                    fd,
                    ((i * 7919 * 8128) % (data.len() as u64 - 64)) as i64,
                    SeekWhence::Set,
                )
                .unwrap();
                c.p_read(fd, &mut buf).unwrap();
            }
            let rand_t = clock.now().since(t0).as_secs_f64() / 32.0;
            c.p_close(fd).unwrap();
            println!(
                "  compressed = {compressed:<5} -> stored {:>8}, write {write_t:.2}s, random 64-byte read {:.1} ms",
                human_bytes(stored as u64),
                rand_t * 1e3
            );
        }
    }

    print_header("Ablation 5: write coalescing (64 KB in 256-byte writes, in-process)");
    {
        // Inside one transaction: sequential small writes coalesce to chunks.
        let tb = InversionTestbed::paper();
        let clock = tb.clock.clone();
        let mut c = tb.fs.client();
        let t0 = clock.now();
        c.p_begin().unwrap();
        let fd = c.p_creat("/coalesced", CreateMode::default()).unwrap();
        for _ in 0..256 {
            c.p_write(fd, &[7u8; 256]).unwrap();
        }
        c.p_close(fd).unwrap();
        c.p_commit().unwrap();
        let coalesced = clock.now().since(t0).as_secs_f64();

        let tb = InversionTestbed::paper();
        let clock = tb.clock.clone();
        let mut c = tb.fs.client();
        let t0 = clock.now();
        let fd = c.p_creat("/uncoalesced", CreateMode::default()).unwrap();
        for _ in 0..256 {
            c.p_write(fd, &[7u8; 256]).unwrap(); // Auto-commits each write.
        }
        c.p_close(fd).unwrap();
        let uncoalesced = clock.now().since(t0).as_secs_f64();
        println!("  one transaction (coalesced):      {coalesced:.3}s");
        println!("  auto-commit per write (no coalescing): {uncoalesced:.3}s");
        println!(
            "  (\"multiple small sequential writes during a single transaction are coalesced\")"
        );
    }
}
