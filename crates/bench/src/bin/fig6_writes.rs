//! Figure 6 — "Write throughput": the read tests repeated as writes. "In
//! these tests, the effect of the PRESTOserve board used by NFS is
//! dramatic. ... the NFS measurements show no degradation due to random
//! accesses, since the whole 1MByte write fits in the PRESTOserve cache."
//!
//! With `--threads N`, measures N concurrent clients committing small
//! write transactions through the real commit path instead: scoped
//! force-at-commit plus the group-commit coordinator, whose batching of
//! the status-log force is what multi-client write throughput hinges on.

use bench::commit_scaling;
use bench::remote::{self, RemoteWorkload};
use bench::report::{self, print_comparison, print_header, Comparison};
use bench::testbed::{InversionTestbed, NfsTestbed};
use bench::workload::{measure_create, measure_write_ops, InversionRemote, UltrixNfs, MB};

fn thread_scaling(threads: usize, with_remote: bool) {
    print_header("Figure 6 --threads: concurrent commits through group commit");
    let (base, multi) = commit_scaling::measure_commit_speedup(threads);
    commit_scaling::print_commit_speedup(&base, &multi);
    let mut sections = vec![("thread_scaling", commit_scaling::commit_json(&base, &multi))];
    if with_remote {
        println!();
        print_header("Figure 6 --remote: committing writers through the wire protocol");
        let (rbase, rmulti) = remote::measure_remote_speedup(RemoteWorkload::WriteCommit, threads);
        remote::print_remote_speedup(&rbase, &rmulti);
        sections.push(("remote_scaling", remote::remote_json(&rbase, &rmulti)));
    }
    if report::wants_json() {
        let doc = report::bench_json("fig6_writes", &["Inversion"], &[], &sections);
        report::write_bench_json("fig6_writes", &doc).expect("write BENCH json");
    }
}

fn main() {
    if let Some(threads) = report::threads_arg() {
        return thread_scaling(threads, report::wants_remote());
    }
    if report::wants_remote() {
        return thread_scaling(4, true);
    }
    print_header("Figure 6: write throughput (1 MB into a 25 MB file)");
    eprintln!("preparing Inversion ...");
    let mut remote = InversionRemote::new(InversionTestbed::paper());
    measure_create(&mut remote, 25 * MB);
    let before = remote.testbed().fs.db().stats();
    let (i1, iseq, irand) = measure_write_ops(&mut remote, 25 * MB);
    let after = remote.testbed().fs.db().stats();

    eprintln!("preparing NFS ...");
    let mut nfs = UltrixNfs::new(NfsTestbed::paper());
    measure_create(&mut nfs, 25 * MB);
    let (n1, nseq, nrand) = measure_write_ops(&mut nfs, 25 * MB);

    let systems = ["Inversion", "ULTRIX NFS"];
    let rows = [
        Comparison::new("single 1MByte write", &[4.6, 2.0], &[i1, n1]),
        Comparison::new(
            "1MByte written sequentially, page-sized",
            &[5.6, 1.7],
            &[iseq, nseq],
        ),
        Comparison::new(
            "1MByte written at random, page-sized",
            &[6.0, 1.7],
            &[irand, nrand],
        ),
    ];
    print_comparison(&systems, &rows);
    println!();
    println!(
        "Inversion throughput vs NFS — single: {:.0}% (paper 43%), sequential: {:.0}% (paper 31%), random: {:.0}% (paper 28%).",
        100.0 * n1 / i1,
        100.0 * nseq / iseq,
        100.0 * nrand / irand
    );
    println!(
        "NFS sequential vs random write: {:.2}s vs {:.2}s — the paper sees no degradation (1 MB fits the PRESTOserve board).",
        nseq, nrand
    );

    if report::wants_json() {
        let doc = report::bench_json(
            "fig6_writes",
            &systems,
            &rows,
            &[
                ("minidb_stats_delta", after.delta(&before).to_json()),
                ("inv_stats", remote.testbed().fs.stats().to_json()),
            ],
        );
        report::write_bench_json("fig6_writes", &doc).expect("write BENCH json");
    }
}
