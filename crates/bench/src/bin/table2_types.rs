//! Table 2 — "Example file types and functions": registers the paper's file
//! types, stores a sample of each, and invokes every listed function
//! through the query language.

use bench::report::print_header;
use inversion::types::{make_ascii_document, make_troff_document, SatelliteImage};
use inversion::{types, CreateMode, InversionFs};

fn main() {
    let fs = InversionFs::open_in_memory().unwrap();
    types::register_standard(&fs).unwrap();
    let cat_type = |n: &str| fs.db().catalog().type_by_name(n).unwrap();

    let mut c = fs.client();
    c.write_all(
        "/report.txt",
        CreateMode::default().with_type(cat_type("ascii")),
        make_ascii_document(11, 40).as_bytes(),
    )
    .unwrap();
    c.write_all(
        "/paper.t",
        CreateMode::default().with_type(cat_type("troff")),
        make_troff_document(12, &["RISC", "pipeline", "cache"], 60).as_bytes(),
    )
    .unwrap();
    c.write_all(
        "/czcs001.img",
        CreateMode::default().with_type(cat_type("czcs")),
        &SatelliteImage::generate(13, 64, 64, 5, 6, 0.0).encode(),
    )
    .unwrap();
    c.write_all(
        "/avhrr001.img",
        CreateMode::default().with_type(cat_type("avhrr")),
        &SatelliteImage::generate(14, 64, 64, 5, 4, 0.62).encode(),
    )
    .unwrap();

    print_header("Table 2: example file types and functions");
    let rows: &[(&str, &str, &[&str])] = &[
        ("ASCII document", "/report.txt", &["linecount", "wordcount"]),
        (
            "troff document",
            "/paper.t",
            &["keywords", "wordcount", "linecount", "fonts", "sizes"],
        ),
        (
            "Coastal Zone Color Scanner image",
            "/czcs001.img",
            &["pixelavg", "pixelcount"],
        ),
        (
            "Advanced Very High Resolution Radiometer image",
            "/avhrr001.img",
            &["snow", "pixelcount", "pixelavg", "month_of"],
        ),
    ];
    let mut s = fs.db().begin().unwrap();
    for (ftype, path, funcs) in rows {
        println!("\nfile type: {ftype}  (sample: {path})");
        let fname = path.trim_start_matches('/');
        for f in *funcs {
            let q = format!(
                r#"retrieve (v = {f}(n.file)) from n in naming where n.filename = "{fname}""#
            );
            let r = s.query(&q).unwrap();
            println!("  {f:<12} = {}", r.rows[0][0]);
        }
    }
    // The indexed-argument functions.
    let r = s
        .query(r#"retrieve (v = getpixel(n.file, 3, 4)) from n in naming where n.filename = "avhrr001.img""#)
        .unwrap();
    println!("\n  getpixel(avhrr001.img, 3, 4) = {}", r.rows[0][0]);
    let r = s
        .query(r#"retrieve (v = getband(n.file, 2)) from n in naming where n.filename = "avhrr001.img""#)
        .unwrap();
    println!("  getband(avhrr001.img, 2)     = {}", r.rows[0][0]);
    s.commit().unwrap();
}
