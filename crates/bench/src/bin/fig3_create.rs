//! Figure 3 — "25MByte file creation times" for Inversion (client/server)
//! and ULTRIX NFS. "Inversion gets about 36% of the throughput of NFS for
//! file creation. This difference is due primarily to the extra overhead in
//! maintaining indices in Inversion."
//!
//! With `--json`, writes `BENCH_fig3_create.json` pairing the simulated
//! seconds with the storage-manager counter deltas for the Inversion run.

use bench::report::{self, print_comparison, print_header, Comparison};
use bench::testbed::{InversionTestbed, NfsTestbed};
use bench::workload::{measure_create, InversionRemote, UltrixNfs, MB};

fn main() {
    print_header("Figure 3: 25 MB file creation times");
    eprintln!("running Inversion client/server create ...");
    let mut remote = InversionRemote::new(InversionTestbed::paper());
    let before = remote.testbed().fs.db().stats();
    let inv = measure_create(&mut remote, 25 * MB);
    let after = remote.testbed().fs.db().stats();
    eprintln!("running ULTRIX NFS create ...");
    let mut nfs = UltrixNfs::new(NfsTestbed::paper());
    let nfs_t = measure_create(&mut nfs, 25 * MB);

    let systems = ["Inversion", "ULTRIX NFS"];
    let rows = [Comparison::new(
        "Create 25MByte file",
        &[141.5, 50.6],
        &[inv, nfs_t],
    )];
    print_comparison(&systems, &rows);
    println!();
    println!(
        "Inversion achieves {:.0}% of NFS creation throughput (paper: ~36%).",
        100.0 * nfs_t / inv
    );

    if report::wants_json() {
        let doc = report::bench_json(
            "fig3_create",
            &systems,
            &rows,
            &[
                ("minidb_stats_delta", after.delta(&before).to_json()),
                ("inv_stats", remote.testbed().fs.stats().to_json()),
            ],
        );
        report::write_bench_json("fig3_create", &doc).expect("write BENCH_fig3_create.json");
    }
}
