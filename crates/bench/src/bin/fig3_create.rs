//! Figure 3 — "25MByte file creation times" for Inversion (client/server)
//! and ULTRIX NFS. "Inversion gets about 36% of the throughput of NFS for
//! file creation. This difference is due primarily to the extra overhead in
//! maintaining indices in Inversion."

use bench::report::{print_comparison, print_header, Comparison};
use bench::testbed::{InversionTestbed, NfsTestbed};
use bench::workload::{measure_create, InversionRemote, UltrixNfs, MB};

fn main() {
    print_header("Figure 3: 25 MB file creation times");
    eprintln!("running Inversion client/server create ...");
    let mut remote = InversionRemote::new(InversionTestbed::paper());
    let inv = measure_create(&mut remote, 25 * MB);
    eprintln!("running ULTRIX NFS create ...");
    let mut nfs = UltrixNfs::new(NfsTestbed::paper());
    let nfs_t = measure_create(&mut nfs, 25 * MB);

    print_comparison(
        &["Inversion", "ULTRIX NFS"],
        &[Comparison::new(
            "Create 25MByte file",
            &[141.5, 50.6],
            &[inv, nfs_t],
        )],
    );
    println!();
    println!(
        "Inversion achieves {:.0}% of NFS creation throughput (paper: ~36%).",
        100.0 * nfs_t / inv
    );
}
