//! Figure 4 — "Random byte access": latency to read or write a single byte
//! at a random location in the 25 MB file, caches cold. "For single-byte
//! reads, Inversion gets 70 percent of the throughput of NFS. Single-byte
//! writes are slightly worse; Inversion is 61 percent of NFS."
//!
//! With `--threads N`, measures N concurrent clients doing random
//! single-byte reads from a cache-resident working set instead.

use bench::report::{self, print_comparison, print_header, Comparison};
use bench::scaling::{self, ScalingWorkload};
use bench::testbed::{InversionTestbed, NfsTestbed};
use bench::workload::{measure_byte_ops, measure_create, InversionRemote, UltrixNfs, MB};

/// Runs the figure's pathname resolution as POSTQUEL — a `naming.file`
/// equality pin — and reports whether the cost-based planner resolved it
/// to `naming_file_idx`. CI asserts `index_scan_chosen` stays true.
fn planner_probe(db: &minidb::Db) -> String {
    let mut s = db.begin().expect("begin planner probe");
    let oid = {
        let r = s
            .query("retrieve (n.file) from n in naming limit 1")
            .expect("sample a naming oid");
        match r.rows[0][0] {
            minidb::Datum::Oid(o) => o,
            ref other => panic!("naming.file is an oid, got {other:?}"),
        }
    };
    let before = db.stats();
    let hits = s
        .query(&format!(
            "retrieve (n.filename) from n in naming where n.file = {oid}"
        ))
        .expect("planner probe lookup");
    let d = db.stats().delta(&before);
    s.commit().expect("commit planner probe");
    let chose_index = d.planner.index_scans_chosen >= 1 && d.planner.seq_scans_chosen == 0;
    format!(
        "{{\"query\":\"retrieve (n.filename) from n in naming where n.file = <oid>\",\
         \"rows\":{},\"plans_built\":{},\"index_scans_chosen\":{},\
         \"seq_scans_chosen\":{},\"index_scan_chosen\":{}}}",
        hits.rows.len(),
        d.planner.plans_built,
        d.planner.index_scans_chosen,
        d.planner.seq_scans_chosen,
        chose_index
    )
}

fn thread_scaling(threads: usize) {
    print_header("Figure 4 --threads: multi-client random byte reads, cache-resident");
    let (base, multi) = scaling::measure_speedup(ScalingWorkload::RandomByte, threads);
    scaling::print_speedup(&base, &multi);
    if report::wants_json() {
        let doc = report::bench_json(
            "fig4_random_byte",
            &["Inversion"],
            &[],
            &[("thread_scaling", scaling::scaling_json(&base, &multi))],
        );
        report::write_bench_json("fig4_random_byte", &doc).expect("write BENCH json");
    }
}

fn main() {
    if let Some(threads) = report::threads_arg() {
        return thread_scaling(threads);
    }
    print_header("Figure 4: random single-byte access (25 MB file)");
    eprintln!("preparing Inversion ...");
    let mut remote = InversionRemote::new(InversionTestbed::paper());
    measure_create(&mut remote, 25 * MB);
    let before = remote.testbed().fs.db().stats();
    let (inv_r, inv_w) = measure_byte_ops(&mut remote, 25 * MB, 10);
    let after = remote.testbed().fs.db().stats();

    eprintln!("preparing NFS ...");
    let mut nfs = UltrixNfs::new(NfsTestbed::paper());
    measure_create(&mut nfs, 25 * MB);
    let (nfs_r, nfs_w) = measure_byte_ops(&mut nfs, 25 * MB, 10);

    let systems = ["Inversion", "ULTRIX NFS"];
    let rows = [
        Comparison::new("read 1 byte", &[0.02, 0.01], &[inv_r, nfs_r]),
        Comparison::new("write 1 byte", &[0.03, 0.02], &[inv_w, nfs_w]),
    ];
    print_comparison(&systems, &rows);
    println!();
    println!(
        "Inversion read throughput vs NFS: {:.0}% (paper: 70%); write: {:.0}% (paper: 61%).",
        100.0 * nfs_r / inv_r,
        100.0 * nfs_w / inv_w
    );

    if report::wants_json() {
        let doc = report::bench_json(
            "fig4_random_byte",
            &systems,
            &rows,
            &[
                ("minidb_stats_delta", after.delta(&before).to_json()),
                ("inv_stats", remote.testbed().fs.stats().to_json()),
                ("planner", planner_probe(remote.testbed().fs.db())),
            ],
        );
        report::write_bench_json("fig4_random_byte", &doc).expect("write BENCH json");
    }
}
