//! Figure 4 — "Random byte access": latency to read or write a single byte
//! at a random location in the 25 MB file, caches cold. "For single-byte
//! reads, Inversion gets 70 percent of the throughput of NFS. Single-byte
//! writes are slightly worse; Inversion is 61 percent of NFS."
//!
//! With `--threads N`, measures N concurrent clients doing random
//! single-byte reads from a cache-resident working set instead.

use bench::report::{self, print_comparison, print_header, Comparison};
use bench::scaling::{self, ScalingWorkload};
use bench::testbed::{InversionTestbed, NfsTestbed};
use bench::workload::{measure_byte_ops, measure_create, InversionRemote, UltrixNfs, MB};

fn thread_scaling(threads: usize) {
    print_header("Figure 4 --threads: multi-client random byte reads, cache-resident");
    let (base, multi) = scaling::measure_speedup(ScalingWorkload::RandomByte, threads);
    scaling::print_speedup(&base, &multi);
    if report::wants_json() {
        let doc = report::bench_json(
            "fig4_random_byte",
            &["Inversion"],
            &[],
            &[("thread_scaling", scaling::scaling_json(&base, &multi))],
        );
        report::write_bench_json("fig4_random_byte", &doc).expect("write BENCH json");
    }
}

fn main() {
    if let Some(threads) = report::threads_arg() {
        return thread_scaling(threads);
    }
    print_header("Figure 4: random single-byte access (25 MB file)");
    eprintln!("preparing Inversion ...");
    let mut remote = InversionRemote::new(InversionTestbed::paper());
    measure_create(&mut remote, 25 * MB);
    let before = remote.testbed().fs.db().stats();
    let (inv_r, inv_w) = measure_byte_ops(&mut remote, 25 * MB, 10);
    let after = remote.testbed().fs.db().stats();

    eprintln!("preparing NFS ...");
    let mut nfs = UltrixNfs::new(NfsTestbed::paper());
    measure_create(&mut nfs, 25 * MB);
    let (nfs_r, nfs_w) = measure_byte_ops(&mut nfs, 25 * MB, 10);

    let systems = ["Inversion", "ULTRIX NFS"];
    let rows = [
        Comparison::new("read 1 byte", &[0.02, 0.01], &[inv_r, nfs_r]),
        Comparison::new("write 1 byte", &[0.03, 0.02], &[inv_w, nfs_w]),
    ];
    print_comparison(&systems, &rows);
    println!();
    println!(
        "Inversion read throughput vs NFS: {:.0}% (paper: 70%); write: {:.0}% (paper: 61%).",
        100.0 * nfs_r / inv_r,
        100.0 * nfs_w / inv_w
    );

    if report::wants_json() {
        let doc = report::bench_json(
            "fig4_random_byte",
            &systems,
            &rows,
            &[
                ("minidb_stats_delta", after.delta(&before).to_json()),
                ("inv_stats", remote.testbed().fs.stats().to_json()),
            ],
        );
        report::write_bench_json("fig4_random_byte", &doc).expect("write BENCH json");
    }
}
