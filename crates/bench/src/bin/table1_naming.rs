//! Table 1 — "naming table entries for /etc/passwd".
//!
//! The paper's example rows:
//!
//! ```text
//! filename  parentid  file
//! /         0         810
//! etc       810       1076
//! passwd    1076      23114
//! ```
//!
//! Object identifiers differ per installation; the *structure* — each
//! entry's parentid equals its parent's file oid — is what the table shows.

use inversion::{CreateMode, InversionFs};

fn main() {
    let fs = InversionFs::open_in_memory().unwrap();
    let mut c = fs.client();
    c.p_begin().unwrap();
    c.p_mkdir("/etc").unwrap();
    let fd = c.p_creat("/etc/passwd", CreateMode::default()).unwrap();
    c.p_write(fd, b"root:*:0:0:System Administrator:/:/bin/csh\n")
        .unwrap();
    c.p_close(fd).unwrap();
    c.p_commit().unwrap();

    println!("Table 1: naming table entries for \"/etc/passwd\"");
    println!();
    let mut s = fs.db().begin().unwrap();
    let r = s
        .query("retrieve (n.filename, n.parentid, n.file) from n in naming")
        .unwrap();
    print!("{}", r.to_table());
    s.commit().unwrap();

    println!();
    println!("(paper's example oids: / = 810, etc = 1076, passwd = 23114)");
    println!("The data table for passwd is named inv<oid>:");
    let mut s = fs.db().begin().unwrap();
    let oid = fs.resolve(&mut s, "/etc/passwd", None).unwrap();
    s.commit().unwrap();
    let name = format!("inv{}", oid.0);
    assert!(fs.db().relation_id(&name).is_ok());
    println!("  {name} (exists: yes)");
}
