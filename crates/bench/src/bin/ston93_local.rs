//! The \[STON93\] local-benchmark aside: "\[STON93\] presents the results of
//! such a benchmark ... Those results show that Inversion gets better than
//! 90% of the throughput of the native file system on large sequential
//! transfers, and roughly 70% of the throughput on small, uniformly random
//! transfers." No network, no PRESTOserve: Inversion in-process against a
//! local FFS mount with an ordinary (asynchronous) buffer cache.

use bench::report::{print_comparison, print_header, Comparison};
use bench::testbed::{InversionTestbed, LocalFfsTestbed};
use bench::workload::{
    measure_create, measure_read_ops, measure_write_ops, InversionLocal, LocalFfs, MB,
};

fn main() {
    print_header("STON93 aside: Inversion in-process vs native local FFS (25 MB file)");
    eprintln!("running Inversion single-process ...");
    let mut inv = InversionLocal::new(InversionTestbed::paper());
    measure_create(&mut inv, 25 * MB);
    let (i_read1, i_readseq, i_readrand) = measure_read_ops(&mut inv, 25 * MB);
    let (i_write1, _i_wseq, i_wrand) = measure_write_ops(&mut inv, 25 * MB);

    eprintln!("running native local FFS ...");
    let mut ffs = LocalFfs::new(LocalFfsTestbed::new());
    measure_create(&mut ffs, 25 * MB);
    let (f_read1, f_readseq, f_readrand) = measure_read_ops(&mut ffs, 25 * MB);
    let (f_write1, _f_wseq, f_wrand) = measure_write_ops(&mut ffs, 25 * MB);

    // STON93 reports throughput ratios, not absolute seconds; the paper
    // quotes only the two headline percentages.
    print_comparison(
        &["Inversion local", "native FFS"],
        &[
            Comparison::new(
                "single 1MByte read",
                &[f64::NAN, f64::NAN],
                &[i_read1, f_read1],
            ),
            Comparison::new(
                "sequential page reads",
                &[f64::NAN, f64::NAN],
                &[i_readseq, f_readseq],
            ),
            Comparison::new(
                "random page reads",
                &[f64::NAN, f64::NAN],
                &[i_readrand, f_readrand],
            ),
            Comparison::new(
                "single 1MByte write",
                &[f64::NAN, f64::NAN],
                &[i_write1, f_write1],
            ),
            Comparison::new(
                "random page writes",
                &[f64::NAN, f64::NAN],
                &[i_wrand, f_wrand],
            ),
        ],
    );
    println!();
    println!(
        "large sequential transfers: Inversion at {:.0}% of native (STON93: better than 90%)",
        100.0 * f_read1 / i_read1
    );
    println!(
        "small random transfers:     Inversion at {:.0}% of native (STON93: roughly 70%)",
        100.0 * f_readrand / i_readrand
    );
}
