//! Table 3 — "Elapsed time in seconds for benchmark tests in three
//! configurations": Inversion client/server, ULTRIX NFS (with PRESTOserve),
//! and Inversion single process.

use bench::report::{print_comparison, print_header, Comparison};
use bench::testbed::{InversionTestbed, NfsTestbed};
use bench::workload::{run_suite, InversionLocal, InversionRemote, SuiteResult, UltrixNfs, MB};

/// The paper's Table 3, column-major: (client/server, NFS, single-process).
pub const PAPER: [(&str, [f64; 3]); 9] = [
    ("Create 25MByte file", [141.5, 50.6, 111.6]),
    ("Single 1MByte read", [3.4, 2.8, 0.4]),
    ("Page-sized sequential 1MByte read", [4.8, 2.2, 0.4]),
    ("Page-sized random 1MByte read", [5.5, 2.4, 0.8]),
    ("Single 1MByte write", [4.6, 2.0, 1.4]),
    ("Page-sized sequential 1MByte write", [5.6, 1.7, 1.4]),
    ("Page-sized random 1MByte write", [6.0, 1.7, 2.9]),
    ("Read single byte", [0.02, 0.01, 0.01]),
    ("Write single byte", [0.03, 0.02, 0.02]),
];

fn rows(r: &SuiteResult) -> [f64; 9] {
    [
        r.create,
        r.read_1mb_single,
        r.read_1mb_seq,
        r.read_1mb_rand,
        r.write_1mb_single,
        r.write_1mb_seq,
        r.write_1mb_rand,
        r.read_byte,
        r.write_byte,
    ]
}

fn main() {
    let file_bytes = 25 * MB;
    let runs = 10;

    print_header("Table 3: full benchmark, three configurations (25 MB file)");
    eprintln!("running Inversion client/server ...");
    let mut remote = InversionRemote::new(InversionTestbed::paper());
    let r_remote = rows(&run_suite(&mut remote, file_bytes, runs));

    eprintln!("running ULTRIX NFS + PRESTOserve ...");
    let mut nfs = UltrixNfs::new(NfsTestbed::paper());
    let r_nfs = rows(&run_suite(&mut nfs, file_bytes, runs));

    eprintln!("running Inversion single process ...");
    let mut local = InversionLocal::new(InversionTestbed::paper());
    let r_local = rows(&run_suite(&mut local, file_bytes, runs));

    let comparisons: Vec<Comparison> = PAPER
        .iter()
        .enumerate()
        .map(|(i, (label, paper))| {
            Comparison::new(label, paper, &[r_remote[i], r_nfs[i], r_local[i]])
        })
        .collect();
    print_comparison(
        &["Inv client/server", "ULTRIX NFS", "Inv single process"],
        &comparisons,
    );

    // The introduction's headline: in-manager execution "yielding
    // performance as much as seven times better than that of ULTRIX NFS".
    let mut best = (0usize, 0.0f64);
    for i in 1..7 {
        let speedup = r_nfs[i] / r_local[i];
        if speedup > best.1 {
            best = (i, speedup);
        }
    }
    let paper_peak = PAPER
        .iter()
        .skip(1)
        .take(6)
        .map(|(_, p)| p[1] / p[2])
        .fold(0.0f64, f64::max);
    println!();
    println!(
        "In-manager execution vs ULTRIX NFS: up to {:.1}x faster (on \"{}\"); \
         the paper reports \"as much as seven times better\" (its Table 3 peaks at {paper_peak:.1}x).",
        best.1, PAPER[best.0].0,
    );
}
