//! Figure 5 — "Read throughput": a single 1 MB transfer (Inversion at 80%
//! of NFS), sequential page-sized transfers (47%), and random page-sized
//! transfers (43%).
//!
//! With `--threads N`, measures N concurrent clients doing sequential
//! page-sized reads from a cache-resident working set instead — the
//! multi-client scaling the sharded buffer manager exists for.

use bench::extent;
use bench::remote::{self, RemoteWorkload};
use bench::report::{self, print_comparison, print_header, Comparison};
use bench::scaling::{self, ScalingWorkload};
use bench::testbed::{InversionTestbed, NfsTestbed};
use bench::workload::{measure_create, measure_read_ops, InversionRemote, UltrixNfs, MB};

fn thread_scaling(threads: usize, with_remote: bool) {
    print_header("Figure 5 --threads: multi-client sequential reads, cache-resident");
    let (base, multi) = scaling::measure_speedup(ScalingWorkload::SequentialRead, threads);
    scaling::print_speedup(&base, &multi);
    let mut sections = vec![("thread_scaling", scaling::scaling_json(&base, &multi))];
    if with_remote {
        println!();
        print_header("Figure 5 --remote: multi-client reads through the wire protocol");
        let (rbase, rmulti) = remote::measure_remote_speedup(RemoteWorkload::SequentialRead, threads);
        remote::print_remote_speedup(&rbase, &rmulti);
        sections.push(("remote_scaling", remote::remote_json(&rbase, &rmulti)));
    }
    println!();
    print_header("Figure 5 extents: cold sequential reads, extent layout vs fragmented");
    let (ebase, eext) = extent::measure_extent_speedup(threads);
    extent::print_extent_speedup(&ebase, &eext);
    sections.push(("extent_layout", extent::extent_json(&ebase, &eext)));
    if report::wants_json() {
        let doc = report::bench_json("fig5_reads", &["Inversion"], &[], &sections);
        report::write_bench_json("fig5_reads", &doc).expect("write BENCH json");
    }
}

fn main() {
    if let Some(threads) = report::threads_arg() {
        return thread_scaling(threads, report::wants_remote());
    }
    if report::wants_remote() {
        return thread_scaling(4, true);
    }
    print_header("Figure 5: read throughput (1 MB from a 25 MB file)");
    eprintln!("preparing Inversion ...");
    let mut remote = InversionRemote::new(InversionTestbed::paper());
    measure_create(&mut remote, 25 * MB);
    let before = remote.testbed().fs.db().stats();
    let (i1, iseq, irand) = measure_read_ops(&mut remote, 25 * MB);
    let after = remote.testbed().fs.db().stats();

    eprintln!("preparing NFS ...");
    let mut nfs = UltrixNfs::new(NfsTestbed::paper());
    measure_create(&mut nfs, 25 * MB);
    let (n1, nseq, nrand) = measure_read_ops(&mut nfs, 25 * MB);

    let systems = ["Inversion", "ULTRIX NFS"];
    let rows = [
        Comparison::new("single 1MByte read", &[3.4, 2.8], &[i1, n1]),
        Comparison::new(
            "1MByte read sequentially, page-sized",
            &[4.8, 2.2],
            &[iseq, nseq],
        ),
        Comparison::new(
            "1MByte read at random, page-sized",
            &[5.5, 2.4],
            &[irand, nrand],
        ),
    ];
    print_comparison(&systems, &rows);
    println!();
    println!(
        "Inversion throughput vs NFS — single: {:.0}% (paper 80%), sequential: {:.0}% (paper 47%), random: {:.0}% (paper 43%).",
        100.0 * n1 / i1,
        100.0 * nseq / iseq,
        100.0 * nrand / irand
    );

    if report::wants_json() {
        let doc = report::bench_json(
            "fig5_reads",
            &systems,
            &rows,
            &[
                ("minidb_stats_delta", after.delta(&before).to_json()),
                ("inv_stats", remote.testbed().fs.stats().to_json()),
            ],
        );
        report::write_bench_json("fig5_reads", &doc).expect("write BENCH json");
    }
}
