//! Deterministic torture-battery generator and oracle for the crash/fault
//! scenario tests (`tests/torture.rs`).
//!
//! A [`Schedule`] (seed + shape + fault kind) expands into a [`Plan`]: one
//! transaction list per simulated client session, drawn from a hand-rolled
//! splitmix64 stream so the same seed always yields a byte-identical plan.
//! Sessions get disjoint directory trees (`/s0`, `/s1`, ...), so the oracle
//! for a concurrent run is the union of independent per-session [`Model`]s:
//! the runner replays each transaction into its session's model only after
//! the server acknowledged the commit, and after every crash the recovered
//! file system must match the acknowledged models exactly (the paper's
//! "essentially instantaneous" recovery, checked for *correctness* rather
//! than speed).
//!
//! The generator tracks its own shadow state while emitting operations, so
//! every plan is legal by construction: renames move existing names to
//! fresh ones, slices stay inside their sources, undeletes resurrect only
//! names that are actually dead. Nothing here consults a clock or an
//! external RNG — determinism is the whole point, and the corpus file
//! `tests/torture-corpus.txt` pins known seeds' plans against drift.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

use inversion::{CreateMode, InvClient, InvResult, OpenMode, SeekWhence, CHUNK_SIZE};
use simdev::SimInstant;

/// splitmix64. Hand-rolled so the battery needs no RNG dependency and the
/// stream can never drift under a crate upgrade.
#[derive(Clone)]
pub struct Rng(u64);

impl Rng {
    pub fn new(seed: u64) -> Rng {
        Rng(seed)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform in `[lo, hi)`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo)
    }

    /// True `pct` percent of the time.
    pub fn chance(&mut self, pct: u64) -> bool {
        self.below(100) < pct
    }
}

/// Deterministic file contents: the battery stores `(len, salt)` instead of
/// byte vectors so plans stay small and traces stay readable.
pub fn fill(len: usize, salt: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u64).wrapping_mul(131).wrapping_add(salt as u64) as u8)
        .collect()
}

/// FNV-1a over a byte slice — used to summarize file contents in event
/// traces without embedding the bytes.
pub fn fnv64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One file-system operation inside a torture transaction. Paths are
/// absolute and live inside the owning session's directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TortureOp {
    Mkdir { path: String },
    /// Create `path` and write `fill(len, salt)`.
    Creat { path: String, len: usize, salt: u8, compressed: bool },
    /// Open read-write, seek to `offset`, overwrite with `fill(len, salt)`.
    Rewrite { path: String, offset: u64, len: usize, salt: u8 },
    Rename { from: String, to: String },
    Unlink { path: String },
    /// Resurrect a previously unlinked file via time travel; the runner
    /// supplies the timestamp it captured before the unlinking transaction.
    Undelete { path: String },
    /// Compose `dest` from byte ranges `(src, offset, len)` of other files.
    Slice { dest: String, ranges: Vec<(String, u64, u64)>, compressed: bool },
    Readdir { dir: String },
    Stat { path: String },
    ReadBack { path: String },
}

impl fmt::Display for TortureOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TortureOp::Mkdir { path } => write!(f, "mkdir {path}"),
            TortureOp::Creat { path, len, salt, compressed } => {
                write!(f, "creat {path} len={len} salt={salt} z={}", *compressed as u8)
            }
            TortureOp::Rewrite { path, offset, len, salt } => {
                write!(f, "rewrite {path} off={offset} len={len} salt={salt}")
            }
            TortureOp::Rename { from, to } => write!(f, "rename {from} -> {to}"),
            TortureOp::Unlink { path } => write!(f, "unlink {path}"),
            TortureOp::Undelete { path } => write!(f, "undelete {path}"),
            TortureOp::Slice { dest, ranges, compressed } => {
                write!(f, "slice {dest} z={}", *compressed as u8)?;
                for (src, off, len) in ranges {
                    write!(f, " [{src} {off}+{len}]")?;
                }
                Ok(())
            }
            TortureOp::Readdir { dir } => write!(f, "readdir {dir}"),
            TortureOp::Stat { path } => write!(f, "stat {path}"),
            TortureOp::ReadBack { path } => write!(f, "readback {path}"),
        }
    }
}

/// What goes wrong while a schedule runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Clean run: concurrent wire phase, orderly shutdown, crash, recover.
    None,
    /// Every session's duplex link is severed with a transaction open; the
    /// pool must abort the orphaned work.
    LinkDropDuplex,
    /// Same, over real localhost TCP sockets.
    LinkDropTcp,
    /// The data device's write path fails mid-destage; after clearing the
    /// fault the system must still reach a clean recovered state.
    DeviceWriteFault,
    /// The data device's read path fails on a cold cache after recovery.
    DeviceReadFault,
    /// The log device fails partway through a commit's force: the torn
    /// transaction is indeterminate until recovery resolves it.
    CrashMidCommit,
    /// The data device fails partway through a checkpoint's dirty-page
    /// drain, then the power goes out with the log intact.
    CrashMidCheckpoint,
    /// The power goes out while the I/O scheduler still holds queued
    /// write-behind requests: the queue is paused, a checkpoint blocks in
    /// the drain barrier, and the cut aborts the queue with WAL-covered
    /// pages still in flight. Recovery must replay them from the log.
    CrashInFlight,
}

impl FaultKind {
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::None => "none",
            FaultKind::LinkDropDuplex => "link-drop-duplex",
            FaultKind::LinkDropTcp => "link-drop-tcp",
            FaultKind::DeviceWriteFault => "device-write-fault",
            FaultKind::DeviceReadFault => "device-read-fault",
            FaultKind::CrashMidCommit => "crash-mid-commit",
            FaultKind::CrashMidCheckpoint => "crash-mid-checkpoint",
            FaultKind::CrashInFlight => "crash-in-flight",
        }
    }
}

/// A seed-driven scenario: shape plus fault layering. `generate()` is a
/// pure function of this struct.
#[derive(Debug, Clone, Copy)]
pub struct Schedule {
    pub seed: u64,
    pub sessions: usize,
    pub txns_per_session: usize,
    pub fault: FaultKind,
}

impl Schedule {
    pub fn new(seed: u64, fault: FaultKind) -> Schedule {
        Schedule { seed, sessions: 3, txns_per_session: 3, fault }
    }

    /// Expands the schedule into a per-session transaction plan.
    pub fn generate(&self) -> Plan {
        let mut rng = Rng::new(self.seed);
        let sessions = (0..self.sessions)
            .map(|k| gen_session(k, self.txns_per_session, &mut rng))
            .collect();
        Plan { sessions }
    }
}

/// One session's worth of transactions, all under `dir`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionPlan {
    pub dir: String,
    pub txns: Vec<Vec<TortureOp>>,
}

/// A fully expanded schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plan {
    pub sessions: Vec<SessionPlan>,
}

impl Plan {
    /// A canonical textual rendering: the determinism tests and the corpus
    /// file compare these byte-for-byte.
    pub fn trace(&self) -> String {
        let mut out = String::new();
        for (k, sp) in self.sessions.iter().enumerate() {
            for (t, txn) in sp.txns.iter().enumerate() {
                out.push_str(&format!("s{k}.t{t}:"));
                for op in txn {
                    out.push_str(&format!(" {op};"));
                }
                out.push('\n');
            }
        }
        out
    }
}

/// Generator shadow state for one session: enough to emit only legal ops.
struct Gen {
    root: String,
    dirs: Vec<String>,
    files: BTreeMap<String, u64>,
    /// Unlinked files directly under the session root (their path is
    /// guaranteed stable, so a later undelete can name them).
    dead: BTreeMap<String, u64>,
    next_id: u32,
}

impl Gen {
    fn fresh(&mut self, rng: &mut Rng, prefix: &str) -> String {
        let dir = self.dirs[rng.below(self.dirs.len() as u64) as usize].clone();
        let id = self.next_id;
        self.next_id += 1;
        format!("{dir}/{prefix}{id}")
    }

    fn pick_file(&self, rng: &mut Rng) -> Option<String> {
        if self.files.is_empty() {
            return None;
        }
        let keys: Vec<&String> = self.files.keys().collect();
        Some(keys[rng.below(keys.len() as u64) as usize].clone())
    }
}

const MAX_CREATE: u64 = 2 * CHUNK_SIZE as u64 + 500;

fn gen_session(k: usize, txns: usize, rng: &mut Rng) -> SessionPlan {
    let root = format!("/s{k}");
    let mut g = Gen {
        dirs: vec![root.clone()],
        root,
        files: BTreeMap::new(),
        dead: BTreeMap::new(),
        next_id: 0,
    };
    let mut plan = Vec::with_capacity(txns);
    for _ in 0..txns {
        let nops = rng.range(2, 5) as usize;
        let mut txn = Vec::with_capacity(nops);
        // Paths created, modified, or killed inside this transaction:
        // excluded from same-transaction unlink/undelete so the runner's
        // pre-transaction timestamp is always a valid time-travel target.
        let mut touched: BTreeSet<String> = BTreeSet::new();
        for _ in 0..nops {
            txn.push(gen_op(&mut g, rng, &mut touched));
        }
        plan.push(txn);
    }
    SessionPlan { dir: g.root, txns: plan }
}

fn gen_op(g: &mut Gen, rng: &mut Rng, touched: &mut BTreeSet<String>) -> TortureOp {
    loop {
        match rng.below(12) {
            // Creation is the most common op so plans grow state to abuse.
            0..=2 => {
                let path = g.fresh(rng, "f");
                let len = rng.below(MAX_CREATE) as usize;
                let salt = rng.next_u64() as u8;
                let compressed = rng.chance(25);
                g.files.insert(path.clone(), len as u64);
                touched.insert(path.clone());
                return TortureOp::Creat { path, len, salt, compressed };
            }
            3 | 4 => {
                let Some(path) = g.pick_file(rng) else { continue };
                let size = g.files[&path];
                let offset = rng.below(size + 1);
                let len = rng.range(1, CHUNK_SIZE as u64) as usize;
                let salt = rng.next_u64() as u8;
                g.files.insert(path.clone(), size.max(offset + len as u64));
                touched.insert(path.clone());
                return TortureOp::Rewrite { path, offset, len, salt };
            }
            5 => {
                // Rename: mostly files, sometimes a whole directory tree.
                if g.dirs.len() > 1 && rng.chance(30) {
                    let from = g.dirs[rng.range(1, g.dirs.len() as u64) as usize].clone();
                    let id = g.next_id;
                    g.next_id += 1;
                    let to = format!("{}/d{id}", g.root);
                    rename_prefix(&mut g.dirs, &from, &to);
                    let files = std::mem::take(&mut g.files);
                    g.files = files
                        .into_iter()
                        .map(|(p, sz)| (rekey(&p, &from, &to), sz))
                        .collect();
                    // Dead entries under the moved tree lose their stable
                    // path; forget them rather than emit a doomed undelete.
                    g.dead.retain(|p, _| !under(p, &from));
                    touched.insert(to.clone());
                    return TortureOp::Rename { from, to };
                }
                let Some(from) = g.pick_file(rng) else { continue };
                let to = g.fresh(rng, "r");
                let sz = g.files.remove(&from).unwrap();
                g.files.insert(to.clone(), sz);
                touched.insert(from.clone());
                touched.insert(to.clone());
                return TortureOp::Rename { from, to };
            }
            6 => {
                let candidates: Vec<String> = g
                    .files
                    .keys()
                    .filter(|p| !touched.contains(*p))
                    .cloned()
                    .collect();
                if candidates.is_empty() {
                    continue;
                }
                let path = candidates[rng.below(candidates.len() as u64) as usize].clone();
                let sz = g.files.remove(&path).unwrap();
                if parent_of(&path) == g.root {
                    g.dead.insert(path.clone(), sz);
                }
                touched.insert(path.clone());
                return TortureOp::Unlink { path };
            }
            7 => {
                let candidates: Vec<String> = g
                    .dead
                    .keys()
                    .filter(|p| !touched.contains(*p))
                    .cloned()
                    .collect();
                if candidates.is_empty() {
                    continue;
                }
                let path = candidates[rng.below(candidates.len() as u64) as usize].clone();
                let sz = g.dead.remove(&path).unwrap();
                g.files.insert(path.clone(), sz);
                touched.insert(path.clone());
                return TortureOp::Undelete { path };
            }
            8 => {
                // Slice: compose a new file from ranges of nonempty files.
                let sources: Vec<(String, u64)> = g
                    .files
                    .iter()
                    .filter(|(_, sz)| **sz > 0)
                    .map(|(p, sz)| (p.clone(), *sz))
                    .collect();
                if sources.is_empty() {
                    continue;
                }
                let dest = g.fresh(rng, "x");
                let nranges = rng.range(1, 4) as usize;
                let mut ranges = Vec::with_capacity(nranges);
                let mut total = 0u64;
                for _ in 0..nranges {
                    let (src, sz) = sources[rng.below(sources.len() as u64) as usize].clone();
                    let offset = rng.below(sz);
                    let len = rng.range(1, sz - offset + 1);
                    total += len;
                    ranges.push((src, offset, len));
                }
                let compressed = rng.chance(25);
                g.files.insert(dest.clone(), total);
                touched.insert(dest.clone());
                return TortureOp::Slice { dest, ranges, compressed };
            }
            9 => {
                if g.dirs.len() >= 3 || !rng.chance(50) {
                    let dir = g.dirs[rng.below(g.dirs.len() as u64) as usize].clone();
                    return TortureOp::Readdir { dir };
                }
                let path = g.fresh(rng, "d");
                g.dirs.push(path.clone());
                touched.insert(path.clone());
                return TortureOp::Mkdir { path };
            }
            10 => {
                let Some(path) = g.pick_file(rng) else { continue };
                return TortureOp::Stat { path };
            }
            _ => {
                let Some(path) = g.pick_file(rng) else { continue };
                return TortureOp::ReadBack { path };
            }
        }
    }
}

fn parent_of(path: &str) -> String {
    match path.rfind('/') {
        Some(0) => "/".to_string(),
        Some(i) => path[..i].to_string(),
        None => "/".to_string(),
    }
}

fn under(path: &str, dir: &str) -> bool {
    path.starts_with(dir) && path.as_bytes().get(dir.len()) == Some(&b'/')
}

fn rekey(path: &str, from: &str, to: &str) -> String {
    if path == from {
        to.to_string()
    } else if under(path, from) {
        format!("{to}{}", &path[from.len()..])
    } else {
        path.to_string()
    }
}

fn rename_prefix(dirs: &mut [String], from: &str, to: &str) {
    for d in dirs.iter_mut() {
        *d = rekey(d, from, to);
    }
}

/// The append-only oracle for one session: what the file system must show
/// for every transaction the server acknowledged.
#[derive(Debug, Default, Clone)]
pub struct Model {
    pub dirs: BTreeSet<String>,
    pub files: BTreeMap<String, Vec<u8>>,
    /// Bytes a file held when it was unlinked — what undelete restores.
    pub graveyard: BTreeMap<String, Vec<u8>>,
}

impl Model {
    /// A model rooted at the session directory (which already exists).
    pub fn rooted(dir: &str) -> Model {
        let mut m = Model::default();
        m.dirs.insert(dir.to_string());
        m
    }

    pub fn apply(&mut self, op: &TortureOp) {
        match op {
            TortureOp::Mkdir { path } => {
                self.dirs.insert(path.clone());
            }
            TortureOp::Creat { path, len, salt, .. } => {
                self.files.insert(path.clone(), fill(*len, *salt));
            }
            TortureOp::Rewrite { path, offset, len, salt } => {
                let bytes = self.files.get_mut(path).expect("rewrite target");
                let end = *offset as usize + len;
                if bytes.len() < end {
                    bytes.resize(end, 0);
                }
                bytes[*offset as usize..end].copy_from_slice(&fill(*len, *salt));
            }
            TortureOp::Rename { from, to } => {
                if let Some(bytes) = self.files.remove(from) {
                    self.files.insert(to.clone(), bytes);
                } else {
                    // Directory rename: move the node and every descendant.
                    self.dirs = std::mem::take(&mut self.dirs)
                        .into_iter()
                        .map(|d| rekey(&d, from, to))
                        .collect();
                    self.files = std::mem::take(&mut self.files)
                        .into_iter()
                        .map(|(p, b)| (rekey(&p, from, to), b))
                        .collect();
                    self.graveyard.retain(|p, _| !under(p, from));
                }
            }
            TortureOp::Unlink { path } => {
                if let Some(bytes) = self.files.remove(path) {
                    self.graveyard.insert(path.clone(), bytes);
                } else {
                    self.dirs.remove(path);
                }
            }
            TortureOp::Undelete { path } => {
                let bytes = self.graveyard.get(path).expect("undelete target").clone();
                self.files.insert(path.clone(), bytes);
            }
            TortureOp::Slice { dest, ranges, .. } => {
                let mut out = Vec::new();
                for (src, offset, len) in ranges {
                    let bytes = self.files.get(src).expect("slice source");
                    out.extend_from_slice(&bytes[*offset as usize..(*offset + *len) as usize]);
                }
                self.files.insert(dest.clone(), out);
            }
            TortureOp::Readdir { .. } | TortureOp::Stat { .. } | TortureOp::ReadBack { .. } => {}
        }
    }

    pub fn apply_txn(&mut self, txn: &[TortureOp]) {
        for op in txn {
            self.apply(op);
        }
    }

    /// The expected immediate children of `dir`, sorted by name.
    pub fn expect_listing(&self, dir: &str) -> Vec<String> {
        let mut names: Vec<String> = self
            .dirs
            .iter()
            .chain(self.files.keys())
            .filter(|p| parent_of(p) == dir)
            .map(|p| p[p.rfind('/').unwrap() + 1..].to_string())
            .collect();
        names.sort();
        names
    }
}

/// Per-path time-travel anchors: a timestamp at which each since-unlinked
/// file was last visible with the bytes the model's graveyard holds. The
/// runner records one before every transaction that buries a file.
pub type UndeleteTimes = HashMap<String, SimInstant>;

/// Executes one op through a local (in-process) client inside an already
/// open transaction, returning a deterministic event string. The serial
/// determinism test runs whole plans through this and compares traces.
pub fn exec_local(
    c: &mut InvClient,
    op: &TortureOp,
    times: &UndeleteTimes,
) -> InvResult<String> {
    match op {
        TortureOp::Mkdir { path } => {
            c.p_mkdir(path)?;
            Ok(format!("{op} => ok"))
        }
        TortureOp::Creat { path, len, salt, compressed } => {
            let mode = if *compressed {
                CreateMode::default().compressed()
            } else {
                CreateMode::default()
            };
            let fd = c.p_creat(path, mode)?;
            let n = c.p_write(fd, &fill(*len, *salt))?;
            c.p_close(fd)?;
            Ok(format!("{op} => wrote {n}"))
        }
        TortureOp::Rewrite { path, offset, len, salt } => {
            let fd = c.p_open(path, OpenMode::ReadWrite, None)?;
            c.p_lseek(fd, *offset as i64, SeekWhence::Set)?;
            let n = c.p_write(fd, &fill(*len, *salt))?;
            c.p_close(fd)?;
            Ok(format!("{op} => wrote {n}"))
        }
        TortureOp::Rename { from, to } => {
            c.p_rename(from, to)?;
            Ok(format!("{op} => ok"))
        }
        TortureOp::Unlink { path } => {
            c.p_unlink(path)?;
            Ok(format!("{op} => ok"))
        }
        TortureOp::Undelete { path } => {
            let t = *times.get(path).expect("undelete without anchor");
            c.p_undelete(path, t)?;
            Ok(format!("{op} => ok"))
        }
        TortureOp::Slice { dest, ranges, compressed } => {
            let mode = if *compressed {
                CreateMode::default().compressed()
            } else {
                CreateMode::default()
            };
            let rs: Vec<inversion::SliceRange> = ranges
                .iter()
                .map(|(p, o, l)| inversion::SliceRange::new(p.clone(), *o, *l))
                .collect();
            let st = c.p_slice(dest, mode, &rs)?;
            Ok(format!("{op} => size {}", st.size))
        }
        TortureOp::Readdir { dir } => {
            let mut names: Vec<String> =
                c.p_readdir(dir, None)?.into_iter().map(|(n, _)| n).collect();
            names.sort();
            Ok(format!("{op} => [{}]", names.join(" ")))
        }
        TortureOp::Stat { path } => {
            let st = c.p_stat(path, None)?;
            Ok(format!("{op} => size {}", st.size))
        }
        TortureOp::ReadBack { path } => {
            let bytes = c.read_to_vec(path, None)?;
            Ok(format!("{op} => len {} fnv {:016x}", bytes.len(), fnv64(&bytes)))
        }
    }
}

/// The paths a transaction is about to bury, in order. The runner anchors a
/// timestamp for each before executing the transaction.
pub fn buried_paths(txn: &[TortureOp]) -> Vec<String> {
    txn.iter()
        .filter_map(|op| match op {
            TortureOp::Unlink { path } => Some(path.clone()),
            _ => None,
        })
        .collect()
}

/// The canonical battery: every fault kind crossed with a few seeds. The
/// CI smoke and the full test battery both draw from this list, so it is
/// the single place the "20+ seeded schedules" requirement lives.
pub fn standard_battery() -> Vec<Schedule> {
    let kinds = [
        FaultKind::None,
        FaultKind::LinkDropDuplex,
        FaultKind::LinkDropTcp,
        FaultKind::DeviceWriteFault,
        FaultKind::DeviceReadFault,
        FaultKind::CrashMidCommit,
        FaultKind::CrashMidCheckpoint,
        FaultKind::CrashInFlight,
    ];
    let mut out = Vec::new();
    for (i, kind) in kinds.iter().enumerate() {
        for s in 0..3u64 {
            out.push(Schedule::new(0x1253_4944 + 1000 * i as u64 + s, *kind));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_stable() {
        let mut r = Rng::new(42);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let mut r2 = Rng::new(42);
        let again: Vec<u64> = (0..4).map(|_| r2.next_u64()).collect();
        assert_eq!(first, again);
        assert_ne!(first[0], first[1]);
    }

    #[test]
    fn plans_are_deterministic_and_distinct_across_seeds() {
        let a = Schedule::new(7, FaultKind::None).generate();
        let b = Schedule::new(7, FaultKind::None).generate();
        let c = Schedule::new(8, FaultKind::None).generate();
        assert_eq!(a.trace(), b.trace());
        assert_ne!(a.trace(), c.trace());
        assert_eq!(a.sessions.len(), 3);
    }

    #[test]
    fn model_replay_matches_generator_sizes() {
        // The generator's shadow sizes and the oracle model must agree on
        // every plan: replay each session and compare final file sets.
        for seed in 0..20u64 {
            let plan = Schedule::new(seed, FaultKind::None).generate();
            for sp in &plan.sessions {
                let mut m = Model::rooted(&sp.dir);
                for txn in &sp.txns {
                    m.apply_txn(txn);
                }
                for (path, bytes) in &m.files {
                    assert!(path.starts_with(&sp.dir), "{path} outside {}", sp.dir);
                    assert!(bytes.len() as u64 <= 4 * MAX_CREATE);
                }
            }
        }
    }

    #[test]
    fn battery_covers_every_fault_kind() {
        let battery = standard_battery();
        assert!(battery.len() >= 21, "need 20+ schedules, got {}", battery.len());
        for kind in [
            FaultKind::None,
            FaultKind::LinkDropDuplex,
            FaultKind::LinkDropTcp,
            FaultKind::DeviceWriteFault,
            FaultKind::DeviceReadFault,
            FaultKind::CrashMidCommit,
            FaultKind::CrashMidCheckpoint,
            FaultKind::CrashInFlight,
        ] {
            assert!(battery.iter().any(|s| s.fault == kind), "{} missing", kind.name());
        }
        let seeds: BTreeSet<u64> = battery.iter().map(|s| s.seed).collect();
        assert_eq!(seeds.len(), battery.len(), "seeds must be distinct");
    }
}
