//! Extent layout vs. block-at-a-time allocation — the fig5 `extent_layout`
//! section.
//!
//! Four clients grow four relations concurrently (round-robin extends, the
//! allocation pattern a multi-user server produces), then each scans its own
//! relation sequentially from a cold cache. Under the old bump allocator
//! every relation's blocks interleave on the platter, so every read seeks;
//! with extent allocation each relation owns runs of contiguous blocks, and
//! the I/O scheduler's elevator turns four interleaved demand streams back
//! into sequential device access via the prefetch window.
//!
//! Like the rest of the crate, the result is virtual time on the rz58
//! profile: the measured loop drives the real `Smgr` read path (prefetch
//! submission, C-SCAN pick order, ticket claims) and the device's own seek
//! model prices the layouts.

use std::sync::Arc;

use minidb::page::PAGE_SIZE;
use minidb::smgr::{shared_device, GenericManager, Smgr};
use minidb::{DeviceId, Oid, RelId, StatsRegistry};
use simdev::{DiskProfile, MagneticDisk, SimClock};

/// Pages each client scans; small enough that setup stays fast, large
/// enough that seek-vs-sequential pricing dominates fixed costs.
const PAGES_PER_CLIENT: u64 = 64;
/// Demand-stream read-ahead, submitted through the scheduler per phase.
const WINDOW: u64 = 16;
/// Pages a client appends per growth turn — the burst a write-behind
/// flush produces, so the bump allocator interleaves *runs* of blocks
/// that never line up with a later block-by-block concurrent scan.
const GROWTH_BURST: u64 = 4;

/// One measured layout configuration.
#[derive(Debug, Clone)]
pub struct ExtentRun {
    pub extent_size: u64,
    pub io_queue_depth: usize,
    pub threads: usize,
    pub pages_per_client: u64,
    pub virtual_secs: f64,
    pub mb_per_sec: f64,
    /// Requests the elevator served adjacent to their predecessor.
    pub batched_neighbors: u64,
    pub elevator_passes: u64,
}

/// Grows `threads` relations round-robin under `extent_size`, then scans
/// them concurrently and returns the aggregate cold-read bandwidth.
fn measure_layout(extent_size: u64, depth: usize, threads: usize) -> ExtentRun {
    let threads = threads.max(1);
    let clock = SimClock::new();
    let dev = shared_device(MagneticDisk::new(
        "rz58",
        clock.clone(),
        DiskProfile::rz58(),
    ));
    let mut smgr = Smgr::new();
    smgr.register(DeviceId::DEFAULT, Box::new(GenericManager::format(dev).unwrap()))
        .unwrap();
    let stats = Arc::new(StatsRegistry::new());
    smgr.attach_stats(clock.clone(), Arc::clone(&stats));
    smgr.with(DeviceId::DEFAULT, |m| {
        m.set_extent_size(extent_size);
        Ok(())
    })
    .unwrap();

    let rels: Vec<RelId> = (0..threads as u32).map(|c| Oid(200 + c)).collect();
    for &rel in &rels {
        smgr.with(DeviceId::DEFAULT, |m| m.create_rel(rel)).unwrap();
    }
    // Concurrent growth in bursts: the extends interleave, so the bump
    // allocator scatters each relation's blocks while extents keep them
    // in relation-owned runs.
    let page = vec![0x5au8; PAGE_SIZE];
    let mut grown = 0;
    while grown < PAGES_PER_CLIENT {
        for &rel in &rels {
            for _ in 0..GROWTH_BURST.min(PAGES_PER_CLIENT - grown) {
                smgr.with(DeviceId::DEFAULT, |m| m.extend(rel, &page).map(|_| ()))
                    .unwrap();
            }
        }
        grown += GROWTH_BURST;
    }
    smgr.start_io(depth);

    // The measured scan: each phase, every client submits its prefetch
    // window (queued while the worker is paused so the elevator sees the
    // whole batch, as a loaded queue would), the scheduler drains it in
    // sweep order, and the clients consume their tickets.
    let mut buf = vec![0u8; PAGE_SIZE];
    let t0 = clock.now();
    let mut blk = 0;
    while blk < PAGES_PER_CLIENT {
        let hi = (blk + WINDOW).min(PAGES_PER_CLIENT);
        if smgr.io_active() {
            smgr.io_pause(true);
            for b in blk..hi {
                for &rel in &rels {
                    smgr.prefetch_page(DeviceId::DEFAULT, rel, b);
                }
            }
            smgr.io_pause(false);
            smgr.sync_devices(&[DeviceId::DEFAULT]).unwrap();
        }
        for b in blk..hi {
            for &rel in &rels {
                smgr.read_page(DeviceId::DEFAULT, rel, b, &mut buf).unwrap();
            }
        }
        blk = hi;
    }
    let secs = clock.now().since(t0).as_secs_f64().max(1e-9);

    let io = stats.io_queue(DeviceId::DEFAULT);
    let total_bytes = threads as u64 * PAGES_PER_CLIENT * PAGE_SIZE as u64;
    ExtentRun {
        extent_size,
        io_queue_depth: depth,
        threads,
        pages_per_client: PAGES_PER_CLIENT,
        virtual_secs: secs,
        mb_per_sec: total_bytes as f64 / (1 << 20) as f64 / secs,
        batched_neighbors: io.batched_neighbors.get(),
        elevator_passes: io.elevator_passes.get(),
    }
}

/// Measures the fragmented synchronous baseline (extent size 1, no
/// scheduler) against extents plus the elevator, `threads` clients each.
pub fn measure_extent_speedup(threads: usize) -> (ExtentRun, ExtentRun) {
    (measure_layout(1, 0, threads), measure_layout(16, 64, threads))
}

/// Prints the pair as a small table and returns the bandwidth ratio.
pub fn print_extent_speedup(base: &ExtentRun, ext: &ExtentRun) -> f64 {
    println!(
        "{:<24} {:>8} {:>12} {:>12} {:>10} {:>8}",
        "layout", "clients", "MB/s", "virtual s", "batched", "passes"
    );
    println!("{}", "-".repeat(80));
    for (name, run) in [("block-at-a-time, sync", base), ("extents + elevator", ext)] {
        println!(
            "{:<24} {:>8} {:>12.3} {:>12.4} {:>10} {:>8}",
            name, run.threads, run.mb_per_sec, run.virtual_secs,
            run.batched_neighbors, run.elevator_passes
        );
    }
    let speedup = ext.mb_per_sec / base.mb_per_sec;
    println!();
    println!(
        "sequential read bandwidth with extents + elevator: {speedup:.2}x the \
         fragmented synchronous layout ({} clients, {} pages each, cold cache)",
        ext.threads, ext.pages_per_client
    );
    speedup
}

/// Renders the pair as the `extent_layout` JSON section of a BENCH report.
pub fn extent_json(base: &ExtentRun, ext: &ExtentRun) -> String {
    let speedup = ext.mb_per_sec / base.mb_per_sec;
    format!(
        "{{\"workload\": \"extent_sequential_read\", \"threads\": {}, \
         \"pages_per_client\": {}, \"baseline_extent_size\": {}, \
         \"extent_size\": {}, \"io_queue_depth\": {}, \
         \"baseline_mb_per_sec\": {:.3}, \"mb_per_sec\": {:.3}, \
         \"speedup\": {:.3}, \"extent_sequential_speedup\": {}, \
         \"batched_neighbors\": {}, \"elevator_passes\": {}, \
         \"unit\": \"virtual_time\"}}",
        ext.threads,
        ext.pages_per_client,
        base.extent_size,
        ext.extent_size,
        ext.io_queue_depth,
        base.mb_per_sec,
        ext.mb_per_sec,
        speedup,
        speedup >= 1.3,
        ext.batched_neighbors,
        ext.elevator_passes,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extents_and_elevator_beat_the_fragmented_layout() {
        let (base, ext) = measure_extent_speedup(4);
        let speedup = ext.mb_per_sec / base.mb_per_sec;
        assert!(
            speedup >= 1.3,
            "extents + elevator must win >= 1.3x, got {speedup:.2}x \
             ({:.3} vs {:.3} MB/s)",
            ext.mb_per_sec,
            base.mb_per_sec
        );
        assert!(ext.batched_neighbors > 0, "the elevator never batched neighbors");
        assert_eq!(base.batched_neighbors, 0, "the baseline must not use the scheduler");
    }

    #[test]
    fn extent_json_is_well_formed() {
        let (base, ext) = measure_extent_speedup(2);
        let json = extent_json(&base, &ext);
        assert!(json.contains("\"workload\": \"extent_sequential_read\""));
        assert!(json.contains("\"extent_sequential_speedup\": "));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }
}

