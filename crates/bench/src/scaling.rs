//! Multi-client buffer-cache scaling — the `--threads` bench knob.
//!
//! The fig4/fig5/fig6 binaries accept `--threads N` and switch from the
//! paper-comparison workload to a closed-loop measurement of N concurrent
//! clients hammering a **cache-resident** working set through the real
//! sharded [`BufferPool`]. Like every harness in this crate, the result is
//! reported in *virtual* time so it is deterministic and host-independent
//! (the driver below is single-threaded; real-thread races are covered by
//! `tests/buffer_stress.rs`, which this measurement deliberately is not).
//!
//! The model: each client owns a private virtual clock and each pool shard a
//! virtual latch-occupancy horizon. Every access really goes through
//! [`BufferPool::get_page`] (pins, clock sweep, counters — all live), and is
//! charged
//!
//! * a **latch hold** while the block's shard latch is taken (hash probe +
//!   pin bump). Two clients whose holds land on the *same* shard — resolved
//!   with the pool's real [`BufferPool::shard_of`] mapping — serialize: the
//!   later one waits for the earlier one's horizon.
//! * **client CPU** for the call crossing and copying bytes out of the
//!   frame (DECsystem 5900-class costs, matching [`simdev::CpuModel`]).
//!   This part overlaps freely across clients.
//!
//! Aggregate throughput is total operations over the *slowest client's*
//! virtual clock. A single global latch held across the whole access — the
//! pre-sharding design, which also performed device I/O under it — would
//! serialize everything and pin the speedup at ~1×; per-shard latches held
//! only for the probe let N clients scale until shard collisions bite.

use minidb::buffer::BufferPool;
use minidb::page::PAGE_SIZE;
use minidb::smgr::{shared_device, GenericManager, Smgr};
use minidb::{DeviceId, Oid, RelId};
use simdev::{DiskProfile, MagneticDisk, SimClock};

/// Pages in the working set; comfortably under the 300-frame Berkeley pool
/// so the measured loop never misses.
const WORKING_SET: u64 = 128;
/// Operations each client performs in the measured loop.
const OPS_PER_CLIENT: u64 = 4096;
/// Virtual nanoseconds the shard latch is held per access (hash probe, pin
/// bump, ref-bit set).
const LATCH_HOLD_NS: u64 = 3_000;
/// Fixed per-call crossing cost (client library entry), as in
/// `CpuModel::decsystem5900`.
const PER_CALL_NS: u64 = 30_000;
/// Per-byte cost of copying data out of (or into) the frame, ~40 MB/s.
const PER_BYTE_COPY_NS: u64 = 25;

/// Access pattern for the measured loop, one per fig binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalingWorkload {
    /// fig4: random single-byte reads — latch cost dominates.
    RandomByte,
    /// fig5: page-sized sequential reads, each client at its own offset.
    SequentialRead,
    /// fig6: page-sized writes, each client to its own stripe of blocks.
    Write,
}

impl ScalingWorkload {
    /// The workload's name as it appears in reports.
    pub fn name(self) -> &'static str {
        match self {
            ScalingWorkload::RandomByte => "random_byte_read",
            ScalingWorkload::SequentialRead => "sequential_page_read",
            ScalingWorkload::Write => "page_write",
        }
    }

    /// Bytes moved per operation (for MB/s reporting).
    fn bytes_per_op(self) -> u64 {
        match self {
            ScalingWorkload::RandomByte => 1,
            _ => PAGE_SIZE as u64,
        }
    }
}

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct ScalingRun {
    pub workload: &'static str,
    pub threads: usize,
    pub shards: usize,
    pub working_set_pages: u64,
    pub total_ops: u64,
    /// Slowest client's virtual elapsed time — the run's critical path.
    pub virtual_secs: f64,
    pub ops_per_sec: f64,
    pub mb_per_sec: f64,
    /// Buffer-cache hits during the measured loop.
    pub hits: u64,
    /// Misses during the measured loop; 0 proves the set was cache-resident.
    pub misses: u64,
}

/// Runs `workload` with `threads` concurrent clients against a freshly
/// warmed pool and returns the aggregate throughput.
pub fn measure_scaling(workload: ScalingWorkload, threads: usize) -> ScalingRun {
    let threads = threads.max(1);
    let clock = SimClock::new();
    let dev = shared_device(MagneticDisk::new("rz58", clock, DiskProfile::rz58()));
    let mut smgr = Smgr::new();
    smgr.register(DeviceId::DEFAULT, Box::new(GenericManager::format(dev).unwrap()))
        .unwrap();
    let rel: RelId = Oid(100);
    smgr.with(DeviceId::DEFAULT, |m| m.create_rel(rel)).unwrap();
    let page = vec![0xabu8; PAGE_SIZE];
    for _ in 0..WORKING_SET {
        smgr.with(DeviceId::DEFAULT, |m| m.extend(rel, &page).map(|_| ()))
            .unwrap();
    }

    let pool = BufferPool::new(minidb::BERKELEY_BUFFERS);
    for blk in 0..WORKING_SET {
        drop(pool.get_page(&smgr, DeviceId::DEFAULT, rel, blk).unwrap());
    }
    let warm = pool.stats();

    // Per-client virtual clocks and per-shard latch horizons, in nanos.
    let mut t = vec![0u64; threads];
    let mut latch_free_at = vec![0u64; pool.shard_count()];
    let mut rng: Vec<u64> = (0..threads as u64)
        .map(|c| 0x9e37_79b9_97f4_a7c1u64.wrapping_mul(c + 1) | 1)
        .collect();
    let cpu_ns = PER_CALL_NS + PER_BYTE_COPY_NS * workload.bytes_per_op();

    for op in 0..OPS_PER_CLIENT {
        for c in 0..threads {
            let blk = match workload {
                ScalingWorkload::RandomByte => {
                    rng[c] ^= rng[c] << 13;
                    rng[c] ^= rng[c] >> 7;
                    rng[c] ^= rng[c] << 17;
                    rng[c] % WORKING_SET
                }
                // Each client scans from its own offset so clients touch
                // different blocks at any given instant, as real scans do.
                ScalingWorkload::SequentialRead => {
                    (op + c as u64 * (WORKING_SET / threads as u64)) % WORKING_SET
                }
                // Disjoint stripes: parallel writers on distinct files don't
                // share pages, only (possibly) shard latches.
                ScalingWorkload::Write => {
                    let stripe = WORKING_SET / threads as u64;
                    c as u64 * stripe + op % stripe.max(1)
                }
            };
            let pin = pool
                .get_page(&smgr, DeviceId::DEFAULT, rel, blk)
                .expect("resident working set");
            match workload {
                ScalingWorkload::Write => {
                    pin.write().data_mut()[0] = op as u8;
                }
                _ => {
                    std::hint::black_box(pin.read().data()[0]);
                }
            }
            let shard = pool.shard_of(rel, blk);
            let acquire = t[c].max(latch_free_at[shard]);
            latch_free_at[shard] = acquire + LATCH_HOLD_NS;
            t[c] = acquire + LATCH_HOLD_NS + cpu_ns;
        }
    }

    if workload == ScalingWorkload::Write {
        pool.flush_all(&smgr).unwrap(); // Durability; outside the timed loop.
    }
    let s = pool.stats();
    let elapsed_ns = t.into_iter().max().unwrap_or(1).max(1);
    let secs = elapsed_ns as f64 / 1e9;
    let total_ops = OPS_PER_CLIENT * threads as u64;
    ScalingRun {
        workload: workload.name(),
        threads,
        shards: pool.shard_count(),
        working_set_pages: WORKING_SET,
        total_ops,
        virtual_secs: secs,
        ops_per_sec: total_ops as f64 / secs,
        mb_per_sec: (total_ops * workload.bytes_per_op()) as f64 / (1 << 20) as f64 / secs,
        hits: s.hits - warm.hits,
        misses: s.misses - warm.misses,
    }
}

/// Measures the single-client baseline and the `threads`-client run.
pub fn measure_speedup(workload: ScalingWorkload, threads: usize) -> (ScalingRun, ScalingRun) {
    (measure_scaling(workload, 1), measure_scaling(workload, threads))
}

/// Prints the pair as a small table and returns the speedup factor.
pub fn print_speedup(base: &ScalingRun, multi: &ScalingRun) -> f64 {
    println!(
        "{:<10} {:>8} {:>16} {:>14} {:>12} {:>8} {:>8}",
        "clients", "shards", "aggregate ops/s", "MB/s", "virtual s", "hits", "misses"
    );
    println!("{}", "-".repeat(82));
    for run in [base, multi] {
        println!(
            "{:<10} {:>8} {:>16.0} {:>14.2} {:>12.4} {:>8} {:>8}",
            run.threads, run.shards, run.ops_per_sec, run.mb_per_sec, run.virtual_secs,
            run.hits, run.misses
        );
    }
    let speedup = multi.ops_per_sec / base.ops_per_sec;
    println!();
    println!(
        "aggregate throughput with {} clients: {speedup:.2}x the single client \
         (working set {} pages, cache-resident: {} misses in the measured loop)",
        multi.threads, multi.working_set_pages, base.misses + multi.misses
    );
    speedup
}

/// Renders the pair as the `thread_scaling` JSON section of a BENCH report.
pub fn scaling_json(base: &ScalingRun, multi: &ScalingRun) -> String {
    let speedup = multi.ops_per_sec / base.ops_per_sec;
    format!(
        "{{\"workload\": \"{}\", \"threads\": {}, \"baseline_threads\": {}, \
         \"shards\": {}, \"working_set_pages\": {}, \"ops\": {}, \
         \"baseline_ops_per_sec\": {:.1}, \"ops_per_sec\": {:.1}, \
         \"baseline_mb_per_sec\": {:.3}, \"mb_per_sec\": {:.3}, \
         \"speedup\": {:.3}, \"speedup_at_least_2x\": {}, \
         \"hits\": {}, \"misses\": {}, \"unit\": \"virtual_time\"}}",
        multi.workload,
        multi.threads,
        base.threads,
        multi.shards,
        multi.working_set_pages,
        multi.total_ops,
        base.ops_per_sec,
        multi.ops_per_sec,
        base.mb_per_sec,
        multi.mb_per_sec,
        speedup,
        speedup >= 2.0,
        multi.hits,
        multi.misses,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_clients_scale_on_the_sharded_pool() {
        let (base, multi) = measure_speedup(ScalingWorkload::SequentialRead, 4);
        assert_eq!(base.misses, 0, "working set must be cache-resident");
        assert_eq!(multi.misses, 0, "working set must be cache-resident");
        assert_eq!(base.hits, OPS_PER_CLIENT);
        assert_eq!(multi.hits, 4 * OPS_PER_CLIENT);
        let speedup = multi.ops_per_sec / base.ops_per_sec;
        assert!(
            speedup >= 2.0,
            "4 clients must at least double aggregate throughput, got {speedup:.2}x"
        );
    }

    #[test]
    fn random_byte_and_write_workloads_stay_resident() {
        for w in [ScalingWorkload::RandomByte, ScalingWorkload::Write] {
            let run = measure_scaling(w, 4);
            assert_eq!(run.misses, 0, "{}: resident set", run.workload);
            assert_eq!(run.total_ops, 4 * OPS_PER_CLIENT);
        }
    }

    #[test]
    fn scaling_json_is_well_formed() {
        let (base, multi) = measure_speedup(ScalingWorkload::RandomByte, 2);
        let json = scaling_json(&base, &multi);
        assert!(json.contains("\"workload\": \"random_byte_read\""));
        assert!(json.contains("\"speedup\": "));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }
}
