//! The paper's benchmark, "based on the access patterns of its primary
//! users":
//!
//! * Create a 25 MByte file.
//! * Measure the latency to read or write a single byte at a random
//!   location in the file.
//! * Read 1 MByte in a single large transfer.
//! * Read 1 MByte sequentially in page-sized units.
//! * Read 1 MByte in page-sized units distributed at random throughout the
//!   file.
//! * Repeat the 1 MByte transfer tests, writing instead of reading.
//!
//! "All caches were flushed before each test. ... The measurements shown are
//! the means of ten runs."

use inversion::{CreateMode, InvClient, RemoteClient, SeekWhence};
use nfssim::{InodeNo, NfsClient};
use simdev::SimClock;

use crate::testbed::{InversionTestbed, LocalFfsTestbed, NfsTestbed};

/// One megabyte.
pub const MB: u64 = 1 << 20;
/// Page-sized transfer unit for page-cache file systems (NFS/FFS).
pub const PAGE: usize = 8192;
/// Page-sized transfer unit for Inversion: one chunk. "The page size was
/// chosen to be efficient for the file system under test."
pub const INV_PAGE: usize = inversion::CHUNK_SIZE;

/// A file system under benchmark. Implementations hold one open benchmark
/// file; offsets are file-absolute.
pub trait BenchFs {
    /// Display label.
    fn label(&self) -> &'static str;
    /// The clock virtual time accrues on.
    fn clock(&self) -> SimClock;
    /// Creates the benchmark file of `total` bytes by sequential page-sized
    /// writes (one durable unit: a transaction for Inversion, per-op sync
    /// for NFS), leaving it open for the transfer tests.
    fn create_file(&mut self, total: u64);
    /// Reads `buf.len()` bytes at `offset`.
    fn read_at(&mut self, offset: u64, buf: &mut [u8]);
    /// Writes `data` durably at `offset` as one unit.
    fn write_at(&mut self, offset: u64, data: &[u8]);
    /// Writes many slices durably as *one* unit (one transaction — "commit a
    /// large number of writes simultaneously"; NFS has no such notion and
    /// syncs each).
    fn write_batch(&mut self, writes: &[(u64, &[u8])]) {
        for (off, data) in writes {
            self.write_at(*off, data);
        }
    }
    /// Flushes every cache ("all caches were flushed before each test").
    fn flush_caches(&mut self);
    /// The transfer unit "chosen to be efficient for the file system under
    /// test": the chunk size for Inversion, the block size for NFS/FFS.
    fn page_unit(&self) -> usize {
        PAGE
    }
}

/// Inversion through the remote (TCP client/server) path.
pub struct InversionRemote {
    tb: InversionTestbed,
    client: RemoteClient,
    fd: i32,
}

impl InversionRemote {
    /// Builds the paper's client/server configuration.
    pub fn new(tb: InversionTestbed) -> InversionRemote {
        let client = tb.remote_client();
        InversionRemote { tb, client, fd: -1 }
    }

    /// The underlying testbed (for statistics snapshots).
    pub fn testbed(&self) -> &InversionTestbed {
        &self.tb
    }
}

impl BenchFs for InversionRemote {
    fn label(&self) -> &'static str {
        "Inversion client/server"
    }

    fn clock(&self) -> SimClock {
        self.tb.clock.clone()
    }

    fn create_file(&mut self, total: u64) {
        self.client.p_begin().unwrap();
        let fd = self
            .client
            .p_creat("/bench", CreateMode::default())
            .unwrap();
        let page = vec![0xA5u8; PAGE];
        let mut written = 0u64;
        while written < total {
            let take = (total - written).min(PAGE as u64) as usize;
            self.client.p_write(fd, &page[..take]).unwrap();
            written += take as u64;
        }
        self.client.p_commit().unwrap();
        self.fd = fd;
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) {
        self.client
            .p_lseek(self.fd, offset as i64, SeekWhence::Set)
            .unwrap();
        self.client.p_read(self.fd, buf).unwrap();
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) {
        self.client.p_begin().unwrap();
        self.client
            .p_lseek(self.fd, offset as i64, SeekWhence::Set)
            .unwrap();
        self.client.p_write(self.fd, data).unwrap();
        self.client.p_commit().unwrap();
    }

    fn write_batch(&mut self, writes: &[(u64, &[u8])]) {
        self.client.p_begin().unwrap();
        for (off, data) in writes {
            self.client
                .p_lseek(self.fd, *off as i64, SeekWhence::Set)
                .unwrap();
            self.client.p_write(self.fd, data).unwrap();
        }
        self.client.p_commit().unwrap();
    }

    fn flush_caches(&mut self) {
        self.tb.fs.db().flush_caches().unwrap();
    }

    fn page_unit(&self) -> usize {
        INV_PAGE
    }
}

/// Inversion running the benchmark inside the data manager.
pub struct InversionLocal {
    tb: InversionTestbed,
    client: InvClient,
    fd: i32,
}

impl InversionLocal {
    /// Builds the paper's single-process configuration.
    pub fn new(tb: InversionTestbed) -> InversionLocal {
        let client = tb.local_client();
        InversionLocal { tb, client, fd: -1 }
    }

    /// The underlying testbed (for statistics snapshots).
    pub fn testbed(&self) -> &InversionTestbed {
        &self.tb
    }
}

impl BenchFs for InversionLocal {
    fn label(&self) -> &'static str {
        "Inversion single process"
    }

    fn clock(&self) -> SimClock {
        self.tb.clock.clone()
    }

    fn create_file(&mut self, total: u64) {
        self.client.p_begin().unwrap();
        let fd = self
            .client
            .p_creat("/bench", CreateMode::default())
            .unwrap();
        let page = vec![0xA5u8; PAGE];
        let mut written = 0u64;
        while written < total {
            let take = (total - written).min(PAGE as u64) as usize;
            self.client.p_write(fd, &page[..take]).unwrap();
            written += take as u64;
        }
        self.client.p_commit().unwrap();
        self.fd = fd;
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) {
        self.client
            .p_lseek(self.fd, offset as i64, SeekWhence::Set)
            .unwrap();
        self.client.p_read(self.fd, buf).unwrap();
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) {
        self.client.p_begin().unwrap();
        self.client
            .p_lseek(self.fd, offset as i64, SeekWhence::Set)
            .unwrap();
        self.client.p_write(self.fd, data).unwrap();
        self.client.p_commit().unwrap();
    }

    fn write_batch(&mut self, writes: &[(u64, &[u8])]) {
        self.client.p_begin().unwrap();
        for (off, data) in writes {
            self.client
                .p_lseek(self.fd, *off as i64, SeekWhence::Set)
                .unwrap();
            self.client.p_write(self.fd, data).unwrap();
        }
        self.client.p_commit().unwrap();
    }

    fn flush_caches(&mut self) {
        self.tb.fs.db().flush_caches().unwrap();
    }

    fn page_unit(&self) -> usize {
        INV_PAGE
    }
}

/// ULTRIX NFS with PRESTOserve.
pub struct UltrixNfs {
    tb: NfsTestbed,
    ino: InodeNo,
}

impl UltrixNfs {
    /// Builds the paper's NFS configuration.
    pub fn new(tb: NfsTestbed) -> UltrixNfs {
        UltrixNfs {
            tb,
            ino: InodeNo(0),
        }
    }

    /// The underlying client.
    pub fn client_mut(&mut self) -> &mut NfsClient {
        &mut self.tb.client
    }
}

impl BenchFs for UltrixNfs {
    fn label(&self) -> &'static str {
        "ULTRIX NFS"
    }

    fn clock(&self) -> SimClock {
        self.tb.clock.clone()
    }

    fn create_file(&mut self, total: u64) {
        let attr = self.tb.client.create("/bench").unwrap();
        self.ino = attr.ino;
        let page = vec![0xA5u8; PAGE];
        let mut written = 0u64;
        while written < total {
            let take = (total - written).min(PAGE as u64) as usize;
            self.tb
                .client
                .write(attr.ino, written, &page[..take])
                .unwrap();
            written += take as u64;
        }
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) {
        self.tb.client.read(self.ino, offset, buf).unwrap();
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) {
        self.tb.client.write(self.ino, offset, data).unwrap();
    }

    fn flush_caches(&mut self) {
        self.tb.flush_caches();
    }
}

/// The local native file system of the \[STON93\] aside.
pub struct LocalFfs {
    tb: LocalFfsTestbed,
    ino: InodeNo,
}

impl LocalFfs {
    /// Builds a local FFS mount.
    pub fn new(tb: LocalFfsTestbed) -> LocalFfs {
        LocalFfs {
            tb,
            ino: InodeNo(0),
        }
    }
}

impl BenchFs for LocalFfs {
    fn label(&self) -> &'static str {
        "native local FFS"
    }

    fn clock(&self) -> SimClock {
        self.tb.clock.clone()
    }

    fn create_file(&mut self, total: u64) {
        let ino = self.tb.fs.create("/bench").unwrap();
        self.ino = ino;
        let page = vec![0xA5u8; PAGE];
        let mut written = 0u64;
        while written < total {
            let take = (total - written).min(PAGE as u64) as usize;
            self.tb.fs.write(ino, written, &page[..take]).unwrap();
            written += take as u64;
        }
        self.tb.fs.sync().unwrap();
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) {
        self.tb.fs.read(self.ino, offset, buf).unwrap();
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) {
        self.tb.fs.write(self.ino, offset, data).unwrap();
        self.tb.fs.sync().unwrap();
    }

    fn write_batch(&mut self, writes: &[(u64, &[u8])]) {
        for (off, data) in writes {
            self.tb.fs.write(self.ino, *off, data).unwrap();
        }
        self.tb.fs.sync().unwrap();
    }

    fn flush_caches(&mut self) {
        self.tb.fs.flush_caches().unwrap();
    }
}

/// The nine measurements of Table 3, in simulated seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SuiteResult {
    /// Create the 25 MB file.
    pub create: f64,
    /// Single 1 MB read.
    pub read_1mb_single: f64,
    /// Page-sized sequential 1 MB read.
    pub read_1mb_seq: f64,
    /// Page-sized random 1 MB read.
    pub read_1mb_rand: f64,
    /// Single 1 MB write.
    pub write_1mb_single: f64,
    /// Page-sized sequential 1 MB write.
    pub write_1mb_seq: f64,
    /// Page-sized random 1 MB write.
    pub write_1mb_rand: f64,
    /// Read one byte at a random offset.
    pub read_byte: f64,
    /// Write one byte at a random offset.
    pub write_byte: f64,
}

/// Deterministic pseudo-random offsets (xorshift; fixed seed per suite).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    /// A random `unit`-aligned offset with a whole unit before `limit`.
    fn page_offset(&mut self, limit: u64, unit: usize) -> u64 {
        (self.next() % (limit / unit as u64 - 1)) * unit as u64
    }

    /// A random byte offset below `limit`.
    fn byte_offset(&mut self, limit: u64) -> u64 {
        self.next() % limit
    }
}

fn timed(clock: &SimClock, f: impl FnOnce()) -> f64 {
    let t0 = clock.now();
    f();
    clock.now().since(t0).as_secs_f64()
}

/// Creates the 25 MB (or `file_bytes`) benchmark file; returns elapsed
/// simulated seconds (Figure 3's measurement).
pub fn measure_create(sys: &mut dyn BenchFs, file_bytes: u64) -> f64 {
    let clock = sys.clock();
    sys.flush_caches();
    timed(&clock, || sys.create_file(file_bytes))
}

/// Single-byte read/write latency at random offsets, mean of `runs`
/// (Figure 4). Requires [`measure_create`] to have run first.
pub fn measure_byte_ops(sys: &mut dyn BenchFs, file_bytes: u64, runs: usize) -> (f64, f64) {
    let clock = sys.clock();
    let mut rng = Rng(0x5EED_0001);
    sys.flush_caches();
    let read_byte = timed(&clock, || {
        let mut b = [0u8; 1];
        for _ in 0..runs {
            sys.read_at(rng.byte_offset(file_bytes), &mut b);
        }
    }) / runs as f64;

    sys.flush_caches();
    let write_byte = timed(&clock, || {
        // The `runs` probes execute inside the benchmark program's
        // transaction; per-operation latency amortizes the commit.
        let offsets: Vec<u64> = (0..runs).map(|_| rng.byte_offset(file_bytes)).collect();
        let writes: Vec<(u64, &[u8])> = offsets.iter().map(|&o| (o, &b"x"[..])).collect();
        sys.write_batch(&writes);
    }) / runs as f64;
    (read_byte, write_byte)
}

/// The three 1 MB read tests (Figure 5): single transfer, sequential
/// page-sized, random page-sized. Requires the benchmark file.
pub fn measure_read_ops(sys: &mut dyn BenchFs, file_bytes: u64) -> (f64, f64, f64) {
    let clock = sys.clock();
    let mut rng = Rng(0x5EED_0002);
    let unit = sys.page_unit();
    let nops = (MB as usize).div_ceil(unit);

    sys.flush_caches();
    let mut big = vec![0u8; MB as usize];
    let single = timed(&clock, || sys.read_at(0, &mut big));

    sys.flush_caches();
    let seq = timed(&clock, || {
        let mut page = vec![0u8; unit];
        for i in 0..nops {
            sys.read_at((i * unit) as u64, &mut page);
        }
    });

    sys.flush_caches();
    let rand = timed(&clock, || {
        let mut page = vec![0u8; unit];
        for _ in 0..nops {
            sys.read_at(rng.page_offset(file_bytes, unit), &mut page);
        }
    });
    (single, seq, rand)
}

/// The three 1 MB write tests (Figure 6). Each targets its own region of
/// the file: the paper's per-run create starts every run from a
/// single-version file, so tests within a run must not stack row versions
/// on the same chunks. Random writes span the whole file, as in the paper.
pub fn measure_write_ops(sys: &mut dyn BenchFs, file_bytes: u64) -> (f64, f64, f64) {
    let clock = sys.clock();
    let mut rng = Rng(0x5EED_0003);
    let unit = sys.page_unit();
    let nops = (MB as usize).div_ceil(unit);

    sys.flush_caches();
    let data = vec![0x5Au8; MB as usize];
    let single = timed(&clock, || sys.write_at(2 * MB, &data));

    sys.flush_caches();
    let page_data = vec![0x3Cu8; unit];
    let seq = timed(&clock, || {
        let writes: Vec<(u64, &[u8])> = (0..nops)
            .map(|i| (4 * MB + (i * unit) as u64, &page_data[..]))
            .collect();
        sys.write_batch(&writes);
    });

    sys.flush_caches();
    let rand = timed(&clock, || {
        let writes: Vec<(u64, &[u8])> = (0..nops)
            .map(|_| (rng.page_offset(file_bytes, unit), &page_data[..]))
            .collect();
        sys.write_batch(&writes);
    });
    (single, seq, rand)
}

/// Runs the full paper benchmark against `sys` with a file of `file_bytes`.
///
/// Latency tests report the mean of `runs` single operations (the paper used
/// ten); transfer tests move exactly 1 MB.
pub fn run_suite(sys: &mut dyn BenchFs, file_bytes: u64, runs: usize) -> SuiteResult {
    let mut out = SuiteResult {
        create: measure_create(sys, file_bytes),
        ..SuiteResult::default()
    };
    let (rb, wb) = measure_byte_ops(sys, file_bytes, runs);
    out.read_byte = rb;
    out.write_byte = wb;
    let (r1, rs, rr) = measure_read_ops(sys, file_bytes);
    out.read_1mb_single = r1;
    out.read_1mb_seq = rs;
    out.read_1mb_rand = rr;
    let (w1, ws, wr) = measure_write_ops(sys, file_bytes);
    out.write_1mb_single = w1;
    out.write_1mb_seq = ws;
    out.write_1mb_rand = wr;
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small-scale smoke test of the full suite on all four systems.
    #[test]
    fn suite_runs_on_every_system() {
        let small = 2 * MB;
        let mut inv_local = InversionLocal::new(InversionTestbed::with_config(64, true));
        let r = run_suite(&mut inv_local, small, 2);
        assert!(r.create > 0.0 && r.read_byte > 0.0 && r.write_1mb_rand > 0.0);

        let mut nfs = UltrixNfs::new(NfsTestbed::paper());
        let r = run_suite(&mut nfs, small, 2);
        assert!(r.create > 0.0 && r.write_byte > 0.0);

        let mut ffs = LocalFfs::new(LocalFfsTestbed::new());
        let r = run_suite(&mut ffs, small, 2);
        assert!(r.create > 0.0);
    }

    #[test]
    fn remote_suite_slower_than_local() {
        let small = 2 * MB;
        let mut local = InversionLocal::new(InversionTestbed::with_config(64, true));
        let rl = run_suite(&mut local, small, 2);
        let mut remote = InversionRemote::new(InversionTestbed::with_config(64, true));
        let rr = run_suite(&mut remote, small, 2);
        assert!(rr.read_1mb_seq > rl.read_1mb_seq, "network must cost time");
        assert!(rr.create > rl.create);
    }

    #[test]
    fn rng_offsets_in_bounds() {
        let mut rng = Rng(42);
        for _ in 0..1000 {
            let off = rng.page_offset(25 * MB, PAGE);
            assert!(off + PAGE as u64 <= 25 * MB);
            assert_eq!(off % PAGE as u64, 0);
            let off = rng.page_offset(25 * MB, INV_PAGE);
            assert_eq!(off % INV_PAGE as u64, 0);
            assert!(rng.byte_offset(25 * MB) < 25 * MB);
        }
    }
}
