//! Multi-client **remote** scaling — the `--remote --threads N` bench knob.
//!
//! Where [`crate::scaling`] measures concurrent clients hammering the buffer
//! cache in-process, this harness puts the *protocol* in the loop: every
//! operation is a real [`inversion::wire`] frame — encoded by the client,
//! decoded on the server, executed by a per-client [`InvServer`] session
//! (own fd table, own transaction scope), and answered with a real encoded
//! response. The byte counts that drive the network model are the actual
//! frame lengths, not estimates; deriving one from the other is the whole
//! point of `Request::wire_size`.
//!
//! Like the rest of the crate, time is *virtual* so results are
//! deterministic and host-independent (the container may well have a single
//! CPU; real-thread correctness is `tests/server_stress.rs`'s job). The
//! driver is single-threaded with one virtual clock per client and a
//! horizon per contended resource:
//!
//! * each client has a private **switched full-duplex link** to a
//!   multi-queue server port (the ROADMAP's production-scale fabric, not
//!   the paper's shared 10 Mbit Ethernet — which would serialize everything
//!   and cap any fleet at 1×);
//! * the worker pool is `N` horizons: a request is serviced by the
//!   earliest-free worker, paying decode + execution + copy costs there —
//!   this is the shared server CPU that bounds read scaling;
//! * for the write workload, the **status-log force** is one horizon with
//!   group-commit semantics: a commit arriving before a force *starts*
//!   joins it; one arriving while a force is in flight waits and shares the
//!   next one (PR 4's leader/follower protocol).
//!
//! Aggregate throughput is total operations over the slowest client's
//! clock, exactly as in `scaling.rs`.

use inversion::client::SEGMENT;
use inversion::server::{InvServer, Request, Response};
use inversion::{wire, CreateMode, InversionFs, SeekWhence};

/// Segments per private file (cache-resident working set).
const FILE_SEGMENTS: u64 = 16;
/// Operations per client in the measured loop.
const OPS_PER_CLIENT: u64 = 256;
/// Writes between commits in the write workload.
const WRITES_PER_COMMIT: u64 = 8;
/// Fixed client-library crossing cost per call (DECsystem 5900-class).
const CLIENT_CALL_NS: u64 = 30_000;
/// Per-byte cost of encoding/copying at either end, ~40 MB/s.
const PER_BYTE_COPY_NS: u64 = 25;
/// One-way latency of a switched link.
const LINK_LATENCY_NS: u64 = 50_000;
/// Per-byte wire time on a ~1 Gbit/s full-duplex port.
const LINK_NS_PER_BYTE: u64 = 8;
/// Fixed server dispatch cost per request (queue, decode header, schedule).
const SERVICE_NS: u64 = 10_000;
/// One status-log force (RZ58-class synchronous write).
const FORCE_NS: u64 = 10_000_000;

/// Which remote workload to measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemoteWorkload {
    /// fig5: pipelined sequential `SEGMENT` reads from private files.
    SequentialRead,
    /// fig6: `SEGMENT` writes grouped into committing transactions.
    WriteCommit,
}

impl RemoteWorkload {
    /// The workload's name as it appears in reports.
    pub fn name(self) -> &'static str {
        match self {
            RemoteWorkload::SequentialRead => "remote_sequential_read",
            RemoteWorkload::WriteCommit => "remote_write_commit",
        }
    }
}

/// One measured remote configuration.
#[derive(Debug, Clone)]
pub struct RemoteRun {
    pub workload: &'static str,
    pub threads: usize,
    pub workers: usize,
    pub total_ops: u64,
    /// Request + response frames actually encoded and decoded.
    pub frames: u64,
    /// Real wire bytes moved in each direction.
    pub bytes_to_server: u64,
    pub bytes_to_client: u64,
    /// Status-log forces (write workload; 0 for reads).
    pub log_forces: u64,
    /// Commits executed (write workload; 0 for reads).
    pub commits: u64,
    /// Slowest client's virtual elapsed time.
    pub virtual_secs: f64,
    pub ops_per_sec: f64,
    pub mb_per_sec: f64,
}

/// The group-commit log-force horizon (see module docs).
struct LogForce {
    /// When the most recent force begins; commits arriving earlier join it.
    start: u64,
    /// When it completes.
    end: u64,
    forces: u64,
}

impl LogForce {
    fn new() -> LogForce {
        LogForce {
            start: 0,
            end: 0,
            forces: 0,
        }
    }

    /// A commit record arrives at `at`; returns when it is durable.
    fn commit(&mut self, at: u64) -> u64 {
        if at < self.start {
            // The batch leader has not forced yet: ride along.
            return self.end;
        }
        // Either the log is idle or a force is in flight; the next force
        // begins once the current one (if any) completes.
        self.start = at.max(self.end);
        self.end = self.start + FORCE_NS;
        self.forces += 1;
        self.end
    }
}

/// Runs `workload` with `threads` remote clients (and as many pool
/// workers), every message passing through the real wire codec and a real
/// per-client server session.
pub fn measure_remote(workload: RemoteWorkload, threads: usize) -> RemoteRun {
    let threads = threads.max(1);
    let fs = InversionFs::open_in_memory().expect("in-memory fs");
    let seg_bytes: Vec<u8> = (0..SEGMENT).map(|i| (i % 249) as u8).collect();

    // One real server session per connection: private fd table and
    // transaction scope, exactly what InvServerPool gives each socket.
    let mut sessions: Vec<InvServer> = (0..threads).map(|_| InvServer::new(&fs)).collect();
    let mut fds = Vec::with_capacity(threads);
    for (c, srv) in sessions.iter_mut().enumerate() {
        let path = format!("/remote{c}");
        let Response::Fd(fd) = srv
            .handle(Request::Creat(path, CreateMode::default()))
            .expect("creat")
        else {
            panic!("creat returned a non-fd response")
        };
        for _ in 0..FILE_SEGMENTS {
            srv.handle(Request::Write(fd, seg_bytes.clone())).expect("prefill");
        }
        srv.handle(Request::Lseek(fd, 0, SeekWhence::Set)).expect("rewind");
        if workload == RemoteWorkload::SequentialRead {
            // Warm: one full pass so the measured loop is cache-resident.
            for _ in 0..FILE_SEGMENTS {
                srv.handle(Request::Read(fd, SEGMENT)).expect("warm read");
            }
            srv.handle(Request::Lseek(fd, 0, SeekWhence::Set)).expect("rewind");
        }
        fds.push(fd);
    }
    if workload == RemoteWorkload::WriteCommit {
        for srv in sessions.iter_mut() {
            srv.handle(Request::Begin).expect("begin");
        }
    }

    // Virtual clocks and horizons, all in nanoseconds.
    let mut t = vec![0u64; threads];
    let mut worker_free = vec![0u64; threads];
    let mut log = LogForce::new();
    let mut frames = 0u64;
    let mut bytes_up = 0u64;
    let mut bytes_down = 0u64;
    let mut commits = 0u64;
    let mut payload_bytes = 0u64;

    let mut run_request = |srv: &mut InvServer,
                           req: Request,
                           t_client: &mut u64,
                           worker_free: &mut [u64],
                           log: &mut LogForce|
     -> Response {
        let is_commit = matches!(req, Request::Commit);
        let req_frame = wire::encode_request(&req);
        frames += 1;
        bytes_up += req_frame.len() as u64;
        // Client: library crossing + marshalling the payload.
        *t_client += CLIENT_CALL_NS + PER_BYTE_COPY_NS * req_frame.len() as u64;
        // Private uplink (full duplex: no contention with responses).
        let at_server =
            *t_client + LINK_LATENCY_NS + LINK_NS_PER_BYTE * req_frame.len() as u64;
        // Earliest-free worker picks it up.
        let (wi, wfree) = worker_free
            .iter()
            .copied()
            .enumerate()
            .min_by_key(|&(_, free)| free)
            .unwrap_or((0, 0));
        let start = wfree.max(at_server);
        // The request REALLY decodes and executes here.
        let decoded = wire::decode_request(&req_frame).expect("self-encoded frame");
        let resp = srv.handle(decoded).expect("remote op");
        let resp_frame = wire::encode_response(&Ok(resp.clone()));
        frames += 1;
        bytes_down += resp_frame.len() as u64;
        let svc = SERVICE_NS
            + PER_BYTE_COPY_NS * (req_frame.len() + resp_frame.len()) as u64;
        let mut done = start + svc;
        if is_commit {
            // The force is a shared horizon, not worker time: the worker
            // parks (PR 4's follower path) while the log device runs.
            done = log.commit(done).max(done);
        }
        worker_free[wi] = if is_commit { start + svc } else { done };
        // Private downlink (multi-queue egress) + client-side unmarshalling.
        let sent = done + LINK_NS_PER_BYTE * resp_frame.len() as u64;
        *t_client = sent + LINK_LATENCY_NS + PER_BYTE_COPY_NS * resp_frame.len() as u64;
        resp
    };

    for op in 0..OPS_PER_CLIENT {
        for c in 0..threads {
            match workload {
                RemoteWorkload::SequentialRead => {
                    if op % FILE_SEGMENTS == 0 && op > 0 {
                        run_request(
                            &mut sessions[c],
                            Request::Lseek(fds[c], 0, SeekWhence::Set),
                            &mut t[c],
                            &mut worker_free,
                            &mut log,
                        );
                    }
                    let resp = run_request(
                        &mut sessions[c],
                        Request::Read(fds[c], SEGMENT),
                        &mut t[c],
                        &mut worker_free,
                        &mut log,
                    );
                    match resp {
                        Response::Data(d) => {
                            assert_eq!(d.len(), SEGMENT, "short read in resident set");
                            payload_bytes += d.len() as u64;
                        }
                        other => panic!("read returned {other:?}"),
                    }
                }
                RemoteWorkload::WriteCommit => {
                    let resp = run_request(
                        &mut sessions[c],
                        Request::Write(fds[c], seg_bytes.clone()),
                        &mut t[c],
                        &mut worker_free,
                        &mut log,
                    );
                    match resp {
                        Response::Count(n) => payload_bytes += n,
                        other => panic!("write returned {other:?}"),
                    }
                    if (op + 1) % WRITES_PER_COMMIT == 0 {
                        run_request(
                            &mut sessions[c],
                            Request::Commit,
                            &mut t[c],
                            &mut worker_free,
                            &mut log,
                        );
                        commits += 1;
                        if op + 1 < OPS_PER_CLIENT {
                            run_request(
                                &mut sessions[c],
                                Request::Begin,
                                &mut t[c],
                                &mut worker_free,
                                &mut log,
                            );
                        }
                    }
                }
            }
        }
    }
    if workload == RemoteWorkload::WriteCommit && !OPS_PER_CLIENT.is_multiple_of(WRITES_PER_COMMIT) {
        for c in 0..threads {
            run_request(
                &mut sessions[c],
                Request::Commit,
                &mut t[c],
                &mut worker_free,
                &mut log,
            );
            commits += 1;
        }
    }

    let elapsed_ns = t.iter().copied().max().unwrap_or(1).max(1);
    let secs = elapsed_ns as f64 / 1e9;
    let total_ops = OPS_PER_CLIENT * threads as u64;
    RemoteRun {
        workload: workload.name(),
        threads,
        workers: threads,
        total_ops,
        frames,
        bytes_to_server: bytes_up,
        bytes_to_client: bytes_down,
        log_forces: log.forces,
        commits,
        virtual_secs: secs,
        ops_per_sec: total_ops as f64 / secs,
        mb_per_sec: payload_bytes as f64 / (1 << 20) as f64 / secs,
    }
}

/// Measures the single-remote-client baseline and the `threads`-client run.
pub fn measure_remote_speedup(workload: RemoteWorkload, threads: usize) -> (RemoteRun, RemoteRun) {
    (measure_remote(workload, 1), measure_remote(workload, threads))
}

/// Prints the pair as a small table and returns the speedup factor.
pub fn print_remote_speedup(base: &RemoteRun, multi: &RemoteRun) -> f64 {
    println!(
        "{:<10} {:>8} {:>16} {:>12} {:>12} {:>10} {:>8}",
        "clients", "workers", "aggregate ops/s", "MB/s", "virtual s", "frames", "forces"
    );
    println!("{}", "-".repeat(84));
    for run in [base, multi] {
        println!(
            "{:<10} {:>8} {:>16.0} {:>12.2} {:>12.4} {:>10} {:>8}",
            run.threads,
            run.workers,
            run.ops_per_sec,
            run.mb_per_sec,
            run.virtual_secs,
            run.frames,
            run.log_forces
        );
    }
    let speedup = multi.ops_per_sec / base.ops_per_sec;
    println!();
    println!(
        "aggregate remote throughput with {} clients: {speedup:.2}x one remote client \
         ({} real wire bytes to the server, {} back)",
        multi.threads, multi.bytes_to_server, multi.bytes_to_client
    );
    speedup
}

/// Renders the pair as the `remote_scaling` JSON section of a BENCH report.
pub fn remote_json(base: &RemoteRun, multi: &RemoteRun) -> String {
    let speedup = multi.ops_per_sec / base.ops_per_sec;
    format!(
        "{{\"workload\": \"{}\", \"threads\": {}, \"workers\": {}, \
         \"baseline_threads\": {}, \"ops\": {}, \"frames\": {}, \
         \"bytes_to_server\": {}, \"bytes_to_client\": {}, \
         \"log_forces\": {}, \"commits\": {}, \
         \"baseline_ops_per_sec\": {:.1}, \"ops_per_sec\": {:.1}, \
         \"baseline_mb_per_sec\": {:.3}, \"mb_per_sec\": {:.3}, \
         \"speedup\": {:.3}, \"remote_speedup_at_least_2x\": {}, \
         \"unit\": \"virtual_time\"}}",
        multi.workload,
        multi.threads,
        multi.workers,
        base.threads,
        multi.total_ops,
        multi.frames,
        multi.bytes_to_server,
        multi.bytes_to_client,
        multi.log_forces,
        multi.commits,
        base.ops_per_sec,
        multi.ops_per_sec,
        base.mb_per_sec,
        multi.mb_per_sec,
        speedup,
        speedup >= 2.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_remote_readers_at_least_double_throughput() {
        let (base, multi) = measure_remote_speedup(RemoteWorkload::SequentialRead, 4);
        let speedup = multi.ops_per_sec / base.ops_per_sec;
        assert!(
            speedup >= 2.0,
            "4 remote clients must at least double aggregate reads, got {speedup:.2}x"
        );
        // Two frames (request + response) per operation, plus rewinds.
        assert!(multi.frames >= 2 * multi.total_ops);
        assert!(multi.bytes_to_client > multi.total_ops * SEGMENT as u64);
    }

    #[test]
    fn remote_writers_share_log_forces() {
        let (base, multi) = measure_remote_speedup(RemoteWorkload::WriteCommit, 4);
        assert!(multi.commits > 0);
        assert!(
            multi.log_forces < multi.commits,
            "group commit must batch: {} forces for {} commits",
            multi.log_forces,
            multi.commits
        );
        let speedup = multi.ops_per_sec / base.ops_per_sec;
        assert!(
            speedup >= 1.5,
            "4 remote writers should beat 1.5x, got {speedup:.2}x"
        );
    }

    #[test]
    fn remote_json_is_well_formed() {
        let (base, multi) = measure_remote_speedup(RemoteWorkload::SequentialRead, 2);
        let json = remote_json(&base, &multi);
        assert!(json.contains("\"workload\": \"remote_sequential_read\""));
        assert!(json.contains("\"remote_speedup_at_least_2x\": "));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }
}
