//! Benchmark harnesses for the Inversion paper's evaluation.
//!
//! One binary per table/figure regenerates the corresponding result:
//!
//! | target | reproduces |
//! |---|---|
//! | `table1_naming` | Table 1 — naming entries for `/etc/passwd` |
//! | `table2_types` | Table 2 — example file types and functions |
//! | `fig3_create` | Figure 3 — 25 MB file creation time |
//! | `fig4_random_byte` | Figure 4 — random single-byte access |
//! | `fig5_reads` | Figure 5 — read throughput |
//! | `fig6_writes` | Figure 6 — write throughput |
//! | `table3_full` | Table 3 — all nine operations, three configurations |
//! | `ston93_local` | the \[STON93\] local-benchmark aside |
//! | `ablations` | design-choice ablations (DESIGN.md §4) |
//!
//! Methodology: every byte moves through the real implementation (buffer
//! cache, heap, B-tree, protocol codecs); device and network costs accrue on
//! the shared [`simdev::SimClock`], and harnesses report *simulated*
//! seconds alongside the paper's numbers. We reproduce the shape, not the
//! wall-clock of 1993 hardware; see `EXPERIMENTS.md`.

pub mod commit_scaling;
pub mod extent;
pub mod remote;
pub mod report;
pub mod scaling;
pub mod testbed;
pub mod torture;
pub mod workload;

pub use commit_scaling::{measure_commit_speedup, measure_commits, CommitRun};
pub use remote::{measure_remote, measure_remote_speedup, RemoteRun, RemoteWorkload};
pub use report::{print_comparison, print_header, Comparison};
pub use scaling::{measure_scaling, measure_speedup, ScalingRun, ScalingWorkload};
pub use testbed::{InversionTestbed, NfsTestbed};
pub use workload::{run_suite, BenchFs, SuiteResult, MB};
