//! Group-commit scaling — the fig6 `--threads` bench knob.
//!
//! Where `scaling.rs` measures the sharded buffer cache with a single-
//! threaded virtual-time driver, this harness drives the *real* commit
//! path end to end with real threads: N clients each run a closed loop of
//! small write transactions against their own table, arriving at the
//! commit point in lockstep rounds. Commit is no-force: no data page is
//! written, and the group-commit coordinator merges the concurrent
//! `Commit` records into one write-ahead-log force per batch.
//!
//! The log lives on a full-size RZ58 disk while the data heap sits on a
//! small test disk, so the per-commit log force dominates each
//! transaction — exactly the cost group commit exists to amortize. Time is
//! the shared [`simdev::SimClock`]: every device operation from every
//! thread charges the same virtual clock, so aggregate throughput rises
//! only if batching genuinely removes device work, not because threads
//! overlap host time.

use std::sync::{Arc, Barrier};

use minidb::{
    shared_device, Datum, Db, DbConfig, DeviceId, GenericManager, Schema, Smgr, TypeId,
};
use simdev::{DiskProfile, MagneticDisk, SimClock};

/// Transactions each client commits in the measured loop.
const ROUNDS: u64 = 40;

/// One measured configuration of the commit-path workload.
#[derive(Debug, Clone)]
pub struct CommitRun {
    pub threads: usize,
    /// Total transactions committed in the measured loop.
    pub txns: u64,
    /// Virtual time the whole loop took on the shared clock.
    pub virtual_secs: f64,
    pub txns_per_sec: f64,
    /// Commit-path counter deltas for the measured loop.
    pub commits: u64,
    pub group_commits: u64,
    pub batched_records: u64,
    pub sync_calls: u64,
    pub pages_flushed_at_commit: u64,
    /// WAL counter deltas: what the no-force commit path actually wrote.
    pub wal_records: u64,
    pub wal_bytes: u64,
    pub log_forces: u64,
    pub checkpoints: u64,
    pub ckpt_pages_drained: u64,
}

/// Runs `threads` concurrent committers and returns the aggregate
/// throughput plus the commit-path counters for the measured loop.
pub fn measure_commits(threads: usize) -> CommitRun {
    let threads = threads.max(1);
    let clock = SimClock::new();
    let data = shared_device(MagneticDisk::new(
        "data",
        clock.clone(),
        DiskProfile::tiny_for_tests(1 << 16),
    ));
    // The status log pays full magnetic-disk costs: this is the force each
    // commit must wait for, and what the coordinator batches.
    let log = shared_device(MagneticDisk::new("log", clock.clone(), DiskProfile::rz58()));
    let catalog = shared_device(MagneticDisk::new(
        "catalog",
        clock.clone(),
        DiskProfile::tiny_for_tests(1 << 12),
    ));
    let mut smgr = Smgr::new();
    smgr.register(
        DeviceId::DEFAULT,
        Box::new(GenericManager::format(data).unwrap()),
    )
    .unwrap();
    let db = Db::open(clock.clone(), smgr, log, catalog, DbConfig::default()).unwrap();

    // Private tables: the workload contends on the commit path only.
    let rels: Vec<_> = (0..threads)
        .map(|t| {
            db.create_table(&format!("w{t}"), Schema::new([("v", TypeId::INT8)]))
                .unwrap()
        })
        .collect();

    let before = db.stats();
    let t0 = clock.now();
    let barrier = Arc::new(Barrier::new(threads));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let db = db.clone();
            let rel = rels[t];
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                for round in 0..ROUNDS {
                    let mut s = db.begin().unwrap();
                    s.insert(rel, vec![Datum::Int8(round as i64)]).unwrap();
                    barrier.wait();
                    s.commit().unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("committer panicked");
    }
    let elapsed = clock.now().since(t0);
    let d = db.stats().delta(&before);

    let txns = ROUNDS * threads as u64;
    let secs = elapsed.as_secs_f64().max(1e-9);
    CommitRun {
        threads,
        txns,
        virtual_secs: secs,
        txns_per_sec: txns as f64 / secs,
        commits: d.xact.commits,
        group_commits: d.xact.group_commits,
        batched_records: d.xact.batched_records,
        sync_calls: d.xact.sync_calls,
        pages_flushed_at_commit: d.xact.pages_flushed_at_commit,
        wal_records: d.wal.records_appended,
        wal_bytes: d.wal.bytes_appended,
        log_forces: d.wal.log_forces,
        checkpoints: d.wal.checkpoints,
        ckpt_pages_drained: d.wal.ckpt_pages_drained,
    }
}

/// Measures the single-client baseline and the `threads`-client run.
pub fn measure_commit_speedup(threads: usize) -> (CommitRun, CommitRun) {
    (measure_commits(1), measure_commits(threads))
}

/// Prints the pair as a small table and returns the speedup factor.
pub fn print_commit_speedup(base: &CommitRun, multi: &CommitRun) -> f64 {
    println!(
        "{:<10} {:>8} {:>14} {:>12} {:>8} {:>8} {:>8} {:>10}",
        "clients", "txns", "txns/s", "virtual s", "commits", "groups", "syncs", "pages"
    );
    println!("{}", "-".repeat(86));
    for run in [base, multi] {
        println!(
            "{:<10} {:>8} {:>14.1} {:>12.4} {:>8} {:>8} {:>8} {:>10}",
            run.threads,
            run.txns,
            run.txns_per_sec,
            run.virtual_secs,
            run.commits,
            run.group_commits,
            run.sync_calls,
            run.pages_flushed_at_commit,
        );
    }
    let speedup = multi.txns_per_sec / base.txns_per_sec;
    println!();
    println!(
        "aggregate commit throughput with {} clients: {speedup:.2}x the single client \
         ({} log forces for {} commits, {} data pages written at commit — \
         group commit amortized the force, the checkpointer drained {} pages \
         across {} cycles)",
        multi.threads,
        multi.log_forces,
        multi.commits,
        multi.pages_flushed_at_commit,
        multi.ckpt_pages_drained,
        multi.checkpoints,
    );
    speedup
}

/// Renders the pair as the `thread_scaling` JSON section of a BENCH report.
pub fn commit_json(base: &CommitRun, multi: &CommitRun) -> String {
    let speedup = multi.txns_per_sec / base.txns_per_sec;
    format!(
        "{{\"workload\": \"group_commit\", \"threads\": {}, \"baseline_threads\": {}, \
         \"rounds_per_thread\": {}, \"txns\": {}, \
         \"baseline_txns_per_sec\": {:.1}, \"txns_per_sec\": {:.1}, \
         \"speedup\": {:.3}, \"speedup_at_least_1_5x\": {}, \
         \"speedup_at_least_3_6x\": {}, \
         \"group_commit_engaged\": {}, \"commits\": {}, \"group_commits\": {}, \
         \"batched_records\": {}, \"sync_calls\": {}, \
         \"pages_flushed_at_commit\": {}, \"no_data_page_flush_at_commit\": {}, \
         \"wal_records\": {}, \"wal_bytes\": {}, \"log_forces\": {}, \
         \"checkpoints\": {}, \"ckpt_pages_drained\": {}, \
         \"unit\": \"virtual_time\"}}",
        multi.threads,
        base.threads,
        ROUNDS,
        multi.txns,
        base.txns_per_sec,
        multi.txns_per_sec,
        speedup,
        speedup >= 1.5,
        speedup >= 3.6,
        multi.sync_calls < multi.commits,
        multi.commits,
        multi.group_commits,
        multi.batched_records,
        multi.sync_calls,
        multi.pages_flushed_at_commit,
        multi.pages_flushed_at_commit == 0,
        multi.wal_records,
        multi.wal_bytes,
        multi.log_forces,
        multi.checkpoints,
        multi.ckpt_pages_drained,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_committers_amortize_the_log_force() {
        let (base, multi) = measure_commit_speedup(4);
        assert_eq!(base.txns, ROUNDS);
        assert_eq!(multi.txns, 4 * ROUNDS);
        assert_eq!(base.commits, base.txns);
        assert_eq!(multi.commits, multi.txns);
        assert_eq!(multi.batched_records, multi.commits, "no record lost");
        assert!(
            multi.sync_calls < multi.commits,
            "group commit must engage: {} syncs for {} commits",
            multi.sync_calls,
            multi.commits
        );
        assert!(multi.group_commits > 0);
        assert_eq!(
            multi.pages_flushed_at_commit, 0,
            "no-force commit must write no data pages"
        );
        assert!(multi.wal_records >= multi.txns, "every commit logs a record");
        let speedup = multi.txns_per_sec / base.txns_per_sec;
        assert!(
            speedup >= 1.5,
            "4 committers must raise write throughput at least 1.5x, got {speedup:.2}x"
        );
    }

    #[test]
    fn commit_json_is_well_formed() {
        let (base, multi) = measure_commit_speedup(2);
        let json = commit_json(&base, &multi);
        assert!(json.contains("\"workload\": \"group_commit\""));
        assert!(json.contains("\"speedup_at_least_1_5x\": "));
        assert!(json.contains("\"speedup_at_least_3_6x\": "));
        assert!(json.contains("\"no_data_page_flush_at_commit\": "));
        assert!(json.contains("\"group_commit_engaged\": "));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }
}
