//! The simulated Sequoia 2000 testbed.
//!
//! "Inversion was installed on a DECsystem 5900 ... Files were located on a
//! 1.3 GByte DEC RZ58 disk drive ... Files were opened, read, and written
//! from a remote client running on a DECstation 3100. Client/server
//! communication was via TCP/IP over a 10 Mbit/sec Ethernet. ... The NFS
//! server was run on the same DECsystem 5900, using the same disk."

use std::sync::Arc;

use inversion::{types, InvClient, InversionFs, RemoteClient};
use minidb::{
    shared_device, Db, DbConfig, DeviceId, GenericManager, JukeboxConfig, JukeboxManager, Smgr,
    BERKELEY_BUFFERS,
};
use nfssim::{Ffs, FfsConfig, NfsClient, NfsServer, PrestoDisk};
use parking_lot::Mutex;
use simdev::{
    BlockDevice, CpuModel, DiskProfile, Endpoint, JukeboxProfile, MagneticDisk, NetProfile,
    Network, OpticalJukebox, SimClock,
};

/// Device id of the RZ58 magnetic disk.
pub const DEV_DISK: DeviceId = DeviceId(0);
/// Device id of the Sony WORM jukebox.
pub const DEV_JUKEBOX: DeviceId = DeviceId(1);

/// The Inversion side of the testbed: POSTGRES on an RZ58 (plus the Sony
/// jukebox), 300 buffers as at Berkeley, talking TCP to remote clients.
pub struct InversionTestbed {
    /// The shared simulated clock.
    pub clock: SimClock,
    /// The mounted file system.
    pub fs: InversionFs,
}

impl InversionTestbed {
    /// Builds the full testbed (disk + jukebox) with `buffers` cache frames.
    pub fn with_config(buffers: usize, eager_index_writes: bool) -> InversionTestbed {
        let clock = SimClock::new();
        let data = shared_device(MagneticDisk::new(
            "rz58",
            clock.clone(),
            DiskProfile::rz58(),
        ));
        // The status file and catalog live on their own small disk regions;
        // model them as separate fast spindles so log forces do not collide
        // with data-head position (ULTRIX put them in different partitions).
        let log = shared_device(MagneticDisk::new(
            "rz58-log",
            clock.clone(),
            DiskProfile::rz58(),
        ));
        let cat = shared_device(MagneticDisk::new(
            "rz58-cat",
            clock.clone(),
            DiskProfile::rz58(),
        ));
        let jukebox = shared_device(OpticalJukebox::new(
            "sony",
            clock.clone(),
            JukeboxProfile::sony_worm(),
        ));
        let staging = shared_device(MagneticDisk::new(
            "sony-staging",
            clock.clone(),
            DiskProfile::rz58(),
        ));
        let mut smgr = Smgr::new();
        smgr.register(DEV_DISK, Box::new(GenericManager::format(data).unwrap()))
            .unwrap();
        smgr.register(
            DEV_JUKEBOX,
            Box::new(JukeboxManager::format(jukebox, staging, JukeboxConfig::default()).unwrap()),
        )
        .unwrap();
        let db = Db::open(
            clock.clone(),
            smgr,
            log,
            cat,
            DbConfig {
                buffers,
                eager_index_writes,
                ..DbConfig::default()
            },
        )
        .unwrap();
        let fs = InversionFs::format(db).unwrap();
        types::register_standard(&fs).unwrap();
        InversionTestbed { clock, fs }
    }

    /// The paper's configuration: 300 buffers, POSTGRES 4.0.1 index
    /// write-through.
    pub fn paper() -> InversionTestbed {
        Self::with_config(BERKELEY_BUFFERS, true)
    }

    /// A remote client over TCP/IP on the shared Ethernet (the measured
    /// client/server configuration).
    pub fn remote_client(&self) -> RemoteClient {
        let net = Network::ethernet_10mbit(self.clock.clone());
        let ep = Endpoint::new(net, NetProfile::tcp_1993());
        let cpu = CpuModel::decsystem5900(self.clock.clone());
        RemoteClient::connect(&self.fs, ep, cpu)
    }

    /// A client inside the data manager (the "single process" configuration).
    pub fn local_client(&self) -> InvClient {
        self.fs.client()
    }
}

/// The ULTRIX NFS side: FFS with synchronous writes over (optionally) a
/// PRESTOserve board, serving a remote client over UDP RPC.
pub struct NfsTestbed {
    /// The shared simulated clock.
    pub clock: SimClock,
    /// The mounted remote client.
    pub client: NfsClient,
    presto: Option<Arc<Mutex<PrestoDisk>>>,
}

impl NfsTestbed {
    /// Builds the NFS testbed; `presto` enables the 1 MB NVRAM write cache.
    pub fn new(presto: bool) -> NfsTestbed {
        Self::with_nvram_blocks(if presto { Some(128) } else { None })
    }

    /// Builds with a custom NVRAM size in 8 KB blocks (ablations).
    pub fn with_nvram_blocks(nvram_blocks: Option<u64>) -> NfsTestbed {
        let clock = SimClock::new();
        let disk: Arc<Mutex<dyn BlockDevice>> = Arc::new(Mutex::new(MagneticDisk::new(
            "rz58",
            clock.clone(),
            DiskProfile::rz58(),
        )));
        let (backing, presto): (Arc<Mutex<dyn BlockDevice>>, _) = match nvram_blocks {
            Some(n) => {
                let nvram = simdev::Nvram::new("prestoserve", clock.clone(), n);
                let pd = Arc::new(Mutex::new(PrestoDisk::with_nvram(nvram, disk)));
                (pd.clone(), Some(pd))
            }
            None => (disk, None),
        };
        let fs = Ffs::format(
            backing,
            FfsConfig {
                max_inodes: 4096,
                cache_blocks: BERKELEY_BUFFERS, // Same server memory budget.
                sync_writes: true,
            },
        )
        .unwrap();
        let net = Network::ethernet_10mbit(clock.clone());
        let ep = Endpoint::new(net, NetProfile::nfs_udp());
        let cpu = CpuModel::decsystem5900(clock.clone());
        let client = NfsClient::mount(NfsServer::new(fs), ep, cpu);
        NfsTestbed {
            clock,
            client,
            presto,
        }
    }

    /// The paper's configuration: PRESTOserve enabled.
    pub fn paper() -> NfsTestbed {
        NfsTestbed::new(true)
    }

    /// Flushes server buffer cache and drains the NVRAM board.
    pub fn flush_caches(&mut self) {
        self.client.server_mut().fs_mut().flush_caches().unwrap();
        if let Some(pd) = &self.presto {
            pd.lock().drain_all().unwrap();
        }
    }
}

/// A local (no network) FFS mount with an asynchronous buffer cache — the
/// "native file system used locally" of the \[STON93\] comparison.
pub struct LocalFfsTestbed {
    /// The shared simulated clock.
    pub clock: SimClock,
    /// The mounted file system.
    pub fs: Ffs,
}

impl LocalFfsTestbed {
    /// Builds a local FFS on an RZ58.
    pub fn new() -> LocalFfsTestbed {
        let clock = SimClock::new();
        let disk: Arc<Mutex<dyn BlockDevice>> = Arc::new(Mutex::new(MagneticDisk::new(
            "rz58",
            clock.clone(),
            DiskProfile::rz58(),
        )));
        let fs = Ffs::format(
            disk,
            FfsConfig {
                max_inodes: 4096,
                cache_blocks: BERKELEY_BUFFERS,
                sync_writes: false,
            },
        )
        .unwrap();
        LocalFfsTestbed { clock, fs }
    }
}

impl Default for LocalFfsTestbed {
    fn default() -> Self {
        LocalFfsTestbed::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inversion_testbed_has_both_devices() {
        let tb = InversionTestbed::with_config(64, true);
        let mut c = tb.local_client();
        c.write_all(
            "/on_disk",
            inversion::CreateMode::default().on_device(DEV_DISK),
            b"disk",
        )
        .unwrap();
        c.write_all(
            "/on_jukebox",
            inversion::CreateMode::default().on_device(DEV_JUKEBOX),
            b"jukebox",
        )
        .unwrap();
        assert_eq!(c.read_to_vec("/on_disk", None).unwrap(), b"disk");
        assert_eq!(c.read_to_vec("/on_jukebox", None).unwrap(), b"jukebox");
    }

    #[test]
    fn nfs_testbed_roundtrip_and_flush() {
        let mut tb = NfsTestbed::paper();
        let attr = tb.client.create("/f").unwrap();
        tb.client.write(attr.ino, 0, b"hello").unwrap();
        tb.flush_caches();
        let mut buf = [0u8; 5];
        tb.client.read(attr.ino, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn local_ffs_testbed_works() {
        let mut tb = LocalFfsTestbed::new();
        let ino = tb.fs.create("/f").unwrap();
        tb.fs.write(ino, 0, b"local").unwrap();
        tb.fs.sync().unwrap();
        let mut buf = [0u8; 5];
        tb.fs.read(ino, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"local");
    }
}
