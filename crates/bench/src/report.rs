//! Paper-versus-measured reporting, as text tables and (with `--json`)
//! machine-readable `BENCH_<name>.json` files that pair the simulated
//! seconds with storage-manager counter deltas from [`minidb::stats`].

use std::io::Write;
use std::path::PathBuf;

/// One row of a comparison: the paper's number next to ours.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Row label (the paper's operation name).
    pub label: String,
    /// The paper's measurements, one per system column.
    pub paper: Vec<f64>,
    /// Our simulated measurements, one per system column.
    pub measured: Vec<f64>,
}

impl Comparison {
    /// Creates a row.
    pub fn new(label: &str, paper: &[f64], measured: &[f64]) -> Comparison {
        Comparison {
            label: label.to_string(),
            paper: paper.to_vec(),
            measured: measured.to_vec(),
        }
    }
}

/// Prints a section banner.
pub fn print_header(title: &str) {
    println!();
    println!("{}", "=".repeat(title.len().max(60)));
    println!("{title}");
    println!("{}", "=".repeat(title.len().max(60)));
}

/// Prints a comparison table. Each system gets a `paper` and a `measured`
/// column (seconds); a final column compares the paper's ratio between the
/// first two systems with ours, which is the reproduction target ("the
/// shape — who wins, by roughly what factor").
pub fn print_comparison(systems: &[&str], rows: &[Comparison]) {
    print!("{:<38}", "operation");
    for s in systems {
        print!("{:>14} {:>14}", format!("{s}"), "(measured)");
    }
    if systems.len() >= 2 {
        print!("{:>22}", "ratio paper / ours");
    }
    println!();
    let width = 38 + systems.len() * 29 + if systems.len() >= 2 { 22 } else { 0 };
    println!("{}", "-".repeat(width));
    for row in rows {
        print!("{:<38}", row.label);
        for i in 0..systems.len() {
            let p = row.paper.get(i).copied().unwrap_or(f64::NAN);
            let m = row.measured.get(i).copied().unwrap_or(f64::NAN);
            print!("{:>13.3}s {:>13.3}s", p, m);
        }
        if systems.len() >= 2 {
            let paper_ratio = row.paper[0] / row.paper[1];
            let our_ratio = row.measured[0] / row.measured[1];
            print!("{:>11.2}x {:>9.2}x", paper_ratio, our_ratio);
        }
        println!();
    }
}

/// Whether the process was invoked with `--json` (emit a `BENCH_*.json`
/// report next to the text table).
pub fn wants_json() -> bool {
    std::env::args().any(|a| a == "--json")
}

/// The `--threads N` argument, if present: run the multi-client scaling
/// workload with N clients instead of the paper comparison.
pub fn threads_arg() -> Option<usize> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--threads" {
            let n = args
                .next()
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or_else(|| {
                    eprintln!("--threads requires a positive integer");
                    std::process::exit(2);
                });
            return Some(n.max(1));
        }
    }
    None
}

/// Whether the process was invoked with `--remote` (combine the in-process
/// `--threads` scaling with the wire-protocol remote scaling measurement).
pub fn wants_remote() -> bool {
    std::env::args().any(|a| a == "--remote")
}

/// Renders the comparison rows as a JSON array (paper and measured seconds
/// keyed by system name).
pub fn comparison_json(systems: &[&str], rows: &[Comparison]) -> String {
    let items: Vec<String> = rows
        .iter()
        .map(|row| {
            let pair = |vals: &[f64]| {
                let fields: Vec<String> = systems
                    .iter()
                    .enumerate()
                    .map(|(i, s)| {
                        let v = vals.get(i).copied().unwrap_or(f64::NAN);
                        if v.is_finite() {
                            format!("\"{s}\": {v:.6}")
                        } else {
                            format!("\"{s}\": null")
                        }
                    })
                    .collect();
                format!("{{{}}}", fields.join(", "))
            };
            format!(
                "{{\"label\": \"{}\", \"paper_seconds\": {}, \"measured_seconds\": {}}}",
                row.label,
                pair(&row.paper),
                pair(&row.measured)
            )
        })
        .collect();
    format!("[{}]", items.join(", "))
}

/// Assembles a full benchmark report document: the comparison rows plus any
/// extra `(key, json-value)` sections — typically the [`minidb::stats`]
/// snapshot delta for the run and the file system's `inv_stat` counters.
pub fn bench_json(
    name: &str,
    systems: &[&str],
    rows: &[Comparison],
    extra: &[(&str, String)],
) -> String {
    let mut fields = vec![
        format!("\"name\": \"{name}\""),
        "\"unit\": \"simulated_seconds\"".to_string(),
        format!("\"rows\": {}", comparison_json(systems, rows)),
    ];
    for (key, value) in extra {
        fields.push(format!("\"{key}\": {value}"));
    }
    format!("{{{}}}", fields.join(", "))
}

/// Writes `BENCH_<name>.json` in the current directory.
pub fn write_bench_json(name: &str, body: &str) -> std::io::Result<PathBuf> {
    let path = PathBuf::from(format!("BENCH_{name}.json"));
    let mut f = std::fs::File::create(&path)?;
    f.write_all(body.as_bytes())?;
    if !body.ends_with('\n') {
        f.write_all(b"\n")?;
    }
    eprintln!("wrote {}", path.display());
    Ok(path)
}

/// Formats a byte count human-readably.
pub fn human_bytes(n: u64) -> String {
    if n >= 1 << 30 {
        format!("{:.1} GB", n as f64 / (1u64 << 30) as f64)
    } else if n >= 1 << 20 {
        format!("{:.1} MB", n as f64 / (1u64 << 20) as f64)
    } else if n >= 1 << 10 {
        format!("{:.1} KB", n as f64 / 1024.0)
    } else {
        format!("{n} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(2048), "2.0 KB");
        assert_eq!(human_bytes(25 << 20), "25.0 MB");
        assert_eq!(human_bytes(3 << 30), "3.0 GB");
    }

    #[test]
    fn bench_json_document_shape() {
        let rows = [Comparison::new("create", &[141.5, 50.6], &[100.0, 45.0])];
        let doc = bench_json(
            "fig3_create",
            &["Inversion", "NFS"],
            &rows,
            &[("minidb_stats_delta", "{\"x\": 1}".into())],
        );
        assert!(doc.starts_with('{') && doc.ends_with('}'));
        assert!(doc.contains("\"name\": \"fig3_create\""));
        assert!(doc.contains("\"paper_seconds\": {\"Inversion\": 141.500000"));
        assert!(doc.contains("\"minidb_stats_delta\": {\"x\": 1}"));
    }

    #[test]
    fn comparison_construction() {
        let c = Comparison::new("create", &[141.5, 50.6], &[100.0, 45.0]);
        assert_eq!(c.paper.len(), 2);
        // Printing must not panic even with mismatched columns.
        print_comparison(&["Inversion", "NFS"], &[c]);
        print_header("test");
    }
}
