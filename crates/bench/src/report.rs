//! Paper-versus-measured reporting.

/// One row of a comparison: the paper's number next to ours.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Row label (the paper's operation name).
    pub label: String,
    /// The paper's measurements, one per system column.
    pub paper: Vec<f64>,
    /// Our simulated measurements, one per system column.
    pub measured: Vec<f64>,
}

impl Comparison {
    /// Creates a row.
    pub fn new(label: &str, paper: &[f64], measured: &[f64]) -> Comparison {
        Comparison {
            label: label.to_string(),
            paper: paper.to_vec(),
            measured: measured.to_vec(),
        }
    }
}

/// Prints a section banner.
pub fn print_header(title: &str) {
    println!();
    println!("{}", "=".repeat(title.len().max(60)));
    println!("{title}");
    println!("{}", "=".repeat(title.len().max(60)));
}

/// Prints a comparison table. Each system gets a `paper` and a `measured`
/// column (seconds); a final column compares the paper's ratio between the
/// first two systems with ours, which is the reproduction target ("the
/// shape — who wins, by roughly what factor").
pub fn print_comparison(systems: &[&str], rows: &[Comparison]) {
    print!("{:<38}", "operation");
    for s in systems {
        print!("{:>14} {:>14}", format!("{s}"), "(measured)");
    }
    if systems.len() >= 2 {
        print!("{:>22}", "ratio paper / ours");
    }
    println!();
    let width = 38 + systems.len() * 29 + if systems.len() >= 2 { 22 } else { 0 };
    println!("{}", "-".repeat(width));
    for row in rows {
        print!("{:<38}", row.label);
        for i in 0..systems.len() {
            let p = row.paper.get(i).copied().unwrap_or(f64::NAN);
            let m = row.measured.get(i).copied().unwrap_or(f64::NAN);
            print!("{:>13.3}s {:>13.3}s", p, m);
        }
        if systems.len() >= 2 {
            let paper_ratio = row.paper[0] / row.paper[1];
            let our_ratio = row.measured[0] / row.measured[1];
            print!("{:>11.2}x {:>9.2}x", paper_ratio, our_ratio);
        }
        println!();
    }
}

/// Formats a byte count human-readably.
pub fn human_bytes(n: u64) -> String {
    if n >= 1 << 30 {
        format!("{:.1} GB", n as f64 / (1u64 << 30) as f64)
    } else if n >= 1 << 20 {
        format!("{:.1} MB", n as f64 / (1u64 << 20) as f64)
    } else if n >= 1 << 10 {
        format!("{:.1} KB", n as f64 / 1024.0)
    } else {
        format!("{n} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(2048), "2.0 KB");
        assert_eq!(human_bytes(25 << 20), "25.0 MB");
        assert_eq!(human_bytes(3 << 30), "3.0 GB");
    }

    #[test]
    fn comparison_construction() {
        let c = Comparison::new("create", &[141.5, 50.6], &[100.0, 45.0]);
        assert_eq!(c.paper.len(), 2);
        // Printing must not panic even with mismatched columns.
        print_comparison(&["Inversion", "NFS"], &[c]);
        print_header("test");
    }
}
