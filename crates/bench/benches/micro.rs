//! Criterion micro-benchmarks: wall-clock performance of the real data
//! structures (the simulated-time harnesses measure *modeled* time; these
//! measure the implementation itself).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use inversion::{chunk::Coalescer, compress, types::SatelliteImage, CreateMode, InversionFs};
use minidb::{decode_row, encode_row, Datum, Db, Schema, TypeId};

fn bench_page(c: &mut Criterion) {
    c.bench_function("page/insert_100b_items", |b| {
        let mut buf = vec![0u8; minidb::page::PAGE_SIZE];
        b.iter(|| {
            minidb::page::init(&mut buf, 0);
            while minidb::page::fits(&buf, 100) {
                minidb::page::insert(&mut buf, &[7u8; 100]).unwrap();
            }
            black_box(minidb::page::nslots(&buf))
        })
    });
}

fn bench_datum(c: &mut Criterion) {
    let row = vec![
        Datum::Int4(42),
        Datum::Text("the quick brown fox".into()),
        Datum::Oid(23114),
        Datum::Bytes(vec![9u8; 1024]),
    ];
    c.bench_function("datum/encode_row", |b| {
        b.iter(|| black_box(encode_row(&row)))
    });
    let enc = encode_row(&row);
    c.bench_function("datum/decode_row", |b| {
        b.iter(|| black_box(decode_row(&enc).unwrap()))
    });
}

fn bench_btree(c: &mut Criterion) {
    c.bench_function("db/indexed_insert_1k_rows", |b| {
        b.iter(|| {
            let db = Db::open_in_memory().unwrap();
            let rel = db
                .create_table("t", Schema::new([("k", TypeId::INT4), ("v", TypeId::TEXT)]))
                .unwrap();
            db.create_index("t_k", rel, &["k"]).unwrap();
            let mut s = db.begin().unwrap();
            for i in 0..1000 {
                s.insert(rel, vec![Datum::Int4(i), Datum::Text("x".into())])
                    .unwrap();
            }
            s.commit().unwrap();
        })
    });
    c.bench_function("db/index_point_lookup", |b| {
        let db = Db::open_in_memory().unwrap();
        let rel = db
            .create_table("t", Schema::new([("k", TypeId::INT4)]))
            .unwrap();
        let idx = db.create_index("t_k", rel, &["k"]).unwrap();
        let mut s = db.begin().unwrap();
        for i in 0..10_000 {
            s.insert(rel, vec![Datum::Int4(i)]).unwrap();
        }
        s.commit().unwrap();
        let mut s = db.begin().unwrap();
        let mut k = 0;
        b.iter(|| {
            k = (k + 4999) % 10_000;
            black_box(s.index_scan_eq(idx, &[Datum::Int4(k)]).unwrap())
        });
    });
}

fn bench_query(c: &mut Criterion) {
    c.bench_function("query/parse_retrieve", |b| {
        b.iter(|| {
            black_box(
                minidb::query::parse(
                    r#"retrieve (snow(file), filename) where filetype(file) = "tm"
                       and snow(file) / size(file) > 0.5 and month_of(file) = "April""#,
                )
                .unwrap(),
            )
        })
    });
    c.bench_function("query/exec_filtered_scan", |b| {
        let db = Db::open_in_memory().unwrap();
        let rel = db
            .create_table(
                "emp",
                Schema::new([("name", TypeId::TEXT), ("age", TypeId::INT4)]),
            )
            .unwrap();
        let mut s = db.begin().unwrap();
        for i in 0..500 {
            s.insert(rel, vec![Datum::Text(format!("p{i}")), Datum::Int4(i % 70)])
                .unwrap();
        }
        s.commit().unwrap();
        let mut s = db.begin().unwrap();
        b.iter(|| {
            black_box(
                s.query("retrieve (e.name) from e in emp where e.age > 65")
                    .unwrap(),
            )
        });
    });
}

fn bench_inversion(c: &mut Criterion) {
    c.bench_function("inversion/write_read_64k", |b| {
        let fs = InversionFs::open_in_memory().unwrap();
        let mut client = fs.client();
        let data = vec![0xA5u8; 64 * 1024];
        let mut i = 0;
        b.iter(|| {
            i += 1;
            let path = format!("/f{i}");
            client
                .write_all(&path, CreateMode::default(), &data)
                .unwrap();
            black_box(client.read_to_vec(&path, None).unwrap())
        });
    });
    c.bench_function("inversion/coalescer_64k_in_256b", |b| {
        let data = [7u8; 256];
        b.iter(|| {
            let mut co = Coalescer::new();
            let mut off = 0u64;
            let mut flushed = 0usize;
            for _ in 0..256 {
                let mut done = 0;
                while done < data.len() {
                    let n = co.absorb(off + done as u64, &data[done..]);
                    if n == 0 {
                        flushed += co.take().unwrap().2.len();
                        continue;
                    }
                    done += n;
                }
                off += data.len() as u64;
            }
            if let Some((_, _, buf)) = co.take() {
                flushed += buf.len();
            }
            black_box(flushed)
        });
    });
}

fn bench_compress(c: &mut Criterion) {
    let text = inversion::types::make_troff_document(3, &["storage"], 200).into_bytes();
    let chunk = &text[..8128.min(text.len())];
    c.bench_function("compress/chunk_text", |b| {
        b.iter(|| black_box(compress::compress(chunk)))
    });
    let comp = compress::compress(chunk);
    c.bench_function("compress/decompress_chunk_text", |b| {
        b.iter(|| black_box(compress::decompress(&comp).unwrap()))
    });
    let img = SatelliteImage::generate(1, 64, 64, 5, 4, 0.5).encode();
    c.bench_function("compress/satellite_image_16k", |b| {
        b.iter(|| black_box(compress::compress(&img[..16384.min(img.len())])))
    });
}

criterion_group!(
    benches,
    bench_page,
    bench_datum,
    bench_btree,
    bench_query,
    bench_inversion,
    bench_compress
);
criterion_main!(benches);
