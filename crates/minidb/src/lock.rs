//! Two-phase locking.
//!
//! "A standard database two-phase locking protocol \[GRAY76\] allows
//! concurrent access to files while preventing simultaneous changes from
//! interfering with one another." Locks are relation-granularity, shared or
//! exclusive, held until commit or abort (strict 2PL). Waiters are parked on
//! a condition variable; a wait-for graph is checked on every block so
//! deadlocks fail fast with [`DbError::Deadlock`] instead of hanging.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::error::{DbError, DbResult};
use crate::ids::{RelId, XactId};
use crate::stats::StatsRegistry;

/// Lock modes. Shared locks are compatible with each other; exclusive locks
/// are compatible with nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Read lock.
    Shared,
    /// Write lock.
    Exclusive,
}

#[derive(Debug, Default)]
struct Inner {
    /// Current holders per relation.
    holders: HashMap<RelId, HashMap<XactId, LockMode>>,
    /// Who each blocked transaction is waiting on.
    waits_for: HashMap<XactId, HashSet<XactId>>,
}

impl Inner {
    /// The holders that prevent `xid` from taking `mode` on `rel`.
    fn conflicts(&self, rel: RelId, xid: XactId, mode: LockMode) -> HashSet<XactId> {
        let Some(held) = self.holders.get(&rel) else {
            return HashSet::new();
        };
        held.iter()
            .filter(|(&h, &m)| {
                h != xid
                    && match mode {
                        LockMode::Shared => m == LockMode::Exclusive,
                        LockMode::Exclusive => true,
                    }
            })
            .map(|(&h, _)| h)
            .collect()
    }

    /// Whether `from` can reach `to` in the wait-for graph.
    fn reaches(&self, from: XactId, to: XactId) -> bool {
        let mut seen = HashSet::new();
        let mut stack = vec![from];
        while let Some(x) = stack.pop() {
            if x == to {
                return true;
            }
            if !seen.insert(x) {
                continue;
            }
            if let Some(next) = self.waits_for.get(&x) {
                stack.extend(next.iter().copied());
            }
        }
        false
    }
}

/// The lock manager.
pub struct LockManager {
    inner: Mutex<Inner>,
    cv: Condvar,
    timeout: Duration,
    /// Where acquisition/wait/deadlock/timeout counts go. A standalone
    /// manager gets a private registry; [`crate::Db::open`] swaps in the
    /// database-wide one via [`LockManager::share_stats`].
    stats: Arc<StatsRegistry>,
}

impl Default for LockManager {
    fn default() -> Self {
        LockManager::new()
    }
}

impl LockManager {
    /// Creates a lock manager with a 10-second wait timeout backstop.
    pub fn new() -> LockManager {
        LockManager::with_timeout(Duration::from_secs(10))
    }

    /// Creates a lock manager with a custom wait timeout (tests).
    pub fn with_timeout(timeout: Duration) -> LockManager {
        LockManager {
            inner: Mutex::new(Inner::default()),
            cv: Condvar::new(),
            timeout,
            stats: Arc::new(StatsRegistry::new()),
        }
    }

    /// Redirects this manager's counters into `stats`.
    pub fn share_stats(&mut self, stats: Arc<StatsRegistry>) {
        self.stats = stats;
    }

    /// The registry this manager's counters land in.
    pub fn stats(&self) -> &StatsRegistry {
        &self.stats
    }

    /// Acquires `mode` on `rel` for `xid`, blocking until compatible.
    ///
    /// Re-acquiring an already-held lock is a no-op; a shared holder that is
    /// the only holder upgrades to exclusive in place. Detected deadlocks
    /// return [`DbError::Deadlock`] (the caller should abort); pathological
    /// waits return [`DbError::LockTimeout`].
    pub fn acquire(&self, xid: XactId, rel: RelId, mode: LockMode) -> DbResult<()> {
        let _order = order::token(order::LOCK_MANAGER);
        let mut inner = self.inner.lock();
        let mut waited = false;
        loop {
            let already = inner.holders.get(&rel).and_then(|h| h.get(&xid)).copied();
            match (already, mode) {
                (Some(LockMode::Exclusive), _) | (Some(LockMode::Shared), LockMode::Shared) => {
                    return Ok(())
                }
                _ => {}
            }
            let conflicts = inner.conflicts(rel, xid, mode);
            if conflicts.is_empty() {
                inner.holders.entry(rel).or_default().insert(xid, mode);
                inner.waits_for.remove(&xid);
                self.stats.lock.acquisitions.bump();
                return Ok(());
            }
            // Would waiting close a cycle? If any conflicting holder
            // (transitively) waits on us, abort this request instead.
            for &other in &conflicts {
                if inner.reaches(other, xid) {
                    inner.waits_for.remove(&xid);
                    self.stats.lock.deadlocks.bump();
                    return Err(DbError::Deadlock);
                }
            }
            inner.waits_for.insert(xid, conflicts);
            if !waited {
                waited = true;
                self.stats.lock.waits.bump();
            }
            let timed_out = self.cv.wait_for(&mut inner, self.timeout).timed_out();
            if timed_out {
                inner.waits_for.remove(&xid);
                self.stats.lock.timeouts.bump();
                return Err(DbError::LockTimeout);
            }
        }
    }

    /// Releases every lock held by `xid` (end of transaction).
    pub fn release_all(&self, xid: XactId) {
        let _order = order::token(order::LOCK_MANAGER);
        let mut inner = self.inner.lock();
        inner.holders.retain(|_, held| {
            held.remove(&xid);
            !held.is_empty()
        });
        inner.waits_for.remove(&xid);
        self.cv.notify_all();
    }

    /// The mode `xid` holds on `rel`, if any.
    pub fn held(&self, xid: XactId, rel: RelId) -> Option<LockMode> {
        let _order = order::token(order::LOCK_MANAGER);
        self.inner
            .lock()
            .holders
            .get(&rel)
            .and_then(|h| h.get(&xid))
            .copied()
    }

    /// Total locks currently held across all transactions. Zero once every
    /// session has committed, aborted, or been disconnected — the invariant
    /// the server's teardown tests assert.
    pub fn held_lock_count(&self) -> usize {
        let _order = order::token(order::LOCK_MANAGER);
        self.inner
            .lock()
            .holders
            .values()
            .map(|held| held.len())
            .sum()
    }
}

/// The declared lock hierarchy, shared between the static `xtask lint`
/// audit and the debug-build runtime assertions below.
///
/// Acquisition order runs outermost to innermost; a thread may only acquire
/// a lock whose level is **>=** every level it already holds (equal levels
/// are allowed: a b-tree split legitimately latches several index pages at
/// once).
///
/// The order differs from a naive reading of the module layering because it
/// is derived from the code's actual nesting, which the audit verified:
///
/// * a b-tree split holds a page latch while asking the buffer pool for a
///   fresh page, so page latches are *outside* the shard latches;
/// * the pool locks a frame (to load it or to write a victim back) while
///   holding a shard latch, so shard latches are *outside* frame locks —
///   and it always releases the shard latch before any device I/O, so no
///   device lock is ever taken under a shard latch (a debug assertion in
///   the smgr read/write/extend paths enforces this);
/// * the heap consults the transaction log while holding a page latch, so
///   page latches are *outside* the log mutex.
///
/// `heap-page`/`btree-page` and `buffer-frame` name the *same* physical
/// `RwLock` (a frame's page lock) in two acquisition contexts: access
/// methods latch pages they have already pinned (outside the pool, low
/// rank), while the pool itself locks frames under a shard latch during
/// loads, writebacks, and flushes (high rank). The pool never acquires a
/// shard latch while holding a frame lock, which keeps both contexts
/// cycle-free.
pub mod order {
    /// Lock families, outermost first. Index = rank.
    pub const HIERARCHY: [&str; 12] = [
        "catalog",
        "lock-manager",
        "heap-page",
        "btree-page",
        "commit-coord",
        "checkpointer",
        "xact-log",
        "buffer-shard",
        "buffer-frame",
        "wal",
        "io-queue",
        "smgr-device",
    ];

    /// Rank of the catalog `RwLock`.
    pub const CATALOG: usize = 0;
    /// Rank of the two-phase lock manager's internal mutex.
    pub const LOCK_MANAGER: usize = 1;
    /// Rank of heap page latches.
    pub const HEAP_PAGE: usize = 2;
    /// Rank of b-tree page latches (meta, internal, and leaf pages).
    pub const BTREE_PAGE: usize = 3;
    /// Rank of the group-commit coordinator mutex. It sits *outside*
    /// `xact-log` and the device ranks because the batch leader persists
    /// commit records and syncs devices on behalf of the whole batch;
    /// committers enter the coordinator holding no other ranked lock.
    pub const COMMIT_COORD: usize = 4;
    /// Rank of the checkpointer's cycle mutex. A checkpoint drains the
    /// status log, the buffer pool, the WAL, and the devices, so it sits
    /// outside all of those; it sits *inside* `commit-coord` because a
    /// batch leader may never start a checkpoint.
    pub const CHECKPOINTER: usize = 5;
    /// Rank of the transaction status log mutex.
    pub const XACT_LOG: usize = 6;
    /// Rank of the buffer pool's per-shard latches.
    pub const BUFFER_SHARD: usize = 7;
    /// Rank of frame locks taken *by the pool itself* (load, writeback,
    /// flush) — access methods lock the same frames as `heap-page` /
    /// `btree-page`.
    pub const BUFFER_FRAME: usize = 8;
    /// Rank of the write-ahead log's append/force mutex. Record emission
    /// happens under page latches and forces happen during frame
    /// writeback, so the WAL ranks inside both; it ranks outside the
    /// devices because a force writes and syncs the log device.
    pub const WAL: usize = 9;
    /// Rank of the per-device I/O scheduler's queue mutex. Submissions
    /// happen during frame writeback (under `buffer-frame`) and after a
    /// WAL force, so the queue ranks inside both; the worker thread takes
    /// the queue lock and the device lock strictly alternately (never
    /// nested), but submission-side code may peek the queue right before
    /// falling back to a synchronous device call, so the queue ranks
    /// outside `smgr-device`. The queue lock is never held across a wait:
    /// waits (barriers, read-ticket claims, backpressure throttles) assert
    /// that no shard or frame latch is held.
    pub const IO_QUEUE: usize = 10;
    /// Rank of per-device locks (the smgr switch and `SharedDevice`s).
    pub const SMGR_DEVICE: usize = 11;

    #[cfg(debug_assertions)]
    thread_local! {
        static HELD: std::cell::RefCell<Vec<usize>> =
            const { std::cell::RefCell::new(Vec::new()) };
    }

    /// RAII witness that the current thread holds a lock of some rank.
    ///
    /// Bind one right after taking the guard it describes and keep it for
    /// exactly the guard's critical section. Zero-sized no-op in release
    /// builds.
    #[must_use = "bind the token for the critical section it describes"]
    pub struct LevelToken {
        #[cfg(debug_assertions)]
        level: usize,
    }

    /// Records that the current thread acquired a lock of rank `level`,
    /// asserting (debug builds only) that it respects [`HIERARCHY`].
    #[cfg_attr(not(debug_assertions), allow(unused_variables))]
    pub fn token(level: usize) -> LevelToken {
        #[cfg(debug_assertions)]
        {
            HELD.with(|h| {
                let mut h = h.borrow_mut();
                if let Some(&max) = h.iter().max() {
                    assert!(
                        level >= max,
                        "lock-order violation: acquiring {} while holding {}",
                        HIERARCHY[level.min(HIERARCHY.len() - 1)],
                        HIERARCHY[max.min(HIERARCHY.len() - 1)],
                    );
                }
                h.push(level);
            });
            LevelToken { level }
        }
        #[cfg(not(debug_assertions))]
        LevelToken {}
    }

    #[cfg(debug_assertions)]
    impl Drop for LevelToken {
        fn drop(&mut self) {
            HELD.with(|h| {
                let mut h = h.borrow_mut();
                if let Some(pos) = h.iter().rposition(|&l| l == self.level) {
                    h.remove(pos);
                }
            });
        }
    }

    /// Whether the current thread holds a lock of rank `level` (debug
    /// builds only; always `false` in release). The smgr uses this to
    /// assert that no device I/O happens under a buffer-shard latch.
    #[cfg_attr(not(debug_assertions), allow(unused_variables))]
    pub fn is_held(level: usize) -> bool {
        #[cfg(debug_assertions)]
        {
            HELD.with(|h| h.borrow().contains(&level))
        }
        #[cfg(not(debug_assertions))]
        false
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn increasing_and_equal_ranks_pass() {
            let _a = token(CATALOG);
            let _b = token(HEAP_PAGE);
            let _c = token(HEAP_PAGE);
            let _d = token(SMGR_DEVICE);
        }

        #[test]
        fn release_unwinds_the_stack() {
            {
                let _a = token(BUFFER_SHARD);
            }
            let _b = token(CATALOG); // Fine again once the shard rank is gone.
        }

        #[test]
        #[cfg(debug_assertions)]
        fn is_held_tracks_live_tokens() {
            assert!(!is_held(BUFFER_SHARD));
            {
                let _a = token(BUFFER_SHARD);
                assert!(is_held(BUFFER_SHARD));
                assert!(!is_held(BUFFER_FRAME));
            }
            assert!(!is_held(BUFFER_SHARD));
        }

        #[test]
        #[cfg(debug_assertions)]
        #[should_panic(expected = "lock-order violation")]
        fn decreasing_rank_panics_in_debug() {
            let _a = token(BUFFER_SHARD);
            let _b = token(HEAP_PAGE);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Oid;
    use std::sync::Arc;

    #[test]
    fn shared_locks_coexist() {
        let lm = LockManager::new();
        lm.acquire(XactId(1), Oid(5), LockMode::Shared).unwrap();
        lm.acquire(XactId(2), Oid(5), LockMode::Shared).unwrap();
        assert_eq!(lm.held(XactId(1), Oid(5)), Some(LockMode::Shared));
        assert_eq!(lm.held(XactId(2), Oid(5)), Some(LockMode::Shared));
    }

    #[test]
    fn reacquire_is_noop_and_upgrade_works_when_sole_holder() {
        let lm = LockManager::new();
        lm.acquire(XactId(1), Oid(5), LockMode::Shared).unwrap();
        lm.acquire(XactId(1), Oid(5), LockMode::Shared).unwrap();
        lm.acquire(XactId(1), Oid(5), LockMode::Exclusive).unwrap();
        assert_eq!(lm.held(XactId(1), Oid(5)), Some(LockMode::Exclusive));
        // Exclusive holder re-requesting shared keeps exclusive.
        lm.acquire(XactId(1), Oid(5), LockMode::Shared).unwrap();
        assert_eq!(lm.held(XactId(1), Oid(5)), Some(LockMode::Exclusive));
    }

    #[test]
    fn exclusive_blocks_shared_until_release() {
        let lm = Arc::new(LockManager::new());
        lm.acquire(XactId(1), Oid(5), LockMode::Exclusive).unwrap();
        let lm2 = Arc::clone(&lm);
        let t = std::thread::spawn(move || {
            lm2.acquire(XactId(2), Oid(5), LockMode::Shared).unwrap();
            lm2.held(XactId(2), Oid(5))
        });
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(lm.held(XactId(2), Oid(5)), None, "waiter must be blocked");
        lm.release_all(XactId(1));
        assert_eq!(t.join().unwrap(), Some(LockMode::Shared));
    }

    #[test]
    fn deadlock_detected_not_hung() {
        let lm = Arc::new(LockManager::new());
        lm.acquire(XactId(1), Oid(1), LockMode::Exclusive).unwrap();
        lm.acquire(XactId(2), Oid(2), LockMode::Exclusive).unwrap();
        let lm2 = Arc::clone(&lm);
        let t = std::thread::spawn(move || {
            // X2 waits for rel 1 (held by X1).
            lm2.acquire(XactId(2), Oid(1), LockMode::Exclusive)
        });
        std::thread::sleep(Duration::from_millis(50));
        // X1 requesting rel 2 closes the cycle: one side must get Deadlock.
        let r1 = lm.acquire(XactId(1), Oid(2), LockMode::Exclusive);
        assert_eq!(r1, Err(DbError::Deadlock));
        // Aborting X1 unblocks X2.
        lm.release_all(XactId(1));
        assert_eq!(t.join().unwrap(), Ok(()));
    }

    #[test]
    fn timeout_backstop_fires() {
        let lm = LockManager::with_timeout(Duration::from_millis(50));
        lm.acquire(XactId(1), Oid(5), LockMode::Exclusive).unwrap();
        let r = lm.acquire(XactId(2), Oid(5), LockMode::Shared);
        assert_eq!(r, Err(DbError::LockTimeout));
    }

    #[test]
    fn release_all_frees_every_relation() {
        let lm = LockManager::new();
        lm.acquire(XactId(1), Oid(1), LockMode::Exclusive).unwrap();
        lm.acquire(XactId(1), Oid(2), LockMode::Shared).unwrap();
        lm.release_all(XactId(1));
        assert_eq!(lm.held(XactId(1), Oid(1)), None);
        assert_eq!(lm.held(XactId(1), Oid(2)), None);
        // Another transaction can take both immediately.
        lm.acquire(XactId(2), Oid(1), LockMode::Exclusive).unwrap();
        lm.acquire(XactId(2), Oid(2), LockMode::Exclusive).unwrap();
    }

    #[test]
    fn counters_track_grants_waits_and_timeouts() {
        let lm = LockManager::with_timeout(Duration::from_millis(50));
        lm.acquire(XactId(1), Oid(5), LockMode::Exclusive).unwrap();
        assert_eq!(lm.stats().lock.acquisitions.get(), 1);
        // Re-acquire is a no-op, not a fresh grant.
        lm.acquire(XactId(1), Oid(5), LockMode::Exclusive).unwrap();
        assert_eq!(lm.stats().lock.acquisitions.get(), 1);
        let r = lm.acquire(XactId(2), Oid(5), LockMode::Shared);
        assert_eq!(r, Err(DbError::LockTimeout));
        assert_eq!(lm.stats().lock.waits.get(), 1);
        assert_eq!(lm.stats().lock.timeouts.get(), 1);
        assert_eq!(lm.stats().lock.deadlocks.get(), 0);
    }

    #[test]
    fn writers_serialize_under_contention() {
        let lm = Arc::new(LockManager::new());
        let counter = Arc::new(Mutex::new(0u32));
        let mut handles = Vec::new();
        for i in 0..8u32 {
            let lm = Arc::clone(&lm);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                let xid = XactId(10 + i);
                lm.acquire(xid, Oid(7), LockMode::Exclusive).unwrap();
                {
                    let mut g = counter.lock();
                    *g += 1;
                }
                std::thread::sleep(Duration::from_millis(2));
                lm.release_all(xid);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock(), 8);
    }
}
