//! The system catalog: relations, types, functions, and rules.
//!
//! POSTGRES keeps catalogs in ordinary relations; here they are kept as an
//! explicitly serialized structure persisted on the catalog device, which
//! keeps bootstrap simple while preserving what matters for the paper:
//! catalog contents survive crashes, and types/functions/rules are
//! first-class registered objects.
//!
//! Function *bodies* are Rust callables and cannot be serialized; like
//! POSTGRES's dynamically loaded C functions, the catalog persists each
//! function's name, signature and *implementation key*, and the
//! implementation is re-resolved from the in-process registry
//! ([`crate::funcs::FunctionRegistry`]) when invoked after a restart.

use std::collections::HashMap;

use crate::datum::{Schema, TypeId};
use crate::error::{DbError, DbResult};
use crate::ids::{DeviceId, Oid, RelId};

/// What kind of object a relation is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelKind {
    /// A heap of tuples.
    Heap,
    /// A B-tree index over a heap.
    BTreeIndex,
}

/// Index metadata: which heap it indexes and on which columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexInfo {
    /// The indexed heap relation.
    pub table: RelId,
    /// Key column positions within the heap schema, in key order.
    pub key_columns: Vec<usize>,
}

/// One catalog row describing a relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationEntry {
    /// The relation's oid.
    pub id: RelId,
    /// Unique name.
    pub name: String,
    /// Heap or index.
    pub kind: RelKind,
    /// The device it lives on.
    pub device: DeviceId,
    /// Column layout (heaps; indices reuse their table's key columns).
    pub schema: Schema,
    /// For indices: what they index.
    pub index: Option<IndexInfo>,
    /// For heaps: the indices defined on them.
    pub indexes: Vec<RelId>,
    /// For heaps: the archive relation that the vacuum cleaner fills.
    pub archive: Option<RelId>,
    /// "For files in which the user has no interest in maintaining history,
    /// POSTGRES can be instructed not to save old versions." When set, the
    /// vacuum cleaner discards dead versions instead of archiving them.
    pub no_history: bool,
}

/// A registered type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeEntry {
    /// The type's oid.
    pub id: TypeId,
    /// Unique name (e.g. `"tm"` for Thematic Mapper images).
    pub name: String,
}

/// A registered function (the persistent half; see module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcEntry {
    /// Unique function name as used in queries.
    pub name: String,
    /// Number of arguments.
    pub nargs: usize,
    /// Return type.
    pub ret: TypeId,
    /// Key into the in-process implementation registry.
    pub impl_key: String,
    /// If set, the file type this function operates on (Table 2 style).
    pub operates_on: Option<TypeId>,
}

/// When a rule's qualification is evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleEvent {
    /// Evaluated when a row of the target relation is read.
    OnAccess,
    /// Evaluated when a row of the target relation is written.
    OnUpdate,
    /// Evaluated by an explicit sweep (`Db::run_rules`) — how migration
    /// daemons drive the rules system.
    Periodic,
}

/// A registered predicate rule (used for file migration).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleEntry {
    /// Unique rule name.
    pub name: String,
    /// Relation whose rows the rule watches.
    pub on_rel: RelId,
    /// When the qualification is checked.
    pub event: RuleEvent,
    /// Qualification expression source (query-language syntax).
    pub qual: String,
    /// Action expression source, e.g. `migrate(file, 1)`.
    pub action: String,
}

/// The catalog proper.
#[derive(Debug, Default)]
pub struct Catalog {
    next_oid: u32,
    relations: HashMap<RelId, RelationEntry>,
    rel_by_name: HashMap<String, RelId>,
    types: HashMap<TypeId, TypeEntry>,
    type_by_name: HashMap<String, TypeId>,
    procs: HashMap<String, ProcEntry>,
    rules: Vec<RuleEntry>,
}

impl Catalog {
    /// First oid handed out to user objects.
    pub const FIRST_OID: u32 = 1000;

    /// Creates an empty catalog.
    pub fn new() -> Catalog {
        Catalog {
            next_oid: Self::FIRST_OID,
            ..Default::default()
        }
    }

    /// Allocates a fresh oid.
    pub fn alloc_oid(&mut self) -> Oid {
        let oid = Oid(self.next_oid);
        self.next_oid += 1;
        oid
    }

    /// Registers a relation entry.
    pub fn add_relation(&mut self, entry: RelationEntry) -> DbResult<()> {
        if self.rel_by_name.contains_key(&entry.name) {
            return Err(DbError::AlreadyExists(format!(
                "relation \"{}\"",
                entry.name
            )));
        }
        self.rel_by_name.insert(entry.name.clone(), entry.id);
        self.relations.insert(entry.id, entry);
        Ok(())
    }

    /// Removes a relation entry.
    pub fn remove_relation(&mut self, id: RelId) -> DbResult<RelationEntry> {
        let entry = self
            .relations
            .remove(&id)
            .ok_or_else(|| DbError::NotFound(format!("relation {id}")))?;
        self.rel_by_name.remove(&entry.name);
        // Detach from any table that listed this as an index.
        if let Some(info) = &entry.index {
            if let Some(table) = self.relations.get_mut(&info.table) {
                table.indexes.retain(|&i| i != id);
            }
        }
        Ok(entry)
    }

    /// Looks up a relation by oid.
    pub fn relation(&self, id: RelId) -> DbResult<&RelationEntry> {
        self.relations
            .get(&id)
            .ok_or_else(|| DbError::NotFound(format!("relation {id}")))
    }

    /// Mutable lookup by oid.
    pub fn relation_mut(&mut self, id: RelId) -> DbResult<&mut RelationEntry> {
        self.relations
            .get_mut(&id)
            .ok_or_else(|| DbError::NotFound(format!("relation {id}")))
    }

    /// Looks up a relation by name.
    pub fn relation_by_name(&self, name: &str) -> DbResult<&RelationEntry> {
        let id = self
            .rel_by_name
            .get(name)
            .ok_or_else(|| DbError::NotFound(format!("relation \"{name}\"")))?;
        self.relation(*id)
    }

    /// All relations, unordered.
    pub fn relations(&self) -> impl Iterator<Item = &RelationEntry> {
        self.relations.values()
    }

    /// Registers a user-defined type, allocating its id.
    pub fn define_type(&mut self, name: &str) -> DbResult<TypeId> {
        if self.type_by_name.contains_key(name) || TypeId::from_builtin_name(name).is_some() {
            return Err(DbError::AlreadyExists(format!("type \"{name}\"")));
        }
        let id = TypeId(self.next_oid.max(TypeId::FIRST_USER.0));
        self.next_oid = id.0 + 1;
        self.types.insert(
            id,
            TypeEntry {
                id,
                name: name.to_string(),
            },
        );
        self.type_by_name.insert(name.to_string(), id);
        Ok(id)
    }

    /// Resolves a type name (builtin or user-defined).
    pub fn type_by_name(&self, name: &str) -> DbResult<TypeId> {
        if let Some(t) = TypeId::from_builtin_name(name) {
            return Ok(t);
        }
        self.type_by_name
            .get(name)
            .copied()
            .ok_or_else(|| DbError::NotFound(format!("type \"{name}\"")))
    }

    /// The name of a type id.
    pub fn type_name(&self, id: TypeId) -> DbResult<String> {
        if let Some(n) = id.builtin_name() {
            return Ok(n.to_string());
        }
        self.types
            .get(&id)
            .map(|t| t.name.clone())
            .ok_or_else(|| DbError::NotFound(format!("type {}", id.0)))
    }

    /// All user-defined types.
    pub fn user_types(&self) -> impl Iterator<Item = &TypeEntry> {
        self.types.values()
    }

    /// Registers a function's persistent definition.
    pub fn define_proc(&mut self, entry: ProcEntry) -> DbResult<()> {
        if self.procs.contains_key(&entry.name) {
            return Err(DbError::AlreadyExists(format!(
                "function \"{}\"",
                entry.name
            )));
        }
        self.procs.insert(entry.name.clone(), entry);
        Ok(())
    }

    /// Looks up a function definition.
    pub fn proc(&self, name: &str) -> DbResult<&ProcEntry> {
        self.procs
            .get(name)
            .ok_or_else(|| DbError::NotFound(format!("function \"{name}\"")))
    }

    /// All registered function definitions.
    pub fn procs(&self) -> impl Iterator<Item = &ProcEntry> {
        self.procs.values()
    }

    /// Registers a rule.
    pub fn define_rule(&mut self, rule: RuleEntry) -> DbResult<()> {
        if self.rules.iter().any(|r| r.name == rule.name) {
            return Err(DbError::AlreadyExists(format!("rule \"{}\"", rule.name)));
        }
        self.rules.push(rule);
        Ok(())
    }

    /// Removes a rule by name.
    pub fn remove_rule(&mut self, name: &str) -> DbResult<()> {
        let before = self.rules.len();
        self.rules.retain(|r| r.name != name);
        if self.rules.len() == before {
            return Err(DbError::NotFound(format!("rule \"{name}\"")));
        }
        Ok(())
    }

    /// Rules watching `rel` for `event`.
    pub fn rules_for(&self, rel: RelId, event: RuleEvent) -> Vec<&RuleEntry> {
        self.rules
            .iter()
            .filter(|r| r.on_rel == rel && r.event == event)
            .collect()
    }

    /// All rules.
    pub fn rules(&self) -> &[RuleEntry] {
        &self.rules
    }

    /// Cross-checks the catalog's internal references.
    ///
    /// Every index ↔ heap link must be bidirectional, index key columns must
    /// fall inside the indexed heap's schema, archives must exist and be
    /// heaps, and `kind` must agree with the presence of `index` metadata.
    pub fn check(&self) -> Vec<crate::check::Finding> {
        use crate::check::Finding;
        let mut out = Vec::new();
        for e in self.relations() {
            match (e.kind, &e.index) {
                (RelKind::BTreeIndex, None) => out.push(Finding::new(
                    &e.name,
                    "catalog-index-info",
                    "index relation has no index metadata",
                )),
                (RelKind::Heap, Some(_)) => out.push(Finding::new(
                    &e.name,
                    "catalog-index-info",
                    "heap relation carries index metadata",
                )),
                _ => {}
            }
            if let Some(info) = &e.index {
                match self.relation(info.table) {
                    Ok(table) => {
                        if !table.indexes.contains(&e.id) {
                            out.push(Finding::new(
                                &e.name,
                                "catalog-dangling-rel",
                                format!("table {} does not list this index", table.name),
                            ));
                        }
                        for &col in &info.key_columns {
                            if col >= table.schema.columns.len() {
                                out.push(Finding::new(
                                    &e.name,
                                    "catalog-key-column",
                                    format!(
                                        "key column {col} outside schema of {} ({} columns)",
                                        table.name,
                                        table.schema.columns.len()
                                    ),
                                ));
                            }
                        }
                    }
                    Err(_) => out.push(Finding::new(
                        &e.name,
                        "catalog-dangling-rel",
                        format!("indexed table {:?} is not in the catalog", info.table),
                    )),
                }
            }
            for &idx in &e.indexes {
                match self.relation(idx) {
                    Ok(ie) => {
                        if ie.index.as_ref().map(|i| i.table) != Some(e.id) {
                            out.push(Finding::new(
                                &e.name,
                                "catalog-dangling-rel",
                                format!("listed index {} does not point back", ie.name),
                            ));
                        }
                    }
                    Err(_) => out.push(Finding::new(
                        &e.name,
                        "catalog-dangling-rel",
                        format!("listed index {idx:?} is not in the catalog"),
                    )),
                }
            }
            if let Some(arch) = e.archive {
                match self.relation(arch) {
                    Ok(ae) if ae.kind != RelKind::Heap => out.push(Finding::new(
                        &e.name,
                        "catalog-dangling-rel",
                        format!("archive {} is not a heap", ae.name),
                    )),
                    Ok(_) => {}
                    Err(_) => out.push(Finding::new(
                        &e.name,
                        "catalog-dangling-rel",
                        format!("archive relation {arch:?} is not in the catalog"),
                    )),
                }
            }
        }
        out
    }

    /// Serializes the whole catalog.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let put_str = |out: &mut Vec<u8>, s: &str| {
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        };
        out.extend_from_slice(&self.next_oid.to_le_bytes());

        let mut rels: Vec<_> = self.relations.values().collect();
        rels.sort_by_key(|r| r.id.0);
        out.extend_from_slice(&(rels.len() as u32).to_le_bytes());
        for r in rels {
            out.extend_from_slice(&r.id.0.to_le_bytes());
            put_str(&mut out, &r.name);
            out.push(match r.kind {
                RelKind::Heap => 0,
                RelKind::BTreeIndex => 1,
            });
            out.push(r.device.0);
            out.extend_from_slice(&r.schema.encode());
            match &r.index {
                None => out.push(0),
                Some(info) => {
                    out.push(1);
                    out.extend_from_slice(&info.table.0.to_le_bytes());
                    out.extend_from_slice(&(info.key_columns.len() as u16).to_le_bytes());
                    for &c in &info.key_columns {
                        out.extend_from_slice(&(c as u16).to_le_bytes());
                    }
                }
            }
            out.extend_from_slice(&(r.indexes.len() as u16).to_le_bytes());
            for i in &r.indexes {
                out.extend_from_slice(&i.0.to_le_bytes());
            }
            out.extend_from_slice(&r.archive.map(|a| a.0).unwrap_or(0).to_le_bytes());
            out.push(r.no_history as u8);
        }

        let mut types: Vec<_> = self.types.values().collect();
        types.sort_by_key(|t| t.id.0);
        out.extend_from_slice(&(types.len() as u32).to_le_bytes());
        for t in types {
            out.extend_from_slice(&t.id.0.to_le_bytes());
            put_str(&mut out, &t.name);
        }

        let mut procs: Vec<_> = self.procs.values().collect();
        procs.sort_by_key(|p| p.name.clone());
        out.extend_from_slice(&(procs.len() as u32).to_le_bytes());
        for p in procs {
            put_str(&mut out, &p.name);
            out.extend_from_slice(&(p.nargs as u16).to_le_bytes());
            out.extend_from_slice(&p.ret.0.to_le_bytes());
            put_str(&mut out, &p.impl_key);
            out.extend_from_slice(&p.operates_on.map(|t| t.0).unwrap_or(0).to_le_bytes());
        }

        out.extend_from_slice(&(self.rules.len() as u32).to_le_bytes());
        for r in &self.rules {
            put_str(&mut out, &r.name);
            out.extend_from_slice(&r.on_rel.0.to_le_bytes());
            out.push(match r.event {
                RuleEvent::OnAccess => 0,
                RuleEvent::OnUpdate => 1,
                RuleEvent::Periodic => 2,
            });
            put_str(&mut out, &r.qual);
            put_str(&mut out, &r.action);
        }
        out
    }

    /// Deserializes a catalog from [`Catalog::encode`] output.
    pub fn decode(buf: &[u8]) -> DbResult<Catalog> {
        let corrupt = || DbError::Corrupt("truncated catalog".into());
        let mut pos = 0usize;
        macro_rules! take {
            ($n:expr) => {{
                let s = buf.get(pos..pos + $n).ok_or_else(corrupt)?;
                pos += $n;
                s
            }};
        }
        macro_rules! get_u32 {
            () => {
                u32::from_le_bytes(take!(4).try_into().unwrap())
            };
        }
        macro_rules! get_u16 {
            () => {
                u16::from_le_bytes(take!(2).try_into().unwrap())
            };
        }
        macro_rules! get_str {
            () => {{
                let len = get_u32!() as usize;
                String::from_utf8(take!(len).to_vec())
                    .map_err(|_| DbError::Corrupt("bad utf8 in catalog".into()))?
            }};
        }

        let mut cat = Catalog::new();
        cat.next_oid = get_u32!();

        let nrels = get_u32!();
        for _ in 0..nrels {
            let id = Oid(get_u32!());
            let name = get_str!();
            let kind = match take!(1)[0] {
                0 => RelKind::Heap,
                1 => RelKind::BTreeIndex,
                k => return Err(DbError::Corrupt(format!("bad relkind {k}"))),
            };
            let device = DeviceId(take!(1)[0]);
            let schema = Schema::decode(buf, &mut pos)?;
            let index = match take!(1)[0] {
                0 => None,
                1 => {
                    let table = Oid(get_u32!());
                    let ncols = get_u16!() as usize;
                    let mut key_columns = Vec::with_capacity(ncols);
                    for _ in 0..ncols {
                        key_columns.push(get_u16!() as usize);
                    }
                    Some(IndexInfo { table, key_columns })
                }
                k => return Err(DbError::Corrupt(format!("bad index flag {k}"))),
            };
            let nidx = get_u16!() as usize;
            let mut indexes = Vec::with_capacity(nidx);
            for _ in 0..nidx {
                indexes.push(Oid(get_u32!()));
            }
            let archive_raw = get_u32!();
            let archive = if archive_raw == 0 {
                None
            } else {
                Some(Oid(archive_raw))
            };
            let no_history = take!(1)[0] != 0;
            cat.add_relation(RelationEntry {
                id,
                name,
                kind,
                device,
                schema,
                index,
                indexes,
                archive,
                no_history,
            })?;
        }

        let ntypes = get_u32!();
        for _ in 0..ntypes {
            let id = TypeId(get_u32!());
            let name = get_str!();
            cat.types.insert(
                id,
                TypeEntry {
                    id,
                    name: name.clone(),
                },
            );
            cat.type_by_name.insert(name, id);
        }

        let nprocs = get_u32!();
        for _ in 0..nprocs {
            let name = get_str!();
            let nargs = get_u16!() as usize;
            let ret = TypeId(get_u32!());
            let impl_key = get_str!();
            let op_raw = get_u32!();
            let operates_on = if op_raw == 0 {
                None
            } else {
                Some(TypeId(op_raw))
            };
            cat.procs.insert(
                name.clone(),
                ProcEntry {
                    name,
                    nargs,
                    ret,
                    impl_key,
                    operates_on,
                },
            );
        }

        let nrules = get_u32!();
        for _ in 0..nrules {
            let name = get_str!();
            let on_rel = Oid(get_u32!());
            let event = match take!(1)[0] {
                0 => RuleEvent::OnAccess,
                1 => RuleEvent::OnUpdate,
                2 => RuleEvent::Periodic,
                k => return Err(DbError::Corrupt(format!("bad rule event {k}"))),
            };
            let qual = get_str!();
            let action = get_str!();
            cat.rules.push(RuleEntry {
                name,
                on_rel,
                event,
                qual,
                action,
            });
        }
        Ok(cat)
    }
}

#[cfg(test)]
impl Catalog {
    fn clone_for_test(&self) -> Catalog {
        Catalog::decode(&self.encode()).expect("catalog roundtrip")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap_entry(cat: &mut Catalog, name: &str) -> RelationEntry {
        let id = cat.alloc_oid();
        RelationEntry {
            id,
            name: name.into(),
            kind: RelKind::Heap,
            device: DeviceId::DEFAULT,
            schema: Schema::new([("a", TypeId::INT4)]),
            index: None,
            indexes: vec![],
            archive: None,
            no_history: false,
        }
    }

    #[test]
    fn oids_are_unique_and_dense() {
        let mut cat = Catalog::new();
        let a = cat.alloc_oid();
        let b = cat.alloc_oid();
        assert_ne!(a, b);
        assert!(a.0 >= Catalog::FIRST_OID);
    }

    #[test]
    fn relation_registration_and_lookup() {
        let mut cat = Catalog::new();
        let e = heap_entry(&mut cat, "naming");
        let id = e.id;
        cat.add_relation(e).unwrap();
        assert_eq!(cat.relation(id).unwrap().name, "naming");
        assert_eq!(cat.relation_by_name("naming").unwrap().id, id);
        assert!(cat.relation_by_name("nope").is_err());
        // Duplicate name rejected.
        let mut dup = heap_entry(&mut cat, "naming");
        dup.name = "naming".into();
        assert!(matches!(
            cat.add_relation(dup),
            Err(DbError::AlreadyExists(_))
        ));
    }

    #[test]
    fn remove_relation_detaches_index() {
        let mut cat = Catalog::new();
        let table = heap_entry(&mut cat, "t");
        let tid = table.id;
        cat.add_relation(table).unwrap();
        let idx_id = cat.alloc_oid();
        cat.add_relation(RelationEntry {
            id: idx_id,
            name: "t_idx".into(),
            kind: RelKind::BTreeIndex,
            device: DeviceId::DEFAULT,
            schema: Schema::default(),
            index: Some(IndexInfo {
                table: tid,
                key_columns: vec![0],
            }),
            indexes: vec![],
            archive: None,
            no_history: false,
        })
        .unwrap();
        cat.relation_mut(tid).unwrap().indexes.push(idx_id);
        cat.remove_relation(idx_id).unwrap();
        assert!(cat.relation(tid).unwrap().indexes.is_empty());
    }

    #[test]
    fn types_builtin_and_user() {
        let mut cat = Catalog::new();
        assert_eq!(cat.type_by_name("int4").unwrap(), TypeId::INT4);
        let tm = cat.define_type("tm").unwrap();
        assert!(tm.0 >= TypeId::FIRST_USER.0);
        assert_eq!(cat.type_by_name("tm").unwrap(), tm);
        assert_eq!(cat.type_name(tm).unwrap(), "tm");
        assert!(matches!(
            cat.define_type("tm"),
            Err(DbError::AlreadyExists(_))
        ));
        assert!(matches!(
            cat.define_type("int4"),
            Err(DbError::AlreadyExists(_))
        ));
    }

    #[test]
    fn procs_and_rules() {
        let mut cat = Catalog::new();
        cat.define_proc(ProcEntry {
            name: "snow".into(),
            nargs: 1,
            ret: TypeId::INT8,
            impl_key: "inversion.snow".into(),
            operates_on: Some(TypeId(200)),
        })
        .unwrap();
        assert_eq!(cat.proc("snow").unwrap().impl_key, "inversion.snow");
        assert!(cat.proc("rain").is_err());
        assert!(cat
            .define_proc(ProcEntry {
                name: "snow".into(),
                nargs: 1,
                ret: TypeId::INT8,
                impl_key: "x".into(),
                operates_on: None,
            })
            .is_err());

        cat.define_rule(RuleEntry {
            name: "migrate_cold".into(),
            on_rel: Oid(5),
            event: RuleEvent::Periodic,
            qual: "atime < 100".into(),
            action: "migrate(file, 1)".into(),
        })
        .unwrap();
        assert_eq!(cat.rules_for(Oid(5), RuleEvent::Periodic).len(), 1);
        assert!(cat.rules_for(Oid(5), RuleEvent::OnAccess).is_empty());
        assert!(cat.remove_rule("nope").is_err());
        cat.remove_rule("migrate_cold").unwrap();
        assert!(cat.rules().is_empty());
    }

    #[test]
    fn encode_decode_roundtrips_everything() {
        let mut cat = Catalog::new();
        let t = heap_entry(&mut cat, "fileatt");
        let tid = t.id;
        cat.add_relation(t).unwrap();
        let idx = cat.alloc_oid();
        cat.add_relation(RelationEntry {
            id: idx,
            name: "fileatt_idx".into(),
            kind: RelKind::BTreeIndex,
            device: DeviceId(2),
            schema: Schema::default(),
            index: Some(IndexInfo {
                table: tid,
                key_columns: vec![0, 2],
            }),
            indexes: vec![],
            archive: None,
            no_history: false,
        })
        .unwrap();
        cat.relation_mut(tid).unwrap().indexes.push(idx);
        cat.relation_mut(tid).unwrap().archive = Some(Oid(999));
        cat.relation_mut(tid).unwrap().no_history = true;
        let ty = cat.define_type("avhrr").unwrap();
        cat.define_proc(ProcEntry {
            name: "pixelavg".into(),
            nargs: 1,
            ret: TypeId::FLOAT8,
            impl_key: "inversion.pixelavg".into(),
            operates_on: Some(ty),
        })
        .unwrap();
        cat.define_rule(RuleEntry {
            name: "r".into(),
            on_rel: tid,
            event: RuleEvent::OnUpdate,
            qual: "size > 10".into(),
            action: "migrate(file, 1)".into(),
        })
        .unwrap();

        let dec = Catalog::decode(&cat.encode()).unwrap();
        assert_eq!(dec.next_oid, cat.next_oid);
        assert_eq!(dec.relation(tid).unwrap(), cat.relation(tid).unwrap());
        assert_eq!(dec.relation(idx).unwrap(), cat.relation(idx).unwrap());
        assert_eq!(dec.type_by_name("avhrr").unwrap(), ty);
        assert_eq!(dec.proc("pixelavg").unwrap(), cat.proc("pixelavg").unwrap());
        assert_eq!(dec.rules(), cat.rules());
        // Fresh oids from the decoded catalog do not collide.
        let mut dec = dec;
        let fresh = dec.alloc_oid();
        assert!(fresh.0 >= cat.next_oid);
    }

    #[test]
    fn decode_garbage_fails_cleanly() {
        assert!(Catalog::decode(&[1, 2, 3]).is_err());
        let mut cat = Catalog::new();
        cat.add_relation(heap_entry(&mut cat.clone_for_test(), "x"))
            .ok();
        let enc = Catalog::new().encode();
        for cut in 0..enc.len() {
            let _ = Catalog::decode(&enc[..cut]); // Must not panic.
        }
    }
}
