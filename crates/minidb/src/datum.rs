//! Values, types, schemas, and the on-page row encoding.
//!
//! POSTGRES is an extensible-type system: besides the builtin scalar types,
//! users can `define type` new ones (Inversion uses this for file types).
//! User-defined types carry a [`TypeId`] from the catalog and store their
//! payload as bytes; functions registered for the type interpret them.

use std::cmp::Ordering;
use std::fmt;

use crate::error::{DbError, DbResult};

/// A type identifier. Values below [`TypeId::FIRST_USER`] are builtin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeId(pub u32);

impl TypeId {
    /// Boolean.
    pub const BOOL: TypeId = TypeId(1);
    /// 32-bit signed integer (POSTGRES `int4`).
    pub const INT4: TypeId = TypeId(2);
    /// 64-bit signed integer (the paper's `longlong`, used for file sizes).
    pub const INT8: TypeId = TypeId(3);
    /// 64-bit float.
    pub const FLOAT8: TypeId = TypeId(4);
    /// Variable-length character string (`char[]` in the paper's schemas).
    pub const TEXT: TypeId = TypeId(5);
    /// Raw byte string (file chunks).
    pub const BYTES: TypeId = TypeId(6);
    /// Object identifier (`object_id` in the paper's schemas).
    pub const OID: TypeId = TypeId(7);
    /// An instant of simulated time (`time` in the paper's schemas).
    pub const TIME: TypeId = TypeId(8);
    /// First identifier available for user-defined types.
    pub const FIRST_USER: TypeId = TypeId(100);

    /// Whether this is a builtin type.
    pub fn is_builtin(self) -> bool {
        self.0 < Self::FIRST_USER.0
    }

    /// The name of a builtin type, if this is one.
    pub fn builtin_name(self) -> Option<&'static str> {
        Some(match self {
            TypeId::BOOL => "bool",
            TypeId::INT4 => "int4",
            TypeId::INT8 => "int8",
            TypeId::FLOAT8 => "float8",
            TypeId::TEXT => "text",
            TypeId::BYTES => "bytes",
            TypeId::OID => "oid",
            TypeId::TIME => "time",
            _ => return None,
        })
    }

    /// Looks up a builtin type by name.
    pub fn from_builtin_name(name: &str) -> Option<TypeId> {
        Some(match name {
            "bool" => TypeId::BOOL,
            "int4" | "int" => TypeId::INT4,
            "int8" | "longlong" => TypeId::INT8,
            "float8" | "float" => TypeId::FLOAT8,
            "text" | "char[]" => TypeId::TEXT,
            "bytes" => TypeId::BYTES,
            "oid" | "object_id" => TypeId::OID,
            "time" => TypeId::TIME,
            _ => return None,
        })
    }
}

/// A runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Datum {
    /// SQL-ish null / missing value.
    Null,
    /// Boolean.
    Bool(bool),
    /// 32-bit integer.
    Int4(i32),
    /// 64-bit integer.
    Int8(i64),
    /// 64-bit float.
    Float8(f64),
    /// Character string.
    Text(String),
    /// Byte string.
    Bytes(Vec<u8>),
    /// Object identifier.
    Oid(u32),
    /// Simulated-time instant, nanoseconds since the epoch.
    Time(u64),
}

impl Datum {
    /// The type of this value, or `None` for null.
    pub fn type_id(&self) -> Option<TypeId> {
        Some(match self {
            Datum::Null => return None,
            Datum::Bool(_) => TypeId::BOOL,
            Datum::Int4(_) => TypeId::INT4,
            Datum::Int8(_) => TypeId::INT8,
            Datum::Float8(_) => TypeId::FLOAT8,
            Datum::Text(_) => TypeId::TEXT,
            Datum::Bytes(_) => TypeId::BYTES,
            Datum::Oid(_) => TypeId::OID,
            Datum::Time(_) => TypeId::TIME,
        })
    }

    /// Extracts an `i64` from any integer-like datum.
    pub fn as_int(&self) -> DbResult<i64> {
        match self {
            Datum::Int4(v) => Ok(*v as i64),
            Datum::Int8(v) => Ok(*v),
            Datum::Oid(v) => Ok(*v as i64),
            Datum::Time(v) => Ok(*v as i64),
            other => Err(DbError::Eval(format!("expected integer, got {other:?}"))),
        }
    }

    /// Extracts an `f64` from any numeric datum.
    pub fn as_float(&self) -> DbResult<f64> {
        match self {
            Datum::Float8(v) => Ok(*v),
            other => Ok(other.as_int()? as f64),
        }
    }

    /// Extracts a string.
    pub fn as_text(&self) -> DbResult<&str> {
        match self {
            Datum::Text(s) => Ok(s),
            other => Err(DbError::Eval(format!("expected text, got {other:?}"))),
        }
    }

    /// Extracts a byte string.
    pub fn as_bytes(&self) -> DbResult<&[u8]> {
        match self {
            Datum::Bytes(b) => Ok(b),
            other => Err(DbError::Eval(format!("expected bytes, got {other:?}"))),
        }
    }

    /// Extracts an object identifier.
    pub fn as_oid(&self) -> DbResult<u32> {
        match self {
            Datum::Oid(v) => Ok(*v),
            Datum::Int4(v) if *v >= 0 => Ok(*v as u32),
            other => Err(DbError::Eval(format!("expected oid, got {other:?}"))),
        }
    }

    /// Extracts a boolean.
    pub fn as_bool(&self) -> DbResult<bool> {
        match self {
            Datum::Bool(b) => Ok(*b),
            other => Err(DbError::Eval(format!("expected bool, got {other:?}"))),
        }
    }

    /// Total ordering across comparable datums (used by B-tree keys and
    /// qualifications). Nulls sort first; cross-type numeric comparisons are
    /// performed on `f64`; incomparable pairs order by type tag.
    pub fn cmp_total(&self, other: &Datum) -> Ordering {
        use Datum::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Text(a), Text(b)) => a.cmp(b),
            (Bytes(a), Bytes(b)) => a.cmp(b),
            (Oid(a), Oid(b)) => a.cmp(b),
            (Time(a), Time(b)) => a.cmp(b),
            (a, b) => match (a.as_float_quiet(), b.as_float_quiet()) {
                (Some(x), Some(y)) => x.partial_cmp(&y).unwrap_or(Ordering::Equal),
                _ => a.type_tag().cmp(&b.type_tag()),
            },
        }
    }

    fn as_float_quiet(&self) -> Option<f64> {
        match self {
            Datum::Int4(v) => Some(*v as f64),
            Datum::Int8(v) => Some(*v as f64),
            Datum::Float8(v) => Some(*v),
            Datum::Oid(v) => Some(*v as f64),
            Datum::Time(v) => Some(*v as f64),
            _ => None,
        }
    }

    fn type_tag(&self) -> u8 {
        match self {
            Datum::Null => 0,
            Datum::Bool(_) => 1,
            Datum::Int4(_) => 2,
            Datum::Int8(_) => 3,
            Datum::Float8(_) => 4,
            Datum::Text(_) => 5,
            Datum::Bytes(_) => 6,
            Datum::Oid(_) => 7,
            Datum::Time(_) => 8,
        }
    }

    /// Appends the encoded form of this datum to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(self.type_tag());
        match self {
            Datum::Null => {}
            Datum::Bool(b) => out.push(*b as u8),
            Datum::Int4(v) => out.extend_from_slice(&v.to_le_bytes()),
            Datum::Int8(v) => out.extend_from_slice(&v.to_le_bytes()),
            Datum::Float8(v) => out.extend_from_slice(&v.to_le_bytes()),
            Datum::Text(s) => {
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            Datum::Bytes(b) => {
                out.extend_from_slice(&(b.len() as u32).to_le_bytes());
                out.extend_from_slice(b);
            }
            Datum::Oid(v) => out.extend_from_slice(&v.to_le_bytes()),
            Datum::Time(v) => out.extend_from_slice(&v.to_le_bytes()),
        }
    }

    /// Decodes one datum from `buf[*pos..]`, advancing `pos`.
    pub fn decode_from(buf: &[u8], pos: &mut usize) -> DbResult<Datum> {
        let corrupt = || DbError::Corrupt("truncated datum".into());
        let tag = *buf.get(*pos).ok_or_else(corrupt)?;
        *pos += 1;
        let take = |pos: &mut usize, n: usize| -> DbResult<&[u8]> {
            let s = buf.get(*pos..*pos + n).ok_or_else(corrupt)?;
            *pos += n;
            Ok(s)
        };
        Ok(match tag {
            0 => Datum::Null,
            1 => Datum::Bool(take(pos, 1)?[0] != 0),
            2 => Datum::Int4(i32::from_le_bytes(take(pos, 4)?.try_into().unwrap())),
            3 => Datum::Int8(i64::from_le_bytes(take(pos, 8)?.try_into().unwrap())),
            4 => Datum::Float8(f64::from_le_bytes(take(pos, 8)?.try_into().unwrap())),
            5 => {
                let len = u32::from_le_bytes(take(pos, 4)?.try_into().unwrap()) as usize;
                let s = take(pos, len)?;
                Datum::Text(
                    String::from_utf8(s.to_vec())
                        .map_err(|_| DbError::Corrupt("invalid utf8 in text datum".into()))?,
                )
            }
            6 => {
                let len = u32::from_le_bytes(take(pos, 4)?.try_into().unwrap()) as usize;
                Datum::Bytes(take(pos, len)?.to_vec())
            }
            7 => Datum::Oid(u32::from_le_bytes(take(pos, 4)?.try_into().unwrap())),
            8 => Datum::Time(u64::from_le_bytes(take(pos, 8)?.try_into().unwrap())),
            t => return Err(DbError::Corrupt(format!("unknown datum tag {t}"))),
        })
    }

    /// The encoded size of this datum in bytes.
    pub fn encoded_len(&self) -> usize {
        1 + match self {
            Datum::Null => 0,
            Datum::Bool(_) => 1,
            Datum::Int4(_) | Datum::Oid(_) => 4,
            Datum::Int8(_) | Datum::Float8(_) | Datum::Time(_) => 8,
            Datum::Text(s) => 4 + s.len(),
            Datum::Bytes(b) => 4 + b.len(),
        }
    }
}

impl fmt::Display for Datum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Datum::Null => write!(f, "null"),
            Datum::Bool(b) => write!(f, "{b}"),
            Datum::Int4(v) => write!(f, "{v}"),
            Datum::Int8(v) => write!(f, "{v}"),
            Datum::Float8(v) => write!(f, "{v}"),
            Datum::Text(s) => write!(f, "\"{s}\""),
            Datum::Bytes(b) => write!(f, "<{} bytes>", b.len()),
            Datum::Oid(v) => write!(f, "{v}"),
            Datum::Time(v) => write!(f, "t+{:.6}s", *v as f64 / 1e9),
        }
    }
}

/// A row of datums.
pub type Row = Vec<Datum>;

/// Encodes a row: `[ncols u16][datum]*`.
pub fn encode_row(row: &[Datum]) -> Vec<u8> {
    let mut out = Vec::with_capacity(2 + row.iter().map(Datum::encoded_len).sum::<usize>());
    out.extend_from_slice(&(row.len() as u16).to_le_bytes());
    for d in row {
        d.encode_into(&mut out);
    }
    out
}

/// Decodes a row produced by [`encode_row`].
pub fn decode_row(buf: &[u8]) -> DbResult<Row> {
    if buf.len() < 2 {
        return Err(DbError::Corrupt("row shorter than header".into()));
    }
    let ncols = u16::from_le_bytes(buf[0..2].try_into().unwrap()) as usize;
    let mut pos = 2;
    let mut row = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        row.push(Datum::decode_from(buf, &mut pos)?);
    }
    Ok(row)
}

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name.
    pub name: String,
    /// Column type.
    pub ty: TypeId,
}

impl Column {
    /// Creates a column.
    pub fn new(name: impl Into<String>, ty: TypeId) -> Self {
        Column {
            name: name.into(),
            ty,
        }
    }
}

/// An ordered list of columns describing a relation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    /// The columns, in attribute-number order.
    pub columns: Vec<Column>,
}

impl Schema {
    /// Creates a schema from `(name, type)` pairs.
    pub fn new(cols: impl IntoIterator<Item = (&'static str, TypeId)>) -> Self {
        Schema {
            columns: cols.into_iter().map(|(n, t)| Column::new(n, t)).collect(),
        }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Whether the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Index of the column called `name`.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Serializes the schema (for the persistent catalog).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.columns.len() as u16).to_le_bytes());
        for c in &self.columns {
            out.extend_from_slice(&(c.name.len() as u16).to_le_bytes());
            out.extend_from_slice(c.name.as_bytes());
            out.extend_from_slice(&c.ty.0.to_le_bytes());
        }
        out
    }

    /// Deserializes a schema from [`Schema::encode`] output.
    pub fn decode(buf: &[u8], pos: &mut usize) -> DbResult<Schema> {
        let corrupt = || DbError::Corrupt("truncated schema".into());
        let take = |pos: &mut usize, n: usize| -> DbResult<&[u8]> {
            let s = buf.get(*pos..*pos + n).ok_or_else(corrupt)?;
            *pos += n;
            Ok(s)
        };
        let ncols = u16::from_le_bytes(take(pos, 2)?.try_into().unwrap()) as usize;
        let mut columns = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            let nlen = u16::from_le_bytes(take(pos, 2)?.try_into().unwrap()) as usize;
            let name = String::from_utf8(take(pos, nlen)?.to_vec())
                .map_err(|_| DbError::Corrupt("invalid utf8 in schema".into()))?;
            let ty = TypeId(u32::from_le_bytes(take(pos, 4)?.try_into().unwrap()));
            columns.push(Column { name, ty });
        }
        Ok(Schema { columns })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_row() -> Row {
        vec![
            Datum::Null,
            Datum::Bool(true),
            Datum::Int4(-7),
            Datum::Int8(1 << 40),
            Datum::Float8(3.5),
            Datum::Text("passwd".into()),
            Datum::Bytes(vec![0, 255, 9]),
            Datum::Oid(23114),
            Datum::Time(12345),
        ]
    }

    #[test]
    fn row_roundtrips() {
        let row = sample_row();
        let enc = encode_row(&row);
        assert_eq!(decode_row(&enc).unwrap(), row);
    }

    #[test]
    fn encoded_len_matches_encoding() {
        for d in sample_row() {
            let mut buf = Vec::new();
            d.encode_into(&mut buf);
            assert_eq!(buf.len(), d.encoded_len(), "for {d:?}");
        }
    }

    #[test]
    fn truncated_row_is_an_error_not_a_panic() {
        let enc = encode_row(&sample_row());
        for cut in 0..enc.len() {
            let _ = decode_row(&enc[..cut]); // must not panic
        }
        assert!(decode_row(&enc[..enc.len() - 1]).is_err());
    }

    #[test]
    fn ordering_within_types() {
        assert_eq!(
            Datum::Text("abc".into()).cmp_total(&Datum::Text("abd".into())),
            Ordering::Less
        );
        assert_eq!(Datum::Int4(5).cmp_total(&Datum::Int4(5)), Ordering::Equal);
        assert_eq!(Datum::Oid(9).cmp_total(&Datum::Oid(3)), Ordering::Greater);
    }

    #[test]
    fn cross_type_numeric_ordering() {
        assert_eq!(Datum::Int4(2).cmp_total(&Datum::Int8(3)), Ordering::Less);
        assert_eq!(
            Datum::Float8(2.5).cmp_total(&Datum::Int4(2)),
            Ordering::Greater
        );
    }

    #[test]
    fn null_sorts_first() {
        assert_eq!(
            Datum::Null.cmp_total(&Datum::Int4(i32::MIN)),
            Ordering::Less
        );
        assert_eq!(Datum::Null.cmp_total(&Datum::Null), Ordering::Equal);
    }

    #[test]
    fn schema_roundtrips() {
        let s = Schema::new([
            ("filename", TypeId::TEXT),
            ("parentid", TypeId::OID),
            ("file", TypeId::OID),
        ]);
        let enc = s.encode();
        let mut pos = 0;
        assert_eq!(Schema::decode(&enc, &mut pos).unwrap(), s);
        assert_eq!(pos, enc.len());
    }

    #[test]
    fn schema_lookup() {
        let s = Schema::new([("a", TypeId::INT4), ("b", TypeId::TEXT)]);
        assert_eq!(s.column_index("b"), Some(1));
        assert_eq!(s.column_index("z"), None);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn builtin_type_names() {
        assert_eq!(TypeId::from_builtin_name("object_id"), Some(TypeId::OID));
        assert_eq!(TypeId::OID.builtin_name(), Some("oid"));
        assert!(TypeId(100).builtin_name().is_none());
        assert!(!TypeId::FIRST_USER.is_builtin());
        assert!(TypeId::TEXT.is_builtin());
    }

    #[test]
    fn datum_accessors() {
        assert_eq!(Datum::Int8(9).as_int().unwrap(), 9);
        assert_eq!(Datum::Oid(7).as_oid().unwrap(), 7);
        assert_eq!(Datum::Text("x".into()).as_text().unwrap(), "x");
        assert!(Datum::Text("x".into()).as_int().is_err());
        assert!(Datum::Bool(true).as_bool().unwrap());
        assert_eq!(Datum::Int4(3).as_float().unwrap(), 3.0);
    }
}
