//! The 8 KB slotted data page.
//!
//! Every relation — heaps and B-tree indices alike — is an array of these
//! pages. Layout (all offsets little-endian `u16`):
//!
//! ```text
//! +--------+-----------------+ ..free.. +------------------+---------+
//! | header | slot array ...->|          |<-... tuple space | special |
//! +--------+-----------------+          +------------------+---------+
//! 0        20                lower      upper              special_off
//! ```
//!
//! Items are never moved while live (tuple identifiers embed the slot
//! number); deleting marks the slot dead, and the vacuum cleaner reclaims
//! space by rewriting relations wholesale, as POSTGRES's did.

use crate::error::{DbError, DbResult};

/// Page size in bytes, equal to the device block size.
pub const PAGE_SIZE: usize = simdev::BLOCK_SIZE;

const MAGIC: u16 = 0x5047; // "PG"
const HEADER_SIZE: usize = 20;
const SLOT_SIZE: usize = 4;
const DEAD_BIT: u16 = 0x8000;
const LEN_MASK: u16 = 0x7FFF;

const OFF_MAGIC: usize = 0;
const OFF_NSLOTS: usize = 2;
const OFF_LOWER: usize = 4;
const OFF_UPPER: usize = 6;
const OFF_SPECIAL: usize = 8;
// Bytes 10..12 reserved for flags.
const OFF_LSN: usize = 12; // u64: LSN of the last WAL record applied.

/// The largest item that fits on an empty page with no special area.
pub const MAX_ITEM: usize = PAGE_SIZE - HEADER_SIZE - SLOT_SIZE;

fn get_u16(buf: &[u8], off: usize) -> u16 {
    u16::from_le_bytes([buf[off], buf[off + 1]])
}

fn put_u16(buf: &mut [u8], off: usize, v: u16) {
    buf[off..off + 2].copy_from_slice(&v.to_le_bytes());
}

/// Initializes `buf` as an empty page reserving `special_size` bytes at the end.
///
/// # Panics
///
/// Panics if `buf` is not exactly [`PAGE_SIZE`] bytes or the special area
/// does not fit.
pub fn init(buf: &mut [u8], special_size: usize) {
    assert_eq!(buf.len(), PAGE_SIZE, "page buffer must be PAGE_SIZE");
    assert!(special_size <= PAGE_SIZE - HEADER_SIZE);
    buf.fill(0);
    let special_off = (PAGE_SIZE - special_size) as u16;
    put_u16(buf, OFF_MAGIC, MAGIC);
    put_u16(buf, OFF_NSLOTS, 0);
    put_u16(buf, OFF_LOWER, HEADER_SIZE as u16);
    put_u16(buf, OFF_UPPER, special_off);
    put_u16(buf, OFF_SPECIAL, special_off);
}

/// Whether `buf` has been initialized as a page.
pub fn is_initialized(buf: &[u8]) -> bool {
    buf.len() == PAGE_SIZE && get_u16(buf, OFF_MAGIC) == MAGIC
}

/// The LSN of the last WAL record applied to this page (0 = never logged).
///
/// Stored in the header so the buffer manager can enforce the
/// LSN-before-write rule and recovery can skip records already reflected.
pub fn lsn(buf: &[u8]) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[OFF_LSN..OFF_LSN + 8]);
    u64::from_le_bytes(b)
}

/// Stamps the page LSN. `page::init` zeroes it; WAL-logged writers stamp the
/// end-LSN of each record they emit for the page.
pub fn set_lsn(buf: &mut [u8], lsn: u64) {
    buf[OFF_LSN..OFF_LSN + 8].copy_from_slice(&lsn.to_le_bytes());
}

/// Number of slots on the page (live or dead).
pub fn nslots(buf: &[u8]) -> u16 {
    get_u16(buf, OFF_NSLOTS)
}

/// Free bytes available for one more item (including its slot entry).
pub fn free_space(buf: &[u8]) -> usize {
    let lower = get_u16(buf, OFF_LOWER) as usize;
    let upper = get_u16(buf, OFF_UPPER) as usize;
    // `saturating_sub` twice: a corrupt header with lower > upper reads as
    // a full page, not an underflow panic.
    upper.saturating_sub(lower).saturating_sub(SLOT_SIZE)
}

/// Whether an item of `len` bytes fits.
pub fn fits(buf: &[u8], len: usize) -> bool {
    free_space(buf) >= len
}

/// Inserts `item`, returning its slot number.
pub fn insert(buf: &mut [u8], item: &[u8]) -> DbResult<u16> {
    if item.len() > LEN_MASK as usize {
        return Err(DbError::TupleTooBig {
            size: item.len(),
            max: MAX_ITEM,
        });
    }
    if !fits(buf, item.len()) {
        return Err(DbError::TupleTooBig {
            size: item.len(),
            max: free_space(buf),
        });
    }
    let n = nslots(buf);
    let lower = get_u16(buf, OFF_LOWER) as usize;
    let upper = get_u16(buf, OFF_UPPER) as usize - item.len();
    buf[upper..upper + item.len()].copy_from_slice(item);
    put_u16(buf, lower, upper as u16);
    put_u16(buf, lower + 2, item.len() as u16);
    put_u16(buf, OFF_LOWER, (lower + SLOT_SIZE) as u16);
    put_u16(buf, OFF_UPPER, upper as u16);
    put_u16(buf, OFF_NSLOTS, n + 1);
    Ok(n)
}

fn slot_entry(buf: &[u8], slot: u16) -> Option<(usize, usize, bool)> {
    if slot >= nslots(buf) {
        return None;
    }
    let base = HEADER_SIZE + slot as usize * SLOT_SIZE;
    // A scribbled slot count can point past the page; treat such slots as
    // absent rather than indexing out of bounds.
    if base + SLOT_SIZE > buf.len() {
        return None;
    }
    let off = get_u16(buf, base) as usize;
    let lf = get_u16(buf, base + 2);
    Some((off, (lf & LEN_MASK) as usize, lf & DEAD_BIT != 0))
}

/// Returns the item in `slot`, or `None` if the slot is out of range, dead,
/// or points outside the page (corruption).
pub fn item(buf: &[u8], slot: u16) -> Option<&[u8]> {
    let (off, len, dead) = slot_entry(buf, slot)?;
    if dead {
        None
    } else {
        buf.get(off..off.checked_add(len)?)
    }
}

/// Returns the item in `slot` even if marked dead (vacuum reads these).
pub fn item_even_dead(buf: &[u8], slot: u16) -> Option<&[u8]> {
    let (off, len, _) = slot_entry(buf, slot)?;
    buf.get(off..off.checked_add(len)?)
}

/// Mutable access to the item in `slot` (live or dead); used to stamp
/// transaction ids into tuple headers in place.
pub fn item_mut(buf: &mut [u8], slot: u16) -> Option<&mut [u8]> {
    let (off, len, _) = slot_entry(buf, slot)?;
    buf.get_mut(off..off.checked_add(len)?)
}

/// Marks `slot` dead. The space is reclaimed by vacuum, not here.
pub fn set_dead(buf: &mut [u8], slot: u16) -> DbResult<()> {
    if slot >= nslots(buf) {
        return Err(DbError::Corrupt(format!("no slot {slot} on page")));
    }
    let base = HEADER_SIZE + slot as usize * SLOT_SIZE;
    let lf = get_u16(buf, base + 2);
    put_u16(buf, base + 2, lf | DEAD_BIT);
    Ok(())
}

/// Whether `slot` is marked dead.
pub fn is_dead(buf: &[u8], slot: u16) -> bool {
    matches!(slot_entry(buf, slot), Some((_, _, true)))
}

/// The page's special area (B-tree metadata lives here). A corrupt special
/// offset yields an empty slice, never a panic.
pub fn special(buf: &[u8]) -> &[u8] {
    let off = (get_u16(buf, OFF_SPECIAL) as usize).min(buf.len());
    &buf[off..]
}

/// Mutable access to the special area.
pub fn special_mut(buf: &mut [u8]) -> &mut [u8] {
    let off = (get_u16(buf, OFF_SPECIAL) as usize).min(buf.len());
    &mut buf[off..]
}

/// Iterates over live items as `(slot, item)` pairs.
pub fn iter(buf: &[u8]) -> impl Iterator<Item = (u16, &[u8])> {
    (0..nslots(buf)).filter_map(move |s| item(buf, s).map(|i| (s, i)))
}

/// Structurally verifies one page, returning a human-readable description of
/// every violated invariant (empty = clean). Checked invariants:
///
/// * the header magic and `HEADER <= lower <= upper <= special <= PAGE_SIZE`
///   bounds,
/// * `lower` agrees with the slot count,
/// * every slot's item lies inside `[upper, special)`,
/// * no two items overlap,
/// * free-space accounting: item bytes exactly tile `[upper, special)`
///   (items are allocated downward and never moved, so the tuple space has
///   no holes — dead items keep their space until vacuum rewrites the
///   relation).
pub fn verify(buf: &[u8]) -> Vec<String> {
    let mut findings = Vec::new();
    if buf.len() != PAGE_SIZE {
        findings.push(format!("page buffer is {} bytes, not {PAGE_SIZE}", buf.len()));
        return findings;
    }
    if get_u16(buf, OFF_MAGIC) != MAGIC {
        findings.push(format!(
            "bad page magic {:#06x} (expected {MAGIC:#06x})",
            get_u16(buf, OFF_MAGIC)
        ));
        return findings;
    }
    let n = nslots(buf) as usize;
    let lower = get_u16(buf, OFF_LOWER) as usize;
    let upper = get_u16(buf, OFF_UPPER) as usize;
    let special = get_u16(buf, OFF_SPECIAL) as usize;
    if !(HEADER_SIZE <= lower && lower <= upper && upper <= special && special <= PAGE_SIZE) {
        findings.push(format!(
            "header bounds violated: {HEADER_SIZE} <= lower {lower} <= upper {upper}              <= special {special} <= {PAGE_SIZE}"
        ));
        return findings;
    }
    if lower != HEADER_SIZE + n * SLOT_SIZE {
        findings.push(format!(
            "lower {lower} disagrees with slot count {n} (expected {})",
            HEADER_SIZE + n * SLOT_SIZE
        ));
        return findings;
    }
    // Per-slot bounds, then overlap / accounting over all slots.
    let mut extents: Vec<(usize, usize, u16)> = Vec::with_capacity(n);
    for slot in 0..n as u16 {
        let Some((off, len, _dead)) = slot_entry(buf, slot) else {
            findings.push(format!("slot {slot} entry unreadable"));
            continue;
        };
        if off < upper || off + len > special {
            findings.push(format!(
                "slot {slot} item [{off}, {}) outside tuple space [{upper}, {special})",
                off + len
            ));
            continue;
        }
        extents.push((off, len, slot));
    }
    extents.sort_unstable();
    for w in extents.windows(2) {
        let ((a_off, a_len, a_slot), (b_off, _, b_slot)) = (w[0], w[1]);
        if a_off + a_len > b_off {
            findings.push(format!(
                "slot {a_slot} item [{a_off}, {}) overlaps slot {b_slot} item at {b_off}",
                a_off + a_len
            ));
        }
    }
    if findings.is_empty() {
        let used: usize = extents.iter().map(|&(_, len, _)| len).sum();
        if used != special - upper {
            findings.push(format!(
                "free-space accounting: {used} item bytes in a {} byte tuple space",
                special - upper
            ));
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn new_page() -> Vec<u8> {
        let mut buf = vec![0u8; PAGE_SIZE];
        init(&mut buf, 0);
        buf
    }

    #[test]
    fn empty_page_properties() {
        let buf = new_page();
        assert!(is_initialized(&buf));
        assert_eq!(nslots(&buf), 0);
        assert_eq!(free_space(&buf), MAX_ITEM);
        assert!(item(&buf, 0).is_none());
    }

    #[test]
    fn insert_and_fetch() {
        let mut buf = new_page();
        let s0 = insert(&mut buf, b"hello").unwrap();
        let s1 = insert(&mut buf, b"world!").unwrap();
        assert_eq!((s0, s1), (0, 1));
        assert_eq!(item(&buf, 0).unwrap(), b"hello");
        assert_eq!(item(&buf, 1).unwrap(), b"world!");
        assert_eq!(nslots(&buf), 2);
    }

    #[test]
    fn max_item_exactly_fits() {
        let mut buf = new_page();
        let big = vec![7u8; MAX_ITEM];
        insert(&mut buf, &big).unwrap();
        assert_eq!(item(&buf, 0).unwrap().len(), MAX_ITEM);
        assert_eq!(free_space(&buf), 0);
        assert!(insert(&mut buf, b"x").is_err());
    }

    #[test]
    fn oversized_item_rejected() {
        let mut buf = new_page();
        let big = vec![7u8; MAX_ITEM + 1];
        assert!(matches!(
            insert(&mut buf, &big),
            Err(DbError::TupleTooBig { .. })
        ));
    }

    #[test]
    fn fill_page_with_small_items() {
        let mut buf = new_page();
        let mut count = 0;
        while fits(&buf, 100) {
            insert(&mut buf, &[count as u8; 100]).unwrap();
            count += 1;
        }
        assert!(count > 70, "should fit many 100-byte items, got {count}");
        for s in 0..count {
            assert_eq!(item(&buf, s as u16).unwrap(), &[s as u8; 100][..]);
        }
    }

    #[test]
    fn dead_slots_hidden_but_recoverable() {
        let mut buf = new_page();
        insert(&mut buf, b"keep").unwrap();
        insert(&mut buf, b"kill").unwrap();
        set_dead(&mut buf, 1).unwrap();
        assert!(item(&buf, 1).is_none());
        assert!(is_dead(&buf, 1));
        assert_eq!(item_even_dead(&buf, 1).unwrap(), b"kill");
        let live: Vec<_> = iter(&buf).collect();
        assert_eq!(live, vec![(0, &b"keep"[..])]);
    }

    #[test]
    fn set_dead_on_missing_slot_is_error() {
        let mut buf = new_page();
        assert!(set_dead(&mut buf, 3).is_err());
    }

    #[test]
    fn item_mut_edits_in_place() {
        let mut buf = new_page();
        insert(&mut buf, b"abcd").unwrap();
        item_mut(&mut buf, 0).unwrap()[0] = b'z';
        assert_eq!(item(&buf, 0).unwrap(), b"zbcd");
    }

    #[test]
    fn special_area_reserved_and_writable() {
        let mut buf = vec![0u8; PAGE_SIZE];
        init(&mut buf, 16);
        assert_eq!(special(&buf).len(), 16);
        special_mut(&mut buf).copy_from_slice(&[9u8; 16]);
        // Fill the page; the special area must survive untouched.
        while fits(&buf, 64) {
            insert(&mut buf, &[1u8; 64]).unwrap();
        }
        assert_eq!(special(&buf), &[9u8; 16]);
        // And items must not have been corrupted by special writes.
        assert_eq!(item(&buf, 0).unwrap(), &[1u8; 64][..]);
    }

    #[test]
    fn zeroed_buffer_is_not_initialized() {
        let buf = vec![0u8; PAGE_SIZE];
        assert!(!is_initialized(&buf));
    }

    #[test]
    fn verify_accepts_clean_pages() {
        let mut buf = new_page();
        assert!(verify(&buf).is_empty());
        insert(&mut buf, b"hello").unwrap();
        insert(&mut buf, b"world").unwrap();
        set_dead(&mut buf, 0).unwrap();
        assert!(verify(&buf).is_empty(), "dead slots keep their space");
    }

    #[test]
    fn verify_reports_bad_magic_and_bounds() {
        let mut buf = new_page();
        buf[OFF_MAGIC] ^= 0xFF;
        assert!(verify(&buf)[0].contains("magic"));
        let mut buf = new_page();
        put_u16(&mut buf, OFF_LOWER, PAGE_SIZE as u16);
        put_u16(&mut buf, OFF_UPPER, HEADER_SIZE as u16);
        assert!(verify(&buf)[0].contains("bounds"));
    }

    #[test]
    fn verify_reports_overlap_and_out_of_range_items() {
        let mut buf = new_page();
        insert(&mut buf, &[1u8; 32]).unwrap();
        insert(&mut buf, &[2u8; 32]).unwrap();
        // Point slot 1 at slot 0's bytes: overlap.
        let s0_off = get_u16(&buf, HEADER_SIZE);
        put_u16(&mut buf, HEADER_SIZE + SLOT_SIZE, s0_off);
        assert!(verify(&buf).iter().any(|f| f.contains("overlap")));
        // Point slot 1 past the end of the page: out of tuple space, and the
        // safe accessors refuse it.
        put_u16(&mut buf, HEADER_SIZE + SLOT_SIZE, (PAGE_SIZE - 4) as u16);
        assert!(verify(&buf).iter().any(|f| f.contains("outside")));
        assert!(item(&buf, 1).is_none());
        assert!(item_even_dead(&buf, 1).is_none());
    }

    #[test]
    fn corrupt_headers_do_not_panic_accessors() {
        let mut buf = new_page();
        insert(&mut buf, b"x").unwrap();
        put_u16(&mut buf, OFF_NSLOTS, u16::MAX);
        assert!(item(&buf, 4000).is_none());
        put_u16(&mut buf, OFF_LOWER, u16::MAX);
        let _ = free_space(&buf);
        put_u16(&mut buf, OFF_SPECIAL, u16::MAX);
        assert!(special(&buf).is_empty());
    }
}
