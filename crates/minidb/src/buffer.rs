//! The shared buffer cache.
//!
//! "POSTGRES maintains an in-memory shared cache of recently used 8 KByte
//! data pages. The size of this cache is tunable when the file system is
//! installed; as shipped, the system uses 64 buffers, but the version in use
//! locally uses 300. Data pages are kicked out of this cache in LRU order,
//! regardless of the device from which they came. Dirty pages are written to
//! backing store before being deleted from the cache."

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::error::{DbError, DbResult};
use crate::ids::{DeviceId, RelId};
use crate::page::PAGE_SIZE;
use crate::smgr::Smgr;

/// The number of buffers POSTGRES shipped with.
pub const DEFAULT_BUFFERS: usize = 64;
/// The number of buffers the Berkeley installation used.
pub const BERKELEY_BUFFERS: usize = 300;

/// A cached page and its identity.
pub struct PageBuf {
    data: Box<[u8]>,
    dirty: bool,
    dev: DeviceId,
    rel: RelId,
    blkno: u64,
}

impl PageBuf {
    /// Read access to the page bytes.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Write access to the page bytes; marks the page dirty.
    pub fn data_mut(&mut self) -> &mut [u8] {
        self.dirty = true;
        &mut self.data
    }

    /// Whether the page has unflushed modifications.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// The relation this page belongs to.
    pub fn rel(&self) -> RelId {
        self.rel
    }

    /// The logical block number within the relation.
    pub fn blkno(&self) -> u64 {
        self.blkno
    }
}

/// A pinned reference to a cached page. The page cannot be evicted while any
/// `PageRef` other than the cache's own is alive.
pub type PageRef = Arc<RwLock<PageBuf>>;

/// Cache effectiveness counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Lookups satisfied from the cache.
    pub hits: u64,
    /// Lookups that had to read from a device.
    pub misses: u64,
    /// Pages evicted to make room.
    pub evictions: u64,
    /// Dirty pages written back (at eviction or flush).
    pub writebacks: u64,
}

struct PoolInner {
    map: HashMap<(RelId, u64), PageRef>,
    lru: VecDeque<(RelId, u64)>,
    stats: BufferStats,
}

/// The shared LRU buffer cache.
pub struct BufferPool {
    capacity: usize,
    inner: Mutex<PoolInner>,
}

impl BufferPool {
    /// Creates a pool of `capacity` page frames.
    pub fn new(capacity: usize) -> BufferPool {
        BufferPool {
            capacity: capacity.max(4),
            inner: Mutex::new(PoolInner {
                map: HashMap::new(),
                lru: VecDeque::new(),
                stats: BufferStats::default(),
            }),
        }
    }

    /// The configured capacity in frames.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> BufferStats {
        self.inner.lock().stats
    }

    fn touch(inner: &mut PoolInner, key: (RelId, u64)) {
        if let Some(pos) = inner.lru.iter().position(|&k| k == key) {
            inner.lru.remove(pos);
        }
        inner.lru.push_back(key);
    }

    /// Evicts pages until there is room for one more, writing dirty victims
    /// back through `smgr`. Pinned pages (outstanding [`PageRef`]s) are
    /// skipped.
    fn make_room(inner: &mut PoolInner, capacity: usize, smgr: &Smgr) -> DbResult<()> {
        while inner.map.len() >= capacity {
            // Scan the LRU for the oldest unpinned victim. A key in the LRU
            // but missing from the map means the two drifted apart; drop the
            // stale entry and rescan rather than panic.
            let mut victim: Option<(usize, (RelId, u64), PageRef)> = None;
            let mut stale: Option<usize> = None;
            for i in 0..inner.lru.len() {
                let key = inner.lru[i];
                match inner.map.get(&key) {
                    None => {
                        stale = Some(i);
                        break;
                    }
                    Some(page) if Arc::strong_count(page) > 1 => continue, // Pinned.
                    Some(page) => {
                        victim = Some((i, key, Arc::clone(page)));
                        break;
                    }
                }
            }
            if let Some(i) = stale {
                inner.lru.remove(i);
                continue;
            }
            let Some((i, key, page)) = victim else {
                return Err(DbError::Invalid(
                    "buffer pool exhausted: every page is pinned".into(),
                ));
            };
            inner.map.remove(&key);
            inner.lru.remove(i);
            inner.stats.evictions += 1;
            // lock-order: exempt (page latch under the pool mutex). The
            // victim was unpinned and is now unmapped, so this latch is
            // uncontended and cannot block or join a cycle.
            let mut buf = page.write();
            if buf.dirty {
                let (dev, rel, blkno) = (buf.dev, buf.rel, buf.blkno);
                smgr.write_page(dev, rel, blkno, &buf.data)?;
                buf.dirty = false;
                inner.stats.writebacks += 1;
            }
        }
        Ok(())
    }

    /// Fetches block `blkno` of `rel` (which lives on `dev`), reading it from
    /// the device on a miss.
    pub fn get_page(
        &self,
        smgr: &Smgr,
        dev: DeviceId,
        rel: RelId,
        blkno: u64,
    ) -> DbResult<PageRef> {
        let _order = crate::lock::order::token(crate::lock::order::BUFFER_POOL);
        let mut inner = self.inner.lock();
        let key = (rel, blkno);
        if let Some(page) = inner.map.get(&key) {
            let page = Arc::clone(page);
            inner.stats.hits += 1;
            Self::touch(&mut inner, key);
            return Ok(page);
        }
        inner.stats.misses += 1;
        Self::make_room(&mut inner, self.capacity, smgr)?;
        let mut data = vec![0u8; PAGE_SIZE].into_boxed_slice();
        smgr.read_page(dev, rel, blkno, &mut data)?;
        let page = Arc::new(RwLock::new(PageBuf {
            data,
            dirty: false,
            dev,
            rel,
            blkno,
        }));
        inner.map.insert(key, Arc::clone(&page));
        Self::touch(&mut inner, key);
        Ok(page)
    }

    /// Appends a fresh block to `rel`, returning its number and a cached,
    /// dirty, zero-filled page for it.
    pub fn new_page(&self, smgr: &Smgr, dev: DeviceId, rel: RelId) -> DbResult<(u64, PageRef)> {
        let _order = crate::lock::order::token(crate::lock::order::BUFFER_POOL);
        let mut inner = self.inner.lock();
        Self::make_room(&mut inner, self.capacity, smgr)?;
        let blkno = smgr.extend_page(dev, rel)?;
        let data = vec![0u8; PAGE_SIZE].into_boxed_slice();
        let page = Arc::new(RwLock::new(PageBuf {
            data,
            dirty: true, // Must reach the device even if never touched again.
            dev,
            rel,
            blkno,
        }));
        let key = (rel, blkno);
        inner.map.insert(key, Arc::clone(&page));
        Self::touch(&mut inner, key);
        Ok((blkno, page))
    }

    /// Writes every dirty page back through `smgr` (without evicting), in
    /// (relation, block) order — the elevator sweep a real commit-time sync
    /// performs so flushes stream rather than seek.
    pub fn flush_all(&self, smgr: &Smgr) -> DbResult<()> {
        // Snapshot the page refs and release the pool mutex before taking
        // any page latch: another thread may hold a page latch while waiting
        // on the pool (a b-tree split extending the relation), so latching
        // with the pool locked can deadlock.
        let mut keyed: Vec<((RelId, u64), PageRef)> = {
            let _order = crate::lock::order::token(crate::lock::order::BUFFER_POOL);
            let inner = self.inner.lock();
            inner.map.iter().map(|(&k, p)| (k, Arc::clone(p))).collect()
        };
        keyed.sort_by_key(|(k, _)| *k);
        let mut written = 0u64;
        for (_, page) in keyed {
            let mut buf = page.write();
            if buf.dirty {
                let (dev, rel, blkno) = (buf.dev, buf.rel, buf.blkno);
                smgr.write_page(dev, rel, blkno, &buf.data)?;
                buf.dirty = false;
                written += 1;
            }
        }
        if written > 0 {
            self.inner.lock().stats.writebacks += written;
        }
        Ok(())
    }

    /// Writes back every dirty cached page belonging to `rel` (eager index
    /// write-through uses this). Returns the number of pages written.
    pub fn flush_rel(&self, smgr: &Smgr, rel: RelId) -> DbResult<usize> {
        // Same pool-then-latch discipline as [`Self::flush_all`].
        let pages: Vec<PageRef> = {
            let _order = crate::lock::order::token(crate::lock::order::BUFFER_POOL);
            let inner = self.inner.lock();
            inner
                .map
                .iter()
                .filter(|(&(r, _), _)| r == rel)
                .map(|(_, p)| Arc::clone(p))
                .collect()
        };
        let mut written = 0;
        for page in pages {
            let mut buf = page.write();
            if buf.dirty {
                let (dev, r, blkno) = (buf.dev, buf.rel, buf.blkno);
                smgr.write_page(dev, r, blkno, &buf.data)?;
                buf.dirty = false;
                written += 1;
            }
        }
        if written > 0 {
            self.inner.lock().stats.writebacks += written as u64;
        }
        Ok(written)
    }

    /// Flushes dirty pages and then empties the cache entirely — the
    /// "all caches were flushed before each test" step of the benchmark.
    pub fn flush_and_clear(&self, smgr: &Smgr) -> DbResult<()> {
        self.flush_all(smgr)?;
        let _order = crate::lock::order::token(crate::lock::order::BUFFER_POOL);
        let mut inner = self.inner.lock();
        for page in inner.map.values() {
            if Arc::strong_count(page) > 1 {
                return Err(DbError::Invalid("cannot clear cache: pages pinned".into()));
            }
        }
        inner.map.clear();
        inner.lru.clear();
        Ok(())
    }

    /// Discards every cached page for `rel` *without* writing them back
    /// (used when dropping a relation).
    pub fn discard_rel(&self, rel: RelId) {
        let _order = crate::lock::order::token(crate::lock::order::BUFFER_POOL);
        let mut inner = self.inner.lock();
        inner.map.retain(|&(r, _), _| r != rel);
        inner.lru.retain(|&(r, _)| r != rel);
    }

    /// Number of pages currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Oid;
    use crate::smgr::{shared_device, GenericManager};
    use simdev::{DiskProfile, MagneticDisk, SimClock};

    fn setup(capacity: usize) -> (Smgr, BufferPool, RelId) {
        let clock = SimClock::new();
        let dev = shared_device(MagneticDisk::new(
            "d",
            clock,
            DiskProfile::tiny_for_tests(4096),
        ));
        let mut smgr = Smgr::new();
        smgr.register(
            DeviceId::DEFAULT,
            Box::new(GenericManager::format(dev).unwrap()),
        )
        .unwrap();
        let rel = Oid(10);
        smgr.with(DeviceId::DEFAULT, |m| m.create_rel(rel)).unwrap();
        (smgr, BufferPool::new(capacity), rel)
    }

    #[test]
    fn new_page_then_get_hits_cache() {
        let (smgr, pool, rel) = setup(8);
        let (blkno, page) = pool.new_page(&smgr, DeviceId::DEFAULT, rel).unwrap();
        page.write().data_mut()[0] = 0xAB;
        drop(page);
        let page = pool.get_page(&smgr, DeviceId::DEFAULT, rel, blkno).unwrap();
        assert_eq!(page.read().data()[0], 0xAB);
        assert_eq!(pool.stats().hits, 1);
        assert_eq!(pool.stats().misses, 0);
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let (smgr, pool, rel) = setup(4);
        // Create more pages than capacity.
        for i in 0..10u8 {
            let (_, page) = pool.new_page(&smgr, DeviceId::DEFAULT, rel).unwrap();
            page.write().data_mut()[0] = i;
        }
        assert!(pool.len() <= 4);
        assert!(pool.stats().evictions >= 6);
        // All pages readable with correct content after eviction.
        for i in 0..10u8 {
            let page = pool
                .get_page(&smgr, DeviceId::DEFAULT, rel, i as u64)
                .unwrap();
            assert_eq!(page.read().data()[0], i, "block {i}");
        }
    }

    #[test]
    fn pinned_pages_survive_pressure() {
        let (smgr, pool, rel) = setup(4);
        let (blkno, pinned) = pool.new_page(&smgr, DeviceId::DEFAULT, rel).unwrap();
        pinned.write().data_mut()[0] = 0x77;
        for _ in 0..10 {
            pool.new_page(&smgr, DeviceId::DEFAULT, rel).unwrap();
        }
        // The pinned page must still be the same object in cache.
        let again = pool.get_page(&smgr, DeviceId::DEFAULT, rel, blkno).unwrap();
        assert!(Arc::ptr_eq(&pinned, &again));
        assert_eq!(again.read().data()[0], 0x77);
    }

    #[test]
    fn pool_of_all_pinned_pages_errors() {
        let (smgr, pool, rel) = setup(4);
        let mut pins = Vec::new();
        for _ in 0..4 {
            pins.push(pool.new_page(&smgr, DeviceId::DEFAULT, rel).unwrap());
        }
        assert!(pool.new_page(&smgr, DeviceId::DEFAULT, rel).is_err());
        pins.clear();
        assert!(pool.new_page(&smgr, DeviceId::DEFAULT, rel).is_ok());
    }

    #[test]
    fn flush_and_clear_empties_cache_and_persists() {
        let (smgr, pool, rel) = setup(8);
        let (blkno, page) = pool.new_page(&smgr, DeviceId::DEFAULT, rel).unwrap();
        page.write().data_mut()[100] = 42;
        drop(page);
        pool.flush_and_clear(&smgr).unwrap();
        assert!(pool.is_empty());
        // Re-read goes to the device and sees the flushed bytes.
        let page = pool.get_page(&smgr, DeviceId::DEFAULT, rel, blkno).unwrap();
        assert_eq!(page.read().data()[100], 42);
        assert_eq!(pool.stats().misses, 1);
    }

    #[test]
    fn flush_all_clears_dirty_bits() {
        let (smgr, pool, rel) = setup(8);
        let (_, page) = pool.new_page(&smgr, DeviceId::DEFAULT, rel).unwrap();
        assert!(page.read().is_dirty());
        pool.flush_all(&smgr).unwrap();
        assert!(!page.read().is_dirty());
        let before = pool.stats().writebacks;
        pool.flush_all(&smgr).unwrap(); // Nothing dirty: no extra writebacks.
        assert_eq!(pool.stats().writebacks, before);
    }

    #[test]
    fn discard_rel_drops_pages_without_writeback() {
        let (smgr, pool, rel) = setup(8);
        pool.new_page(&smgr, DeviceId::DEFAULT, rel).unwrap();
        let wb_before = pool.stats().writebacks;
        pool.discard_rel(rel);
        assert!(pool.is_empty());
        assert_eq!(pool.stats().writebacks, wb_before);
    }

    #[test]
    fn lru_order_evicts_oldest_unpinned() {
        let (smgr, pool, rel) = setup(4);
        let mut blknos = Vec::new();
        for _ in 0..4 {
            let (b, _) = pool.new_page(&smgr, DeviceId::DEFAULT, rel).unwrap();
            blknos.push(b);
        }
        // Touch block 0 so block 1 becomes LRU.
        pool.get_page(&smgr, DeviceId::DEFAULT, rel, blknos[0])
            .unwrap();
        pool.new_page(&smgr, DeviceId::DEFAULT, rel).unwrap(); // Evicts one.
        let misses_before = pool.stats().misses;
        pool.get_page(&smgr, DeviceId::DEFAULT, rel, blknos[0])
            .unwrap();
        assert_eq!(
            pool.stats().misses,
            misses_before,
            "block 0 should still be cached"
        );
        pool.get_page(&smgr, DeviceId::DEFAULT, rel, blknos[1])
            .unwrap();
        assert_eq!(
            pool.stats().misses,
            misses_before + 1,
            "block 1 was the victim"
        );
    }
}
