//! The shared buffer cache.
//!
//! "POSTGRES maintains an in-memory shared cache of recently used 8 KByte
//! data pages. The size of this cache is tunable when the file system is
//! installed; as shipped, the system uses 64 buffers, but the version in use
//! locally uses 300. Data pages are kicked out of this cache in LRU order,
//! regardless of the device from which they came. Dirty pages are written to
//! backing store before being deleted from the cache."
//!
//! This implementation shards the cache by `hash(rel, blkno)` so concurrent
//! scans contend on different latches, replaces strict LRU with a per-shard
//! clock sweep (second chance), and keeps **all device I/O outside the
//! shard latches**:
//!
//! * a miss inserts a "loading" frame and reads the device with only that
//!   frame's lock held, so concurrent requesters of the same block wait on
//!   the frame, not the shard;
//! * a dirty eviction victim is written back after the shard latch is
//!   dropped, while the frame stays mapped and pinned so concurrent lookups
//!   keep hitting the cached (newest) bytes; it is unmapped only once the
//!   writeback succeeded and nobody re-pinned or re-dirtied it.
//!
//! Pages are pinned by explicit counts carried by the [`PinnedPage`] guard;
//! a frame with `pins > 0` is never evicted. Sequential misses trigger
//! read-ahead of the next few blocks of the relation (see
//! [`BufferPool::set_prefetch_window`]).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::error::{DbError, DbResult};
use crate::ids::{DeviceId, RelId};
use crate::lock::order;
use crate::page::PAGE_SIZE;
use crate::smgr::Smgr;

/// The number of buffers POSTGRES shipped with.
pub const DEFAULT_BUFFERS: usize = 64;
/// The number of buffers the Berkeley installation used.
pub const BERKELEY_BUFFERS: usize = 300;
/// Default read-ahead window: blocks prefetched past a sequential run.
pub const DEFAULT_PREFETCH_WINDOW: usize = 8;
/// Sequential accesses (last blkno + 1) required before read-ahead starts.
const RUN_THRESHOLD: u32 = 3;

/// A cached page and its identity.
pub struct PageBuf {
    data: Box<[u8]>,
    dirty: bool,
    dev: DeviceId,
    rel: RelId,
    blkno: u64,
}

impl PageBuf {
    /// Read access to the page bytes.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Write access to the page bytes; marks the page dirty and records
    /// the page in the thread's active [`DirtyScope`], if any.
    pub fn data_mut(&mut self) -> &mut [u8] {
        self.dirty = true;
        note_dirty(self.dev, self.rel, self.blkno);
        &mut self.data
    }

    /// Whether the page has unflushed modifications.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// The relation this page belongs to.
    pub fn rel(&self) -> RelId {
        self.rel
    }

    /// The logical block number within the relation.
    pub fn blkno(&self) -> u64 {
        self.blkno
    }
}

thread_local! {
    /// The calling thread's open dirty-page recorder, installed by
    /// [`DirtyScope::begin`]. `None` (the default) means nobody is
    /// listening and [`note_dirty`] is a no-op, so non-transactional
    /// writers (vacuum, catalog persistence, index backfill) cost nothing.
    static DIRTY_SCOPE: std::cell::RefCell<Option<Vec<(DeviceId, RelId, u64)>>> =
        const { std::cell::RefCell::new(None) };
}

/// Records a page dirtied on this thread into the active scope, if any.
fn note_dirty(dev: DeviceId, rel: RelId, blkno: u64) {
    DIRTY_SCOPE.with(|s| {
        if let Some(v) = s.borrow_mut().as_mut() {
            v.push((dev, rel, blkno));
        }
    });
}

/// Collects the (device, relation, block) identity of every page the
/// current thread dirties between [`DirtyScope::begin`] and
/// [`DirtyScope::finish`] — the transaction-side half of scoped
/// force-at-commit. Scopes are per *thread* (page writes happen on the
/// session's own thread); nesting is flat: an inner `begin` while a scope
/// is already open returns a pass-through guard whose dirties land in the
/// outer scope.
#[must_use = "finish() the scope to collect the dirty set"]
pub struct DirtyScope {
    active: bool,
}

impl DirtyScope {
    /// Opens a dirty-page recording scope on this thread.
    pub fn begin() -> DirtyScope {
        DIRTY_SCOPE.with(|s| {
            let mut s = s.borrow_mut();
            if s.is_some() {
                DirtyScope { active: false }
            } else {
                *s = Some(Vec::new());
                DirtyScope { active: true }
            }
        })
    }

    /// Closes the scope and returns the recorded pages (in dirtying order,
    /// with duplicates — callers sort/dedup). Pass-through guards from
    /// nested `begin`s return nothing; the outer scope keeps the records.
    pub fn finish(mut self) -> Vec<(DeviceId, RelId, u64)> {
        if !self.active {
            return Vec::new();
        }
        self.active = false;
        DIRTY_SCOPE.with(|s| s.borrow_mut().take()).unwrap_or_default()
    }
}

impl Drop for DirtyScope {
    fn drop(&mut self) {
        if self.active {
            DIRTY_SCOPE.with(|s| *s.borrow_mut() = None);
        }
    }
}

/// Frame load states (`Frame::state`).
const LOADING: u8 = 0;
const READY: u8 = 1;
const FAILED: u8 = 2;

/// One buffer frame: a page slot plus the replacement metadata the clock
/// sweep consults without locking the page itself.
struct Frame {
    /// Explicit pin count. Non-zero means the frame may not be evicted.
    /// Every holder of the page lock (`buf`) holds a pin, so `pins == 0`
    /// observed under the shard latch implies the page lock is free.
    pins: AtomicU32,
    /// Second-chance bit: set on every hit, cleared by the sweep.
    refbit: AtomicBool,
    /// Set when the frame was loaded by read-ahead and not yet demanded.
    from_prefetch: AtomicBool,
    /// I/O-in-progress state: `LOADING` until the filling read completes.
    /// The loader holds `buf`'s write lock for the whole load, so waiters
    /// block on the frame — never on the shard latch.
    state: AtomicU8,
    buf: RwLock<PageBuf>,
}

impl Frame {
    fn new(dev: DeviceId, rel: RelId, blkno: u64, state: u8, dirty: bool) -> Frame {
        Frame {
            pins: AtomicU32::new(1), // Born pinned by its creator.
            refbit: AtomicBool::new(false),
            from_prefetch: AtomicBool::new(false),
            state: AtomicU8::new(state),
            buf: RwLock::new(PageBuf {
                data: vec![0u8; PAGE_SIZE].into_boxed_slice(),
                dirty,
                dev,
                rel,
                blkno,
            }),
        }
    }

    fn state(&self) -> u8 {
        self.state.load(Ordering::SeqCst)
    }

    fn set_state(&self, s: u8) {
        self.state.store(s, Ordering::SeqCst);
    }

    fn unpin(&self) {
        self.pins.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A pinned reference to a cached page. The page cannot be evicted while
/// any `PinnedPage` for it is alive; dropping the guard releases the pin.
pub struct PinnedPage {
    frame: Arc<Frame>,
}

impl PinnedPage {
    /// Latches the page for reading. Callers declare their own
    /// `lock::order` rank (`HEAP_PAGE` / `BTREE_PAGE`) for this latch.
    pub fn read(&self) -> RwLockReadGuard<'_, PageBuf> {
        self.frame.buf.read()
    }

    /// Latches the page for writing.
    pub fn write(&self) -> RwLockWriteGuard<'_, PageBuf> {
        self.frame.buf.write()
    }

    /// Whether two pins reference the same buffer frame.
    pub fn same_frame(a: &PinnedPage, b: &PinnedPage) -> bool {
        Arc::ptr_eq(&a.frame, &b.frame)
    }
}

impl Clone for PinnedPage {
    fn clone(&self) -> PinnedPage {
        // 1 -> 2, never 0 -> 1: a frame seen unpinned under the shard
        // latch cannot be resurrected by a clone.
        self.frame.pins.fetch_add(1, Ordering::SeqCst);
        PinnedPage {
            frame: Arc::clone(&self.frame),
        }
    }
}

impl Drop for PinnedPage {
    fn drop(&mut self) {
        self.frame.unpin();
    }
}

/// Cache effectiveness counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Lookups satisfied from the cache.
    pub hits: u64,
    /// Lookups that had to read from a device.
    pub misses: u64,
    /// Pages evicted to make room.
    pub evictions: u64,
    /// Dirty pages written back (at eviction or flush).
    pub writebacks: u64,
    /// Blocks loaded by sequential read-ahead.
    pub prefetches: u64,
    /// Hits on pages that were resident only because of read-ahead.
    pub prefetch_hits: u64,
}

impl BufferStats {
    fn add(&mut self, o: &BufferStats) {
        self.hits += o.hits;
        self.misses += o.misses;
        self.evictions += o.evictions;
        self.writebacks += o.writebacks;
        self.prefetches += o.prefetches;
        self.prefetch_hits += o.prefetch_hits;
    }
}

/// One shard: a map from `(rel, blkno)` to frames plus the clock ring.
/// Invariant (audited by [`BufferPool::check_consistency`]): `ring` lists
/// exactly the keys of `map`, each once.
struct ShardInner {
    map: HashMap<(RelId, u64), Arc<Frame>>,
    ring: Vec<(RelId, u64)>,
    hand: usize,
    stats: BufferStats,
}

impl ShardInner {
    fn new() -> ShardInner {
        ShardInner {
            map: HashMap::new(),
            ring: Vec::new(),
            hand: 0,
            stats: BufferStats::default(),
        }
    }

    fn insert(&mut self, key: (RelId, u64), frame: Arc<Frame>) {
        self.map.insert(key, frame);
        self.ring.push(key);
    }

    fn remove(&mut self, key: (RelId, u64)) {
        self.map.remove(&key);
        if let Some(pos) = self.ring.iter().position(|&k| k == key) {
            self.ring.remove(pos);
            if pos < self.hand {
                self.hand -= 1;
            }
        }
    }
}

/// The shared buffer cache: sharded, clock-swept, pin-counted.
pub struct BufferPool {
    capacity: usize,
    shard_capacity: usize,
    shards: Vec<Mutex<ShardInner>>,
    /// Blocks of read-ahead past a detected run; 0 disables it. Atomic so
    /// the hot (hit) path never touches the run-detector lock.
    prefetch_window: AtomicUsize,
    /// Sequential-run detector: per-relation (last block, run length).
    /// Consulted only on misses and prefetch hits — cache hits need no
    /// read-ahead, so they skip this lock entirely.
    runs: Mutex<HashMap<RelId, (u64, u32)>>,
    /// The write-ahead log, when one governs this pool: every writeback
    /// forces the log up to the page's stamped LSN first (the
    /// LSN-before-write rule). Read-mostly and unranked — the ranked WAL
    /// mutex is taken inside [`crate::wal::Wal::force_up_to`].
    wal: RwLock<Option<Arc<crate::wal::Wal>>>,
}

impl BufferPool {
    /// Creates a pool of `capacity` page frames, sharded adaptively: small
    /// pools (tests) stay single-sharded so capacity bounds stay exact;
    /// production-sized pools get up to 16 shards.
    pub fn new(capacity: usize) -> BufferPool {
        let capacity = capacity.max(4);
        Self::with_shards(capacity, (capacity / 16).clamp(1, 16))
    }

    /// Creates a pool with an explicit shard count (tests and benchmarks).
    pub fn with_shards(capacity: usize, nshards: usize) -> BufferPool {
        let capacity = capacity.max(4);
        let nshards = nshards.clamp(1, 64);
        BufferPool {
            capacity,
            shard_capacity: capacity.div_ceil(nshards),
            shards: (0..nshards).map(|_| Mutex::new(ShardInner::new())).collect(),
            prefetch_window: AtomicUsize::new(DEFAULT_PREFETCH_WINDOW),
            runs: Mutex::new(HashMap::new()),
            wal: RwLock::new(None),
        }
    }

    /// Attaches the write-ahead log: from here on, no dirty page reaches a
    /// device before the log covering its last change is durable. Pools
    /// without a WAL (standalone tests) skip the rule.
    pub fn attach_wal(&self, wal: Arc<crate::wal::Wal>) {
        *self.wal.write() = Some(wal);
    }

    /// The LSN-before-write rule: force the log up to `buf`'s stamped LSN.
    /// Unlogged pages (LSN 0) need no force.
    fn force_wal_for(&self, buf: &[u8]) -> DbResult<()> {
        let lsn = crate::page::lsn(buf);
        if lsn == 0 {
            return Ok(());
        }
        if let Some(wal) = self.wal.read().as_ref() {
            wal.force_up_to(lsn)?;
        }
        Ok(())
    }

    /// The configured capacity in frames.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a block maps to — which latch its accesses contend on.
    /// Exposed so benchmarks and tests can reason about collision behavior.
    pub fn shard_of(&self, rel: RelId, blkno: u64) -> usize {
        self.shard_index(rel, blkno)
    }

    /// Sets the read-ahead window (0 disables read-ahead).
    pub fn set_prefetch_window(&self, window: usize) {
        self.prefetch_window.store(window, Ordering::SeqCst);
    }

    /// Snapshot of the counters, summed across shards.
    pub fn stats(&self) -> BufferStats {
        let mut total = BufferStats::default();
        for shard in &self.shards {
            let _order = order::token(order::BUFFER_SHARD);
            total.add(&shard.lock().stats);
        }
        total
    }

    /// Number of pages currently cached.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let _order = order::token(order::BUFFER_SHARD);
                s.lock().map.len()
            })
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn shard_index(&self, rel: RelId, blkno: u64) -> usize {
        if self.shards.len() == 1 {
            return 0;
        }
        // splitmix64-style finisher over the packed key.
        let mut h = ((rel.0 as u64) << 32) ^ blkno;
        h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        (h ^ (h >> 31)) as usize % self.shards.len()
    }

    /// Fetches block `blkno` of `rel` (which lives on `dev`), reading it
    /// from the device on a miss. May kick off sequential read-ahead.
    pub fn get_page(
        &self,
        smgr: &Smgr,
        dev: DeviceId,
        rel: RelId,
        blkno: u64,
    ) -> DbResult<PinnedPage> {
        let (pin, sequential_io) = self.pin_block(smgr, dev, rel, blkno)?;
        if sequential_io {
            self.note_access(smgr, dev, rel, blkno);
        }
        Ok(pin)
    }

    /// The demand-fetch path. Returns the pin plus whether this access
    /// touched a block that was not demand-resident (a miss, or a hit on a
    /// read-ahead page) — the signal the run detector extends prefetch on.
    fn pin_block(
        &self,
        smgr: &Smgr,
        dev: DeviceId,
        rel: RelId,
        blkno: u64,
    ) -> DbResult<(PinnedPage, bool)> {
        let si = self.shard_index(rel, blkno);
        let key = (rel, blkno);
        loop {
            // Lookup: pin under the shard latch, then wait (if at all) on
            // the frame with the latch released.
            let hit: Option<(Arc<Frame>, bool)> = {
                let _order = order::token(order::BUFFER_SHARD);
                let mut shard = self.shards[si].lock();
                match shard.map.get(&key) {
                    Some(frame) => {
                        let frame = Arc::clone(frame);
                        frame.pins.fetch_add(1, Ordering::SeqCst);
                        frame.refbit.store(true, Ordering::SeqCst);
                        let was_prefetch = frame.from_prefetch.swap(false, Ordering::SeqCst);
                        shard.stats.hits += 1;
                        if was_prefetch {
                            shard.stats.prefetch_hits += 1;
                        }
                        Some((frame, was_prefetch))
                    }
                    None => None,
                }
            };
            if let Some((frame, was_prefetch)) = hit {
                loop {
                    match frame.state() {
                        READY => return Ok((PinnedPage { frame }, was_prefetch)),
                        LOADING => {
                            // Block on the frame until the loader drops its
                            // write lock, then re-check.
                            let _fl = order::token(order::BUFFER_FRAME);
                            drop(frame.buf.read());
                        }
                        _ => break, // FAILED
                    }
                }
                // The load failed and the loader unmapped the frame. Undo
                // the hit we recorded and retry as a fresh lookup.
                {
                    let _order = order::token(order::BUFFER_SHARD);
                    self.shards[si].lock().stats.hits -= 1;
                }
                frame.unpin();
                continue;
            }
            // Miss: make room, then load with the latch released.
            let (tok, mut shard) = self.lock_with_room(si, smgr)?;
            if shard.map.contains_key(&key) {
                // Raced with another loader while evicting; retry lookup.
                continue;
            }
            shard.stats.misses += 1;
            let frame = self.load_frame(tok, shard, smgr, dev, rel, blkno)?;
            return Ok((PinnedPage { frame }, true));
        }
    }

    /// Inserts a `LOADING` frame for the block into the locked shard, then
    /// releases the latch and fills it from the device. The device read
    /// happens with only the frame's lock held; waiters block there.
    fn load_frame(
        &self,
        tok: order::LevelToken,
        mut shard: MutexGuard<'_, ShardInner>,
        smgr: &Smgr,
        dev: DeviceId,
        rel: RelId,
        blkno: u64,
    ) -> DbResult<Arc<Frame>> {
        let si = self.shard_index(rel, blkno);
        let key = (rel, blkno);
        let frame = Arc::new(Frame::new(dev, rel, blkno, LOADING, false));
        let ftok = order::token(order::BUFFER_FRAME);
        // Uncontended: the frame is not published yet.
        let mut fbuf = frame.buf.write();
        shard.insert(key, Arc::clone(&frame));
        drop(shard);
        drop(tok);
        match smgr.read_page_from(dev, rel, blkno, &mut fbuf.data) {
            Ok(source) => {
                frame.set_state(READY);
                drop(fbuf);
                drop(ftok);
                if source == crate::smgr::PageSource::Prefetch {
                    // The bytes came from a scheduler read-ahead ticket —
                    // the async counterpart of a demand hit on a resident
                    // prefetched frame.
                    let _order = order::token(order::BUFFER_SHARD);
                    self.shards[si].lock().stats.prefetch_hits += 1;
                }
                Ok(frame)
            }
            Err(e) => {
                frame.set_state(FAILED);
                drop(fbuf);
                drop(ftok);
                // Unmap the failed frame so retries reload it. Waiters
                // that already pinned it will observe FAILED and retry.
                let _order = order::token(order::BUFFER_SHARD);
                let mut shard = self.shards[si].lock();
                if shard.map.get(&key).is_some_and(|f| Arc::ptr_eq(f, &frame)) {
                    shard.remove(key);
                }
                frame.unpin();
                Err(e)
            }
        }
    }

    /// Locks shard `si` with room for one more frame, running the clock
    /// sweep as needed. Dirty victims are written back with the latch
    /// *released* and stay mapped (and pinned) throughout, so concurrent
    /// lookups hit the cached bytes instead of re-reading stale ones.
    fn lock_with_room(
        &self,
        si: usize,
        smgr: &Smgr,
    ) -> DbResult<(order::LevelToken, MutexGuard<'_, ShardInner>)> {
        // Sweeps that find every frame pinned wait and retry before giving
        // up: transient all-pinned shards are normal while the background
        // checkpointer walks the pool (it pins frames it has yet to
        // flush). Only a pin held *forever* — a leak, or genuinely more
        // concurrent pins than frames — should surface as an error.
        let mut stalls: u32 = 0;
        const MAX_STALLS: u32 = 1 << 16;
        'retry: loop {
            let tok = order::token(order::BUFFER_SHARD);
            let mut shard = self.shards[si].lock();
            if shard.map.len() < self.shard_capacity {
                return Ok((tok, shard));
            }
            // Two full passes: the first clears reference bits, the second
            // takes the first frame that stayed cold. Only pins block
            // eviction beyond that.
            let mut steps = 0;
            let max_steps = 2 * shard.ring.len() + 1;
            loop {
                if steps > max_steps {
                    stalls += 1;
                    if stalls < MAX_STALLS {
                        drop(shard);
                        drop(tok);
                        if stalls.is_multiple_of(64) {
                            std::thread::sleep(std::time::Duration::from_micros(100));
                        } else {
                            std::thread::yield_now();
                        }
                        continue 'retry;
                    }
                    return Err(DbError::Invalid(
                        "buffer pool exhausted: every page is pinned".into(),
                    ));
                }
                steps += 1;
                if shard.ring.is_empty() {
                    return Ok((tok, shard));
                }
                let pos = shard.hand % shard.ring.len();
                let key = shard.ring[pos];
                let Some(frame) = shard.map.get(&key).map(Arc::clone) else {
                    // Ring/map drift (should not happen; the consistency
                    // check reports it). Self-heal by dropping the entry.
                    shard.ring.remove(pos);
                    continue;
                };
                if frame.pins.load(Ordering::SeqCst) > 0
                    || frame.refbit.swap(false, Ordering::SeqCst)
                {
                    shard.hand = pos + 1;
                    continue;
                }
                // Victim. `pins == 0` under the latch means nobody holds
                // its page lock, so try_write cannot fail; skip it like a
                // pinned frame if it somehow does.
                let ftok = order::token(order::BUFFER_FRAME);
                let Some(mut vbuf) = frame.buf.try_write() else {
                    drop(ftok);
                    shard.hand = pos + 1;
                    continue;
                };
                if !vbuf.dirty {
                    drop(vbuf);
                    drop(ftok);
                    shard.remove(key);
                    shard.stats.evictions += 1;
                    if shard.map.len() < self.shard_capacity {
                        return Ok((tok, shard));
                    }
                    continue;
                }
                // Dirty: pin (so no concurrent sweep picks it), release
                // the latch, write back under the frame lock only.
                frame.pins.fetch_add(1, Ordering::SeqCst);
                drop(shard);
                drop(tok);
                let vdev = vbuf.dev;
                let io = {
                    let (d, r, b) = (vbuf.dev, vbuf.rel, vbuf.blkno);
                    // WAL-before-data, enforced at the submission site: the
                    // log is forced up to the page's LSN *before* the write
                    // is queued. The enqueue itself never blocks, so holding
                    // the frame lock here is fine.
                    let res = self
                        .force_wal_for(&vbuf.data)
                        .and_then(|()| smgr.write_page_back(d, r, b, &vbuf.data));
                    if res.is_ok() {
                        vbuf.dirty = false;
                    }
                    res
                };
                drop(vbuf);
                drop(ftok);
                // Backpressure with every latch released: wait for the
                // device queue to drain below its depth bound.
                smgr.io_throttle(vdev);
                let _order = order::token(order::BUFFER_SHARD);
                let mut shard = self.shards[si].lock();
                frame.unpin();
                shard.stats.writebacks += 1;
                io?;
                // Unmap only if still ours, unpinned, and still clean —
                // a re-pin or re-dirty in the writeback window wins.
                if frame.pins.load(Ordering::SeqCst) == 0
                    && shard.map.get(&key).is_some_and(|f| Arc::ptr_eq(f, &frame))
                {
                    let clean = {
                        let _fl = order::token(order::BUFFER_FRAME);
                        frame.buf.try_read().map(|b| !b.dirty).unwrap_or(false)
                    };
                    if clean {
                        shard.remove(key);
                        shard.stats.evictions += 1;
                    }
                }
                drop(shard);
                continue 'retry;
            }
        }
    }

    /// Appends a fresh block to `rel`, returning its number and a pinned,
    /// dirty, zero-filled page for it. The extend happens *before* any
    /// latch is taken (the block number decides the shard).
    pub fn new_page(&self, smgr: &Smgr, dev: DeviceId, rel: RelId) -> DbResult<(u64, PinnedPage)> {
        let blkno = smgr.extend_page(dev, rel)?;
        let frame = Arc::new(Frame::new(dev, rel, blkno, READY, true));
        note_dirty(dev, rel, blkno); // Born dirty; data_mut may never run.
        let si = self.shard_index(rel, blkno);
        let (_tok, mut shard) = self.lock_with_room(si, smgr)?;
        shard.insert((rel, blkno), Arc::clone(&frame));
        Ok((blkno, PinnedPage { frame }))
    }

    /// Records a non-resident access (miss or prefetch hit) for the
    /// sequential-run detector and prefetches ahead of an established run.
    /// Called only on the cold path — which does device I/O anyway — so the
    /// run-detector lock never slows a cache hit. Runs with no pool locks
    /// held.
    fn note_access(&self, smgr: &Smgr, dev: DeviceId, rel: RelId, blkno: u64) {
        let window = self.prefetch_window.load(Ordering::SeqCst);
        if window == 0 {
            return;
        }
        let fetch = {
            let _order = order::token(order::BUFFER_SHARD);
            let mut runs = self.runs.lock();
            let run = match runs.get(&rel) {
                Some(&(last, run)) if blkno == last + 1 => run.saturating_add(1),
                Some(&(last, run)) if blkno == last => run,
                _ => 1,
            };
            runs.insert(rel, (blkno, run));
            run >= RUN_THRESHOLD
        };
        if fetch {
            self.prefetch(smgr, dev, rel, blkno + 1, window);
        }
    }

    /// Loads up to `count` blocks of `rel` starting at `start` that are not
    /// already resident, without counting them as demand misses. A hint:
    /// errors (including pool exhaustion) end the prefetch silently, and
    /// read-ahead never claims more than half the pool in one call.
    pub fn prefetch(&self, smgr: &Smgr, dev: DeviceId, rel: RelId, start: u64, count: usize) {
        let count = count.min((self.capacity / 2).max(1));
        if count == 0 {
            return;
        }
        let Ok(nblocks) = smgr.with(dev, |m| m.nblocks(rel)) else {
            return;
        };
        for blkno in start..nblocks.min(start.saturating_add(count as u64)) {
            if self.prefetch_block(smgr, dev, rel, blkno).is_err() {
                break;
            }
        }
    }

    fn prefetch_block(&self, smgr: &Smgr, dev: DeviceId, rel: RelId, blkno: u64) -> DbResult<()> {
        let si = self.shard_index(rel, blkno);
        let key = (rel, blkno);
        {
            let _order = order::token(order::BUFFER_SHARD);
            if self.shards[si].lock().map.contains_key(&key) {
                return Ok(());
            }
        }
        // With the scheduler on, read-ahead is a queue submission: the
        // device worker overlaps it with foreground work and the later
        // demand miss claims the ticket. No frame is reserved until then.
        if smgr.prefetch_page(dev, rel, blkno) {
            let _order = order::token(order::BUFFER_SHARD);
            self.shards[si].lock().stats.prefetches += 1;
            return Ok(());
        }
        let (tok, shard) = self.lock_with_room(si, smgr)?;
        if shard.map.contains_key(&key) {
            return Ok(());
        }
        let frame = self.load_frame(tok, shard, smgr, dev, rel, blkno)?;
        frame.from_prefetch.store(true, Ordering::SeqCst);
        frame.refbit.store(true, Ordering::SeqCst);
        {
            let _order = order::token(order::BUFFER_SHARD);
            self.shards[si].lock().stats.prefetches += 1;
        }
        frame.unpin(); // Read-ahead holds no pin once loaded.
        Ok(())
    }

    /// Pins every cached frame (optionally restricted to `rel`) so flushes
    /// can write with no shard latch held.
    fn pin_all(&self, rel: Option<RelId>) -> Vec<Arc<Frame>> {
        let mut frames = Vec::new();
        for shard in &self.shards {
            let _order = order::token(order::BUFFER_SHARD);
            let shard = shard.lock();
            for (&(r, _), frame) in &shard.map {
                if rel.is_none_or(|want| want == r) {
                    frame.pins.fetch_add(1, Ordering::SeqCst);
                    frames.push(Arc::clone(frame));
                }
            }
        }
        frames
    }

    fn flush_frames(&self, smgr: &Smgr, frames: Vec<Arc<Frame>>) -> DbResult<usize> {
        let mut result = Ok(());
        let mut written = vec![0u64; self.shards.len()];
        // Unpin each frame as soon as it is handled, not at the end: the
        // checkpointer flushes the *whole* pool concurrently with
        // foreground work, and holding every pin for the full sweep would
        // starve eviction (`lock_with_room`) for the sweep's duration. A
        // frame only needs its pin while we might still write it — once
        // unpinned, eviction writing it back first just leaves it clean
        // and we skip it.
        for frame in &frames {
            if result.is_ok() {
                let _fl = order::token(order::BUFFER_FRAME);
                let mut buf = frame.buf.write();
                if buf.dirty {
                    let (d, r, b) = (buf.dev, buf.rel, buf.blkno);
                    match self
                        .force_wal_for(&buf.data)
                        .and_then(|()| smgr.write_page_back(d, r, b, &buf.data))
                    {
                        Ok(()) => {
                            buf.dirty = false;
                            written[self.shard_index(r, b)] += 1;
                        }
                        Err(e) => result = Err(e),
                    }
                }
            }
            frame.unpin();
        }
        let total = written.iter().sum::<u64>() as usize;
        for (si, w) in written.into_iter().enumerate() {
            if w > 0 {
                let _order = order::token(order::BUFFER_SHARD);
                self.shards[si].lock().stats.writebacks += w;
            }
        }
        result.map(|_| total)
    }

    /// Writes every dirty page back through `smgr` (without evicting), in
    /// (relation, block) order — the elevator sweep a real commit-time sync
    /// performs so flushes stream rather than seek. Returns the number of
    /// pages written (the checkpointer's drain count).
    pub fn flush_all(&self, smgr: &Smgr) -> DbResult<usize> {
        let mut frames = self.pin_all(None);
        frames.sort_by_key(|f| {
            let b = f.buf.read();
            (b.rel, b.blkno)
        });
        self.flush_frames(smgr, frames)
    }

    /// Writes back exactly the listed pages — a committing transaction's
    /// dirty set, from [`DirtyScope::finish`] — in (relation, block) order.
    /// Pages that are no longer cached or already clean (evicted and
    /// written by the sweep, or flushed by eager index write-through) are
    /// skipped for free. Returns the number of pages written.
    pub fn flush_pages(
        &self,
        smgr: &Smgr,
        pages: &[(DeviceId, RelId, u64)],
    ) -> DbResult<usize> {
        let mut frames = Vec::with_capacity(pages.len());
        for &(_dev, rel, blkno) in pages {
            let si = self.shard_index(rel, blkno);
            let _order = order::token(order::BUFFER_SHARD);
            let shard = self.shards[si].lock();
            if let Some(frame) = shard.map.get(&(rel, blkno)) {
                frame.pins.fetch_add(1, Ordering::SeqCst);
                frames.push(Arc::clone(frame));
            }
        }
        frames.sort_by_key(|f| {
            let b = f.buf.read();
            (b.rel, b.blkno)
        });
        self.flush_frames(smgr, frames)
    }

    /// Writes back every dirty cached page belonging to `rel` (eager index
    /// write-through uses this). Returns the number of pages written.
    pub fn flush_rel(&self, smgr: &Smgr, rel: RelId) -> DbResult<usize> {
        let mut frames = self.pin_all(Some(rel));
        frames.sort_by_key(|f| f.buf.read().blkno);
        self.flush_frames(smgr, frames)
    }

    /// Flushes dirty pages and then empties the cache entirely — the
    /// "all caches were flushed before each test" step of the benchmark.
    pub fn flush_and_clear(&self, smgr: &Smgr) -> DbResult<()> {
        self.flush_all(smgr)?;
        for shard in &self.shards {
            let _order = order::token(order::BUFFER_SHARD);
            let shard = shard.lock();
            if shard
                .map
                .values()
                .any(|f| f.pins.load(Ordering::SeqCst) > 0)
            {
                return Err(DbError::Invalid("cannot clear cache: pages pinned".into()));
            }
        }
        for shard in &self.shards {
            let _order = order::token(order::BUFFER_SHARD);
            let mut shard = shard.lock();
            shard.map.clear();
            shard.ring.clear();
            shard.hand = 0;
        }
        let _order = order::token(order::BUFFER_SHARD);
        self.runs.lock().clear();
        Ok(())
    }

    /// Discards every cached page for `rel` *without* writing them back
    /// (used when dropping a relation). Map and clock ring shed the
    /// relation's keys together, so neither drifts.
    pub fn discard_rel(&self, rel: RelId) {
        for shard in &self.shards {
            let _order = order::token(order::BUFFER_SHARD);
            let mut shard = shard.lock();
            shard.map.retain(|&(r, _), _| r != rel);
            shard.ring.retain(|&(r, _)| r != rel);
            shard.hand = 0;
        }
        let _order = order::token(order::BUFFER_SHARD);
        self.runs.lock().remove(&rel);
    }

    /// Structural self-audit: the map and clock ring of every shard must
    /// list exactly the same keys (each once), every frame must agree with
    /// its key, and every key must hash to the shard holding it. Returns
    /// human-readable violations (empty = consistent).
    pub fn check_consistency(&self) -> Vec<String> {
        let mut problems = Vec::new();
        for (si, shard) in self.shards.iter().enumerate() {
            let _order = order::token(order::BUFFER_SHARD);
            let shard = shard.lock();
            if shard.ring.len() != shard.map.len() {
                problems.push(format!(
                    "shard {si}: clock ring has {} entries but map has {}",
                    shard.ring.len(),
                    shard.map.len()
                ));
            }
            let mut seen = std::collections::HashSet::new();
            for &key in &shard.ring {
                if !seen.insert(key) {
                    problems.push(format!("shard {si}: {key:?} appears twice in the ring"));
                }
                if !shard.map.contains_key(&key) {
                    problems.push(format!("shard {si}: ring entry {key:?} not in the map"));
                }
            }
            for (&(rel, blkno), frame) in &shard.map {
                if self.shard_index(rel, blkno) != si {
                    problems.push(format!(
                        "shard {si}: key ({rel}, {blkno}) hashes to shard {}",
                        self.shard_index(rel, blkno)
                    ));
                }
                if let Some(buf) = frame.buf.try_read() {
                    if (buf.rel, buf.blkno) != (rel, blkno) {
                        problems.push(format!(
                            "shard {si}: frame keyed ({rel}, {blkno}) says ({}, {})",
                            buf.rel, buf.blkno
                        ));
                    }
                }
            }
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Oid;
    use crate::smgr::{shared_device, GenericManager};
    use simdev::{DiskProfile, MagneticDisk, SimClock};

    fn setup(capacity: usize) -> (Smgr, BufferPool, RelId) {
        setup_sharded(capacity, 1)
    }

    fn setup_sharded(capacity: usize, nshards: usize) -> (Smgr, BufferPool, RelId) {
        let clock = SimClock::new();
        let dev = shared_device(MagneticDisk::new(
            "d",
            clock,
            DiskProfile::tiny_for_tests(4096),
        ));
        let mut smgr = Smgr::new();
        smgr.register(
            DeviceId::DEFAULT,
            Box::new(GenericManager::format(dev).unwrap()),
        )
        .unwrap();
        let rel = Oid(10);
        smgr.with(DeviceId::DEFAULT, |m| m.create_rel(rel)).unwrap();
        (smgr, BufferPool::with_shards(capacity, nshards), rel)
    }

    #[test]
    fn new_page_then_get_hits_cache() {
        let (smgr, pool, rel) = setup(8);
        let (blkno, page) = pool.new_page(&smgr, DeviceId::DEFAULT, rel).unwrap();
        page.write().data_mut()[0] = 0xAB;
        drop(page);
        let page = pool.get_page(&smgr, DeviceId::DEFAULT, rel, blkno).unwrap();
        assert_eq!(page.read().data()[0], 0xAB);
        assert_eq!(pool.stats().hits, 1);
        assert_eq!(pool.stats().misses, 0);
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let (smgr, pool, rel) = setup(4);
        // Create more pages than capacity.
        for i in 0..10u8 {
            let (_, page) = pool.new_page(&smgr, DeviceId::DEFAULT, rel).unwrap();
            page.write().data_mut()[0] = i;
        }
        assert!(pool.len() <= 4);
        assert!(pool.stats().evictions >= 6);
        // All pages readable with correct content after eviction.
        for i in 0..10u8 {
            let page = pool
                .get_page(&smgr, DeviceId::DEFAULT, rel, i as u64)
                .unwrap();
            assert_eq!(page.read().data()[0], i, "block {i}");
        }
    }

    #[test]
    fn pinned_pages_survive_pressure() {
        let (smgr, pool, rel) = setup(4);
        let (blkno, pinned) = pool.new_page(&smgr, DeviceId::DEFAULT, rel).unwrap();
        pinned.write().data_mut()[0] = 0x77;
        for _ in 0..10 {
            pool.new_page(&smgr, DeviceId::DEFAULT, rel).unwrap();
        }
        // The pinned page must still be the same frame in cache.
        let again = pool.get_page(&smgr, DeviceId::DEFAULT, rel, blkno).unwrap();
        assert!(PinnedPage::same_frame(&pinned, &again));
        assert_eq!(again.read().data()[0], 0x77);
    }

    #[test]
    fn pool_of_all_pinned_pages_errors() {
        let (smgr, pool, rel) = setup(4);
        let mut pins = Vec::new();
        for _ in 0..4 {
            pins.push(pool.new_page(&smgr, DeviceId::DEFAULT, rel).unwrap());
        }
        assert!(pool.new_page(&smgr, DeviceId::DEFAULT, rel).is_err());
        pins.clear();
        assert!(pool.new_page(&smgr, DeviceId::DEFAULT, rel).is_ok());
    }

    #[test]
    fn flush_and_clear_empties_cache_and_persists() {
        let (smgr, pool, rel) = setup(8);
        let (blkno, page) = pool.new_page(&smgr, DeviceId::DEFAULT, rel).unwrap();
        page.write().data_mut()[100] = 42;
        drop(page);
        pool.flush_and_clear(&smgr).unwrap();
        assert!(pool.is_empty());
        // Re-read goes to the device and sees the flushed bytes.
        let page = pool.get_page(&smgr, DeviceId::DEFAULT, rel, blkno).unwrap();
        assert_eq!(page.read().data()[100], 42);
        assert_eq!(pool.stats().misses, 1);
    }

    #[test]
    fn flush_all_clears_dirty_bits() {
        let (smgr, pool, rel) = setup(8);
        let (_, page) = pool.new_page(&smgr, DeviceId::DEFAULT, rel).unwrap();
        assert!(page.read().is_dirty());
        pool.flush_all(&smgr).unwrap();
        assert!(!page.read().is_dirty());
        let before = pool.stats().writebacks;
        pool.flush_all(&smgr).unwrap(); // Nothing dirty: no extra writebacks.
        assert_eq!(pool.stats().writebacks, before);
    }

    #[test]
    fn discard_rel_drops_pages_without_writeback() {
        let (smgr, pool, rel) = setup(8);
        pool.new_page(&smgr, DeviceId::DEFAULT, rel).unwrap();
        let wb_before = pool.stats().writebacks;
        pool.discard_rel(rel);
        assert!(pool.is_empty());
        assert_eq!(pool.stats().writebacks, wb_before);
    }

    #[test]
    fn clock_sweep_evicts_cold_page_not_recent() {
        let (smgr, pool, rel) = setup(4);
        let mut blknos = Vec::new();
        for _ in 0..4 {
            let (b, _) = pool.new_page(&smgr, DeviceId::DEFAULT, rel).unwrap();
            blknos.push(b);
        }
        // Touch block 0 (sets its reference bit) so block 1 is the first
        // cold frame the hand reaches.
        pool.get_page(&smgr, DeviceId::DEFAULT, rel, blknos[0])
            .unwrap();
        pool.new_page(&smgr, DeviceId::DEFAULT, rel).unwrap(); // Evicts one.
        let misses_before = pool.stats().misses;
        pool.get_page(&smgr, DeviceId::DEFAULT, rel, blknos[0])
            .unwrap();
        assert_eq!(
            pool.stats().misses,
            misses_before,
            "block 0 should still be cached"
        );
        pool.get_page(&smgr, DeviceId::DEFAULT, rel, blknos[1])
            .unwrap();
        assert_eq!(
            pool.stats().misses,
            misses_before + 1,
            "block 1 was the victim"
        );
    }

    #[test]
    fn discard_rel_keeps_map_and_ring_consistent() {
        let (smgr, pool, rel) = setup(8);
        let other = Oid(11);
        smgr.with(DeviceId::DEFAULT, |m| m.create_rel(other))
            .unwrap();
        for _ in 0..3 {
            pool.new_page(&smgr, DeviceId::DEFAULT, rel).unwrap();
            pool.new_page(&smgr, DeviceId::DEFAULT, other).unwrap();
        }
        pool.discard_rel(rel);
        assert_eq!(pool.check_consistency(), Vec::<String>::new());
        assert_eq!(pool.len(), 3);
        // The survivor relation keeps working under pressure: the ring
        // holds no stale keys for the discarded one.
        for _ in 0..10 {
            pool.new_page(&smgr, DeviceId::DEFAULT, other).unwrap();
        }
        assert_eq!(pool.check_consistency(), Vec::<String>::new());
    }

    #[test]
    fn sequential_misses_trigger_prefetch() {
        let (smgr, pool, rel) = setup(16);
        for _ in 0..12 {
            pool.new_page(&smgr, DeviceId::DEFAULT, rel).unwrap();
        }
        pool.flush_and_clear(&smgr).unwrap();
        // A cold sequential scan: after RUN_THRESHOLD misses the pool
        // reads ahead, so later blocks hit.
        for b in 0..12u64 {
            pool.get_page(&smgr, DeviceId::DEFAULT, rel, b).unwrap();
        }
        let s = pool.stats();
        assert_eq!(s.hits + s.misses, 12, "every access counted once: {s:?}");
        assert!(s.prefetches > 0, "{s:?}");
        assert!(s.prefetch_hits > 0, "{s:?}");
        assert!(s.misses < 12, "read-ahead must absorb some misses: {s:?}");
    }

    #[test]
    fn prefetch_window_zero_disables_readahead() {
        let (smgr, pool, rel) = setup(16);
        pool.set_prefetch_window(0);
        for _ in 0..12 {
            pool.new_page(&smgr, DeviceId::DEFAULT, rel).unwrap();
        }
        pool.flush_and_clear(&smgr).unwrap();
        for b in 0..12u64 {
            pool.get_page(&smgr, DeviceId::DEFAULT, rel, b).unwrap();
        }
        let s = pool.stats();
        assert_eq!(s.prefetches, 0);
        assert_eq!(s.prefetch_hits, 0);
        assert_eq!(s.misses, 12);
    }

    #[test]
    fn sharded_pool_spreads_and_stays_consistent() {
        let (smgr, pool, rel) = setup_sharded(64, 4);
        assert_eq!(pool.shard_count(), 4);
        for _ in 0..40 {
            pool.new_page(&smgr, DeviceId::DEFAULT, rel).unwrap();
        }
        assert_eq!(pool.check_consistency(), Vec::<String>::new());
        let populated = (0..pool.shard_count())
            .filter(|&si| {
                let _order = order::token(order::BUFFER_SHARD);
                !pool.shards[si].lock().map.is_empty()
            })
            .count();
        assert!(populated >= 2, "keys must spread across shards");
        pool.flush_and_clear(&smgr).unwrap();
        assert!(pool.is_empty());
    }

    #[test]
    fn concurrent_requests_for_one_cold_block_read_device_once() {
        let (smgr, pool, rel) = setup_sharded(16, 4);
        let (blkno, page) = pool.new_page(&smgr, DeviceId::DEFAULT, rel).unwrap();
        page.write().data_mut()[7] = 0x5A;
        drop(page);
        pool.flush_and_clear(&smgr).unwrap();
        pool.set_prefetch_window(0);
        let smgr = std::sync::Arc::new(smgr);
        let pool = std::sync::Arc::new(pool);
        let mut handles = Vec::new();
        for _ in 0..8 {
            let (smgr, pool) = (std::sync::Arc::clone(&smgr), std::sync::Arc::clone(&pool));
            handles.push(std::thread::spawn(move || {
                let pin = pool.get_page(&smgr, DeviceId::DEFAULT, rel, blkno).unwrap();
                assert_eq!(pin.read().data()[7], 0x5A);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = pool.stats();
        assert_eq!(s.misses, 1, "one loader, everyone else waits: {s:?}");
        assert_eq!(s.hits, 7, "{s:?}");
    }
}
