//! B+tree indices.
//!
//! "In order to speed up seeks on files, Inversion maintains a Btree index
//! on the chunk number attribute", and "various Btree indices on the naming
//! table speed up \[pathname\] operations". Because the heap never overwrites,
//! an index accumulates entries for *every version* of a key — "the
//! appropriate historical version of a file is constructed using an index on
//! all of the file's available data, including both old and current blocks".
//! Readers filter index hits through tuple visibility.
//!
//! Structure: a meta page (block 0) pointing at the root; internal nodes
//! hold `(min_key, child)` fence entries; leaves hold `(key, tid)` and are
//! chained left-to-right for range scans. Duplicate keys are expected and
//! supported. Deletion is lazy (no rebalancing); the vacuum cleaner rebuilds
//! indices when it rewrites a relation.

use crate::buffer::BufferPool;
use crate::datum::{decode_row, encode_row, Datum};
use crate::error::{DbError, DbResult};
use crate::ids::{DeviceId, RelId, Tid};
use crate::page;
use crate::smgr::Smgr;
use crate::stats::StatsRegistry;
use std::cmp::Ordering;

/// Special-area layout for B-tree node pages.
const SPECIAL_SIZE: usize = 12;
const LEAF_FLAG: u8 = 1;

/// Meta-page special layout: magic + root block.
const META_MAGIC: u32 = 0x4254_5245; // "BTRE"

/// A key is a sequence of datums compared lexicographically.
pub type Key = Vec<Datum>;

fn cmp_keys(a: &[Datum], b: &[Datum]) -> Ordering {
    for (x, y) in a.iter().zip(b.iter()) {
        match x.cmp_total(y) {
            Ordering::Equal => continue,
            other => return other,
        }
    }
    a.len().cmp(&b.len())
}

struct NodeMeta {
    leaf: bool,
    right: u64, // 0 = none (block 0 is always the meta page).
}

fn read_node_meta(data: &[u8]) -> DbResult<NodeMeta> {
    let sp = page::special(data);
    if sp.len() < SPECIAL_SIZE {
        return Err(DbError::Corrupt(format!(
            "btree node special area too small: {} < {SPECIAL_SIZE}",
            sp.len()
        )));
    }
    Ok(NodeMeta {
        leaf: sp[0] & LEAF_FLAG != 0,
        right: crate::bytes::le_u64(sp, 4)?,
    })
}

fn write_node_meta(data: &mut [u8], meta: &NodeMeta) {
    let sp = page::special_mut(data);
    sp[0] = if meta.leaf { LEAF_FLAG } else { 0 };
    sp[1..4].fill(0);
    sp[4..12].copy_from_slice(&meta.right.to_le_bytes());
}

/// Encodes one index item: `[klen u16][key][payload]`.
fn encode_item(key: &[Datum], payload: &[u8]) -> Vec<u8> {
    let kbytes = encode_row(key);
    let mut out = Vec::with_capacity(2 + kbytes.len() + payload.len());
    out.extend_from_slice(&(kbytes.len() as u16).to_le_bytes());
    out.extend_from_slice(&kbytes);
    out.extend_from_slice(payload);
    out
}

fn decode_item(item: &[u8]) -> DbResult<(Key, &[u8])> {
    if item.len() < 2 {
        return Err(DbError::Corrupt("index item too short".into()));
    }
    let klen = crate::bytes::le_u16(item, 0)? as usize;
    let kbytes = item
        .get(2..2 + klen)
        .ok_or_else(|| DbError::Corrupt("index item key truncated".into()))?;
    let key = decode_row(kbytes)?;
    Ok((key, &item[2 + klen..]))
}

/// A handle binding a B-tree index relation to its machinery.
pub struct BTree<'a> {
    /// The shared buffer cache.
    pub pool: &'a BufferPool,
    /// The device manager switch.
    pub smgr: &'a Smgr,
    /// Device the index lives on.
    pub dev: DeviceId,
    /// The index relation.
    pub rel: RelId,
    /// Where search/insert/split counts go.
    pub stats: &'a StatsRegistry,
    /// The write-ahead log, when mutations must be logged. `None` runs
    /// unlogged — read paths, checks, and bulk builds that flush and sync
    /// explicitly before the index becomes reachable.
    pub wal: Option<&'a crate::wal::Wal>,
}

/// How [`BTree::insert_sorted`] placed an item — the cheap append case logs
/// an item-sized record, a rewrite logs the page image.
enum Sorted {
    /// Appended in slot order; the new item landed in this slot.
    Appended(u16),
    /// The page was rewritten to restore key order.
    Rewrote,
}

impl<'a> BTree<'a> {
    /// Logs a full after-image of `data` (structure changes — splits, page
    /// rewrites, meta updates) and stamps its page LSN.
    fn log_image(&self, data: &mut [u8], blkno: u64) -> DbResult<()> {
        if let Some(wal) = self.wal {
            let end = wal.append(&crate::wal::WalRecord::PageImage {
                dev: self.dev,
                rel: self.rel,
                blkno,
                image: data.to_vec(),
            })?;
            page::set_lsn(data, end);
        }
        Ok(())
    }

    /// Logs a slot-order append of `item` (the common sequential-insert
    /// case) and stamps the page LSN.
    fn log_append(&self, data: &mut [u8], blkno: u64, slot: u16, item: &[u8]) -> DbResult<()> {
        if let Some(wal) = self.wal {
            let end = wal.append(&crate::wal::WalRecord::Insert {
                dev: self.dev,
                rel: self.rel,
                blkno,
                slot,
                tuple: item.to_vec(),
            })?;
            page::set_lsn(data, end);
        }
        Ok(())
    }

    /// Initializes an empty index: a meta page and one empty leaf root.
    pub fn create(&self) -> DbResult<()> {
        let (meta_blk, meta_ref) = self.pool.new_page(self.smgr, self.dev, self.rel)?;
        if meta_blk != 0 {
            return Err(DbError::Invalid(
                "index relation not empty at create".into(),
            ));
        }
        let (root_blk, root_ref) = self.pool.new_page(self.smgr, self.dev, self.rel)?;
        {
            let _order = crate::lock::order::token(crate::lock::order::BTREE_PAGE);
            let mut root = root_ref.write();
            let data = root.data_mut();
            page::init(data, SPECIAL_SIZE);
            write_node_meta(
                data,
                &NodeMeta {
                    leaf: true,
                    right: 0,
                },
            );
            self.log_image(data, root_blk)?;
        }
        let _order = crate::lock::order::token(crate::lock::order::BTREE_PAGE);
        let mut meta = meta_ref.write();
        let data = meta.data_mut();
        page::init(data, 16);
        let sp = page::special_mut(data);
        sp[..4].copy_from_slice(&META_MAGIC.to_le_bytes());
        sp[4..12].copy_from_slice(&root_blk.to_le_bytes());
        self.log_image(data, meta_blk)?;
        Ok(())
    }

    fn root(&self) -> DbResult<u64> {
        let meta_ref = self.pool.get_page(self.smgr, self.dev, self.rel, 0)?;
        let _order = crate::lock::order::token(crate::lock::order::BTREE_PAGE);
        let meta = meta_ref.read();
        let sp = page::special(meta.data());
        if sp.len() < 12 || crate::bytes::le_u32(sp, 0)? != META_MAGIC {
            return Err(DbError::Corrupt(format!(
                "bad btree meta page in {}",
                self.rel
            )));
        }
        crate::bytes::le_u64(sp, 4)
    }

    fn set_root(&self, root: u64) -> DbResult<()> {
        let meta_ref = self.pool.get_page(self.smgr, self.dev, self.rel, 0)?;
        let _order = crate::lock::order::token(crate::lock::order::BTREE_PAGE);
        let mut meta = meta_ref.write();
        let data = meta.data_mut();
        let sp = page::special_mut(data);
        sp[4..12].copy_from_slice(&root.to_le_bytes());
        self.log_image(data, 0)?;
        Ok(())
    }

    /// Descends from the root to the leaf that should contain `key`,
    /// returning the leaf block and the path of internal blocks walked.
    fn descend(&self, key: &[Datum]) -> DbResult<(u64, Vec<u64>)> {
        let mut blk = self.root()?;
        let mut path = Vec::new();
        loop {
            let pref = self.pool.get_page(self.smgr, self.dev, self.rel, blk)?;
            let _order = crate::lock::order::token(crate::lock::order::BTREE_PAGE);
            let pbuf = pref.read();
            let data = pbuf.data();
            let meta = read_node_meta(data)?;
            if meta.leaf {
                return Ok((blk, path));
            }
            // Find the last child whose fence key is strictly below `key`
            // (strict, so that duplicates equal to a fence are found in the
            // left sibling too); default to the first child when every fence
            // is >= key.
            let n = page::nslots(data);
            let mut child: Option<u64> = None;
            for s in 0..n {
                let Some(item) = page::item(data, s) else {
                    continue;
                };
                let (k, payload) = decode_item(item)?;
                if cmp_keys(&k, key) != Ordering::Less {
                    break;
                }
                child = Some(crate::bytes::le_u64(payload, 0)?);
            }
            let next = match child {
                Some(c) => c,
                None => {
                    // Key below all fences: take the first live child.
                    let mut first = None;
                    for s in 0..n {
                        if let Some(item) = page::item(data, s) {
                            let (_, payload) = decode_item(item)?;
                            first = Some(crate::bytes::le_u64(payload, 0)?);
                            break;
                        }
                    }
                    first
                        .ok_or_else(|| DbError::Corrupt("internal node with no children".into()))?
                }
            };
            path.push(blk);
            blk = next;
        }
    }

    /// Inserts `(key, tid)`. Duplicate keys are allowed.
    pub fn insert(&self, key: &[Datum], tid: Tid) -> DbResult<()> {
        self.stats.btree.inserts.bump();
        let item = encode_item(key, &tid.encode());
        let (leaf, path) = self.descend(key)?;
        self.insert_into_node(leaf, path, key, &item)
    }

    /// Inserts an encoded item into a node, splitting upward as needed.
    fn insert_into_node(
        &self,
        blk: u64,
        mut path: Vec<u64>,
        key: &[Datum],
        item: &[u8],
    ) -> DbResult<()> {
        let pref = self.pool.get_page(self.smgr, self.dev, self.rel, blk)?;
        let _order = crate::lock::order::token(crate::lock::order::BTREE_PAGE);
        let mut pbuf = pref.write();
        let data = pbuf.data_mut();
        if page::fits(data, item.len()) {
            match Self::insert_sorted(data, key, item)? {
                Sorted::Appended(slot) => self.log_append(data, blk, slot, item)?,
                Sorted::Rewrote => self.log_image(data, blk)?,
            }
            return Ok(());
        }
        // Split: collect all items (plus the new one) in key order, keep the
        // lower half here, move the upper half to a fresh right sibling.
        self.stats.btree.splits.bump();
        let meta = read_node_meta(data)?;
        let mut items: Vec<(Key, Vec<u8>)> = Vec::with_capacity(page::nslots(data) as usize + 1);
        for (_, it) in page::iter(data) {
            let (k, _) = decode_item(it)?;
            items.push((k, it.to_vec()));
        }
        let pos = items.partition_point(|(k, _)| cmp_keys(k, key) != Ordering::Greater);
        items.insert(pos, (key.to_vec(), item.to_vec()));
        let mid = items.len() / 2;

        let (right_blk, right_ref) = self.pool.new_page(self.smgr, self.dev, self.rel)?;
        let _order = crate::lock::order::token(crate::lock::order::BTREE_PAGE);
        let mut right = right_ref.write();
        let rdata = right.data_mut();
        page::init(rdata, SPECIAL_SIZE);
        write_node_meta(
            rdata,
            &NodeMeta {
                leaf: meta.leaf,
                right: meta.right,
            },
        );
        for (_, it) in &items[mid..] {
            page::insert(rdata, it)?;
        }
        self.log_image(rdata, right_blk)?;
        let split_key = items[mid].0.clone();

        // Rewrite the left node with the lower half.
        page::init(data, SPECIAL_SIZE);
        write_node_meta(
            data,
            &NodeMeta {
                leaf: meta.leaf,
                right: right_blk,
            },
        );
        for (_, it) in &items[..mid] {
            page::insert(data, it)?;
        }
        self.log_image(data, blk)?;
        drop(pbuf);
        drop(right);

        // Propagate the fence for the new right node.
        let fence = encode_item(&split_key, &right_blk.to_le_bytes());
        match path.pop() {
            Some(parent) => self.insert_into_node(parent, path, &split_key, &fence),
            None => {
                // Splitting the root: make a new root over both halves.
                let (new_root, root_ref) = self.pool.new_page(self.smgr, self.dev, self.rel)?;
                let _order = crate::lock::order::token(crate::lock::order::BTREE_PAGE);
                let mut root = root_ref.write();
                let rdata = root.data_mut();
                page::init(rdata, SPECIAL_SIZE);
                write_node_meta(
                    rdata,
                    &NodeMeta {
                        leaf: false,
                        right: 0,
                    },
                );
                // Left fence: an empty key sorts before everything real.
                let left_fence = encode_item(&[], &blk.to_le_bytes());
                page::insert(rdata, &left_fence)?;
                page::insert(rdata, &fence)?;
                self.log_image(rdata, new_root)?;
                drop(root);
                self.set_root(new_root)
            }
        }
    }

    /// Inserts `item` into a node page, keeping slot order sorted by key.
    ///
    /// Slotted pages append items; to preserve sorted order under arbitrary
    /// interleavings we rewrite the page when the insertion point is not at
    /// the end. Pages are 8 KB and in cache, so this is a memcpy, not I/O.
    fn insert_sorted(data: &mut [u8], key: &[Datum], item: &[u8]) -> DbResult<Sorted> {
        let n = page::nslots(data);
        let mut at_end = true;
        for s in (0..n).rev() {
            // Compare against the last *live* item; a dead trailing slot
            // must not mask an ordering violation.
            if let Some(last) = page::item(data, s) {
                let (k, _) = decode_item(last)?;
                if cmp_keys(&k, key) == Ordering::Greater {
                    at_end = false;
                }
                break;
            }
        }
        if at_end {
            let slot = page::insert(data, item)?;
            return Ok(Sorted::Appended(slot));
        }
        let meta = read_node_meta(data)?;
        let mut items: Vec<(Key, Vec<u8>)> = Vec::with_capacity(n as usize + 1);
        for (_, it) in page::iter(data) {
            let (k, _) = decode_item(it)?;
            items.push((k, it.to_vec()));
        }
        let pos = items.partition_point(|(k, _)| cmp_keys(k, key) != Ordering::Greater);
        items.insert(pos, (key.to_vec(), item.to_vec()));
        page::init(data, SPECIAL_SIZE);
        write_node_meta(data, &meta);
        for (_, it) in &items {
            page::insert(data, it)?;
        }
        Ok(Sorted::Rewrote)
    }

    /// Structurally verifies the whole tree, returning findings plus every
    /// live leaf entry (for the caller's heap cross-reference).
    ///
    /// Checked invariants: the meta page is sane and points at a real root;
    /// every node passes [`page::verify`]; levels are uniform (no leaf mixed
    /// into an internal level); keys are nondecreasing within each node
    /// *and* across each level's sibling chain; sibling links terminate
    /// without cycles; internal payloads are valid child pointers and leaf
    /// payloads are valid tuple ids.
    pub fn check(&self, name: &str) -> (Vec<crate::check::Finding>, Vec<(Key, Tid)>) {
        use crate::check::Finding;
        let mut out = Vec::new();
        let mut entries = Vec::new();
        let nblocks = match self.smgr.with(self.dev, |m| m.nblocks(self.rel)) {
            Ok(n) => n,
            Err(e) => {
                out.push(Finding::new(
                    name,
                    "check-error",
                    format!("cannot size index: {e}"),
                ));
                return (out, entries);
            }
        };
        if nblocks == 0 {
            out.push(Finding::new(name, "btree-meta", "index has no meta page"));
            return (out, entries);
        }
        let root = match self.root() {
            Ok(r) => r,
            Err(e) => {
                out.push(Finding::new(name, "btree-meta", e.to_string()).on_page(0));
                return (out, entries);
            }
        };
        if root == 0 || root >= nblocks {
            out.push(
                Finding::new(
                    name,
                    "btree-root-range",
                    format!("root block {root} outside [1, {nblocks})"),
                )
                .on_page(0),
            );
            return (out, entries);
        }
        let mut visited = std::collections::HashSet::new();
        let mut level_start = root;
        for _depth in 0..64 {
            // Walk one level left-to-right along the sibling chain, then
            // descend to the first node's first child.
            let mut blk = level_start;
            let mut level_leaf: Option<bool> = None;
            let mut next_level: Option<u64> = None;
            let mut prev_key: Option<Key> = None;
            let mut first_node = true;
            'chain: while blk != 0 {
                if blk >= nblocks {
                    out.push(Finding::new(
                        name,
                        "btree-link-range",
                        format!("sibling/child link to block {blk} outside [1, {nblocks})"),
                    ));
                    break 'chain;
                }
                if !visited.insert(blk) {
                    out.push(
                        Finding::new(
                            name,
                            "btree-link-cycle",
                            format!("block {blk} reached twice"),
                        )
                        .on_page(blk),
                    );
                    break 'chain;
                }
                let pref = match self.pool.get_page(self.smgr, self.dev, self.rel, blk) {
                    Ok(p) => p,
                    Err(e) => {
                        out.push(
                            Finding::new(name, "check-error", format!("node unreadable: {e}"))
                                .on_page(blk),
                        );
                        break 'chain;
                    }
                };
                let _order = crate::lock::order::token(crate::lock::order::BTREE_PAGE);
                let pbuf = pref.read();
                let data = pbuf.data();
                if !page::is_initialized(data) {
                    out.push(
                        Finding::new(name, "btree-uninitialized-node", "linked node is blank")
                            .on_page(blk),
                    );
                    break 'chain;
                }
                for v in page::verify(data) {
                    out.push(Finding::new(name, "page-invariant", v).on_page(blk));
                }
                let meta = match read_node_meta(data) {
                    Ok(m) => m,
                    Err(e) => {
                        out.push(
                            Finding::new(name, "btree-node-meta", e.to_string()).on_page(blk),
                        );
                        break 'chain;
                    }
                };
                match level_leaf {
                    None => level_leaf = Some(meta.leaf),
                    Some(l) if l != meta.leaf => {
                        out.push(
                            Finding::new(
                                name,
                                "btree-mixed-level",
                                "leaf and internal nodes on one level",
                            )
                            .on_page(blk),
                        );
                        break 'chain;
                    }
                    Some(_) => {}
                }
                for slot in 0..page::nslots(data) {
                    let Some(item) = page::item(data, slot) else {
                        continue; // Dead (lazily deleted) or reported by verify.
                    };
                    let (key, payload) = match decode_item(item) {
                        Ok(kp) => kp,
                        Err(e) => {
                            out.push(
                                Finding::new(name, "btree-item-undecodable", e.to_string())
                                    .on_page(blk)
                                    .on_slot(slot),
                            );
                            continue;
                        }
                    };
                    if let Some(prev) = &prev_key {
                        if cmp_keys(prev, &key) == Ordering::Greater {
                            out.push(
                                Finding::new(
                                    name,
                                    "btree-key-order",
                                    format!("key {key:?} sorts before its predecessor {prev:?}"),
                                )
                                .on_page(blk)
                                .on_slot(slot),
                            );
                        }
                    }
                    prev_key = Some(key.clone());
                    if meta.leaf {
                        match Tid::decode(payload) {
                            Some(tid) => entries.push((key, tid)),
                            None => out.push(
                                Finding::new(
                                    name,
                                    "btree-bad-leaf-payload",
                                    format!("{} payload bytes, want 6", payload.len()),
                                )
                                .on_page(blk)
                                .on_slot(slot),
                            ),
                        }
                    } else {
                        match crate::bytes::le_u64(payload, 0) {
                            Ok(child) => {
                                if child == 0 || child >= nblocks {
                                    out.push(
                                        Finding::new(
                                            name,
                                            "btree-link-range",
                                            format!(
                                                "child pointer {child} outside [1, {nblocks})"
                                            ),
                                        )
                                        .on_page(blk)
                                        .on_slot(slot),
                                    );
                                } else if first_node && next_level.is_none() {
                                    next_level = Some(child);
                                }
                            }
                            Err(_) => out.push(
                                Finding::new(
                                    name,
                                    "btree-bad-child-payload",
                                    format!("{} payload bytes, want 8", payload.len()),
                                )
                                .on_page(blk)
                                .on_slot(slot),
                            ),
                        }
                    }
                }
                first_node = false;
                blk = meta.right;
            }
            match (level_leaf, next_level) {
                (Some(true), _) | (None, _) => return (out, entries),
                (Some(false), Some(next)) => level_start = next,
                (Some(false), None) => {
                    out.push(Finding::new(
                        name,
                        "btree-no-children",
                        "internal level has no usable child pointer",
                    ));
                    return (out, entries);
                }
            }
        }
        out.push(Finding::new(
            name,
            "btree-depth",
            "tree deeper than 64 levels (probable pointer loop)",
        ));
        (out, entries)
    }

    /// Returns every tuple id stored under exactly `key`.
    pub fn search(&self, key: &[Datum]) -> DbResult<Vec<Tid>> {
        let mut out = Vec::new();
        self.scan(Some(key), Some(key), |_, tid| {
            out.push(tid);
            Ok(true)
        })?;
        Ok(out)
    }

    /// Scans keys in `[lo, hi]` (both inclusive; `None` = unbounded),
    /// calling `f(key, tid)` in key order. `f` returns `false` to stop.
    pub fn scan(
        &self,
        lo: Option<&[Datum]>,
        hi: Option<&[Datum]>,
        mut f: impl FnMut(&[Datum], Tid) -> DbResult<bool>,
    ) -> DbResult<()> {
        self.stats.btree.searches.bump();
        let mut blk = match lo {
            Some(k) => self.descend(k)?.0,
            None => {
                // Walk down the leftmost spine.
                let mut b = self.root()?;
                loop {
                    let pref = self.pool.get_page(self.smgr, self.dev, self.rel, b)?;
                    let _order = crate::lock::order::token(crate::lock::order::BTREE_PAGE);
                    let pbuf = pref.read();
                    let data = pbuf.data();
                    let meta = read_node_meta(data)?;
                    if meta.leaf {
                        break b;
                    }
                    let mut first = None;
                    for s in 0..page::nslots(data) {
                        if let Some(item) = page::item(data, s) {
                            let (_, payload) = decode_item(item)?;
                            first = Some(crate::bytes::le_u64(payload, 0)?);
                            break;
                        }
                    }
                    b = first
                        .ok_or_else(|| DbError::Corrupt("internal node with no children".into()))?;
                }
            }
        };
        loop {
            let pref = self.pool.get_page(self.smgr, self.dev, self.rel, blk)?;
            let mut hits = Vec::new();
            let right;
            let mut past_hi = false;
            {
                let _order = crate::lock::order::token(crate::lock::order::BTREE_PAGE);
                let pbuf = pref.read();
                let data = pbuf.data();
                let meta = read_node_meta(data)?;
                right = meta.right;
                for (_, item) in page::iter(data) {
                    let (k, payload) = decode_item(item)?;
                    if let Some(lo) = lo {
                        if cmp_keys(&k, lo) == Ordering::Less {
                            continue;
                        }
                    }
                    if let Some(hi) = hi {
                        if cmp_keys(&k, hi) == Ordering::Greater {
                            past_hi = true;
                            break;
                        }
                    }
                    let tid = Tid::decode(payload)
                        .ok_or_else(|| DbError::Corrupt("bad tid in leaf".into()))?;
                    hits.push((k, tid));
                }
            }
            // The callback fetches heap pages, so it must run with the
            // btree latch released (heap-page ranks below btree-page).
            if !Self::drain(&mut hits, &mut f)? || past_hi || right == 0 {
                return Ok(());
            }
            blk = right;
        }
    }

    fn drain(
        hits: &mut Vec<(Key, Tid)>,
        f: &mut impl FnMut(&[Datum], Tid) -> DbResult<bool>,
    ) -> DbResult<bool> {
        for (k, tid) in hits.drain(..) {
            if !f(&k, tid)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Removes the entry `(key, tid)` if present; returns whether it was.
    pub fn delete(&self, key: &[Datum], tid: Tid) -> DbResult<bool> {
        let (mut blk, _) = self.descend(key)?;
        loop {
            let pref = self.pool.get_page(self.smgr, self.dev, self.rel, blk)?;
            let _order = crate::lock::order::token(crate::lock::order::BTREE_PAGE);
            let mut pbuf = pref.write();
            let data = pbuf.data_mut();
            let meta = read_node_meta(data)?;
            let mut past = false;
            for s in 0..page::nslots(data) {
                let Some(item) = page::item(data, s) else {
                    continue;
                };
                let (k, payload) = decode_item(item)?;
                match cmp_keys(&k, key) {
                    Ordering::Less => continue,
                    Ordering::Greater => {
                        past = true;
                        break;
                    }
                    Ordering::Equal => {
                        if Tid::decode(payload) == Some(tid) {
                            page::set_dead(data, s)?;
                            self.log_image(data, blk)?;
                            return Ok(true);
                        }
                    }
                }
            }
            if past || meta.right == 0 {
                return Ok(false);
            }
            blk = meta.right;
        }
    }

    /// Total live entries (walks every leaf; for tests and vacuum stats).
    pub fn len(&self) -> DbResult<usize> {
        let mut n = 0;
        self.scan(None, None, |_, _| {
            n += 1;
            Ok(true)
        })?;
        Ok(n)
    }

    /// Whether the index has no live entries.
    pub fn is_empty(&self) -> DbResult<bool> {
        Ok(self.len()? == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Oid;
    use crate::smgr::{shared_device, GenericManager};
    use simdev::{DiskProfile, MagneticDisk, SimClock};

    struct Fixture {
        pool: BufferPool,
        smgr: Smgr,
        rel: RelId,
        stats: StatsRegistry,
    }

    impl Fixture {
        fn new() -> Fixture {
            let clock = SimClock::new();
            let dev = shared_device(MagneticDisk::new(
                "d",
                clock,
                DiskProfile::tiny_for_tests(65536),
            ));
            let mut smgr = Smgr::new();
            smgr.register(
                DeviceId::DEFAULT,
                Box::new(GenericManager::format(dev).unwrap()),
            )
            .unwrap();
            let rel = Oid(60);
            smgr.with(DeviceId::DEFAULT, |m| m.create_rel(rel)).unwrap();
            let fx = Fixture {
                pool: BufferPool::new(64),
                smgr,
                rel,
                stats: StatsRegistry::new(),
            };
            fx.btree().create().unwrap();
            fx
        }

        fn btree(&self) -> BTree<'_> {
            BTree {
                wal: None,
                pool: &self.pool,
                smgr: &self.smgr,
                dev: DeviceId::DEFAULT,
                rel: self.rel,
                stats: &self.stats,
            }
        }
    }

    fn ikey(n: i32) -> Key {
        vec![Datum::Int4(n)]
    }

    #[test]
    fn empty_tree_finds_nothing() {
        let fx = Fixture::new();
        let bt = fx.btree();
        assert!(bt.search(&ikey(5)).unwrap().is_empty());
        assert!(bt.is_empty().unwrap());
    }

    #[test]
    fn insert_and_point_lookup() {
        let fx = Fixture::new();
        let bt = fx.btree();
        for i in 0..100 {
            bt.insert(&ikey(i), Tid::new(i as u32, 0)).unwrap();
        }
        for i in 0..100 {
            let hits = bt.search(&ikey(i)).unwrap();
            assert_eq!(hits, vec![Tid::new(i as u32, 0)], "key {i}");
        }
        assert!(bt.search(&ikey(100)).unwrap().is_empty());
        assert_eq!(bt.len().unwrap(), 100);
    }

    #[test]
    fn survives_many_splits_sequential() {
        let fx = Fixture::new();
        let bt = fx.btree();
        let n = 5000;
        for i in 0..n {
            bt.insert(&ikey(i), Tid::new(i as u32, (i % 7) as u16))
                .unwrap();
        }
        assert_eq!(bt.len().unwrap(), n as usize);
        for i in (0..n).step_by(97) {
            assert_eq!(
                bt.search(&ikey(i)).unwrap(),
                vec![Tid::new(i as u32, (i % 7) as u16)]
            );
        }
    }

    #[test]
    fn survives_many_splits_random_order() {
        let fx = Fixture::new();
        let bt = fx.btree();
        // Deterministic pseudo-random permutation of 0..4000.
        let n = 4000u32;
        let mut keys: Vec<u32> = (0..n).map(|i| i.wrapping_mul(2654435761) % n).collect();
        keys.sort_unstable();
        keys.dedup();
        let inserted = keys.clone();
        for &k in &inserted {
            bt.insert(&ikey(k as i32), Tid::new(k, 1)).unwrap();
        }
        for &k in inserted.iter().step_by(53) {
            assert_eq!(bt.search(&ikey(k as i32)).unwrap(), vec![Tid::new(k, 1)]);
        }
        assert_eq!(bt.len().unwrap(), inserted.len());
    }

    #[test]
    fn op_counters_track_inserts_searches_splits() {
        let fx = Fixture::new();
        let bt = fx.btree();
        for i in 0..2000 {
            bt.insert(&ikey(i), Tid::new(i as u32, 0)).unwrap();
        }
        assert_eq!(fx.stats.btree.inserts.get(), 2000);
        assert!(fx.stats.btree.splits.get() > 0, "2000 keys must split");
        let before = fx.stats.btree.searches.get();
        bt.search(&ikey(7)).unwrap();
        assert_eq!(fx.stats.btree.searches.get(), before + 1);
    }

    #[test]
    fn duplicates_all_returned() {
        let fx = Fixture::new();
        let bt = fx.btree();
        for v in 0..20u16 {
            bt.insert(&ikey(7), Tid::new(100, v)).unwrap();
        }
        bt.insert(&ikey(6), Tid::new(1, 0)).unwrap();
        bt.insert(&ikey(8), Tid::new(2, 0)).unwrap();
        let hits = bt.search(&ikey(7)).unwrap();
        assert_eq!(hits.len(), 20);
    }

    #[test]
    fn duplicates_across_page_splits() {
        let fx = Fixture::new();
        let bt = fx.btree();
        // Enough duplicates of one key to span several leaves.
        for v in 0..2000u32 {
            bt.insert(&ikey(42), Tid::new(v, 0)).unwrap();
        }
        assert_eq!(bt.search(&ikey(42)).unwrap().len(), 2000);
        assert!(bt.search(&ikey(41)).unwrap().is_empty());
        assert!(bt.search(&ikey(43)).unwrap().is_empty());
    }

    #[test]
    fn range_scan_in_order() {
        let fx = Fixture::new();
        let bt = fx.btree();
        for i in (0..1000).rev() {
            bt.insert(&ikey(i), Tid::new(i as u32, 0)).unwrap();
        }
        let mut seen = Vec::new();
        bt.scan(Some(&ikey(100)), Some(&ikey(199)), |k, _| {
            seen.push(k[0].as_int().unwrap());
            Ok(true)
        })
        .unwrap();
        assert_eq!(seen.len(), 100);
        assert!(seen.windows(2).all(|w| w[0] <= w[1]), "sorted order");
        assert_eq!(*seen.first().unwrap(), 100);
        assert_eq!(*seen.last().unwrap(), 199);
    }

    #[test]
    fn unbounded_scans() {
        let fx = Fixture::new();
        let bt = fx.btree();
        for i in 0..50 {
            bt.insert(&ikey(i), Tid::new(i as u32, 0)).unwrap();
        }
        let mut below = Vec::new();
        bt.scan(None, Some(&ikey(9)), |k, _| {
            below.push(k[0].as_int().unwrap());
            Ok(true)
        })
        .unwrap();
        assert_eq!(below, (0..10).collect::<Vec<_>>());
        let mut above = Vec::new();
        bt.scan(Some(&ikey(45)), None, |k, _| {
            above.push(k[0].as_int().unwrap());
            Ok(true)
        })
        .unwrap();
        assert_eq!(above, (45..50).collect::<Vec<_>>());
    }

    #[test]
    fn scan_early_stop() {
        let fx = Fixture::new();
        let bt = fx.btree();
        for i in 0..100 {
            bt.insert(&ikey(i), Tid::new(i as u32, 0)).unwrap();
        }
        let mut n = 0;
        bt.scan(None, None, |_, _| {
            n += 1;
            Ok(n < 5)
        })
        .unwrap();
        assert_eq!(n, 5);
    }

    #[test]
    fn delete_specific_entry_among_duplicates() {
        let fx = Fixture::new();
        let bt = fx.btree();
        for v in 0..5u16 {
            bt.insert(&ikey(7), Tid::new(1, v)).unwrap();
        }
        assert!(bt.delete(&ikey(7), Tid::new(1, 2)).unwrap());
        let hits = bt.search(&ikey(7)).unwrap();
        assert_eq!(hits.len(), 4);
        assert!(!hits.contains(&Tid::new(1, 2)));
        // Deleting again: not found.
        assert!(!bt.delete(&ikey(7), Tid::new(1, 2)).unwrap());
        assert!(!bt.delete(&ikey(99), Tid::new(0, 0)).unwrap());
    }

    #[test]
    fn composite_keys() {
        let fx = Fixture::new();
        let bt = fx.btree();
        let key = |p: u32, name: &str| vec![Datum::Oid(p), Datum::Text(name.into())];
        bt.insert(&key(810, "passwd"), Tid::new(1, 0)).unwrap();
        bt.insert(&key(810, "group"), Tid::new(2, 0)).unwrap();
        bt.insert(&key(811, "passwd"), Tid::new(3, 0)).unwrap();
        assert_eq!(
            bt.search(&key(810, "passwd")).unwrap(),
            vec![Tid::new(1, 0)]
        );
        assert_eq!(bt.search(&key(810, "group")).unwrap(), vec![Tid::new(2, 0)]);
        // Prefix range scan over parent 810.
        let mut names = Vec::new();
        bt.scan(
            Some(&[Datum::Oid(810)]),
            Some(&[Datum::Oid(810), Datum::Text("\u{10FFFF}".into())]),
            |k, _| {
                names.push(k[1].as_text().unwrap().to_string());
                Ok(true)
            },
        )
        .unwrap();
        assert_eq!(names, vec!["group", "passwd"]);
    }

    #[test]
    fn text_keys_sort_lexicographically() {
        let fx = Fixture::new();
        let bt = fx.btree();
        for name in ["zebra", "alpha", "monkey", "aardvark"] {
            bt.insert(&[Datum::Text(name.into())], Tid::new(0, 0))
                .unwrap();
        }
        let mut seen = Vec::new();
        bt.scan(None, None, |k, _| {
            seen.push(k[0].as_text().unwrap().to_string());
            Ok(true)
        })
        .unwrap();
        assert_eq!(seen, vec!["aardvark", "alpha", "monkey", "zebra"]);
    }

    #[test]
    fn interleaved_insert_search_delete() {
        let fx = Fixture::new();
        let bt = fx.btree();
        let mut live = std::collections::HashSet::new();
        for round in 0..1000u32 {
            let k = (round * 37) % 257;
            if round % 3 == 2 && live.contains(&k) {
                assert!(bt.delete(&ikey(k as i32), Tid::new(k, 0)).unwrap());
                live.remove(&k);
            } else if !live.contains(&k) {
                bt.insert(&ikey(k as i32), Tid::new(k, 0)).unwrap();
                live.insert(k);
            }
        }
        for k in 0..257u32 {
            let hits = bt.search(&ikey(k as i32)).unwrap();
            assert_eq!(hits.len(), usize::from(live.contains(&k)), "key {k}");
        }
    }
}
