//! Identifier newtypes shared across the engine.

use std::fmt;

/// An object identifier, as POSTGRES `oid`. Identifies relations, types,
/// functions, and — in Inversion — files.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Oid(pub u32);

impl Oid {
    /// The invalid oid.
    pub const INVALID: Oid = Oid(0);

    /// Whether this oid is valid.
    pub fn is_valid(self) -> bool {
        self.0 != 0
    }
}

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A relation identifier (a kind of [`Oid`]).
pub type RelId = Oid;

/// A transaction identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct XactId(pub u32);

impl XactId {
    /// The invalid transaction id (used as "no xmax").
    pub const INVALID: XactId = XactId(0);
    /// The bootstrap transaction: always committed, at the epoch.
    pub const FROZEN: XactId = XactId(1);

    /// Whether this id refers to a real transaction.
    pub fn is_valid(self) -> bool {
        self.0 != 0
    }
}

impl fmt::Display for XactId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A device identifier in the device manager switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceId(pub u8);

impl DeviceId {
    /// The default device (where catalogs and unplaced tables live).
    pub const DEFAULT: DeviceId = DeviceId(0);
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dev{}", self.0)
    }
}

/// A tuple identifier: page number within the relation plus slot on the page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tid {
    /// Logical page number within the relation.
    pub blkno: u32,
    /// Slot number on that page.
    pub slot: u16,
}

impl Tid {
    /// Creates a tuple id.
    pub fn new(blkno: u32, slot: u16) -> Self {
        Tid { blkno, slot }
    }

    /// Packs into 6 bytes for index payloads.
    pub fn encode(self) -> [u8; 6] {
        let mut out = [0u8; 6];
        out[..4].copy_from_slice(&self.blkno.to_le_bytes());
        out[4..].copy_from_slice(&self.slot.to_le_bytes());
        out
    }

    /// Unpacks from [`Tid::encode`] output.
    pub fn decode(buf: &[u8]) -> Option<Tid> {
        if buf.len() < 6 {
            return None;
        }
        Some(Tid {
            blkno: u32::from_le_bytes(buf[..4].try_into().ok()?),
            slot: u16::from_le_bytes(buf[4..6].try_into().ok()?),
        })
    }
}

impl fmt::Display for Tid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.blkno, self.slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tid_roundtrips() {
        let t = Tid::new(123456, 789);
        assert_eq!(Tid::decode(&t.encode()), Some(t));
        assert_eq!(Tid::decode(&[0u8; 3]), None);
    }

    #[test]
    fn validity() {
        assert!(!Oid::INVALID.is_valid());
        assert!(Oid(5).is_valid());
        assert!(!XactId::INVALID.is_valid());
        assert!(XactId::FROZEN.is_valid());
    }

    #[test]
    fn displays() {
        assert_eq!(Oid(7).to_string(), "7");
        assert_eq!(XactId(9).to_string(), "x9");
        assert_eq!(DeviceId(2).to_string(), "dev2");
        assert_eq!(Tid::new(1, 2).to_string(), "(1, 2)");
    }
}
