//! The plan tree: a physical description of how a bound statement will
//! run, produced by the optimizer and consumed by the volcano executor.
//!
//! Every node reads like one line of `EXPLAIN` output; [`Plan::render`]
//! walks the tree in preorder, which is also the order the executor
//! reports per-node row counts in for `EXPLAIN ANALYZE`.

use crate::datum::{Datum, Schema};
use crate::ids::RelId;

use super::ast::{Expr, Target};
use super::parser::expr_to_source;

/// How a scan node reaches its rows.
#[derive(Debug, Clone)]
pub enum Access {
    /// Read every visible tuple of the heap.
    Seq,
    /// Probe a B-tree index for one key.
    IndexEq {
        /// The index relation.
        index: RelId,
        /// Its catalog name (for display).
        index_name: String,
        /// Indexed column position in the table schema.
        col: usize,
        /// The probe key, already coerced to the column type.
        key: Datum,
    },
    /// Walk a B-tree index between two keys (inclusive superset of the
    /// predicate's range; strict bounds are re-checked by the scan filter).
    IndexRange {
        /// The index relation.
        index: RelId,
        /// Its catalog name (for display).
        index_name: String,
        /// Indexed column position in the table schema.
        col: usize,
        /// Lower bound, if any.
        lo: Option<Datum>,
        /// Upper bound, if any.
        hi: Option<Datum>,
    },
    /// Materialize a virtual system relation (`pg_stat_*`).
    Virtual,
}

/// A scan leaf: one range variable's row source plus any pushed-down
/// filter conjuncts.
#[derive(Debug, Clone)]
pub struct ScanPlan {
    /// The range variable this scan feeds.
    pub var: String,
    /// Relation name (for display).
    pub rel_name: String,
    /// Heap relation id (`None` for virtual relations).
    pub rel: Option<RelId>,
    /// The relation's schema.
    pub schema: Schema,
    /// Time-travel bracket, evaluated when the scan opens.
    pub as_of: Option<Expr>,
    /// The access method the optimizer chose.
    pub access: Access,
    /// Conjuncts pushed below the join, evaluated per scanned row.
    pub filter: Option<Expr>,
    /// Heap pages, the cost model's cardinality input.
    pub est_pages: u64,
    /// Estimated output rows.
    pub est_rows: f64,
    /// Estimated cost in page-read units.
    pub est_cost: f64,
}

/// A physical plan node.
#[derive(Debug, Clone)]
pub enum Plan {
    /// Leaf scan (boxed: `ScanPlan` dwarfs every other variant).
    Scan(Box<ScanPlan>),
    /// Nested-loop join; `inner` is rewound per outer tuple.
    NestLoop {
        /// Outer (driving) input.
        outer: Box<Plan>,
        /// Inner (rewound) input.
        inner: Box<Plan>,
        /// Estimated output rows.
        est_rows: f64,
    },
    /// Residual qualification above the joins.
    Filter {
        /// The predicate.
        qual: Expr,
        /// Input node.
        child: Box<Plan>,
    },
    /// Per-tuple target evaluation.
    Project {
        /// The projection list.
        targets: Vec<Target>,
        /// Input node.
        child: Box<Plan>,
    },
    /// Blocking aggregation (plain or implicitly grouped).
    Aggregate {
        /// The projection list (aggregates plus group keys).
        targets: Vec<Target>,
        /// Group by the non-aggregate targets.
        grouped: bool,
        /// Input node.
        child: Box<Plan>,
    },
    /// A single constant row (`retrieve` with no `from` clause).
    ConstRow {
        /// The projection list.
        targets: Vec<Target>,
    },
    /// Stable sort of the full result.
    Sort {
        /// `(output column, descending)` keys.
        keys: Vec<(String, bool)>,
        /// Input node.
        child: Box<Plan>,
    },
    /// Keep the first `n` rows.
    Limit {
        /// The cap.
        n: u64,
        /// Input node.
        child: Box<Plan>,
    },
    /// `retrieve into`: create a table from the result.
    Materialize {
        /// New table name.
        into: String,
        /// Input node.
        child: Box<Plan>,
    },
    /// `append` root.
    Append {
        /// Target relation.
        rel: RelId,
        /// Its catalog name.
        rel_name: String,
        /// Its schema.
        schema: Schema,
        /// `(column index, value expression)` assignments.
        values: Vec<(usize, Expr)>,
    },
    /// `delete` root: drains the child, then deletes the collected tids.
    Delete {
        /// Target relation.
        rel: RelId,
        /// Its catalog name.
        rel_name: String,
        /// Input scan (possibly filtered).
        child: Box<Plan>,
    },
    /// `replace` root: drains the child, then applies the assignments.
    Replace {
        /// Target relation.
        rel: RelId,
        /// Its catalog name.
        rel_name: String,
        /// Its schema.
        schema: Schema,
        /// `(column index, value expression)` assignments.
        values: Vec<(usize, Expr)>,
        /// Input scan (possibly filtered).
        child: Box<Plan>,
    },
}

impl Plan {
    /// Estimated output rows of this node.
    pub fn est_rows(&self) -> f64 {
        match self {
            Plan::Scan(s) => s.est_rows,
            Plan::NestLoop { est_rows, .. } => *est_rows,
            Plan::Filter { child, .. }
            | Plan::Sort { child, .. }
            | Plan::Materialize { child, .. }
            | Plan::Project { child, .. } => child.est_rows(),
            Plan::Aggregate { .. } | Plan::ConstRow { .. } | Plan::Append { .. } => 1.0,
            Plan::Limit { n, child } => child.est_rows().min(*n as f64),
            Plan::Delete { child, .. } | Plan::Replace { child, .. } => child.est_rows(),
        }
    }

    /// Renders the tree as indented `EXPLAIN` text. With `actuals` (per-node
    /// row counts in preorder, from an `analyze` run) each line gains an
    /// `(rows=N)` annotation.
    pub fn render(&self, actuals: Option<&[u64]>) -> String {
        let mut out = String::new();
        let mut idx = 0usize;
        self.render_into(&mut out, 0, actuals, &mut idx);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize, actuals: Option<&[u64]>, idx: &mut usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        if depth > 0 {
            out.push_str("-> ");
        }
        out.push_str(&self.node_line());
        if let Some(counts) = actuals {
            let n = counts.get(*idx).copied().unwrap_or(0);
            out.push_str(&format!(" (rows={n})"));
        }
        *idx += 1;
        out.push('\n');
        match self {
            Plan::Scan(_) | Plan::ConstRow { .. } | Plan::Append { .. } => {}
            Plan::NestLoop { outer, inner, .. } => {
                outer.render_into(out, depth + 1, actuals, idx);
                inner.render_into(out, depth + 1, actuals, idx);
            }
            Plan::Filter { child, .. }
            | Plan::Project { child, .. }
            | Plan::Aggregate { child, .. }
            | Plan::Sort { child, .. }
            | Plan::Limit { child, .. }
            | Plan::Materialize { child, .. }
            | Plan::Delete { child, .. }
            | Plan::Replace { child, .. } => child.render_into(out, depth + 1, actuals, idx),
        }
    }

    fn node_line(&self) -> String {
        match self {
            Plan::Scan(s) => s.node_line(),
            Plan::NestLoop { est_rows, .. } => {
                format!("Nested Loop (est_rows={})", round(*est_rows))
            }
            Plan::Filter { qual, .. } => format!("Filter {}", expr_to_source(qual)),
            Plan::Project { targets, .. } => format!("Project ({})", target_names(targets)),
            Plan::Aggregate {
                targets, grouped, ..
            } => {
                let kind = if *grouped { "GroupAggregate" } else { "Aggregate" };
                format!("{kind} ({})", target_names(targets))
            }
            Plan::ConstRow { targets } => format!("Result ({})", target_names(targets)),
            Plan::Sort { keys, .. } => {
                let keys: Vec<String> = keys
                    .iter()
                    .map(|(k, desc)| {
                        if *desc {
                            format!("{k} desc")
                        } else {
                            k.clone()
                        }
                    })
                    .collect();
                format!("Sort ({})", keys.join(", "))
            }
            Plan::Limit { n, .. } => format!("Limit {n}"),
            Plan::Materialize { into, .. } => format!("Materialize into {into}"),
            Plan::Append {
                rel_name,
                schema,
                values,
                ..
            } => {
                let cols: Vec<&str> = values
                    .iter()
                    .map(|(i, _)| schema.columns[*i].name.as_str())
                    .collect();
                format!("Append on {rel_name} ({})", cols.join(", "))
            }
            Plan::Delete { rel_name, .. } => format!("Delete on {rel_name}"),
            Plan::Replace {
                rel_name,
                schema,
                values,
                ..
            } => {
                let cols: Vec<&str> = values
                    .iter()
                    .map(|(i, _)| schema.columns[*i].name.as_str())
                    .collect();
                format!("Replace on {rel_name} ({})", cols.join(", "))
            }
        }
    }
}

impl ScanPlan {
    fn node_line(&self) -> String {
        let mut line = match &self.access {
            Access::Seq => format!("Seq Scan on {} as {}", self.rel_name, self.var),
            Access::IndexEq {
                index_name, col, key, ..
            } => format!(
                "Index Scan on {} as {} using {} ({} = {})",
                self.rel_name,
                self.var,
                index_name,
                self.schema.columns[*col].name,
                datum_src(key)
            ),
            Access::IndexRange {
                index_name,
                col,
                lo,
                hi,
                ..
            } => {
                let cname = &self.schema.columns[*col].name;
                let mut bounds = Vec::new();
                if let Some(lo) = lo {
                    bounds.push(format!("{cname} >= {}", datum_src(lo)));
                }
                if let Some(hi) = hi {
                    bounds.push(format!("{cname} <= {}", datum_src(hi)));
                }
                format!(
                    "Index Range Scan on {} as {} using {} ({})",
                    self.rel_name,
                    self.var,
                    index_name,
                    bounds.join(", ")
                )
            }
            Access::Virtual => format!("Virtual Scan on {} as {}", self.rel_name, self.var),
        };
        if let Some(e) = &self.as_of {
            line.push_str(&format!(" as of [{}]", expr_to_source(e)));
        }
        if let Some(f) = &self.filter {
            line.push_str(&format!(" filter {}", expr_to_source(f)));
        }
        if !matches!(self.access, Access::Virtual) {
            line.push_str(&format!(
                " (pages={}, est_rows={}, est_cost={:.2})",
                self.est_pages,
                round(self.est_rows),
                self.est_cost
            ));
        }
        line
    }
}

fn target_names(targets: &[Target]) -> String {
    let names: Vec<&str> = targets.iter().map(|t| t.name.as_str()).collect();
    names.join(", ")
}

fn datum_src(d: &Datum) -> String {
    expr_to_source(&Expr::Lit(d.clone()))
}

fn round(v: f64) -> u64 {
    v.round().max(0.0) as u64
}
