//! The optimizer: turns a [`BoundStmt`] into a physical [`Plan`].
//!
//! The cost model is deliberately small. A relation's page count (from the
//! storage manager's block map — see [`crate::db::Db::relation_pages`]) is
//! the cardinality input; rows are estimated at a fixed fill of 64 tuples
//! per page. Costs are in page-read units:
//!
//! - sequential scan: `pages + 0.01 · rows` (every page, plus per-tuple CPU)
//! - index equality probe: `0.5 + 1 + 0.01` (a cached btree descent, one
//!   heap page, one tuple)
//! - index range scan: `0.5 + min(out_rows, pages) + 0.01 · out_rows`,
//!   with selectivity 1/3 per bound (1/9 when bounded on both sides)
//!
//! Qualification conjuncts are classified per range variable: "safe"
//! single-variable comparisons (column/literal operands only — they cannot
//! raise a runtime error) are pushed down into the scan; everything else
//! stays in a residual filter above the joins, preserving the original
//! evaluation order. An equality conjunct consumed by an index probe is
//! dropped outright (the probe already enforces it exactly); range
//! conjuncts stay in the scan filter because the btree walk uses an
//! inclusive superset of the predicate's bounds.
//!
//! Index selection requires the literal to coerce *exactly* to the column
//! type: probing an INT4 index with the encoding of `5.0` would miss rows
//! that predicate evaluation (which compares across numeric types) keeps.
//!
//! Join order is the `from`-clause order, folded left-deep, so the planned
//! executor enumerates combinations exactly like the reference
//! interpreter's odometer loop. Mutating statements always scan their
//! target sequentially with the full qualification as the scan filter —
//! byte-for-byte the reference semantics.

use crate::datum::Datum;
use crate::db::Session;
use crate::error::{DbError, DbResult};
use crate::ids::RelId;

use super::ast::{BinOp, Expr};
use super::bind::{BoundFrom, BoundSource, BoundStmt};
use super::plan::{Access, Plan, ScanPlan};

/// Assumed tuples per heap page.
const TUPLES_PER_PAGE: f64 = 64.0;
/// Per-tuple CPU cost, in page-read units.
const CPU_PER_TUPLE: f64 = 0.01;
/// Cost of a (cached) btree descent.
const BTREE_DESCENT: f64 = 0.5;
/// Selectivity of one range bound.
const BOUND_SELECTIVITY: f64 = 1.0 / 3.0;

/// Plans one bound statement.
pub fn plan_stmt(session: &mut Session, bound: BoundStmt) -> DbResult<Plan> {
    session.db().stats_registry().planner.plans_built.bump();
    match bound {
        BoundStmt::ConstRetrieve {
            into,
            targets,
            limit,
        } => Ok(wrap_output(Plan::ConstRow { targets }, &[], limit, into)),
        BoundStmt::Retrieve {
            into,
            targets,
            from,
            qual,
            sort,
            limit,
            aggregated,
            grouped,
        } => {
            let mut conjuncts = split_and(qual);
            let mut scans = Vec::with_capacity(from.len());
            for f in &from {
                scans.push(plan_scan(session, f, &mut conjuncts)?);
            }
            let Some(mut node) = scans.into_iter().reduce(|outer, inner| {
                session
                    .db()
                    .stats_registry()
                    .planner
                    .joins_planned
                    .bump();
                let est_rows = outer.est_rows() * inner.est_rows();
                Plan::NestLoop {
                    outer: Box::new(outer),
                    inner: Box::new(inner),
                    est_rows,
                }
            }) else {
                return Err(DbError::Invalid(
                    "retrieve requires at least one range variable".into(),
                ));
            };
            if let Some(residual) = fold_and(conjuncts.into_iter().map(|c| c.expr)) {
                node = Plan::Filter {
                    qual: residual,
                    child: Box::new(node),
                };
            }
            node = if aggregated {
                Plan::Aggregate {
                    targets,
                    grouped,
                    child: Box::new(node),
                }
            } else {
                Plan::Project {
                    targets,
                    child: Box::new(node),
                }
            };
            Ok(wrap_output(node, &sort, limit, into))
        }
        BoundStmt::Append {
            rel,
            rel_name,
            schema,
            values,
        } => Ok(Plan::Append {
            rel,
            rel_name,
            schema,
            values,
        }),
        BoundStmt::Delete {
            var,
            rel,
            rel_name,
            schema,
            qual,
        } => {
            let child = mutation_scan(session, var, rel, &rel_name, schema.clone(), qual)?;
            Ok(Plan::Delete {
                rel,
                rel_name,
                child: Box::new(child),
            })
        }
        BoundStmt::Replace {
            var,
            rel,
            rel_name,
            schema,
            values,
            qual,
        } => {
            let child = mutation_scan(session, var, rel, &rel_name, schema.clone(), qual)?;
            Ok(Plan::Replace {
                rel,
                rel_name,
                schema,
                values,
                child: Box::new(child),
            })
        }
    }
}

/// Sort / limit / materialize wrappers, applied outermost-last.
fn wrap_output(
    mut node: Plan,
    sort: &[(String, bool)],
    limit: Option<u64>,
    into: Option<String>,
) -> Plan {
    if !sort.is_empty() {
        node = Plan::Sort {
            keys: sort.to_vec(),
            child: Box::new(node),
        };
    }
    if let Some(n) = limit {
        node = Plan::Limit {
            n,
            child: Box::new(node),
        };
    }
    if let Some(name) = into {
        node = Plan::Materialize {
            into: name,
            child: Box::new(node),
        };
    }
    node
}

/// Mutating statements keep the reference interpreter's exact row walk: a
/// sequential scan of the target with the full qualification as the
/// per-row filter.
fn mutation_scan(
    session: &mut Session,
    var: String,
    rel: RelId,
    rel_name: &str,
    schema: crate::datum::Schema,
    qual: Option<Expr>,
) -> DbResult<Plan> {
    let pages = session.db().relation_pages(rel)?;
    let est_rows = pages as f64 * TUPLES_PER_PAGE;
    session
        .db()
        .stats_registry()
        .planner
        .seq_scans_chosen
        .bump();
    Ok(Plan::Scan(Box::new(ScanPlan {
        var,
        rel_name: rel_name.to_string(),
        rel: Some(rel),
        schema,
        as_of: None,
        access: Access::Seq,
        filter: qual,
        est_pages: pages,
        est_rows,
        est_cost: seq_cost(pages),
    })))
}

/// One qualification conjunct, tagged with what the classifier learned.
struct Conjunct {
    expr: Expr,
    /// `Some(var)` if this is a safe single-variable comparison that can be
    /// pushed into `var`'s scan.
    pushable_to: Option<String>,
}

/// Splits a qualification on its top-level `and`s, preserving order.
fn split_and(qual: Option<Expr>) -> Vec<Conjunct> {
    let mut out = Vec::new();
    fn walk(e: Expr, out: &mut Vec<Conjunct>) {
        match e {
            Expr::Binary {
                op: BinOp::And,
                lhs,
                rhs,
            } => {
                walk(*lhs, out);
                walk(*rhs, out);
            }
            other => {
                let pushable_to = safe_single_var(&other).map(str::to_string);
                out.push(Conjunct {
                    expr: other,
                    pushable_to,
                });
            }
        }
    }
    if let Some(q) = qual {
        walk(q, &mut out);
    }
    out
}

/// Re-folds conjuncts left-associatively, as the parser would have.
fn fold_and(mut exprs: impl Iterator<Item = Expr>) -> Option<Expr> {
    let first = exprs.next()?;
    Some(exprs.fold(first, |acc, e| Expr::Binary {
        op: BinOp::And,
        lhs: Box::new(acc),
        rhs: Box::new(e),
    }))
}

/// Returns the range variable of a comparison whose operands are all
/// literals or columns of one variable. Such a conjunct is pure (cannot
/// raise a runtime error), so it may run below the join without changing
/// which errors a query reports.
fn safe_single_var(e: &Expr) -> Option<&str> {
    let Expr::Binary { op, lhs, rhs } = e else {
        return None;
    };
    if !matches!(
        op,
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
    ) {
        return None;
    }
    let mut var: Option<&str> = None;
    for side in [lhs.as_ref(), rhs.as_ref()] {
        match side {
            Expr::Lit(_) => {}
            Expr::Column { var: Some(v), .. } => match var {
                None => var = Some(v),
                Some(existing) if existing == v => {}
                Some(_) => return None,
            },
            _ => return None,
        }
    }
    var
}

/// A `col OP literal` comparison normalized to a bound on `col`.
struct ColBound {
    col: usize,
    op: BinOp,
    lit: Datum,
}

/// Normalizes a conjunct into a column bound for `var`, flipping the
/// operator when the literal is on the left. The literal must coerce
/// exactly to the column's type — see the module docs for why.
fn col_bound(f: &BoundFrom, e: &Expr) -> Option<ColBound> {
    let Expr::Binary { op, lhs, rhs } = e else {
        return None;
    };
    let (col_side, lit_side, op) = match (lhs.as_ref(), rhs.as_ref()) {
        (Expr::Column { .. }, Expr::Lit(_)) => (lhs.as_ref(), rhs.as_ref(), *op),
        (Expr::Lit(_), Expr::Column { .. }) => {
            let flipped = match op {
                BinOp::Lt => BinOp::Gt,
                BinOp::Le => BinOp::Ge,
                BinOp::Gt => BinOp::Lt,
                BinOp::Ge => BinOp::Le,
                other => *other,
            };
            (rhs.as_ref(), lhs.as_ref(), flipped)
        }
        _ => return None,
    };
    if !matches!(op, BinOp::Eq | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge) {
        return None;
    }
    let (Expr::Column { var, attr }, Expr::Lit(d)) = (col_side, lit_side) else {
        return None;
    };
    if var.as_deref() != Some(f.var.as_str()) {
        return None;
    }
    let col = f.schema.column_index(attr)?;
    let ty = f.schema.columns[col].ty;
    let coerced = super::eval::coerce(d.clone(), ty).ok()?;
    if coerced.type_id() != Some(ty) {
        return None; // Cross-type or null: the index would miss rows.
    }
    Some(ColBound {
        col,
        op,
        lit: coerced,
    })
}

fn index_name(session: &Session, id: RelId) -> String {
    session
        .db()
        .catalog()
        .relation(id)
        .map(|e| e.name.clone())
        .unwrap_or_else(|_| format!("{id}"))
}

fn seq_cost(pages: u64) -> f64 {
    pages as f64 + CPU_PER_TUPLE * pages as f64 * TUPLES_PER_PAGE
}

/// Plans one scan: chooses the access method and pushes down this
/// variable's safe conjuncts. Consumed conjuncts are drained from
/// `conjuncts`; what remains becomes the residual filter.
fn plan_scan(
    session: &mut Session,
    f: &BoundFrom,
    conjuncts: &mut Vec<Conjunct>,
) -> DbResult<Plan> {
    let reg = session.db().stats_registry();
    let planner = &reg.planner;

    let rel = match f.source {
        BoundSource::Virtual => {
            // Virtual relations materialize in memory; pushdown still
            // applies but there is no access method to choose.
            let filter = take_pushable(conjuncts, &f.var);
            return Ok(Plan::Scan(Box::new(ScanPlan {
                var: f.var.clone(),
                rel_name: f.rel_name.clone(),
                rel: None,
                schema: f.schema.clone(),
                as_of: None,
                access: Access::Virtual,
                filter,
                est_pages: 0,
                est_rows: 1.0,
                est_cost: 0.0,
            })));
        }
        BoundSource::Heap(rel) => rel,
    };

    let pages = session.db().relation_pages(rel)?;
    let rows = pages as f64 * TUPLES_PER_PAGE;
    let seq = seq_cost(pages);

    // Candidate: equality probe on an indexed, type-matched column.
    let mut index_eq: Option<(usize, RelId, ColBound)> = None; // (conjunct idx, ...)
    // Candidate: range walk bounds per indexed column (first column wins).
    let mut range: Option<(usize, RelId, Option<Datum>, Option<Datum>)> = None;
    for (ci, c) in conjuncts.iter().enumerate() {
        if c.pushable_to.as_deref() != Some(f.var.as_str()) {
            continue;
        }
        let Some(b) = col_bound(f, &c.expr) else {
            continue;
        };
        let Some(idx) = session.db().find_index(rel, &[b.col]) else {
            continue;
        };
        if b.op == BinOp::Eq {
            if index_eq.is_none() {
                index_eq = Some((ci, idx, b));
            }
        } else if f.as_of.is_none() {
            // No snapshot-aware range walk exists; time travel scans fall
            // back to seq (or an equality probe, which has one).
            let r = range.get_or_insert((b.col, idx, None, None));
            if r.0 == b.col {
                match b.op {
                    BinOp::Gt | BinOp::Ge if r.2.is_none() => r.2 = Some(b.lit),
                    BinOp::Lt | BinOp::Le if r.3.is_none() => r.3 = Some(b.lit),
                    _ => {}
                }
            }
        }
    }

    // Cost the candidates against the sequential scan.
    let access;
    let est_rows;
    let est_cost;
    if let Some((ci, idx, b)) = index_eq {
        let probe_cost = BTREE_DESCENT + 1.0 + CPU_PER_TUPLE;
        if probe_cost < seq || pages == 0 {
            // The probe enforces the equality exactly; drop the conjunct.
            let name = index_name(session, idx);
            access = Access::IndexEq {
                index: idx,
                index_name: name,
                col: b.col,
                key: b.lit,
            };
            est_rows = 1.0;
            est_cost = probe_cost;
            conjuncts.remove(ci);
            planner.index_scans_chosen.bump();
        } else {
            access = Access::Seq;
            est_rows = rows;
            est_cost = seq;
            planner.seq_scans_chosen.bump();
        }
    } else if let Some((col, idx, lo, hi)) = range.filter(|r| r.2.is_some() || r.3.is_some()) {
        let sel = match (&lo, &hi) {
            (Some(_), Some(_)) => BOUND_SELECTIVITY * BOUND_SELECTIVITY,
            _ => BOUND_SELECTIVITY,
        };
        let out = rows * sel;
        let range_cost = BTREE_DESCENT + out.min(pages as f64) + CPU_PER_TUPLE * out;
        if range_cost < seq {
            let name = index_name(session, idx);
            access = Access::IndexRange {
                index: idx,
                index_name: name,
                col,
                lo,
                hi,
            };
            est_rows = out;
            est_cost = range_cost;
            planner.index_scans_chosen.bump();
        } else {
            access = Access::Seq;
            est_rows = rows;
            est_cost = seq;
            planner.seq_scans_chosen.bump();
        }
    } else {
        access = Access::Seq;
        est_rows = rows;
        est_cost = seq;
        planner.seq_scans_chosen.bump();
    }

    let filter = take_pushable(conjuncts, &f.var);
    Ok(Plan::Scan(Box::new(ScanPlan {
        var: f.var.clone(),
        rel_name: f.rel_name.clone(),
        rel: Some(rel),
        schema: f.schema.clone(),
        as_of: f.as_of.clone(),
        access,
        filter,
        est_pages: pages,
        est_rows,
        est_cost,
    })))
}

/// Drains the conjuncts pushable to `var` and folds them into one filter
/// expression, preserving their original order.
fn take_pushable(conjuncts: &mut Vec<Conjunct>, var: &str) -> Option<Expr> {
    let mut taken = Vec::new();
    conjuncts.retain_mut(|c| {
        if c.pushable_to.as_deref() == Some(var) {
            taken.push(std::mem::replace(&mut c.expr, Expr::Lit(Datum::Null)));
            false
        } else {
            true
        }
    });
    fold_and(taken.into_iter())
}
