//! Abstract syntax for the query language.

use crate::datum::Datum;

/// A scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Lit(Datum),
    /// A column reference: optional range variable plus attribute name.
    Column {
        /// Range variable (`e` in `e.filename`), if qualified.
        var: Option<String>,
        /// Attribute name.
        attr: String,
    },
    /// A function call.
    Call {
        /// Function name.
        name: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// A binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Logical negation.
    Not(Box<Expr>),
    /// Arithmetic negation.
    Neg(Box<Expr>),
}

/// Binary operators, loosest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `or`
    Or,
    /// `and`
    And,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `in` — substring / membership test (`"RISC" in keywords(file)`).
    In,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// One entry of a `from` clause: `var in relname`, optionally with a
/// time-travel bracket `relname[<nanos>]`.
#[derive(Debug, Clone, PartialEq)]
pub struct FromItem {
    /// The range variable.
    pub var: String,
    /// The relation name.
    pub rel: String,
    /// `Some(t)` to read the relation as of simulated time `t` (nanoseconds).
    pub as_of: Option<Expr>,
}

/// One target of a `retrieve` list: optional output name plus expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Target {
    /// Output column label.
    pub name: String,
    /// The computed expression.
    pub expr: Expr,
}

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `retrieve [into name] (targets) [from ...] [where qual] [sort by ...]
    /// [limit n]`
    Retrieve {
        /// Materialize the result into a new table of this name.
        into: Option<String>,
        /// Projection list.
        targets: Vec<Target>,
        /// Range variables.
        from: Vec<FromItem>,
        /// Qualification.
        qual: Option<Expr>,
        /// Output ordering: `(output column name, descending)` pairs.
        sort: Vec<(String, bool)>,
        /// Keep at most this many output rows (applied after sorting).
        limit: Option<u64>,
    },
    /// `append rel (col = expr, ...)`
    Append {
        /// Target relation name.
        rel: String,
        /// Column assignments.
        values: Vec<(String, Expr)>,
    },
    /// `delete var from var in rel [where qual]` or `delete rel [where qual]`
    Delete {
        /// Range variable (same as relation name in the short form).
        var: String,
        /// Relation name.
        rel: String,
        /// Qualification.
        qual: Option<Expr>,
    },
    /// `replace var (col = expr, ...) [from ...] [where qual]`
    Replace {
        /// Range variable.
        var: String,
        /// Relation name.
        rel: String,
        /// Column assignments.
        values: Vec<(String, Expr)>,
        /// Qualification.
        qual: Option<Expr>,
    },
    /// `define type name`
    DefineType {
        /// The new type's name.
        name: String,
    },
    /// `define function name (nargs) returns type as "impl.key" [for type]`
    DefineFunction {
        /// Function name.
        name: String,
        /// Argument count.
        nargs: usize,
        /// Return type name.
        returns: String,
        /// Implementation key in the function registry.
        impl_key: String,
        /// Optional file type the function operates on.
        for_type: Option<String>,
    },
    /// `explain [analyze] <statement>`: plan the statement and return the
    /// plan tree as text instead of (or, with `analyze`, in addition to
    /// running) the statement itself.
    Explain {
        /// With `analyze`, execute the plan and annotate each node with the
        /// number of rows it actually produced.
        analyze: bool,
        /// The statement being explained.
        inner: Box<Stmt>,
    },
    /// `define rule name on access|update|periodic to rel where qual do action`
    DefineRule {
        /// Rule name.
        name: String,
        /// Event selector: `access`, `update`, or `periodic`.
        event: String,
        /// Watched relation.
        rel: String,
        /// Qualification source text.
        qual: String,
        /// Action source text.
        action: String,
    },
}
