//! The binder: resolves relation and column names against the catalog.
//!
//! Binding is the first stage of the planned pipeline (bind → plan →
//! optimize → execute). It turns a parsed [`Stmt`] into a [`BoundStmt`]
//! whose range variables carry their [`RelId`]s and [`Schema`]s, whose
//! unqualified column references have been rewritten to qualified ones
//! (`age` → `e.age`), and whose assignment lists name column *indices*
//! instead of strings. Name errors therefore surface at bind time rather
//! than per-row during evaluation.

use crate::datum::Schema;
use crate::db::Session;
use crate::error::{DbError, DbResult};
use crate::ids::RelId;

use super::ast::{Expr, FromItem, Stmt, Target};
use super::exec::{is_aggregate, targets_reference_columns, validate_aggregate};

/// Where a bound range variable's rows come from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoundSource {
    /// An ordinary heap relation.
    Heap(RelId),
    /// A virtual system relation (`pg_stat_*` and friends), materialized
    /// when the scan opens.
    Virtual,
}

/// One resolved `from` item.
#[derive(Debug, Clone)]
pub struct BoundFrom {
    /// The range variable.
    pub var: String,
    /// The relation's catalog name.
    pub rel_name: String,
    /// Heap relation id, or virtual.
    pub source: BoundSource,
    /// The relation's schema.
    pub schema: Schema,
    /// Time-travel bracket, evaluated when the scan opens.
    pub as_of: Option<Expr>,
}

/// A statement with every name resolved against the catalog.
#[derive(Debug, Clone)]
pub enum BoundStmt {
    /// A `retrieve` over at least one range variable.
    Retrieve {
        /// Materialize the result into a new table of this name.
        into: Option<String>,
        /// Projection list (columns qualified).
        targets: Vec<Target>,
        /// Resolved range variables, in `from`-clause order.
        from: Vec<BoundFrom>,
        /// Qualification (columns qualified).
        qual: Option<Expr>,
        /// Output ordering.
        sort: Vec<(String, bool)>,
        /// Row-count cap, applied after sorting.
        limit: Option<u64>,
        /// Any target is an aggregate call.
        aggregated: bool,
        /// Aggregates mixed with plain targets: group by the plain ones.
        grouped: bool,
    },
    /// A `retrieve` of constant expressions only (no `from` clause).
    ConstRetrieve {
        /// Materialize the result into a new table of this name.
        into: Option<String>,
        /// Projection list (no column references).
        targets: Vec<Target>,
        /// Row-count cap (`limit 0` silences even a constant row).
        limit: Option<u64>,
    },
    /// `append rel (...)` with assignments resolved to column indices.
    Append {
        /// Target relation.
        rel: RelId,
        /// Its catalog name.
        rel_name: String,
        /// Its schema.
        schema: Schema,
        /// `(column index, value expression)` assignments.
        values: Vec<(usize, Expr)>,
    },
    /// `delete var from var in rel [where qual]`.
    Delete {
        /// The range variable.
        var: String,
        /// Target relation.
        rel: RelId,
        /// Its catalog name.
        rel_name: String,
        /// Its schema.
        schema: Schema,
        /// Qualification (columns qualified).
        qual: Option<Expr>,
    },
    /// `replace var (...) [where qual]`.
    Replace {
        /// The range variable.
        var: String,
        /// Target relation.
        rel: RelId,
        /// Its catalog name.
        rel_name: String,
        /// Its schema.
        schema: Schema,
        /// `(column index, value expression)` assignments.
        values: Vec<(usize, Expr)>,
        /// Qualification (columns qualified).
        qual: Option<Expr>,
    },
}

/// Resolves every name in `stmt` against the catalog. Only the four DML
/// statements reach the binder; DDL executes directly.
pub fn bind(session: &mut Session, stmt: Stmt) -> DbResult<BoundStmt> {
    match stmt {
        Stmt::Retrieve {
            into,
            targets,
            from,
            qual,
            sort,
            limit,
        } => bind_retrieve(session, into, targets, from, qual, sort, limit),
        Stmt::Append { rel, values } => bind_append(session, &rel, values),
        Stmt::Delete { var, rel, qual } => bind_delete(session, var, &rel, qual),
        Stmt::Replace {
            var,
            rel,
            values,
            qual,
        } => bind_replace(session, var, &rel, values, qual),
        other => Err(DbError::Invalid(format!(
            "statement does not go through the planner: {other:?}"
        ))),
    }
}

fn bind_retrieve(
    session: &mut Session,
    into: Option<String>,
    mut targets: Vec<Target>,
    from: Vec<FromItem>,
    mut qual: Option<Expr>,
    sort: Vec<(String, bool)>,
    limit: Option<u64>,
) -> DbResult<BoundStmt> {
    let aggregated = targets.iter().any(|t| is_aggregate(&t.expr));
    let grouped = aggregated && !targets.iter().all(|t| is_aggregate(&t.expr));

    if from.is_empty() && !targets_reference_columns(&targets) && !aggregated {
        validate_sort(&targets, &sort)?;
        return Ok(BoundStmt::ConstRetrieve {
            into,
            targets,
            limit,
        });
    }
    if from.is_empty() {
        return Err(DbError::Bind(
            "column references require a from clause".into(),
        ));
    }

    let bound: Vec<BoundFrom> = from
        .into_iter()
        .map(|f| bind_from(session, f))
        .collect::<DbResult<_>>()?;

    for t in &mut targets {
        if aggregated {
            validate_aggregate(&t.expr)?;
        }
        qualify(&mut t.expr, &bound)?;
    }
    if let Some(q) = &mut qual {
        qualify(q, &bound)?;
    }
    validate_sort(&targets, &sort)?;

    Ok(BoundStmt::Retrieve {
        into,
        targets,
        from: bound,
        qual,
        sort,
        limit,
        aggregated,
        grouped,
    })
}

/// Resolves one `from` item. Virtual system relations bind by schema only;
/// their rows are produced when the scan opens.
fn bind_from(session: &mut Session, item: FromItem) -> DbResult<BoundFrom> {
    if let Some((schema, _rows)) = session.bind_virtual(&item.rel) {
        if item.as_of.is_some() {
            return Err(DbError::Invalid(format!(
                "virtual relation \"{}\" has no history (time-travel bracket not allowed)",
                item.rel
            )));
        }
        return Ok(BoundFrom {
            var: item.var,
            rel_name: item.rel,
            source: BoundSource::Virtual,
            schema,
            as_of: None,
        });
    }
    let rel = session.db().relation_id(&item.rel)?;
    let schema = session.db().schema_of(rel)?;
    Ok(BoundFrom {
        var: item.var,
        rel_name: item.rel,
        source: BoundSource::Heap(rel),
        schema,
        as_of: item.as_of,
    })
}

fn bind_append(session: &mut Session, rel_name: &str, values: Vec<(String, Expr)>) -> DbResult<BoundStmt> {
    let rel = session.db().relation_id(rel_name)?;
    let schema = session.db().schema_of(rel)?;
    let values = resolve_assignments(&schema, rel_name, values, &[])?;
    Ok(BoundStmt::Append {
        rel,
        rel_name: rel_name.to_string(),
        schema,
        values,
    })
}

fn bind_delete(
    session: &mut Session,
    var: String,
    rel_name: &str,
    mut qual: Option<Expr>,
) -> DbResult<BoundStmt> {
    let rel = session.db().relation_id(rel_name)?;
    let schema = session.db().schema_of(rel)?;
    let scope = [BoundFrom {
        var: var.clone(),
        rel_name: rel_name.to_string(),
        source: BoundSource::Heap(rel),
        schema: schema.clone(),
        as_of: None,
    }];
    if let Some(q) = &mut qual {
        qualify(q, &scope)?;
    }
    Ok(BoundStmt::Delete {
        var,
        rel,
        rel_name: rel_name.to_string(),
        schema,
        qual,
    })
}

fn bind_replace(
    session: &mut Session,
    var: String,
    rel_name: &str,
    values: Vec<(String, Expr)>,
    mut qual: Option<Expr>,
) -> DbResult<BoundStmt> {
    let rel = session.db().relation_id(rel_name)?;
    let schema = session.db().schema_of(rel)?;
    let scope = [BoundFrom {
        var: var.clone(),
        rel_name: rel_name.to_string(),
        source: BoundSource::Heap(rel),
        schema: schema.clone(),
        as_of: None,
    }];
    if let Some(q) = &mut qual {
        qualify(q, &scope)?;
    }
    let values = resolve_assignments(&schema, rel_name, values, &scope)?;
    Ok(BoundStmt::Replace {
        var,
        rel,
        rel_name: rel_name.to_string(),
        schema,
        values,
        qual,
    })
}

/// Maps `(column name, expr)` assignments to `(column index, expr)`,
/// qualifying column references in the value expressions against `scope`.
fn resolve_assignments(
    schema: &Schema,
    rel_name: &str,
    values: Vec<(String, Expr)>,
    scope: &[BoundFrom],
) -> DbResult<Vec<(usize, Expr)>> {
    values
        .into_iter()
        .map(|(col, mut e)| {
            let i = schema
                .column_index(&col)
                .ok_or_else(|| DbError::Bind(format!("no column \"{col}\" in {rel_name}")))?;
            qualify(&mut e, scope)?;
            Ok((i, e))
        })
        .collect()
}

/// Rewrites unqualified column references to qualified ones and checks
/// every reference resolves. Mirrors the resolution rules of
/// [`super::eval::Binding::resolve`]: a qualified reference must name a
/// range variable in scope; an unqualified one must match exactly one.
fn qualify(e: &mut Expr, scope: &[BoundFrom]) -> DbResult<()> {
    match e {
        Expr::Lit(_) => Ok(()),
        Expr::Column { var, attr } => match var {
            Some(v) => {
                let b = scope
                    .iter()
                    .find(|b| &b.var == v)
                    .ok_or_else(|| DbError::Bind(format!("unknown range variable \"{v}\"")))?;
                if b.schema.column_index(attr).is_none() {
                    return Err(DbError::Bind(format!(
                        "no column \"{attr}\" in range of {v}"
                    )));
                }
                Ok(())
            }
            None => {
                let mut hits = scope.iter().filter(|b| b.schema.column_index(attr).is_some());
                match (hits.next(), hits.next()) {
                    (Some(b), None) => {
                        *var = Some(b.var.clone());
                        Ok(())
                    }
                    (Some(_), Some(_)) => Err(DbError::Bind(format!(
                        "ambiguous column \"{attr}\" (qualify with a range variable)"
                    ))),
                    (None, _) => Err(DbError::Bind(format!("unknown column \"{attr}\""))),
                }
            }
        },
        Expr::Call { args, .. } => {
            for a in args {
                qualify(a, scope)?;
            }
            Ok(())
        }
        Expr::Binary { lhs, rhs, .. } => {
            qualify(lhs, scope)?;
            qualify(rhs, scope)
        }
        Expr::Not(inner) | Expr::Neg(inner) => qualify(inner, scope),
    }
}

/// Sort keys must name output columns.
fn validate_sort(targets: &[Target], sort: &[(String, bool)]) -> DbResult<()> {
    for (name, _) in sort {
        if !targets.iter().any(|t| &t.name == name) {
            return Err(DbError::Bind(format!("sort by unknown column \"{name}\"")));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datum::TypeId;
    use crate::db::Db;
    use crate::query::parser::parse;

    fn setup() -> Db {
        let db = Db::open_in_memory().unwrap();
        db.create_table(
            "emp",
            Schema::new([("name", TypeId::TEXT), ("age", TypeId::INT4)]),
        )
        .unwrap();
        db.create_table(
            "dept",
            Schema::new([("dname", TypeId::TEXT), ("age", TypeId::INT4)]),
        )
        .unwrap();
        db
    }

    fn bind_str(db: &Db, src: &str) -> DbResult<BoundStmt> {
        let mut s = db.begin().unwrap();
        let out = bind(&mut s, parse(src).unwrap());
        s.abort().unwrap();
        out
    }

    #[test]
    fn qualifies_unqualified_columns() {
        let db = setup();
        let b = bind_str(&db, "retrieve (name) from e in emp where age > 3").unwrap();
        let BoundStmt::Retrieve { targets, qual, .. } = b else {
            panic!()
        };
        assert_eq!(
            targets[0].expr,
            Expr::Column {
                var: Some("e".into()),
                attr: "name".into()
            }
        );
        // The qualification's column reference gained its range variable.
        let q = format!("{:?}", qual.unwrap());
        assert!(q.contains("Some(\"e\")"), "{q}");
    }

    #[test]
    fn ambiguity_and_unknowns_are_bind_errors() {
        let db = setup();
        // `age` lives in both emp and dept.
        assert!(matches!(
            bind_str(&db, "retrieve (age) from e in emp, d in dept"),
            Err(DbError::Bind(_))
        ));
        assert!(matches!(
            bind_str(&db, "retrieve (e.salary) from e in emp"),
            Err(DbError::Bind(_))
        ));
        assert!(matches!(
            bind_str(&db, "retrieve (q.age) from e in emp"),
            Err(DbError::Bind(_))
        ));
        assert!(matches!(
            bind_str(&db, "retrieve (e.age) from e in nope"),
            Err(DbError::NotFound(_))
        ));
        assert!(matches!(
            bind_str(&db, "retrieve (e.age) from e in emp sort by salary"),
            Err(DbError::Bind(_))
        ));
        assert!(matches!(
            bind_str(&db, "append emp (salary = 1)"),
            Err(DbError::Bind(_))
        ));
    }

    #[test]
    fn const_retrieve_and_missing_from() {
        let db = setup();
        assert!(matches!(
            bind_str(&db, "retrieve (two = 1 + 1)").unwrap(),
            BoundStmt::ConstRetrieve { .. }
        ));
        assert!(matches!(
            bind_str(&db, "retrieve (age)"),
            Err(DbError::Bind(_))
        ));
    }

    #[test]
    fn virtual_relations_bind_without_history() {
        let db = setup();
        let b = bind_str(&db, "retrieve (s.hits) from s in pg_stat_buffer").unwrap();
        let BoundStmt::Retrieve { from, .. } = b else {
            panic!()
        };
        assert_eq!(from[0].source, BoundSource::Virtual);
        assert!(matches!(
            bind_str(&db, "retrieve (s.hits) from s in pg_stat_buffer[12]"),
            Err(DbError::Invalid(_))
        ));
    }

    #[test]
    fn aggregate_arity_checked_at_bind() {
        let db = setup();
        assert!(matches!(
            bind_str(&db, "retrieve (n = count(e.age, e.name)) from e in emp"),
            Err(DbError::Bind(_))
        ));
    }
}
