//! Statement execution: the volcano executor over optimizer plans.
//!
//! DML statements run through the planned pipeline — [`super::bind`] →
//! [`super::optimize`] → [`run_plan`] — with one iterator per plan node.
//! Join-side nodes pull `Tuple`s (one `(tid, row)` per range variable in
//! scope order); output-side nodes pull finished result rows. Every node
//! counts the rows it emits so `explain analyze` can annotate the plan.
//! DDL statements execute directly, and the old match-and-eval interpreter
//! survives verbatim in [`super::reference`] as the differential oracle's
//! reference semantics.

use simdev::SimInstant;

use crate::catalog::RuleEvent;
use crate::datum::{Datum, Row, Schema};
use crate::db::Session;
use crate::error::{DbError, DbResult};
use crate::ids::Tid;
use crate::xact::Snapshot;

use super::ast::{Expr, Stmt, Target};
use super::bind;
use super::eval::{coerce, eval, Binding};
use super::optimize;
use super::parser::parse;
use super::plan::{Access, Plan, ScanPlan};

/// The outcome of executing one statement.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryResult {
    /// Output column labels (retrieve only).
    pub columns: Vec<String>,
    /// Result rows (retrieve only).
    pub rows: Vec<Row>,
    /// Rows appended / deleted / replaced (mutating statements).
    pub affected: usize,
}

impl QueryResult {
    /// Renders the result as an aligned text table (for the query monitor).
    pub fn to_table(&self) -> String {
        if self.columns.is_empty() {
            return format!("({} rows affected)\n", self.affected);
        }
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|d| d.to_string()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        for (i, c) in self.columns.iter().enumerate() {
            out.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        out.push('\n');
        for (i, _) in self.columns.iter().enumerate() {
            out.push_str(&"-".repeat(widths[i]));
            out.push_str("  ");
        }
        out.push('\n');
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                out.push_str(&format!("{:<w$}  ", cell, w = widths[i]));
            }
            out.push('\n');
        }
        out.push_str(&format!("({} rows)\n", self.rows.len()));
        out
    }
}

impl Session {
    /// Parses and executes one statement of the query language.
    ///
    /// # Examples
    ///
    /// ```
    /// use minidb::{Db, Datum};
    /// let db = Db::open_in_memory().unwrap();
    /// let mut s = db.begin().unwrap();
    /// s.query("retrieve (two = 1 + 1)").unwrap();
    /// s.commit().unwrap();
    /// ```
    pub fn query(&mut self, input: &str) -> DbResult<QueryResult> {
        let stmt = parse(input)?;
        self.execute(stmt)
    }

    fn execute(&mut self, stmt: Stmt) -> DbResult<QueryResult> {
        match stmt {
            Stmt::Retrieve { .. }
            | Stmt::Append { .. }
            | Stmt::Delete { .. }
            | Stmt::Replace { .. } => {
                let bound = bind::bind(self, stmt)?;
                let plan = optimize::plan_stmt(self, bound)?;
                let (result, _counts) = run_plan(self, &plan)?;
                Ok(result)
            }
            Stmt::Explain { analyze, inner } => self.exec_explain(analyze, *inner),
            Stmt::DefineType { name } => {
                self.db().define_type(&name)?;
                Ok(QueryResult::default())
            }
            Stmt::DefineFunction {
                name,
                nargs,
                returns,
                impl_key,
                for_type,
            } => {
                let ret = self.db().catalog().type_by_name(&returns)?;
                let for_ty = match for_type {
                    Some(t) => Some(self.db().catalog().type_by_name(&t)?),
                    None => None,
                };
                self.db()
                    .define_function(&name, nargs, ret, &impl_key, for_ty)?;
                Ok(QueryResult::default())
            }
            Stmt::DefineRule {
                name,
                event,
                rel,
                qual,
                action,
            } => {
                let event = match event.to_ascii_lowercase().as_str() {
                    "access" => RuleEvent::OnAccess,
                    "update" => RuleEvent::OnUpdate,
                    "periodic" => RuleEvent::Periodic,
                    other => return Err(DbError::Parse(format!("unknown rule event \"{other}\""))),
                };
                let on_rel = self.db().relation_id(&rel)?;
                self.db().define_rule(crate::catalog::RuleEntry {
                    name,
                    on_rel,
                    event,
                    qual,
                    action,
                })?;
                Ok(QueryResult::default())
            }
        }
    }

    /// `explain [analyze] <stmt>`: plans the statement and returns the plan
    /// tree as one text row per line. With `analyze` the plan also runs
    /// (side effects included — explaining an `append` appends) and each
    /// node line gains its actual output-row count.
    fn exec_explain(&mut self, analyze: bool, inner: Stmt) -> DbResult<QueryResult> {
        let bound = bind::bind(self, inner)?;
        let plan = optimize::plan_stmt(self, bound)?;
        let text = if analyze {
            let (_result, counts) = run_plan(self, &plan)?;
            plan.render(Some(&counts))
        } else {
            plan.render(None)
        };
        Ok(QueryResult {
            columns: vec!["QUERY PLAN".into()],
            rows: text
                .lines()
                .map(|l| vec![Datum::Text(l.to_string())])
                .collect(),
            affected: 0,
        })
    }

    /// `retrieve into name (...)`: creates a table named `name` with the
    /// result's columns and appends every result row. Column types come
    /// from the first non-null datum in each column (all-null columns
    /// become text).
    pub(crate) fn materialize_into(
        &mut self,
        name: &str,
        result: QueryResult,
    ) -> DbResult<QueryResult> {
        let mut cols: Vec<(String, crate::datum::TypeId)> = Vec::new();
        for (i, cname) in result.columns.iter().enumerate() {
            let ty = result
                .rows
                .iter()
                .find_map(|r| r[i].type_id())
                .unwrap_or(crate::datum::TypeId::TEXT);
            cols.push((cname.clone(), ty));
        }
        let schema = Schema {
            columns: cols
                .iter()
                .map(|(n, t)| crate::datum::Column::new(n.clone(), *t))
                .collect(),
        };
        let rel = self.db().create_table(name, schema)?;
        let affected = result.rows.len();
        for row in result.rows {
            self.insert(rel, row)?;
        }
        Ok(QueryResult {
            affected,
            ..Default::default()
        })
    }

    /// Materializes the rows of a virtual system relation (the built-in
    /// `pg_stat_*` family, then anything registered through
    /// [`crate::db::Db::register_virtual`]), or `None` if `name` is an
    /// ordinary catalogued relation.
    pub(crate) fn bind_virtual(&mut self, name: &str) -> Option<(Schema, Vec<Row>)> {
        use crate::datum::TypeId;
        let db = self.db().clone();
        let int8 = |v: u64| Datum::Int8(v as i64);
        match name {
            "pg_stat_buffer" => {
                let b = db.buffer_stats();
                Some((
                    Schema::new([
                        ("hits", TypeId::INT8),
                        ("misses", TypeId::INT8),
                        ("evictions", TypeId::INT8),
                        ("writebacks", TypeId::INT8),
                        ("prefetches", TypeId::INT8),
                        ("prefetch_hits", TypeId::INT8),
                        ("capacity", TypeId::INT4),
                        ("cached", TypeId::INT4),
                    ]),
                    vec![vec![
                        int8(b.hits),
                        int8(b.misses),
                        int8(b.evictions),
                        int8(b.writebacks),
                        int8(b.prefetches),
                        int8(b.prefetch_hits),
                        Datum::Int4(db.inner.pool.capacity() as i32),
                        Datum::Int4(db.inner.pool.len() as i32),
                    ]],
                ))
            }
            "pg_check" => {
                let findings = db.check_all();
                Some((
                    Schema::new([
                        ("relation", TypeId::TEXT),
                        ("page", TypeId::INT8),
                        ("slot", TypeId::INT4),
                        ("code", TypeId::TEXT),
                        ("detail", TypeId::TEXT),
                    ]),
                    findings
                        .into_iter()
                        .map(|f| {
                            vec![
                                Datum::Text(f.relation),
                                f.page.map_or(Datum::Null, |p| Datum::Int8(p as i64)),
                                f.slot.map_or(Datum::Null, |s| Datum::Int4(s as i32)),
                                Datum::Text(f.code),
                                Datum::Text(f.detail),
                            ]
                        })
                        .collect(),
                ))
            }
            "pg_stat_lock" => {
                let l = &db.inner.stats.lock;
                Some((
                    Schema::new([
                        ("acquisitions", TypeId::INT8),
                        ("waits", TypeId::INT8),
                        ("deadlocks", TypeId::INT8),
                        ("timeouts", TypeId::INT8),
                    ]),
                    vec![vec![
                        int8(l.acquisitions.get()),
                        int8(l.waits.get()),
                        int8(l.deadlocks.get()),
                        int8(l.timeouts.get()),
                    ]],
                ))
            }
            "pg_stat_xact" => {
                let x = &db.inner.stats.xact;
                let lat = x.commit_latency.snapshot();
                let lat_text: Vec<String> = lat.iter().map(u64::to_string).collect();
                Some((
                    Schema::new([
                        ("commits", TypeId::INT8),
                        ("aborts", TypeId::INT8),
                        ("time_travel_reads", TypeId::INT8),
                        ("group_commits", TypeId::INT8),
                        ("batched_records", TypeId::INT8),
                        ("pages_flushed_at_commit", TypeId::INT8),
                        ("sync_calls", TypeId::INT8),
                        ("commit_latency_hist", TypeId::TEXT),
                        ("active", TypeId::INT4),
                    ]),
                    vec![vec![
                        int8(x.commits.get()),
                        int8(x.aborts.get()),
                        int8(x.time_travel_reads.get()),
                        int8(x.group_commits.get()),
                        int8(x.batched_records.get()),
                        int8(x.pages_flushed_at_commit.get()),
                        int8(x.sync_calls.get()),
                        Datum::Text(format!("[{}]", lat_text.join(","))),
                        Datum::Int4(db.inner.xlog.active_set().len() as i32),
                    ]],
                ))
            }
            "pg_stat_wal" => {
                let w = &db.inner.stats.wal;
                Some((
                    Schema::new([
                        ("records_appended", TypeId::INT8),
                        ("bytes_appended", TypeId::INT8),
                        ("log_forces", TypeId::INT8),
                        ("checkpoints", TypeId::INT8),
                        ("ckpt_pages_drained", TypeId::INT8),
                        ("replayed_pages", TypeId::INT8),
                        ("replayed_records", TypeId::INT8),
                    ]),
                    vec![vec![
                        int8(w.records_appended.get()),
                        int8(w.bytes_appended.get()),
                        int8(w.log_forces.get()),
                        int8(w.checkpoints.get()),
                        int8(w.ckpt_pages_drained.get()),
                        int8(w.replayed_pages.get()),
                        int8(w.replayed_records.get()),
                    ]],
                ))
            }
            "pg_stat_relation" => {
                let s = &db.inner.stats;
                Some((
                    Schema::new([
                        ("heap_scans", TypeId::INT8),
                        ("heap_fetches", TypeId::INT8),
                        ("heap_appends", TypeId::INT8),
                        ("btree_searches", TypeId::INT8),
                        ("btree_inserts", TypeId::INT8),
                        ("btree_splits", TypeId::INT8),
                        ("btree_page_writes", TypeId::INT8),
                        ("vacuum_passes", TypeId::INT8),
                    ]),
                    vec![vec![
                        int8(s.heap.scans.get()),
                        int8(s.heap.fetches.get()),
                        int8(s.heap.appends.get()),
                        int8(s.btree.searches.get()),
                        int8(s.btree.inserts.get()),
                        int8(s.btree.splits.get()),
                        int8(s.btree.page_writes.get()),
                        int8(s.vacuum_passes.get()),
                    ]],
                ))
            }
            "pg_stat_planner" => {
                let p = &db.inner.stats.planner;
                Some((
                    Schema::new([
                        ("plans_built", TypeId::INT8),
                        ("index_scans_chosen", TypeId::INT8),
                        ("seq_scans_chosen", TypeId::INT8),
                        ("joins_planned", TypeId::INT8),
                    ]),
                    vec![vec![
                        int8(p.plans_built.get()),
                        int8(p.index_scans_chosen.get()),
                        int8(p.seq_scans_chosen.get()),
                        int8(p.joins_planned.get()),
                    ]],
                ))
            }
            "pg_stat_io" => {
                let rows = db
                    .stats()
                    .devices
                    .into_iter()
                    .map(|d| {
                        vec![
                            Datum::Int4(d.device as i32),
                            Datum::Text(d.name),
                            int8(d.io_submitted),
                            int8(d.io_completed),
                            int8(d.io_batched_neighbors),
                            int8(d.io_elevator_passes),
                            int8(d.io_queue_depth_hw),
                            int8(d.io_barrier_waits),
                        ]
                    })
                    .collect();
                Some((
                    Schema::new([
                        ("device", TypeId::INT4),
                        ("name", TypeId::TEXT),
                        ("submitted", TypeId::INT8),
                        ("completed", TypeId::INT8),
                        ("batched_neighbors", TypeId::INT8),
                        ("elevator_passes", TypeId::INT8),
                        ("queue_depth_hw", TypeId::INT8),
                        ("barrier_waits", TypeId::INT8),
                    ]),
                    rows,
                ))
            }
            "pg_stat_device" => {
                let rows = db
                    .stats()
                    .devices
                    .into_iter()
                    .map(|d| {
                        vec![
                            Datum::Int4(d.device as i32),
                            Datum::Text(d.name),
                            int8(d.reads),
                            int8(d.writes),
                            int8(d.read_ns),
                            int8(d.write_ns),
                        ]
                    })
                    .collect();
                Some((
                    Schema::new([
                        ("device", TypeId::INT4),
                        ("name", TypeId::TEXT),
                        ("reads", TypeId::INT8),
                        ("writes", TypeId::INT8),
                        ("read_ns", TypeId::INT8),
                        ("write_ns", TypeId::INT8),
                    ]),
                    rows,
                ))
            }
            _ => db
                .virtual_table(name)
                .map(|t| (t.schema.clone(), (t.rows)())),
        }
    }
}

// ---------------------------------------------------------------------------
// The volcano executor.

/// One joined row in flight: a `(tid, row)` pair per range variable, in
/// scope order.
type Tuple = Vec<(Tid, Row)>;
/// The range variables a tuple's entries correspond to.
type Scope = Vec<(String, Schema)>;

/// Runs a plan to completion. The second return value is each plan node's
/// actual output-row count, in preorder — the order [`Plan::render`] walks
/// for `explain analyze`.
pub(crate) fn run_plan(s: &mut Session, plan: &Plan) -> DbResult<(QueryResult, Vec<u64>)> {
    match plan {
        Plan::Materialize { into, child } => {
            let (inner, mut counts) = run_plan(s, child)?;
            let result = s.materialize_into(into, inner)?;
            counts.insert(0, result.affected as u64);
            Ok((result, counts))
        }
        Plan::Append {
            rel,
            schema,
            values,
            ..
        } => {
            let mut row = vec![Datum::Null; schema.len()];
            for (i, e) in values {
                let v = eval(s, &Binding::empty(), e)?;
                row[*i] = coerce(v, schema.columns[*i].ty)?;
            }
            s.insert(*rel, row)?;
            Ok((
                QueryResult {
                    affected: 1,
                    ..Default::default()
                },
                vec![1],
            ))
        }
        Plan::Delete { rel, child, .. } => {
            let (mut exec, _scope) = build_tuple(s, child)?;
            // Collect first, mutate after: the scan must not see its own
            // deletions.
            let mut victims = Vec::new();
            while let Some(t) = exec.next(s)? {
                victims.push(t[0].0);
            }
            let mut affected = 0;
            for tid in victims {
                if s.delete(*rel, tid)? {
                    affected += 1;
                }
            }
            let mut counts = vec![affected as u64];
            exec.collect_counts(&mut counts);
            Ok((
                QueryResult {
                    affected,
                    ..Default::default()
                },
                counts,
            ))
        }
        Plan::Replace {
            rel,
            schema,
            values,
            child,
            ..
        } => {
            let (mut exec, scope) = build_tuple(s, child)?;
            // Same collect-then-mutate discipline as delete (no Halloween
            // problem: a replaced row cannot be revisited).
            let mut updates = Vec::new();
            while let Some(t) = exec.next(s)? {
                let mut new_row = t[0].1.clone();
                for (i, e) in values {
                    let v = {
                        let binding = make_binding(&scope, &t);
                        eval(s, &binding, e)?
                    };
                    new_row[*i] = coerce(v, schema.columns[*i].ty)?;
                }
                updates.push((t[0].0, new_row));
            }
            let affected = updates.len();
            for (tid, new_row) in updates {
                s.update(*rel, tid, new_row)?;
            }
            let mut counts = vec![affected as u64];
            exec.collect_counts(&mut counts);
            Ok((
                QueryResult {
                    affected,
                    ..Default::default()
                },
                counts,
            ))
        }
        _ => {
            let columns = output_columns(plan);
            let mut root = build_row(s, plan)?;
            let mut rows = Vec::new();
            while let Some(r) = root.next(s)? {
                rows.push(r);
            }
            let mut counts = Vec::new();
            root.collect_counts(&mut counts);
            Ok((
                QueryResult {
                    columns,
                    rows,
                    affected: 0,
                },
                counts,
            ))
        }
    }
}

/// Output column labels of a row-producing plan.
fn output_columns(plan: &Plan) -> Vec<String> {
    match plan {
        Plan::Project { targets, .. }
        | Plan::Aggregate { targets, .. }
        | Plan::ConstRow { targets } => targets.iter().map(|t| t.name.clone()).collect(),
        Plan::Sort { child, .. } | Plan::Limit { child, .. } | Plan::Materialize { child, .. } => {
            output_columns(child)
        }
        _ => Vec::new(),
    }
}

fn make_binding<'a>(scope: &'a [(String, Schema)], tuple: &'a [(Tid, Row)]) -> Binding<'a> {
    Binding {
        vars: scope
            .iter()
            .zip(tuple.iter())
            .map(|((v, sch), (_, row))| (v.as_str(), sch, row))
            .collect(),
    }
}

/// A tuple-producing executor node (the join side of the plan).
struct TupleExec {
    node: TupleNode,
    rows_out: u64,
}

enum TupleNode {
    /// Rows materialized when the scan opened (heap, index, or virtual),
    /// pushed-down filter already applied.
    Scan { rows: Vec<(Tid, Row)>, pos: usize },
    /// Rewinds `inner` once per outer tuple; enumerates combinations in
    /// exactly the reference interpreter's odometer order.
    NestLoop {
        outer: Box<TupleExec>,
        inner: Box<TupleExec>,
        cur: Option<Tuple>,
    },
    /// Residual qualification above the joins.
    Filter {
        qual: Expr,
        scope: Scope,
        child: Box<TupleExec>,
    },
}

impl TupleExec {
    fn next(&mut self, s: &mut Session) -> DbResult<Option<Tuple>> {
        let t = match &mut self.node {
            TupleNode::Scan { rows, pos } => {
                if *pos < rows.len() {
                    let t = vec![rows[*pos].clone()];
                    *pos += 1;
                    Some(t)
                } else {
                    None
                }
            }
            TupleNode::NestLoop { outer, inner, cur } => loop {
                let outer_tuple = match cur {
                    Some(t) => t.clone(),
                    None => match outer.next(s)? {
                        Some(t) => {
                            inner.rewind();
                            *cur = Some(t.clone());
                            t
                        }
                        None => break None,
                    },
                };
                match inner.next(s)? {
                    Some(t) => {
                        let mut combined = outer_tuple;
                        combined.extend(t);
                        break Some(combined);
                    }
                    None => *cur = None,
                }
            },
            TupleNode::Filter { qual, scope, child } => loop {
                match child.next(s)? {
                    None => break None,
                    Some(t) => {
                        let keep = {
                            let binding = make_binding(scope, &t);
                            eval(s, &binding, qual)?.as_bool()?
                        };
                        if keep {
                            break Some(t);
                        }
                    }
                }
            },
        };
        if t.is_some() {
            self.rows_out += 1;
        }
        Ok(t)
    }

    /// Resets position state; materialized rows stay. `rows_out` keeps
    /// accumulating across rewinds so `explain analyze` reports totals.
    fn rewind(&mut self) {
        match &mut self.node {
            TupleNode::Scan { pos, .. } => *pos = 0,
            TupleNode::NestLoop { outer, inner, cur } => {
                outer.rewind();
                inner.rewind();
                *cur = None;
            }
            TupleNode::Filter { child, .. } => child.rewind(),
        }
    }

    fn collect_counts(&self, out: &mut Vec<u64>) {
        out.push(self.rows_out);
        match &self.node {
            TupleNode::Scan { .. } => {}
            TupleNode::NestLoop { outer, inner, .. } => {
                outer.collect_counts(out);
                inner.collect_counts(out);
            }
            TupleNode::Filter { child, .. } => child.collect_counts(out),
        }
    }
}

/// A result-row-producing executor node (the output side of the plan).
struct RowExec {
    node: RowNode,
    rows_out: u64,
}

enum RowNode {
    /// The constant-retrieve row.
    Const { targets: Vec<Target>, done: bool },
    /// Streamed target evaluation.
    Project {
        targets: Vec<Target>,
        scope: Scope,
        child: TupleExec,
    },
    /// Blocking aggregation; `out` holds the finished rows after the child
    /// drains.
    Aggregate {
        targets: Vec<Target>,
        grouped: bool,
        scope: Scope,
        child: TupleExec,
        out: Option<std::vec::IntoIter<Row>>,
    },
    /// Blocking stable sort on resolved key indices.
    Sort {
        keys: Vec<(usize, bool)>,
        child: Box<RowExec>,
        out: Option<std::vec::IntoIter<Row>>,
    },
    /// Stops pulling once `n` rows have been emitted.
    Limit {
        n: u64,
        emitted: u64,
        child: Box<RowExec>,
    },
}

impl RowExec {
    fn next(&mut self, s: &mut Session) -> DbResult<Option<Row>> {
        let r = match &mut self.node {
            RowNode::Const { targets, done } => {
                if *done {
                    None
                } else {
                    *done = true;
                    let b = Binding::empty();
                    let mut row = Vec::with_capacity(targets.len());
                    for t in targets.iter() {
                        row.push(eval(s, &b, &t.expr)?);
                    }
                    Some(row)
                }
            }
            RowNode::Project {
                targets,
                scope,
                child,
            } => match child.next(s)? {
                None => None,
                Some(t) => {
                    let mut row = Vec::with_capacity(targets.len());
                    for tg in targets.iter() {
                        let binding = make_binding(scope, &t);
                        row.push(eval(s, &binding, &tg.expr)?);
                    }
                    Some(row)
                }
            },
            RowNode::Aggregate {
                targets,
                grouped,
                scope,
                child,
                out,
            } => {
                if out.is_none() {
                    let rows = aggregate_drain(s, targets, *grouped, scope, child)?;
                    *out = Some(rows.into_iter());
                }
                out.as_mut().and_then(Iterator::next)
            }
            RowNode::Sort { keys, child, out } => {
                if out.is_none() {
                    let mut rows = Vec::new();
                    while let Some(r) = child.next(s)? {
                        rows.push(r);
                    }
                    // Vec::sort_by is stable, so equal keys keep input order.
                    rows.sort_by(|a, b| {
                        for &(i, desc) in keys.iter() {
                            let ord = a[i].cmp_total(&b[i]);
                            let ord = if desc { ord.reverse() } else { ord };
                            if ord != std::cmp::Ordering::Equal {
                                return ord;
                            }
                        }
                        std::cmp::Ordering::Equal
                    });
                    *out = Some(rows.into_iter());
                }
                out.as_mut().and_then(Iterator::next)
            }
            RowNode::Limit { n, emitted, child } => {
                if *emitted >= *n {
                    None
                } else {
                    match child.next(s)? {
                        Some(r) => {
                            *emitted += 1;
                            Some(r)
                        }
                        None => None,
                    }
                }
            }
        };
        if r.is_some() {
            self.rows_out += 1;
        }
        Ok(r)
    }

    fn collect_counts(&self, out: &mut Vec<u64>) {
        out.push(self.rows_out);
        match &self.node {
            RowNode::Const { .. } => {}
            RowNode::Project { child, .. } | RowNode::Aggregate { child, .. } => {
                child.collect_counts(out)
            }
            RowNode::Sort { child, .. } | RowNode::Limit { child, .. } => {
                child.collect_counts(out)
            }
        }
    }
}

/// Drains the child and computes the aggregate rows — one finish row when
/// ungrouped (even over zero input), one row per group (insertion-ordered)
/// when grouped.
fn aggregate_drain(
    s: &mut Session,
    targets: &[Target],
    grouped: bool,
    scope: &Scope,
    child: &mut TupleExec,
) -> DbResult<Vec<Row>> {
    let mut rows = Vec::new();
    if grouped {
        let mut groups: Vec<(Vec<Datum>, Vec<Accumulator>)> = Vec::new();
        let mut group_index: std::collections::HashMap<Vec<u8>, usize> =
            std::collections::HashMap::new();
        while let Some(t) = child.next(s)? {
            let mut key = Vec::new();
            let mut arg_vals = Vec::new();
            for tg in targets {
                let binding = make_binding(scope, &t);
                if is_aggregate(&tg.expr) {
                    let Expr::Call { args, .. } = &tg.expr else {
                        return Err(DbError::Eval(
                            "aggregate target is not a function call".into(),
                        ));
                    };
                    let v = match args.first() {
                        Some(a) => eval(s, &binding, a)?,
                        None => Datum::Int8(1),
                    };
                    arg_vals.push(Some(v));
                } else {
                    key.push(eval(s, &binding, &tg.expr)?);
                    arg_vals.push(None);
                }
            }
            let key_bytes = crate::datum::encode_row(&key);
            let gi = match group_index.get(&key_bytes) {
                Some(&gi) => gi,
                None => {
                    let accs = targets
                        .iter()
                        .filter(|t| is_aggregate(&t.expr))
                        .map(|t| Accumulator::for_target(&t.expr))
                        .collect::<DbResult<Vec<_>>>()?;
                    groups.push((key, accs));
                    group_index.insert(key_bytes, groups.len() - 1);
                    groups.len() - 1
                }
            };
            let accs = &mut groups[gi].1;
            for (ai, v) in arg_vals.into_iter().flatten().enumerate() {
                accs[ai].add(v)?;
            }
        }
        for (key, accs) in groups {
            let mut finished = accs.into_iter().map(Accumulator::finish);
            let mut key_it = key.into_iter();
            let row: Vec<Datum> = targets
                .iter()
                .map(|t| {
                    if is_aggregate(&t.expr) {
                        finished.next().ok_or_else(|| {
                            DbError::Invalid("group produced too few accumulators".into())
                        })
                    } else {
                        key_it.next().ok_or_else(|| {
                            DbError::Invalid("group produced too few key values".into())
                        })
                    }
                })
                .collect::<DbResult<_>>()?;
            rows.push(row);
        }
    } else {
        let mut accs: Vec<Accumulator> = targets
            .iter()
            .map(|t| Accumulator::for_target(&t.expr))
            .collect::<DbResult<_>>()?;
        while let Some(t) = child.next(s)? {
            for (acc, tg) in accs.iter_mut().zip(targets) {
                let Expr::Call { args, .. } = &tg.expr else {
                    return Err(DbError::Eval(
                        "aggregate target is not a function call".into(),
                    ));
                };
                let v = match args.first() {
                    Some(a) => {
                        let binding = make_binding(scope, &t);
                        eval(s, &binding, a)?
                    }
                    None => Datum::Int8(1), // count() counts rows.
                };
                acc.add(v)?;
            }
        }
        rows.push(accs.into_iter().map(Accumulator::finish).collect());
    }
    Ok(rows)
}

/// Builds the output side of the plan.
fn build_row(s: &mut Session, plan: &Plan) -> DbResult<RowExec> {
    let node = match plan {
        Plan::ConstRow { targets } => RowNode::Const {
            targets: targets.clone(),
            done: false,
        },
        Plan::Project { targets, child } => {
            let (child, scope) = build_tuple(s, child)?;
            RowNode::Project {
                targets: targets.clone(),
                scope,
                child,
            }
        }
        Plan::Aggregate {
            targets,
            grouped,
            child,
        } => {
            let (child, scope) = build_tuple(s, child)?;
            RowNode::Aggregate {
                targets: targets.clone(),
                grouped: *grouped,
                scope,
                child,
                out: None,
            }
        }
        Plan::Sort { keys, child } => {
            let cols = output_columns(child);
            let mut resolved = Vec::with_capacity(keys.len());
            for (name, desc) in keys {
                let i = cols.iter().position(|c| c == name).ok_or_else(|| {
                    DbError::Bind(format!("sort by unknown column \"{name}\""))
                })?;
                resolved.push((i, *desc));
            }
            RowNode::Sort {
                keys: resolved,
                child: Box::new(build_row(s, child)?),
                out: None,
            }
        }
        Plan::Limit { n, child } => RowNode::Limit {
            n: *n,
            emitted: 0,
            child: Box::new(build_row(s, child)?),
        },
        other => {
            return Err(DbError::Invalid(format!(
                "plan node cannot produce result rows: {other:?}"
            )))
        }
    };
    Ok(RowExec { node, rows_out: 0 })
}

/// Builds the join side of the plan, returning the executor plus the scope
/// its tuples follow.
fn build_tuple(s: &mut Session, plan: &Plan) -> DbResult<(TupleExec, Scope)> {
    match plan {
        Plan::Scan(sp) => {
            let exec = build_scan(s, sp)?;
            Ok((exec, vec![(sp.var.clone(), sp.schema.clone())]))
        }
        Plan::NestLoop { outer, inner, .. } => {
            let (o, mut scope) = build_tuple(s, outer)?;
            let (i, iscope) = build_tuple(s, inner)?;
            scope.extend(iscope);
            Ok((
                TupleExec {
                    node: TupleNode::NestLoop {
                        outer: Box::new(o),
                        inner: Box::new(i),
                        cur: None,
                    },
                    rows_out: 0,
                },
                scope,
            ))
        }
        Plan::Filter { qual, child } => {
            let (c, scope) = build_tuple(s, child)?;
            Ok((
                TupleExec {
                    node: TupleNode::Filter {
                        qual: qual.clone(),
                        scope: scope.clone(),
                        child: Box::new(c),
                    },
                    rows_out: 0,
                },
                scope,
            ))
        }
        other => Err(DbError::Invalid(format!(
            "not a tuple-producing plan node: {other:?}"
        ))),
    }
}

/// Opens one scan: materializes the rows through the chosen access method
/// and applies the pushed-down filter.
fn build_scan(s: &mut Session, sp: &ScanPlan) -> DbResult<TupleExec> {
    let mut rows: Vec<(Tid, Row)> = match (&sp.access, sp.rel) {
        (Access::Virtual, _) => {
            let (_schema, vrows) = s.bind_virtual(&sp.rel_name).ok_or_else(|| {
                DbError::NotFound(format!("relation \"{}\"", sp.rel_name))
            })?;
            vrows
                .into_iter()
                .enumerate()
                .map(|(i, r)| (Tid::new((i >> 16) as u32, (i & 0xffff) as u16), r))
                .collect()
        }
        (access, Some(rel)) => {
            let snap = match &sp.as_of {
                Some(e) => {
                    let t = eval(s, &Binding::empty(), e)?.as_int()?;
                    Some(Snapshot::AsOf(SimInstant::from_nanos(t.max(0) as u64)))
                }
                None => None,
            };
            match access {
                Access::Seq => match &snap {
                    Some(sn) => s.scan_with_snapshot(rel, sn)?,
                    None => s.seq_scan(rel)?,
                },
                Access::IndexEq { index, key, .. } => {
                    let key = [key.clone()];
                    match &snap {
                        Some(sn) => s.index_scan_eq_with(*index, &key, sn)?,
                        None => s.index_scan_eq(*index, &key)?,
                    }
                }
                Access::IndexRange { index, lo, hi, .. } => {
                    let lo_key: Option<Vec<Datum>> = lo.as_ref().map(|d| vec![d.clone()]);
                    let hi_key: Option<Vec<Datum>> = hi.as_ref().map(|d| vec![d.clone()]);
                    let mut out = Vec::new();
                    s.index_scan_range(*index, lo_key.as_deref(), hi_key.as_deref(), |tid, row| {
                        out.push((tid, row));
                        Ok(true)
                    })?;
                    out
                }
                Access::Virtual => {
                    return Err(DbError::Invalid(format!(
                        "virtual relation \"{}\" reached the heap scan path",
                        sp.rel_name
                    )))
                }
            }
        }
        (_, None) => {
            return Err(DbError::Invalid(format!(
                "heap scan of \"{}\" without a relation id",
                sp.rel_name
            )))
        }
    };
    if let Some(f) = &sp.filter {
        let mut kept = Vec::with_capacity(rows.len());
        for (tid, row) in rows {
            let keep = {
                let binding = Binding::single(&sp.var, &sp.schema, &row);
                eval(s, &binding, f)?.as_bool()?
            };
            if keep {
                kept.push((tid, row));
            }
        }
        rows = kept;
    }
    Ok(TupleExec {
        node: TupleNode::Scan { rows, pos: 0 },
        rows_out: 0,
    })
}

// ---------------------------------------------------------------------------
// Shared helpers (used by the binder and the reference interpreter too).

/// Aggregate function names reserved by the executor.
const AGGREGATES: [&str; 5] = ["count", "sum", "avg", "min", "max"];

pub(crate) fn is_aggregate(e: &Expr) -> bool {
    matches!(e, Expr::Call { name, .. }
        if AGGREGATES.iter().any(|a| name.eq_ignore_ascii_case(a)))
}

/// Bind-time arity check for an aggregate target (no-op for plain targets).
pub(crate) fn validate_aggregate(e: &Expr) -> DbResult<()> {
    if let Expr::Call { name, args } = e {
        if is_aggregate(e) && args.len() > 1 {
            return Err(DbError::Bind(format!("{name} takes at most one argument")));
        }
    }
    Ok(())
}

/// Running state for one aggregate target.
pub(crate) enum Accumulator {
    Count(i64),
    Sum(f64, bool),      // (sum, any_float)
    Avg(f64, i64, bool), // (sum, n, any_float)
    Min(Option<Datum>),
    Max(Option<Datum>),
}

impl Accumulator {
    pub(crate) fn for_target(e: &Expr) -> DbResult<Accumulator> {
        let Expr::Call { name, args } = e else {
            return Err(DbError::Bind("not an aggregate".into()));
        };
        if args.len() > 1 {
            return Err(DbError::Bind(format!("{name} takes at most one argument")));
        }
        Ok(match name.to_ascii_lowercase().as_str() {
            "count" => Accumulator::Count(0),
            "sum" => Accumulator::Sum(0.0, false),
            "avg" => Accumulator::Avg(0.0, 0, false),
            "min" => Accumulator::Min(None),
            "max" => Accumulator::Max(None),
            other => return Err(DbError::Bind(format!("unknown aggregate {other}"))),
        })
    }

    pub(crate) fn add(&mut self, v: Datum) -> DbResult<()> {
        if v == Datum::Null {
            return Ok(()); // Nulls do not participate, SQL-style.
        }
        match self {
            Accumulator::Count(n) => *n += 1,
            Accumulator::Sum(sum, float) => {
                *float |= matches!(v, Datum::Float8(_));
                *sum += v.as_float()?;
            }
            Accumulator::Avg(sum, n, float) => {
                *float |= matches!(v, Datum::Float8(_));
                *sum += v.as_float()?;
                *n += 1;
            }
            Accumulator::Min(cur) => {
                let better = cur
                    .as_ref()
                    .map(|c| v.cmp_total(c) == std::cmp::Ordering::Less)
                    .unwrap_or(true);
                if better {
                    *cur = Some(v);
                }
            }
            Accumulator::Max(cur) => {
                let better = cur
                    .as_ref()
                    .map(|c| v.cmp_total(c) == std::cmp::Ordering::Greater)
                    .unwrap_or(true);
                if better {
                    *cur = Some(v);
                }
            }
        }
        Ok(())
    }

    pub(crate) fn finish(self) -> Datum {
        match self {
            Accumulator::Count(n) => Datum::Int8(n),
            Accumulator::Sum(sum, true) => Datum::Float8(sum),
            Accumulator::Sum(sum, false) => Datum::Int8(sum as i64),
            Accumulator::Avg(_, 0, _) => Datum::Null,
            Accumulator::Avg(sum, n, _) => Datum::Float8(sum / n as f64),
            Accumulator::Min(v) | Accumulator::Max(v) => v.unwrap_or(Datum::Null),
        }
    }
}

/// Sorts result rows by the named output columns.
pub(crate) fn sort_rows(
    columns: &[String],
    sort: &[(String, bool)],
    rows: &mut [Row],
) -> DbResult<()> {
    if sort.is_empty() {
        return Ok(());
    }
    let mut keys = Vec::with_capacity(sort.len());
    for (name, desc) in sort {
        let i = columns
            .iter()
            .position(|c| c == name)
            .ok_or_else(|| DbError::Bind(format!("sort by unknown column \"{name}\"")))?;
        keys.push((i, *desc));
    }
    rows.sort_by(|a, b| {
        for &(i, desc) in &keys {
            let ord = a[i].cmp_total(&b[i]);
            let ord = if desc { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(())
}

pub(crate) fn targets_reference_columns(targets: &[Target]) -> bool {
    fn walk(e: &Expr) -> bool {
        match e {
            Expr::Column { .. } => true,
            Expr::Lit(_) => false,
            Expr::Call { args, .. } => args.iter().any(walk),
            Expr::Binary { lhs, rhs, .. } => walk(lhs) || walk(rhs),
            Expr::Not(e) | Expr::Neg(e) => walk(e),
        }
    }
    targets.iter().any(|t| walk(&t.expr))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datum::TypeId;
    use crate::db::Db;

    fn setup() -> Db {
        let db = Db::open_in_memory().unwrap();
        db.create_table(
            "emp",
            Schema::new([
                ("name", TypeId::TEXT),
                ("age", TypeId::INT4),
                ("dept", TypeId::TEXT),
            ]),
        )
        .unwrap();
        let mut s = db.begin().unwrap();
        for (n, a, d) in [
            ("mao", 29, "db"),
            ("mike", 45, "db"),
            ("margo", 35, "fs"),
            ("randy", 40, "arch"),
        ] {
            s.query(&format!(
                r#"append emp (name = "{n}", age = {a}, dept = "{d}")"#
            ))
            .unwrap();
        }
        s.commit().unwrap();
        db
    }

    #[test]
    fn retrieve_constant() {
        let db = Db::open_in_memory().unwrap();
        let mut s = db.begin().unwrap();
        let r = s
            .query("retrieve (two = 1 + 1, greeting = \"hi\")")
            .unwrap();
        assert_eq!(r.columns, vec!["two", "greeting"]);
        assert_eq!(r.rows, vec![vec![Datum::Int8(2), Datum::Text("hi".into())]]);
        s.commit().unwrap();
    }

    #[test]
    fn retrieve_with_qual() {
        let db = setup();
        let mut s = db.begin().unwrap();
        let r = s
            .query(r#"retrieve (e.name) from e in emp where e.age > 34 and e.dept = "db""#)
            .unwrap();
        assert_eq!(r.rows, vec![vec![Datum::Text("mike".into())]]);
        s.commit().unwrap();
    }

    #[test]
    fn retrieve_unqualified_single_rel() {
        let db = setup();
        let mut s = db.begin().unwrap();
        let r = s
            .query(r#"retrieve (name, age) from e in emp where age < 30"#)
            .unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], Datum::Text("mao".into()));
        s.commit().unwrap();
    }

    #[test]
    fn join_two_relations() {
        let db = setup();
        db.create_table(
            "dept",
            Schema::new([("dname", TypeId::TEXT), ("floor", TypeId::INT4)]),
        )
        .unwrap();
        let mut s = db.begin().unwrap();
        s.query(r#"append dept (dname = "db", floor = 4)"#).unwrap();
        s.query(r#"append dept (dname = "fs", floor = 5)"#).unwrap();
        let r = s
            .query(
                "retrieve (e.name, d.floor) from e in emp, d in dept \
                 where e.dept = d.dname and d.floor = 4",
            )
            .unwrap();
        let mut names: Vec<String> = r
            .rows
            .iter()
            .map(|row| row[0].as_text().unwrap().to_string())
            .collect();
        names.sort();
        assert_eq!(names, vec!["mao", "mike"]);
        s.commit().unwrap();
    }

    #[test]
    fn index_used_for_equality_pin() {
        let db = setup();
        let rel = db.relation_id("emp").unwrap();
        db.create_index("emp_name", rel, &["name"]).unwrap();
        let before = db.buffer_stats();
        let mut s = db.begin().unwrap();
        let r = s
            .query(r#"retrieve (e.age) from e in emp where e.name = "randy""#)
            .unwrap();
        assert_eq!(r.rows, vec![vec![Datum::Int4(40)]]);
        s.commit().unwrap();
        // Weak but real signal that we did not scan every heap page: the
        // index path touches the btree meta+root and one heap page.
        let after = db.buffer_stats();
        assert!(after.hits + after.misses > before.hits + before.misses);
    }

    #[test]
    fn cross_type_equality_does_not_use_index() {
        // `e.age = 5.0` on an INT4 column: probing the btree with a float
        // key's encoding would miss every row, while predicate evaluation
        // compares across numeric types. The planner must refuse the index.
        let db = setup();
        let rel = db.relation_id("emp").unwrap();
        db.create_index("emp_age", rel, &["age"]).unwrap();
        let mut s = db.begin().unwrap();
        let r = s
            .query("retrieve (e.name) from e in emp where e.age = 35.0")
            .unwrap();
        assert_eq!(r.rows, vec![vec![Datum::Text("margo".into())]]);
        let plan = s
            .query("explain retrieve (e.name) from e in emp where e.age = 35.0")
            .unwrap();
        let text = plan.to_table();
        assert!(text.contains("Seq Scan"), "{text}");
        // A literal that cannot coerce (out of int4 range) must not error,
        // and must not use the index either: the row set is simply empty.
        let r = s
            .query("retrieve (e.name) from e in emp where e.age = 5000000000")
            .unwrap();
        assert!(r.rows.is_empty());
        // Null pins never probe the index (and match nothing).
        let r = s
            .query("retrieve (e.name) from e in emp where e.age = null")
            .unwrap();
        assert!(r.rows.is_empty());
        // Type-matched pins still do use it.
        let plan = s
            .query("explain retrieve (e.name) from e in emp where e.age = 35")
            .unwrap();
        assert!(plan.to_table().contains("Index Scan"), "{}", plan.to_table());
        s.commit().unwrap();
    }

    #[test]
    fn delete_and_replace() {
        let db = setup();
        let mut s = db.begin().unwrap();
        let r = s
            .query(r#"delete e from e in emp where e.age >= 40"#)
            .unwrap();
        assert_eq!(r.affected, 2);
        let r = s
            .query(r#"replace e (age = e.age + 1) from e in emp where e.dept = "db""#)
            .unwrap();
        assert_eq!(r.affected, 1); // Only mao remains in db.
        let r = s.query("retrieve (e.name, e.age) from e in emp").unwrap();
        assert_eq!(r.rows.len(), 2);
        s.commit().unwrap();

        let mut s = db.begin().unwrap();
        let r = s
            .query(r#"retrieve (e.age) from e in emp where e.name = "mao""#)
            .unwrap();
        assert_eq!(r.rows, vec![vec![Datum::Int4(30)]]);
        s.commit().unwrap();
    }

    #[test]
    fn time_travel_bracket_in_from() {
        let db = setup();
        let t0 = db.now().as_nanos();
        let mut s = db.begin().unwrap();
        s.query(r#"delete e from e in emp"#).unwrap();
        s.commit().unwrap();

        let mut s = db.begin().unwrap();
        let r = s.query("retrieve (e.name) from e in emp").unwrap();
        assert!(r.rows.is_empty());
        let r = s
            .query(&format!("retrieve (e.name) from e in emp[{t0}]"))
            .unwrap();
        assert_eq!(r.rows.len(), 4, "historical scan sees the old rows");
        s.commit().unwrap();
    }

    #[test]
    fn define_statements() {
        let db = setup();
        let mut s = db.begin().unwrap();
        s.query("define type tm").unwrap();
        db.functions()
            .register("t.const", |_s, _a| Ok(Datum::Int8(7)));
        s.query(r#"define function seven (0) returns int8 as "t.const""#)
            .unwrap();
        let r = s.query("retrieve (x = seven())").unwrap();
        assert_eq!(r.rows[0][0], Datum::Int8(7));
        s.query(r#"define rule cold on periodic to emp where age > 100 do seven()"#)
            .unwrap();
        s.commit().unwrap();
        assert_eq!(db.catalog().rules().len(), 1);
    }

    #[test]
    fn append_missing_column_defaults_null() {
        let db = setup();
        let mut s = db.begin().unwrap();
        s.query(r#"append emp (name = "ghost")"#).unwrap();
        let r = s
            .query(r#"retrieve (e.age) from e in emp where e.name = "ghost""#)
            .unwrap();
        assert_eq!(r.rows, vec![vec![Datum::Null]]);
        s.commit().unwrap();
    }

    #[test]
    fn errors_reported() {
        let db = setup();
        let mut s = db.begin().unwrap();
        assert!(matches!(
            s.query("retrieve (x.y) from x in nope"),
            Err(DbError::NotFound(_))
        ));
        assert!(matches!(
            s.query("append emp (salary = 1)"),
            Err(DbError::Bind(_))
        ));
        assert!(matches!(s.query("retrieve (zzz)"), Err(DbError::Bind(_))));
        s.abort().unwrap();
    }

    #[test]
    fn result_table_rendering() {
        let db = setup();
        let mut s = db.begin().unwrap();
        let r = s
            .query(r#"retrieve (e.name, e.age) from e in emp where e.age = 29"#)
            .unwrap();
        let table = r.to_table();
        assert!(table.contains("name"));
        assert!(table.contains("mao"));
        assert!(table.contains("(1 rows)"));
        let r = s
            .query(r#"delete e from e in emp where e.age = 29"#)
            .unwrap();
        assert!(r.to_table().contains("(1 rows affected)"));
        s.commit().unwrap();
    }

    #[test]
    fn limit_caps_output_after_sort() {
        let db = setup();
        let mut s = db.begin().unwrap();
        let r = s
            .query("retrieve (e.name, e.age) from e in emp sort by age desc limit 2")
            .unwrap();
        let names: Vec<&str> = r.rows.iter().map(|r| r[0].as_text().unwrap()).collect();
        assert_eq!(names, vec!["mike", "randy"]);
        let r = s
            .query("retrieve (e.name) from e in emp limit 0")
            .unwrap();
        assert!(r.rows.is_empty());
        let r = s.query("retrieve (x = 1) limit 0").unwrap();
        assert!(r.rows.is_empty());
        s.commit().unwrap();
    }
}

#[cfg(test)]
mod explain_tests {
    use super::*;
    use crate::datum::TypeId;
    use crate::db::Db;

    fn setup() -> Db {
        let db = Db::open_in_memory().unwrap();
        db.create_table(
            "emp",
            Schema::new([("name", TypeId::TEXT), ("age", TypeId::INT4)]),
        )
        .unwrap();
        let rel = db.relation_id("emp").unwrap();
        db.create_index("emp_name", rel, &["name"]).unwrap();
        let mut s = db.begin().unwrap();
        for (n, a) in [("mao", 29), ("mike", 45), ("margo", 35)] {
            s.query(&format!(r#"append emp (name = "{n}", age = {a})"#))
                .unwrap();
        }
        s.commit().unwrap();
        db
    }

    fn plan_text(db: &Db, q: &str) -> String {
        let mut s = db.begin().unwrap();
        let r = s.query(q).unwrap();
        s.commit().unwrap();
        assert_eq!(r.columns, vec!["QUERY PLAN"]);
        r.rows
            .iter()
            .map(|row| row[0].as_text().unwrap().to_string())
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn explain_shows_access_choice() {
        let db = setup();
        let seq = plan_text(&db, "explain retrieve (e.age) from e in emp where e.age > 30");
        assert!(seq.contains("Seq Scan on emp as e"), "{seq}");
        assert!(seq.contains("Project"), "{seq}");
        let idx = plan_text(
            &db,
            r#"explain retrieve (e.age) from e in emp where e.name = "mike""#,
        );
        assert!(
            idx.contains("Index Scan on emp as e using emp_name"),
            "{idx}"
        );
    }

    #[test]
    fn explain_does_not_run_the_statement() {
        let db = setup();
        let mut s = db.begin().unwrap();
        s.query("explain delete e from e in emp").unwrap();
        let r = s.query("retrieve (n = count()) from e in emp").unwrap();
        assert_eq!(r.rows[0][0], Datum::Int8(3), "rows survived the explain");
        s.commit().unwrap();
    }

    #[test]
    fn explain_analyze_reports_row_counts() {
        let db = setup();
        let text = plan_text(
            &db,
            "explain analyze retrieve (e.name) from e in emp where e.age > 30 sort by name",
        );
        // Sort and Project both saw two rows; the scan emitted two of three.
        assert!(text.contains("Sort (name) (rows=2)"), "{text}");
        assert!(text.contains("(rows=2)"), "{text}");
        assert!(text.contains("Seq Scan"), "{text}");
    }

    #[test]
    fn explain_join_and_pushdown_shape() {
        let db = setup();
        db.create_table(
            "dept",
            Schema::new([("dname", TypeId::TEXT), ("floor", TypeId::INT4)]),
        )
        .unwrap();
        let text = plan_text(
            &db,
            "explain retrieve (e.name, d.floor) from e in emp, d in dept \
             where e.name = d.dname and e.age > 30 and d.floor = 4",
        );
        assert!(text.contains("Nested Loop"), "{text}");
        // Single-variable conjuncts went below the join...
        assert!(text.contains("filter (e.age > 30)"), "{text}");
        assert!(text.contains("filter (d.floor = 4)"), "{text}");
        // ...while the join predicate stayed above it.
        assert!(text.contains("Filter (e.name = d.dname)"), "{text}");
    }

    #[test]
    fn planner_counters_track_choices() {
        let db = setup();
        let p = || {
            let reg = db.stats_registry();
            (
                reg.planner.plans_built.get(),
                reg.planner.index_scans_chosen.get(),
                reg.planner.seq_scans_chosen.get(),
                reg.planner.joins_planned.get(),
            )
        };
        let before = p();
        let mut s = db.begin().unwrap();
        s.query(r#"retrieve (e.age) from e in emp where e.name = "mike""#)
            .unwrap();
        s.query("retrieve (e.age) from e in emp").unwrap();
        s.query("retrieve (a.age, b.age) from a in emp, b in emp")
            .unwrap();
        s.commit().unwrap();
        let after = p();
        assert_eq!(after.0 - before.0, 3, "plans built");
        assert_eq!(after.1 - before.1, 1, "index scans chosen");
        assert_eq!(after.2 - before.2, 3, "seq scans chosen");
        assert_eq!(after.3 - before.3, 1, "joins planned");
        // And the counters are visible through the virtual relation.
        let mut s = db.begin().unwrap();
        let r = s
            .query("retrieve (p.plans_built, p.index_scans_chosen) from p in pg_stat_planner")
            .unwrap();
        assert!(r.rows[0][0].as_int().unwrap() >= 4);
        assert!(r.rows[0][1].as_int().unwrap() >= 1);
        s.commit().unwrap();
    }

    #[test]
    fn explain_rejects_ddl() {
        let db = setup();
        let mut s = db.begin().unwrap();
        assert!(s.query("explain define type blob").is_err());
        s.abort().unwrap();
    }
}

#[cfg(test)]
mod agg_tests {
    use super::*;
    use crate::datum::TypeId;
    use crate::db::Db;

    fn setup() -> Db {
        let db = Db::open_in_memory().unwrap();
        db.create_table(
            "emp",
            Schema::new([
                ("name", TypeId::TEXT),
                ("age", TypeId::INT4),
                ("dept", TypeId::TEXT),
            ]),
        )
        .unwrap();
        let mut s = db.begin().unwrap();
        for (n, a, d) in [
            ("mao", 29, "db"),
            ("mike", 45, "db"),
            ("margo", 35, "fs"),
            ("randy", 40, "arch"),
            ("wei", 31, "db"),
        ] {
            s.query(&format!(
                r#"append emp (name = "{n}", age = {a}, dept = "{d}")"#
            ))
            .unwrap();
        }
        s.commit().unwrap();
        db
    }

    #[test]
    fn count_sum_avg_min_max() {
        let db = setup();
        let mut s = db.begin().unwrap();
        let r = s
            .query("retrieve (n = count(), s = sum(e.age), a = avg(e.age), lo = min(e.age), hi = max(e.age)) from e in emp")
            .unwrap();
        assert_eq!(
            r.rows,
            vec![vec![
                Datum::Int8(5),
                Datum::Int8(180),
                Datum::Float8(36.0),
                Datum::Int4(29),
                Datum::Int4(45),
            ]]
        );
        s.commit().unwrap();
    }

    #[test]
    fn aggregates_respect_quals() {
        let db = setup();
        let mut s = db.begin().unwrap();
        let r = s
            .query(r#"retrieve (n = count(), a = avg(e.age)) from e in emp where e.dept = "db""#)
            .unwrap();
        assert_eq!(r.rows[0][0], Datum::Int8(3));
        assert_eq!(r.rows[0][1], Datum::Float8(35.0));
        s.commit().unwrap();
    }

    #[test]
    fn aggregates_over_empty_set() {
        let db = setup();
        let mut s = db.begin().unwrap();
        let r = s
            .query("retrieve (n = count(), a = avg(e.age), lo = min(e.age)) from e in emp where e.age > 100")
            .unwrap();
        assert_eq!(r.rows, vec![vec![Datum::Int8(0), Datum::Null, Datum::Null]]);
        s.commit().unwrap();
    }

    #[test]
    fn mixing_aggregates_and_columns_groups_implicitly() {
        let db = setup();
        let mut s = db.begin().unwrap();
        let r = s
            .query("retrieve (e.dept, n = count(), a = avg(e.age)) from e in emp sort by dept")
            .unwrap();
        assert_eq!(
            r.rows,
            vec![
                vec![
                    Datum::Text("arch".into()),
                    Datum::Int8(1),
                    Datum::Float8(40.0)
                ],
                vec![
                    Datum::Text("db".into()),
                    Datum::Int8(3),
                    Datum::Float8(35.0)
                ],
                vec![
                    Datum::Text("fs".into()),
                    Datum::Int8(1),
                    Datum::Float8(35.0)
                ],
            ]
        );
        // Aggregate-before-key column order works too.
        let r = s
            .query("retrieve (hi = max(e.age), e.dept) from e in emp sort by dept")
            .unwrap();
        assert_eq!(r.rows[1], vec![Datum::Int4(45), Datum::Text("db".into())]);
        // A group over an empty qualification yields no rows.
        let r = s
            .query("retrieve (e.dept, n = count()) from e in emp where e.age > 100")
            .unwrap();
        assert!(r.rows.is_empty());
        s.abort().unwrap();
    }

    #[test]
    fn sort_by_orders_output() {
        let db = setup();
        let mut s = db.begin().unwrap();
        let r = s
            .query("retrieve (e.name, e.age) from e in emp sort by age")
            .unwrap();
        let ages: Vec<i64> = r.rows.iter().map(|row| row[1].as_int().unwrap()).collect();
        assert_eq!(ages, vec![29, 31, 35, 40, 45]);
        let r = s
            .query("retrieve (e.name, e.age) from e in emp sort by age desc")
            .unwrap();
        assert_eq!(r.rows[0][0], Datum::Text("mike".into()));
        s.commit().unwrap();
    }

    #[test]
    fn sort_by_multiple_keys_and_errors() {
        let db = setup();
        let mut s = db.begin().unwrap();
        let r = s
            .query("retrieve (e.dept, e.name) from e in emp sort by dept asc, name desc")
            .unwrap();
        let pairs: Vec<(String, String)> = r
            .rows
            .iter()
            .map(|row| {
                (
                    row[0].as_text().unwrap().to_string(),
                    row[1].as_text().unwrap().to_string(),
                )
            })
            .collect();
        assert_eq!(pairs[0].0, "arch");
        // Within "db", names descend.
        let db_names: Vec<&str> = pairs
            .iter()
            .filter(|(d, _)| d == "db")
            .map(|(_, n)| n.as_str())
            .collect();
        assert_eq!(db_names, vec!["wei", "mike", "mao"]);
        assert!(matches!(
            s.query("retrieve (e.name) from e in emp sort by salary"),
            Err(DbError::Bind(_))
        ));
        s.commit().unwrap();
    }

    #[test]
    fn count_with_argument_skips_nulls() {
        let db = setup();
        let mut s = db.begin().unwrap();
        s.query(r#"append emp (name = "ghost")"#).unwrap(); // age is null
        let r = s
            .query("retrieve (n = count(e.age)) from e in emp")
            .unwrap();
        assert_eq!(r.rows[0][0], Datum::Int8(5));
        let r = s.query("retrieve (n = count()) from e in emp").unwrap();
        assert_eq!(r.rows[0][0], Datum::Int8(6));
        s.commit().unwrap();
    }
}

#[cfg(test)]
mod into_tests {
    use super::*;
    use crate::datum::TypeId;
    use crate::db::Db;

    #[test]
    fn retrieve_into_materializes_a_table() {
        let db = Db::open_in_memory().unwrap();
        db.create_table(
            "emp",
            Schema::new([("name", TypeId::TEXT), ("age", TypeId::INT4)]),
        )
        .unwrap();
        let mut s = db.begin().unwrap();
        for (n, a) in [("mao", 29), ("mike", 45), ("margo", 35)] {
            s.query(&format!(r#"append emp (name = "{n}", age = {a})"#))
                .unwrap();
        }
        let r = s
            .query(r#"retrieve into elders (e.name, e.age) from e in emp where e.age > 30 sort by age"#)
            .unwrap();
        assert_eq!(r.affected, 2);
        let rows = s
            .query("retrieve (x.name) from x in elders sort by name")
            .unwrap();
        assert_eq!(
            rows.rows,
            vec![
                vec![Datum::Text("margo".into())],
                vec![Datum::Text("mike".into())]
            ]
        );
        s.commit().unwrap();
        // The new table is a first-class relation with the right schema.
        let rel = db.relation_id("elders").unwrap();
        let schema = db.schema_of(rel).unwrap();
        assert_eq!(schema.columns[1].ty, TypeId::INT4);
    }

    #[test]
    fn retrieve_into_existing_name_fails() {
        let db = Db::open_in_memory().unwrap();
        db.create_table("t", Schema::new([("v", TypeId::INT4)]))
            .unwrap();
        let mut s = db.begin().unwrap();
        s.query("append t (v = 1)").unwrap();
        assert!(matches!(
            s.query("retrieve into t (e.v) from e in t"),
            Err(DbError::AlreadyExists(_))
        ));
        s.abort().unwrap();
    }

    #[test]
    fn retrieve_into_with_aggregates() {
        let db = Db::open_in_memory().unwrap();
        db.create_table("t", Schema::new([("v", TypeId::INT4)]))
            .unwrap();
        let mut s = db.begin().unwrap();
        for v in [1, 2, 3] {
            s.query(&format!("append t (v = {v})")).unwrap();
        }
        s.query("retrieve into summary (n = count(), total = sum(e.v)) from e in t")
            .unwrap();
        let r = s
            .query("retrieve (x.n, x.total) from x in summary")
            .unwrap();
        assert_eq!(r.rows, vec![vec![Datum::Int8(3), Datum::Int8(6)]]);
        s.commit().unwrap();
    }
}
