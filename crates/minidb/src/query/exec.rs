//! Statement execution: planning (seq scan vs index scan), nested-loop
//! joins, projection, and the DDL statements.

use simdev::SimInstant;

use crate::catalog::RuleEvent;
use crate::datum::{Datum, Row, Schema};
use crate::db::Session;
use crate::error::{DbError, DbResult};
use crate::ids::Tid;
use crate::xact::Snapshot;

use super::ast::{BinOp, Expr, FromItem, Stmt, Target};
use super::eval::{coerce, eval, Binding};
use super::parser::parse;

/// The outcome of executing one statement.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryResult {
    /// Output column labels (retrieve only).
    pub columns: Vec<String>,
    /// Result rows (retrieve only).
    pub rows: Vec<Row>,
    /// Rows appended / deleted / replaced (mutating statements).
    pub affected: usize,
}

impl QueryResult {
    /// Renders the result as an aligned text table (for the query monitor).
    pub fn to_table(&self) -> String {
        if self.columns.is_empty() {
            return format!("({} rows affected)\n", self.affected);
        }
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|d| d.to_string()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        for (i, c) in self.columns.iter().enumerate() {
            out.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        out.push('\n');
        for (i, _) in self.columns.iter().enumerate() {
            out.push_str(&"-".repeat(widths[i]));
            out.push_str("  ");
        }
        out.push('\n');
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                out.push_str(&format!("{:<w$}  ", cell, w = widths[i]));
            }
            out.push('\n');
        }
        out.push_str(&format!("({} rows)\n", self.rows.len()));
        out
    }
}

/// One bound range variable with its materialized candidate rows.
struct BoundRel {
    var: String,
    schema: Schema,
    rows: Vec<(Tid, Row)>,
}

impl Session {
    /// Parses and executes one statement of the query language.
    ///
    /// # Examples
    ///
    /// ```
    /// use minidb::{Db, Datum};
    /// let db = Db::open_in_memory().unwrap();
    /// let mut s = db.begin().unwrap();
    /// s.query("retrieve (two = 1 + 1)").unwrap();
    /// s.commit().unwrap();
    /// ```
    pub fn query(&mut self, input: &str) -> DbResult<QueryResult> {
        let stmt = parse(input)?;
        self.execute(stmt)
    }

    fn execute(&mut self, stmt: Stmt) -> DbResult<QueryResult> {
        match stmt {
            Stmt::Retrieve {
                into,
                targets,
                from,
                qual,
                sort,
            } => {
                let result = self.exec_retrieve(targets, from, qual, sort)?;
                match into {
                    None => Ok(result),
                    Some(name) => self.materialize_into(&name, result),
                }
            }
            Stmt::Append { rel, values } => self.exec_append(&rel, values),
            Stmt::Delete { var, rel, qual } => self.exec_delete(&var, &rel, qual),
            Stmt::Replace {
                var,
                rel,
                values,
                qual,
            } => self.exec_replace(&var, &rel, values, qual),
            Stmt::DefineType { name } => {
                self.db().define_type(&name)?;
                Ok(QueryResult::default())
            }
            Stmt::DefineFunction {
                name,
                nargs,
                returns,
                impl_key,
                for_type,
            } => {
                let ret = self.db().catalog().type_by_name(&returns)?;
                let for_ty = match for_type {
                    Some(t) => Some(self.db().catalog().type_by_name(&t)?),
                    None => None,
                };
                self.db()
                    .define_function(&name, nargs, ret, &impl_key, for_ty)?;
                Ok(QueryResult::default())
            }
            Stmt::DefineRule {
                name,
                event,
                rel,
                qual,
                action,
            } => {
                let event = match event.to_ascii_lowercase().as_str() {
                    "access" => RuleEvent::OnAccess,
                    "update" => RuleEvent::OnUpdate,
                    "periodic" => RuleEvent::Periodic,
                    other => return Err(DbError::Parse(format!("unknown rule event \"{other}\""))),
                };
                let on_rel = self.db().relation_id(&rel)?;
                self.db().define_rule(crate::catalog::RuleEntry {
                    name,
                    on_rel,
                    event,
                    qual,
                    action,
                })?;
                Ok(QueryResult::default())
            }
        }
    }

    /// `retrieve into name (...)`: creates a table named `name` with the
    /// result's columns and appends every result row. Column types come
    /// from the first non-null datum in each column (all-null columns
    /// become text).
    fn materialize_into(&mut self, name: &str, result: QueryResult) -> DbResult<QueryResult> {
        let mut cols: Vec<(String, crate::datum::TypeId)> = Vec::new();
        for (i, cname) in result.columns.iter().enumerate() {
            let ty = result
                .rows
                .iter()
                .find_map(|r| r[i].type_id())
                .unwrap_or(crate::datum::TypeId::TEXT);
            cols.push((cname.clone(), ty));
        }
        let schema = Schema {
            columns: cols
                .iter()
                .map(|(n, t)| crate::datum::Column::new(n.clone(), *t))
                .collect(),
        };
        let rel = self.db().create_table(name, schema)?;
        let affected = result.rows.len();
        for row in result.rows {
            self.insert(rel, row)?;
        }
        Ok(QueryResult {
            affected,
            ..Default::default()
        })
    }

    /// Materializes the rows of a virtual system relation (the built-in
    /// `pg_stat_*` family, then anything registered through
    /// [`crate::db::Db::register_virtual`]), or `None` if `name` is an
    /// ordinary catalogued relation.
    fn bind_virtual(&mut self, name: &str) -> Option<(Schema, Vec<Row>)> {
        use crate::datum::TypeId;
        let db = self.db().clone();
        let int8 = |v: u64| Datum::Int8(v as i64);
        match name {
            "pg_stat_buffer" => {
                let b = db.buffer_stats();
                Some((
                    Schema::new([
                        ("hits", TypeId::INT8),
                        ("misses", TypeId::INT8),
                        ("evictions", TypeId::INT8),
                        ("writebacks", TypeId::INT8),
                        ("prefetches", TypeId::INT8),
                        ("prefetch_hits", TypeId::INT8),
                        ("capacity", TypeId::INT4),
                        ("cached", TypeId::INT4),
                    ]),
                    vec![vec![
                        int8(b.hits),
                        int8(b.misses),
                        int8(b.evictions),
                        int8(b.writebacks),
                        int8(b.prefetches),
                        int8(b.prefetch_hits),
                        Datum::Int4(db.inner.pool.capacity() as i32),
                        Datum::Int4(db.inner.pool.len() as i32),
                    ]],
                ))
            }
            "pg_check" => {
                let findings = db.check_all();
                Some((
                    Schema::new([
                        ("relation", TypeId::TEXT),
                        ("page", TypeId::INT8),
                        ("slot", TypeId::INT4),
                        ("code", TypeId::TEXT),
                        ("detail", TypeId::TEXT),
                    ]),
                    findings
                        .into_iter()
                        .map(|f| {
                            vec![
                                Datum::Text(f.relation),
                                f.page.map_or(Datum::Null, |p| Datum::Int8(p as i64)),
                                f.slot.map_or(Datum::Null, |s| Datum::Int4(s as i32)),
                                Datum::Text(f.code),
                                Datum::Text(f.detail),
                            ]
                        })
                        .collect(),
                ))
            }
            "pg_stat_lock" => {
                let l = &db.inner.stats.lock;
                Some((
                    Schema::new([
                        ("acquisitions", TypeId::INT8),
                        ("waits", TypeId::INT8),
                        ("deadlocks", TypeId::INT8),
                        ("timeouts", TypeId::INT8),
                    ]),
                    vec![vec![
                        int8(l.acquisitions.get()),
                        int8(l.waits.get()),
                        int8(l.deadlocks.get()),
                        int8(l.timeouts.get()),
                    ]],
                ))
            }
            "pg_stat_xact" => {
                let x = &db.inner.stats.xact;
                let lat = x.commit_latency.snapshot();
                let lat_text: Vec<String> = lat.iter().map(u64::to_string).collect();
                Some((
                    Schema::new([
                        ("commits", TypeId::INT8),
                        ("aborts", TypeId::INT8),
                        ("time_travel_reads", TypeId::INT8),
                        ("group_commits", TypeId::INT8),
                        ("batched_records", TypeId::INT8),
                        ("pages_flushed_at_commit", TypeId::INT8),
                        ("sync_calls", TypeId::INT8),
                        ("commit_latency_hist", TypeId::TEXT),
                        ("active", TypeId::INT4),
                    ]),
                    vec![vec![
                        int8(x.commits.get()),
                        int8(x.aborts.get()),
                        int8(x.time_travel_reads.get()),
                        int8(x.group_commits.get()),
                        int8(x.batched_records.get()),
                        int8(x.pages_flushed_at_commit.get()),
                        int8(x.sync_calls.get()),
                        Datum::Text(format!("[{}]", lat_text.join(","))),
                        Datum::Int4(db.inner.xlog.active_set().len() as i32),
                    ]],
                ))
            }
            "pg_stat_wal" => {
                let w = &db.inner.stats.wal;
                Some((
                    Schema::new([
                        ("records_appended", TypeId::INT8),
                        ("bytes_appended", TypeId::INT8),
                        ("log_forces", TypeId::INT8),
                        ("checkpoints", TypeId::INT8),
                        ("ckpt_pages_drained", TypeId::INT8),
                        ("replayed_pages", TypeId::INT8),
                        ("replayed_records", TypeId::INT8),
                    ]),
                    vec![vec![
                        int8(w.records_appended.get()),
                        int8(w.bytes_appended.get()),
                        int8(w.log_forces.get()),
                        int8(w.checkpoints.get()),
                        int8(w.ckpt_pages_drained.get()),
                        int8(w.replayed_pages.get()),
                        int8(w.replayed_records.get()),
                    ]],
                ))
            }
            "pg_stat_relation" => {
                let s = &db.inner.stats;
                Some((
                    Schema::new([
                        ("heap_scans", TypeId::INT8),
                        ("heap_fetches", TypeId::INT8),
                        ("heap_appends", TypeId::INT8),
                        ("btree_searches", TypeId::INT8),
                        ("btree_inserts", TypeId::INT8),
                        ("btree_splits", TypeId::INT8),
                        ("btree_page_writes", TypeId::INT8),
                        ("vacuum_passes", TypeId::INT8),
                    ]),
                    vec![vec![
                        int8(s.heap.scans.get()),
                        int8(s.heap.fetches.get()),
                        int8(s.heap.appends.get()),
                        int8(s.btree.searches.get()),
                        int8(s.btree.inserts.get()),
                        int8(s.btree.splits.get()),
                        int8(s.btree.page_writes.get()),
                        int8(s.vacuum_passes.get()),
                    ]],
                ))
            }
            "pg_stat_io" => {
                let rows = db
                    .stats()
                    .devices
                    .into_iter()
                    .map(|d| {
                        vec![
                            Datum::Int4(d.device as i32),
                            Datum::Text(d.name),
                            int8(d.io_submitted),
                            int8(d.io_completed),
                            int8(d.io_batched_neighbors),
                            int8(d.io_elevator_passes),
                            int8(d.io_queue_depth_hw),
                            int8(d.io_barrier_waits),
                        ]
                    })
                    .collect();
                Some((
                    Schema::new([
                        ("device", TypeId::INT4),
                        ("name", TypeId::TEXT),
                        ("submitted", TypeId::INT8),
                        ("completed", TypeId::INT8),
                        ("batched_neighbors", TypeId::INT8),
                        ("elevator_passes", TypeId::INT8),
                        ("queue_depth_hw", TypeId::INT8),
                        ("barrier_waits", TypeId::INT8),
                    ]),
                    rows,
                ))
            }
            "pg_stat_device" => {
                let rows = db
                    .stats()
                    .devices
                    .into_iter()
                    .map(|d| {
                        vec![
                            Datum::Int4(d.device as i32),
                            Datum::Text(d.name),
                            int8(d.reads),
                            int8(d.writes),
                            int8(d.read_ns),
                            int8(d.write_ns),
                        ]
                    })
                    .collect();
                Some((
                    Schema::new([
                        ("device", TypeId::INT4),
                        ("name", TypeId::TEXT),
                        ("reads", TypeId::INT8),
                        ("writes", TypeId::INT8),
                        ("read_ns", TypeId::INT8),
                        ("write_ns", TypeId::INT8),
                    ]),
                    rows,
                ))
            }
            _ => db
                .virtual_table(name)
                .map(|t| (t.schema.clone(), (t.rows)())),
        }
    }

    /// Materializes the candidate rows for one `from` item, using an index
    /// when the qualification pins an indexed column to a literal.
    fn bind_from(&mut self, item: &FromItem, qual: Option<&Expr>) -> DbResult<BoundRel> {
        // Virtual system relations: rows are produced on the spot, not
        // fetched from a heap. They have no history — reject a time-travel
        // bracket rather than silently answering about the present.
        if let Some((schema, rows)) = self.bind_virtual(&item.rel) {
            if item.as_of.is_some() {
                return Err(DbError::Invalid(format!(
                    "virtual relation \"{}\" has no history (time-travel bracket not allowed)",
                    item.rel
                )));
            }
            return Ok(BoundRel {
                var: item.var.clone(),
                schema,
                rows: rows
                    .into_iter()
                    .enumerate()
                    .map(|(i, r)| (Tid::new((i >> 16) as u32, (i & 0xffff) as u16), r))
                    .collect(),
            });
        }
        let rel = self.db().relation_id(&item.rel)?;
        let schema = self.db().schema_of(rel)?;
        let snap = match &item.as_of {
            Some(e) => {
                let t = eval(self, &Binding::empty(), e)?.as_int()?;
                Some(Snapshot::AsOf(SimInstant::from_nanos(t.max(0) as u64)))
            }
            None => None,
        };

        // Index selection: look for `var.col = <literal>` conjuncts.
        if let Some(q) = qual {
            let mut eq_pins: Vec<(usize, Datum)> = Vec::new();
            collect_eq_pins(q, &item.var, &schema, &mut eq_pins);
            for (col, lit) in &eq_pins {
                if let Some(idx) = self.db().find_index(rel, &[*col]) {
                    let key = [coerce(lit.clone(), schema.columns[*col].ty)?];
                    let rows = match &snap {
                        Some(s) => self.index_scan_eq_with(idx, &key, s)?,
                        None => self.index_scan_eq(idx, &key)?,
                    };
                    return Ok(BoundRel {
                        var: item.var.clone(),
                        schema,
                        rows,
                    });
                }
            }
        }
        let rows = match &snap {
            Some(s) => self.scan_with_snapshot(rel, s)?,
            None => self.seq_scan(rel)?,
        };
        Ok(BoundRel {
            var: item.var.clone(),
            schema,
            rows,
        })
    }

    fn exec_retrieve(
        &mut self,
        targets: Vec<Target>,
        from: Vec<FromItem>,
        qual: Option<Expr>,
        sort: Vec<(String, bool)>,
    ) -> DbResult<QueryResult> {
        let aggregated = targets.iter().any(|t| is_aggregate(&t.expr));
        // Mixing aggregates with plain targets groups implicitly by the
        // plain ones (POSTQUEL's aggregate "by" semantics).
        let grouped = aggregated && !targets.iter().all(|t| is_aggregate(&t.expr));

        // Constant retrieve: no relations at all.
        if from.is_empty() && !targets_reference_columns(&targets) && !aggregated {
            let b = Binding::empty();
            let mut row = Vec::with_capacity(targets.len());
            for t in &targets {
                row.push(eval(self, &b, &t.expr)?);
            }
            return Ok(QueryResult {
                columns: targets.into_iter().map(|t| t.name).collect(),
                rows: vec![row],
                affected: 0,
            });
        }
        if from.is_empty() {
            return Err(DbError::Bind(
                "column references require a from clause".into(),
            ));
        }

        let bound: Vec<BoundRel> = from
            .iter()
            .map(|f| self.bind_from(f, qual.as_ref()))
            .collect::<DbResult<_>>()?;

        let mut aggs: Vec<Accumulator> = if aggregated && !grouped {
            targets
                .iter()
                .map(|t| Accumulator::for_target(&t.expr))
                .collect::<DbResult<_>>()?
        } else {
            Vec::new()
        };
        // Group mode: key bytes -> (key datums per plain target, accumulators
        // per aggregate target), insertion-ordered.
        let mut groups: Vec<(Vec<Datum>, Vec<Accumulator>)> = Vec::new();
        let mut group_index: std::collections::HashMap<Vec<u8>, usize> =
            std::collections::HashMap::new();

        // Nested-loop join over the bound relations. An empty relation
        // yields no combinations at all.
        let mut out_rows = Vec::new();
        if bound.iter().all(|b| !b.rows.is_empty()) {
            let mut cursor = vec![0usize; bound.len()];
            'outer: loop {
                {
                    let binding = Binding {
                        vars: bound
                            .iter()
                            .zip(&cursor)
                            .map(|(b, &i)| (b.var.as_str(), &b.schema, &b.rows[i].1))
                            .collect(),
                    };
                    let keep = match &qual {
                        Some(q) => eval(self, &binding, q)?.as_bool()?,
                        None => true,
                    };
                    if keep {
                        if grouped {
                            // Evaluate plain targets (the group key) and
                            // aggregate arguments under the same binding.
                            let mut key = Vec::new();
                            let mut arg_vals = Vec::new();
                            for t in &targets {
                                let binding = Binding {
                                    vars: bound
                                        .iter()
                                        .zip(&cursor)
                                        .map(|(b, &i)| (b.var.as_str(), &b.schema, &b.rows[i].1))
                                        .collect(),
                                };
                                if is_aggregate(&t.expr) {
                                    let Expr::Call { args, .. } = &t.expr else {
                                        return Err(DbError::Eval(
                                            "aggregate target is not a function call".into(),
                                        ));
                                    };
                                    let v = match args.first() {
                                        Some(a) => eval(self, &binding, a)?,
                                        None => Datum::Int8(1),
                                    };
                                    arg_vals.push(Some(v));
                                } else {
                                    key.push(eval(self, &binding, &t.expr)?);
                                    arg_vals.push(None);
                                }
                            }
                            let key_bytes = crate::datum::encode_row(&key);
                            let gi = match group_index.get(&key_bytes) {
                                Some(&gi) => gi,
                                None => {
                                    let accs = targets
                                        .iter()
                                        .filter(|t| is_aggregate(&t.expr))
                                        .map(|t| Accumulator::for_target(&t.expr))
                                        .collect::<DbResult<Vec<_>>>()?;
                                    groups.push((key, accs));
                                    group_index.insert(key_bytes, groups.len() - 1);
                                    groups.len() - 1
                                }
                            };
                            let accs = &mut groups[gi].1;
                            for (ai, v) in arg_vals.into_iter().flatten().enumerate() {
                                accs[ai].add(v)?;
                            }
                        } else if aggregated {
                            for (acc, t) in aggs.iter_mut().zip(&targets) {
                                let Expr::Call { args, .. } = &t.expr else {
                                    return Err(DbError::Eval(
                                        "aggregate target is not a function call".into(),
                                    ));
                                };
                                let v = match args.first() {
                                    Some(a) => {
                                        let binding = Binding {
                                            vars: bound
                                                .iter()
                                                .zip(&cursor)
                                                .map(|(b, &i)| {
                                                    (b.var.as_str(), &b.schema, &b.rows[i].1)
                                                })
                                                .collect(),
                                        };
                                        eval(self, &binding, a)?
                                    }
                                    None => Datum::Int8(1), // count() counts rows.
                                };
                                acc.add(v)?;
                            }
                        } else {
                            let mut row = Vec::with_capacity(targets.len());
                            for t in &targets {
                                let binding = Binding {
                                    vars: bound
                                        .iter()
                                        .zip(&cursor)
                                        .map(|(b, &i)| (b.var.as_str(), &b.schema, &b.rows[i].1))
                                        .collect(),
                                };
                                row.push(eval(self, &binding, &t.expr)?);
                            }
                            out_rows.push(row);
                        }
                    }
                }
                // Odometer increment.
                for i in (0..bound.len()).rev() {
                    cursor[i] += 1;
                    if cursor[i] < bound[i].rows.len() {
                        continue 'outer;
                    }
                    cursor[i] = 0;
                }
                break;
            }
        }
        if grouped {
            for (key, accs) in groups {
                let mut finished = accs.into_iter().map(Accumulator::finish);
                let mut key_it = key.into_iter();
                let row: Vec<Datum> = targets
                    .iter()
                    .map(|t| {
                        if is_aggregate(&t.expr) {
                            finished.next().expect("one accumulator per aggregate")
                        } else {
                            key_it.next().expect("one key datum per plain target")
                        }
                    })
                    .collect();
                out_rows.push(row);
            }
        } else if aggregated {
            out_rows = vec![aggs.into_iter().map(Accumulator::finish).collect()];
        }
        let columns: Vec<String> = targets.into_iter().map(|t| t.name).collect();
        sort_rows(&columns, &sort, &mut out_rows)?;
        Ok(QueryResult {
            columns,
            rows: out_rows,
            affected: 0,
        })
    }

    fn exec_append(
        &mut self,
        rel_name: &str,
        values: Vec<(String, Expr)>,
    ) -> DbResult<QueryResult> {
        let rel = self.db().relation_id(rel_name)?;
        let schema = self.db().schema_of(rel)?;
        let mut row = vec![Datum::Null; schema.len()];
        for (col, e) in &values {
            let i = schema
                .column_index(col)
                .ok_or_else(|| DbError::Bind(format!("no column \"{col}\" in {rel_name}")))?;
            let v = eval(self, &Binding::empty(), e)?;
            row[i] = coerce(v, schema.columns[i].ty)?;
        }
        self.insert(rel, row)?;
        Ok(QueryResult {
            affected: 1,
            ..Default::default()
        })
    }

    fn exec_delete(
        &mut self,
        var: &str,
        rel_name: &str,
        qual: Option<Expr>,
    ) -> DbResult<QueryResult> {
        let rel = self.db().relation_id(rel_name)?;
        let schema = self.db().schema_of(rel)?;
        let candidates = self.seq_scan(rel)?;
        let mut victims = Vec::new();
        for (tid, row) in &candidates {
            let binding = Binding::single(var, &schema, row);
            let keep = match &qual {
                Some(q) => eval(self, &binding, q)?.as_bool()?,
                None => true,
            };
            if keep {
                victims.push(*tid);
            }
        }
        let mut affected = 0;
        for tid in victims {
            if self.delete(rel, tid)? {
                affected += 1;
            }
        }
        Ok(QueryResult {
            affected,
            ..Default::default()
        })
    }

    fn exec_replace(
        &mut self,
        var: &str,
        rel_name: &str,
        values: Vec<(String, Expr)>,
        qual: Option<Expr>,
    ) -> DbResult<QueryResult> {
        let rel = self.db().relation_id(rel_name)?;
        let schema = self.db().schema_of(rel)?;
        let candidates = self.seq_scan(rel)?;
        let mut updates = Vec::new();
        for (tid, row) in &candidates {
            let binding = Binding::single(var, &schema, row);
            let keep = match &qual {
                Some(q) => eval(self, &binding, q)?.as_bool()?,
                None => true,
            };
            if !keep {
                continue;
            }
            let mut new_row = row.clone();
            for (col, e) in &values {
                let i = schema
                    .column_index(col)
                    .ok_or_else(|| DbError::Bind(format!("no column \"{col}\" in {rel_name}")))?;
                let v = eval(self, &binding, e)?;
                new_row[i] = coerce(v, schema.columns[i].ty)?;
            }
            updates.push((*tid, new_row));
        }
        let affected = updates.len();
        for (tid, new_row) in updates {
            self.update(rel, tid, new_row)?;
        }
        Ok(QueryResult {
            affected,
            ..Default::default()
        })
    }
}

/// Aggregate function names reserved by the executor.
const AGGREGATES: [&str; 5] = ["count", "sum", "avg", "min", "max"];

fn is_aggregate(e: &Expr) -> bool {
    matches!(e, Expr::Call { name, .. }
        if AGGREGATES.iter().any(|a| name.eq_ignore_ascii_case(a)))
}

/// Running state for one aggregate target.
enum Accumulator {
    Count(i64),
    Sum(f64, bool),      // (sum, any_float)
    Avg(f64, i64, bool), // (sum, n, any_float)
    Min(Option<Datum>),
    Max(Option<Datum>),
}

impl Accumulator {
    fn for_target(e: &Expr) -> DbResult<Accumulator> {
        let Expr::Call { name, args } = e else {
            return Err(DbError::Bind("not an aggregate".into()));
        };
        if args.len() > 1 {
            return Err(DbError::Bind(format!("{name} takes at most one argument")));
        }
        Ok(match name.to_ascii_lowercase().as_str() {
            "count" => Accumulator::Count(0),
            "sum" => Accumulator::Sum(0.0, false),
            "avg" => Accumulator::Avg(0.0, 0, false),
            "min" => Accumulator::Min(None),
            "max" => Accumulator::Max(None),
            other => return Err(DbError::Bind(format!("unknown aggregate {other}"))),
        })
    }

    fn add(&mut self, v: Datum) -> DbResult<()> {
        if v == Datum::Null {
            return Ok(()); // Nulls do not participate, SQL-style.
        }
        match self {
            Accumulator::Count(n) => *n += 1,
            Accumulator::Sum(sum, float) => {
                *float |= matches!(v, Datum::Float8(_));
                *sum += v.as_float()?;
            }
            Accumulator::Avg(sum, n, float) => {
                *float |= matches!(v, Datum::Float8(_));
                *sum += v.as_float()?;
                *n += 1;
            }
            Accumulator::Min(cur) => {
                let better = cur
                    .as_ref()
                    .map(|c| v.cmp_total(c) == std::cmp::Ordering::Less)
                    .unwrap_or(true);
                if better {
                    *cur = Some(v);
                }
            }
            Accumulator::Max(cur) => {
                let better = cur
                    .as_ref()
                    .map(|c| v.cmp_total(c) == std::cmp::Ordering::Greater)
                    .unwrap_or(true);
                if better {
                    *cur = Some(v);
                }
            }
        }
        Ok(())
    }

    fn finish(self) -> Datum {
        match self {
            Accumulator::Count(n) => Datum::Int8(n),
            Accumulator::Sum(sum, true) => Datum::Float8(sum),
            Accumulator::Sum(sum, false) => Datum::Int8(sum as i64),
            Accumulator::Avg(_, 0, _) => Datum::Null,
            Accumulator::Avg(sum, n, _) => Datum::Float8(sum / n as f64),
            Accumulator::Min(v) | Accumulator::Max(v) => v.unwrap_or(Datum::Null),
        }
    }
}

/// Sorts result rows by the named output columns.
fn sort_rows(columns: &[String], sort: &[(String, bool)], rows: &mut [Row]) -> DbResult<()> {
    if sort.is_empty() {
        return Ok(());
    }
    let mut keys = Vec::with_capacity(sort.len());
    for (name, desc) in sort {
        let i = columns
            .iter()
            .position(|c| c == name)
            .ok_or_else(|| DbError::Bind(format!("sort by unknown column \"{name}\"")))?;
        keys.push((i, *desc));
    }
    rows.sort_by(|a, b| {
        for &(i, desc) in &keys {
            let ord = a[i].cmp_total(&b[i]);
            let ord = if desc { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(())
}

/// Collects `var.col = literal` (or `literal = var.col`) conjuncts usable
/// for index selection.
fn collect_eq_pins(e: &Expr, var: &str, schema: &Schema, out: &mut Vec<(usize, Datum)>) {
    match e {
        Expr::Binary {
            op: BinOp::And,
            lhs,
            rhs,
        } => {
            collect_eq_pins(lhs, var, schema, out);
            collect_eq_pins(rhs, var, schema, out);
        }
        Expr::Binary {
            op: BinOp::Eq,
            lhs,
            rhs,
        } => {
            let sides = [(lhs, rhs), (rhs, lhs)];
            for (col_side, lit_side) in sides {
                if let (Expr::Column { var: v, attr }, Expr::Lit(d)) =
                    (col_side.as_ref(), lit_side.as_ref())
                {
                    let applies = match v {
                        Some(v) => v == var,
                        None => true,
                    };
                    if applies {
                        if let Some(i) = schema.column_index(attr) {
                            out.push((i, d.clone()));
                            return;
                        }
                    }
                }
            }
        }
        _ => {}
    }
}

fn targets_reference_columns(targets: &[Target]) -> bool {
    fn walk(e: &Expr) -> bool {
        match e {
            Expr::Column { .. } => true,
            Expr::Lit(_) => false,
            Expr::Call { args, .. } => args.iter().any(walk),
            Expr::Binary { lhs, rhs, .. } => walk(lhs) || walk(rhs),
            Expr::Not(e) | Expr::Neg(e) => walk(e),
        }
    }
    targets.iter().any(|t| walk(&t.expr))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datum::TypeId;
    use crate::db::Db;

    fn setup() -> Db {
        let db = Db::open_in_memory().unwrap();
        db.create_table(
            "emp",
            Schema::new([
                ("name", TypeId::TEXT),
                ("age", TypeId::INT4),
                ("dept", TypeId::TEXT),
            ]),
        )
        .unwrap();
        let mut s = db.begin().unwrap();
        for (n, a, d) in [
            ("mao", 29, "db"),
            ("mike", 45, "db"),
            ("margo", 35, "fs"),
            ("randy", 40, "arch"),
        ] {
            s.query(&format!(
                r#"append emp (name = "{n}", age = {a}, dept = "{d}")"#
            ))
            .unwrap();
        }
        s.commit().unwrap();
        db
    }

    #[test]
    fn retrieve_constant() {
        let db = Db::open_in_memory().unwrap();
        let mut s = db.begin().unwrap();
        let r = s
            .query("retrieve (two = 1 + 1, greeting = \"hi\")")
            .unwrap();
        assert_eq!(r.columns, vec!["two", "greeting"]);
        assert_eq!(r.rows, vec![vec![Datum::Int8(2), Datum::Text("hi".into())]]);
        s.commit().unwrap();
    }

    #[test]
    fn retrieve_with_qual() {
        let db = setup();
        let mut s = db.begin().unwrap();
        let r = s
            .query(r#"retrieve (e.name) from e in emp where e.age > 34 and e.dept = "db""#)
            .unwrap();
        assert_eq!(r.rows, vec![vec![Datum::Text("mike".into())]]);
        s.commit().unwrap();
    }

    #[test]
    fn retrieve_unqualified_single_rel() {
        let db = setup();
        let mut s = db.begin().unwrap();
        let r = s
            .query(r#"retrieve (name, age) from e in emp where age < 30"#)
            .unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], Datum::Text("mao".into()));
        s.commit().unwrap();
    }

    #[test]
    fn join_two_relations() {
        let db = setup();
        db.create_table(
            "dept",
            Schema::new([("dname", TypeId::TEXT), ("floor", TypeId::INT4)]),
        )
        .unwrap();
        let mut s = db.begin().unwrap();
        s.query(r#"append dept (dname = "db", floor = 4)"#).unwrap();
        s.query(r#"append dept (dname = "fs", floor = 5)"#).unwrap();
        let r = s
            .query(
                "retrieve (e.name, d.floor) from e in emp, d in dept \
                 where e.dept = d.dname and d.floor = 4",
            )
            .unwrap();
        let mut names: Vec<String> = r
            .rows
            .iter()
            .map(|row| row[0].as_text().unwrap().to_string())
            .collect();
        names.sort();
        assert_eq!(names, vec!["mao", "mike"]);
        s.commit().unwrap();
    }

    #[test]
    fn index_used_for_equality_pin() {
        let db = setup();
        let rel = db.relation_id("emp").unwrap();
        db.create_index("emp_name", rel, &["name"]).unwrap();
        let before = db.buffer_stats();
        let mut s = db.begin().unwrap();
        let r = s
            .query(r#"retrieve (e.age) from e in emp where e.name = "randy""#)
            .unwrap();
        assert_eq!(r.rows, vec![vec![Datum::Int4(40)]]);
        s.commit().unwrap();
        // Weak but real signal that we did not scan every heap page: the
        // index path touches the btree meta+root and one heap page.
        let after = db.buffer_stats();
        assert!(after.hits + after.misses > before.hits + before.misses);
    }

    #[test]
    fn delete_and_replace() {
        let db = setup();
        let mut s = db.begin().unwrap();
        let r = s
            .query(r#"delete e from e in emp where e.age >= 40"#)
            .unwrap();
        assert_eq!(r.affected, 2);
        let r = s
            .query(r#"replace e (age = e.age + 1) from e in emp where e.dept = "db""#)
            .unwrap();
        assert_eq!(r.affected, 1); // Only mao remains in db.
        let r = s.query("retrieve (e.name, e.age) from e in emp").unwrap();
        assert_eq!(r.rows.len(), 2);
        s.commit().unwrap();

        let mut s = db.begin().unwrap();
        let r = s
            .query(r#"retrieve (e.age) from e in emp where e.name = "mao""#)
            .unwrap();
        assert_eq!(r.rows, vec![vec![Datum::Int4(30)]]);
        s.commit().unwrap();
    }

    #[test]
    fn time_travel_bracket_in_from() {
        let db = setup();
        let t0 = db.now().as_nanos();
        let mut s = db.begin().unwrap();
        s.query(r#"delete e from e in emp"#).unwrap();
        s.commit().unwrap();

        let mut s = db.begin().unwrap();
        let r = s.query("retrieve (e.name) from e in emp").unwrap();
        assert!(r.rows.is_empty());
        let r = s
            .query(&format!("retrieve (e.name) from e in emp[{t0}]"))
            .unwrap();
        assert_eq!(r.rows.len(), 4, "historical scan sees the old rows");
        s.commit().unwrap();
    }

    #[test]
    fn define_statements() {
        let db = setup();
        let mut s = db.begin().unwrap();
        s.query("define type tm").unwrap();
        db.functions()
            .register("t.const", |_s, _a| Ok(Datum::Int8(7)));
        s.query(r#"define function seven (0) returns int8 as "t.const""#)
            .unwrap();
        let r = s.query("retrieve (x = seven())").unwrap();
        assert_eq!(r.rows[0][0], Datum::Int8(7));
        s.query(r#"define rule cold on periodic to emp where age > 100 do seven()"#)
            .unwrap();
        s.commit().unwrap();
        assert_eq!(db.catalog().rules().len(), 1);
    }

    #[test]
    fn append_missing_column_defaults_null() {
        let db = setup();
        let mut s = db.begin().unwrap();
        s.query(r#"append emp (name = "ghost")"#).unwrap();
        let r = s
            .query(r#"retrieve (e.age) from e in emp where e.name = "ghost""#)
            .unwrap();
        assert_eq!(r.rows, vec![vec![Datum::Null]]);
        s.commit().unwrap();
    }

    #[test]
    fn errors_reported() {
        let db = setup();
        let mut s = db.begin().unwrap();
        assert!(matches!(
            s.query("retrieve (x.y) from x in nope"),
            Err(DbError::NotFound(_))
        ));
        assert!(matches!(
            s.query("append emp (salary = 1)"),
            Err(DbError::Bind(_))
        ));
        assert!(matches!(s.query("retrieve (zzz)"), Err(DbError::Bind(_))));
        s.abort().unwrap();
    }

    #[test]
    fn result_table_rendering() {
        let db = setup();
        let mut s = db.begin().unwrap();
        let r = s
            .query(r#"retrieve (e.name, e.age) from e in emp where e.age = 29"#)
            .unwrap();
        let table = r.to_table();
        assert!(table.contains("name"));
        assert!(table.contains("mao"));
        assert!(table.contains("(1 rows)"));
        let r = s
            .query(r#"delete e from e in emp where e.age = 29"#)
            .unwrap();
        assert!(r.to_table().contains("(1 rows affected)"));
        s.commit().unwrap();
    }
}

#[cfg(test)]
mod agg_tests {
    use super::*;
    use crate::datum::TypeId;
    use crate::db::Db;

    fn setup() -> Db {
        let db = Db::open_in_memory().unwrap();
        db.create_table(
            "emp",
            Schema::new([
                ("name", TypeId::TEXT),
                ("age", TypeId::INT4),
                ("dept", TypeId::TEXT),
            ]),
        )
        .unwrap();
        let mut s = db.begin().unwrap();
        for (n, a, d) in [
            ("mao", 29, "db"),
            ("mike", 45, "db"),
            ("margo", 35, "fs"),
            ("randy", 40, "arch"),
            ("wei", 31, "db"),
        ] {
            s.query(&format!(
                r#"append emp (name = "{n}", age = {a}, dept = "{d}")"#
            ))
            .unwrap();
        }
        s.commit().unwrap();
        db
    }

    #[test]
    fn count_sum_avg_min_max() {
        let db = setup();
        let mut s = db.begin().unwrap();
        let r = s
            .query("retrieve (n = count(), s = sum(e.age), a = avg(e.age), lo = min(e.age), hi = max(e.age)) from e in emp")
            .unwrap();
        assert_eq!(
            r.rows,
            vec![vec![
                Datum::Int8(5),
                Datum::Int8(180),
                Datum::Float8(36.0),
                Datum::Int4(29),
                Datum::Int4(45),
            ]]
        );
        s.commit().unwrap();
    }

    #[test]
    fn aggregates_respect_quals() {
        let db = setup();
        let mut s = db.begin().unwrap();
        let r = s
            .query(r#"retrieve (n = count(), a = avg(e.age)) from e in emp where e.dept = "db""#)
            .unwrap();
        assert_eq!(r.rows[0][0], Datum::Int8(3));
        assert_eq!(r.rows[0][1], Datum::Float8(35.0));
        s.commit().unwrap();
    }

    #[test]
    fn aggregates_over_empty_set() {
        let db = setup();
        let mut s = db.begin().unwrap();
        let r = s
            .query("retrieve (n = count(), a = avg(e.age), lo = min(e.age)) from e in emp where e.age > 100")
            .unwrap();
        assert_eq!(r.rows, vec![vec![Datum::Int8(0), Datum::Null, Datum::Null]]);
        s.commit().unwrap();
    }

    #[test]
    fn mixing_aggregates_and_columns_groups_implicitly() {
        let db = setup();
        let mut s = db.begin().unwrap();
        let r = s
            .query("retrieve (e.dept, n = count(), a = avg(e.age)) from e in emp sort by dept")
            .unwrap();
        assert_eq!(
            r.rows,
            vec![
                vec![
                    Datum::Text("arch".into()),
                    Datum::Int8(1),
                    Datum::Float8(40.0)
                ],
                vec![
                    Datum::Text("db".into()),
                    Datum::Int8(3),
                    Datum::Float8(35.0)
                ],
                vec![
                    Datum::Text("fs".into()),
                    Datum::Int8(1),
                    Datum::Float8(35.0)
                ],
            ]
        );
        // Aggregate-before-key column order works too.
        let r = s
            .query("retrieve (hi = max(e.age), e.dept) from e in emp sort by dept")
            .unwrap();
        assert_eq!(r.rows[1], vec![Datum::Int4(45), Datum::Text("db".into())]);
        // A group over an empty qualification yields no rows.
        let r = s
            .query("retrieve (e.dept, n = count()) from e in emp where e.age > 100")
            .unwrap();
        assert!(r.rows.is_empty());
        s.abort().unwrap();
    }

    #[test]
    fn sort_by_orders_output() {
        let db = setup();
        let mut s = db.begin().unwrap();
        let r = s
            .query("retrieve (e.name, e.age) from e in emp sort by age")
            .unwrap();
        let ages: Vec<i64> = r.rows.iter().map(|row| row[1].as_int().unwrap()).collect();
        assert_eq!(ages, vec![29, 31, 35, 40, 45]);
        let r = s
            .query("retrieve (e.name, e.age) from e in emp sort by age desc")
            .unwrap();
        assert_eq!(r.rows[0][0], Datum::Text("mike".into()));
        s.commit().unwrap();
    }

    #[test]
    fn sort_by_multiple_keys_and_errors() {
        let db = setup();
        let mut s = db.begin().unwrap();
        let r = s
            .query("retrieve (e.dept, e.name) from e in emp sort by dept asc, name desc")
            .unwrap();
        let pairs: Vec<(String, String)> = r
            .rows
            .iter()
            .map(|row| {
                (
                    row[0].as_text().unwrap().to_string(),
                    row[1].as_text().unwrap().to_string(),
                )
            })
            .collect();
        assert_eq!(pairs[0].0, "arch");
        // Within "db", names descend.
        let db_names: Vec<&str> = pairs
            .iter()
            .filter(|(d, _)| d == "db")
            .map(|(_, n)| n.as_str())
            .collect();
        assert_eq!(db_names, vec!["wei", "mike", "mao"]);
        assert!(matches!(
            s.query("retrieve (e.name) from e in emp sort by salary"),
            Err(DbError::Bind(_))
        ));
        s.commit().unwrap();
    }

    #[test]
    fn count_with_argument_skips_nulls() {
        let db = setup();
        let mut s = db.begin().unwrap();
        s.query(r#"append emp (name = "ghost")"#).unwrap(); // age is null
        let r = s
            .query("retrieve (n = count(e.age)) from e in emp")
            .unwrap();
        assert_eq!(r.rows[0][0], Datum::Int8(5));
        let r = s.query("retrieve (n = count()) from e in emp").unwrap();
        assert_eq!(r.rows[0][0], Datum::Int8(6));
        s.commit().unwrap();
    }
}

#[cfg(test)]
mod into_tests {
    use super::*;
    use crate::datum::TypeId;
    use crate::db::Db;

    #[test]
    fn retrieve_into_materializes_a_table() {
        let db = Db::open_in_memory().unwrap();
        db.create_table(
            "emp",
            Schema::new([("name", TypeId::TEXT), ("age", TypeId::INT4)]),
        )
        .unwrap();
        let mut s = db.begin().unwrap();
        for (n, a) in [("mao", 29), ("mike", 45), ("margo", 35)] {
            s.query(&format!(r#"append emp (name = "{n}", age = {a})"#))
                .unwrap();
        }
        let r = s
            .query(r#"retrieve into elders (e.name, e.age) from e in emp where e.age > 30 sort by age"#)
            .unwrap();
        assert_eq!(r.affected, 2);
        let rows = s
            .query("retrieve (x.name) from x in elders sort by name")
            .unwrap();
        assert_eq!(
            rows.rows,
            vec![
                vec![Datum::Text("margo".into())],
                vec![Datum::Text("mike".into())]
            ]
        );
        s.commit().unwrap();
        // The new table is a first-class relation with the right schema.
        let rel = db.relation_id("elders").unwrap();
        let schema = db.schema_of(rel).unwrap();
        assert_eq!(schema.columns[1].ty, TypeId::INT4);
    }

    #[test]
    fn retrieve_into_existing_name_fails() {
        let db = Db::open_in_memory().unwrap();
        db.create_table("t", Schema::new([("v", TypeId::INT4)]))
            .unwrap();
        let mut s = db.begin().unwrap();
        s.query("append t (v = 1)").unwrap();
        assert!(matches!(
            s.query("retrieve into t (e.v) from e in t"),
            Err(DbError::AlreadyExists(_))
        ));
        s.abort().unwrap();
    }

    #[test]
    fn retrieve_into_with_aggregates() {
        let db = Db::open_in_memory().unwrap();
        db.create_table("t", Schema::new([("v", TypeId::INT4)]))
            .unwrap();
        let mut s = db.begin().unwrap();
        for v in [1, 2, 3] {
            s.query(&format!("append t (v = {v})")).unwrap();
        }
        s.query("retrieve into summary (n = count(), total = sum(e.v)) from e in t")
            .unwrap();
        let r = s
            .query("retrieve (x.n, x.total) from x in summary")
            .unwrap();
        assert_eq!(r.rows, vec![vec![Datum::Int8(3), Datum::Int8(6)]]);
        s.commit().unwrap();
    }
}
