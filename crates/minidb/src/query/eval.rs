//! Expression evaluation.

use crate::datum::{Datum, Row, Schema, TypeId};
use crate::db::Session;
use crate::error::{DbError, DbResult};

use super::ast::{BinOp, Expr};

/// Variable bindings during evaluation: each range variable with its schema
/// and current row.
#[derive(Default)]
pub struct Binding<'a> {
    /// `(var, schema, row)` triples.
    pub vars: Vec<(&'a str, &'a Schema, &'a Row)>,
}

impl<'a> Binding<'a> {
    /// An empty binding (expression-only evaluation).
    pub fn empty() -> Binding<'a> {
        Binding { vars: Vec::new() }
    }

    /// A binding over a single range variable.
    pub fn single(var: &'a str, schema: &'a Schema, row: &'a Row) -> Binding<'a> {
        Binding {
            vars: vec![(var, schema, row)],
        }
    }

    fn resolve(&self, var: Option<&str>, attr: &str) -> DbResult<Datum> {
        match var {
            Some(v) => {
                for (name, schema, row) in &self.vars {
                    if *name == v {
                        let i = schema.column_index(attr).ok_or_else(|| {
                            DbError::Bind(format!("no column \"{attr}\" in range of {v}"))
                        })?;
                        return Ok(row[i].clone());
                    }
                }
                Err(DbError::Bind(format!("unknown range variable \"{v}\"")))
            }
            None => {
                let mut found = None;
                for (name, schema, row) in &self.vars {
                    if let Some(i) = schema.column_index(attr) {
                        if found.is_some() {
                            return Err(DbError::Bind(format!(
                                "ambiguous column \"{attr}\" (qualify with a range variable)"
                            )));
                        }
                        found = Some((name, row[i].clone()));
                    }
                }
                found
                    .map(|(_, d)| d)
                    .ok_or_else(|| DbError::Bind(format!("unknown column \"{attr}\"")))
            }
        }
    }
}

/// Evaluates `e` under `binding`, using `session` for function calls.
pub fn eval(session: &mut Session, binding: &Binding<'_>, e: &Expr) -> DbResult<Datum> {
    match e {
        Expr::Lit(d) => Ok(d.clone()),
        Expr::Column { var, attr } => binding.resolve(var.as_deref(), attr),
        Expr::Neg(inner) => match eval(session, binding, inner)? {
            Datum::Int4(v) => Ok(Datum::Int4(-v)),
            Datum::Int8(v) => Ok(Datum::Int8(-v)),
            Datum::Float8(v) => Ok(Datum::Float8(-v)),
            other => Err(DbError::Eval(format!("cannot negate {other:?}"))),
        },
        Expr::Not(inner) => Ok(Datum::Bool(!eval(session, binding, inner)?.as_bool()?)),
        Expr::Call { name, args } => {
            if name.eq_ignore_ascii_case("now") && args.is_empty() {
                return Ok(Datum::Time(session.db().now().as_nanos()));
            }
            let f = session.db().resolve_function(name)?;
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval(session, binding, a)?);
            }
            f.call(session, &vals)
        }
        Expr::Binary { op, lhs, rhs } => {
            // Short-circuit logical operators.
            match op {
                BinOp::And => {
                    return Ok(Datum::Bool(
                        eval(session, binding, lhs)?.as_bool()?
                            && eval(session, binding, rhs)?.as_bool()?,
                    ))
                }
                BinOp::Or => {
                    return Ok(Datum::Bool(
                        eval(session, binding, lhs)?.as_bool()?
                            || eval(session, binding, rhs)?.as_bool()?,
                    ))
                }
                _ => {}
            }
            let l = eval(session, binding, lhs)?;
            let r = eval(session, binding, rhs)?;
            binop(*op, l, r)
        }
    }
}

fn binop(op: BinOp, l: Datum, r: Datum) -> DbResult<Datum> {
    use std::cmp::Ordering;
    match op {
        // `eval` short-circuits these before calling `binop`; reaching here
        // means a caller bypassed it, which is a plain evaluation error.
        BinOp::And | BinOp::Or => Err(DbError::Eval("and/or are not scalar operators".into())),
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            // Comparisons against null are false (two-valued simplification).
            if l == Datum::Null || r == Datum::Null {
                return Ok(Datum::Bool(false));
            }
            let ord = l.cmp_total(&r);
            Ok(Datum::Bool(match op {
                BinOp::Eq => ord == Ordering::Equal,
                BinOp::Ne => ord != Ordering::Equal,
                BinOp::Lt => ord == Ordering::Less,
                BinOp::Le => ord != Ordering::Greater,
                BinOp::Gt => ord == Ordering::Greater,
                // The outer arm admits only the six comparison operators.
                _ => ord != Ordering::Less,
            }))
        }
        BinOp::In => match (&l, &r) {
            // Null on either side: false, like the comparison operators.
            (Datum::Null, _) | (_, Datum::Null) => Ok(Datum::Bool(false)),
            // "RISC" in keywords(file): substring / word membership.
            (Datum::Text(needle), Datum::Text(hay)) => Ok(Datum::Bool(hay.contains(needle))),
            (Datum::Bytes(needle), Datum::Bytes(hay)) => Ok(Datum::Bool(
                hay.windows(needle.len().max(1)).any(|w| w == &needle[..]),
            )),
            _ => Err(DbError::Eval(format!(
                "bad operands for `in`: {l:?}, {r:?}"
            ))),
        },
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
            let float = matches!(l, Datum::Float8(_)) || matches!(r, Datum::Float8(_));
            if float {
                let (a, b) = (l.as_float()?, r.as_float()?);
                let v = match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    // The outer arm admits only the four arithmetic
                    // operators, so the remaining case is division.
                    _ => {
                        if b == 0.0 {
                            return Err(DbError::Eval("division by zero".into()));
                        }
                        a / b
                    }
                };
                Ok(Datum::Float8(v))
            } else {
                let (a, b) = (l.as_int()?, r.as_int()?);
                let v = match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    _ => {
                        if b == 0 {
                            return Err(DbError::Eval("division by zero".into()));
                        }
                        // i64::MIN / -1 overflows; wrap like the other ops.
                        a.wrapping_div(b)
                    }
                };
                Ok(Datum::Int8(v))
            }
        }
    }
}

/// Coerces a computed datum to a column's declared type where a lossless
/// conversion exists (integer literals are `int8` by default but columns are
/// often `int4`, `oid`, or `time`).
pub fn coerce(d: Datum, ty: TypeId) -> DbResult<Datum> {
    let d2 = match (&d, ty) {
        (Datum::Null, _) => Datum::Null,
        (Datum::Int8(v), TypeId::INT4) => {
            let v32 = i32::try_from(*v)
                .map_err(|_| DbError::Eval(format!("{v} out of range for int4")))?;
            Datum::Int4(v32)
        }
        (Datum::Int4(v), TypeId::INT8) => Datum::Int8(*v as i64),
        (Datum::Int8(v), TypeId::OID) => {
            let o = u32::try_from(*v)
                .map_err(|_| DbError::Eval(format!("{v} out of range for oid")))?;
            Datum::Oid(o)
        }
        (Datum::Int4(v), TypeId::OID) => {
            let o = u32::try_from(*v)
                .map_err(|_| DbError::Eval(format!("{v} out of range for oid")))?;
            Datum::Oid(o)
        }
        (Datum::Oid(v), TypeId::INT8) => Datum::Int8(*v as i64),
        (Datum::Int8(v), TypeId::TIME) => {
            let t = u64::try_from(*v)
                .map_err(|_| DbError::Eval(format!("{v} out of range for time")))?;
            Datum::Time(t)
        }
        (Datum::Int8(v), TypeId::FLOAT8) => Datum::Float8(*v as f64),
        (Datum::Int4(v), TypeId::FLOAT8) => Datum::Float8(*v as f64),
        _ => d,
    };
    Ok(d2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::Db;
    use crate::query::parser::parse_expr;

    fn eval_str(src: &str) -> DbResult<Datum> {
        let db = Db::open_in_memory().unwrap();
        let mut s = db.begin().unwrap();
        let e = parse_expr(src)?;
        let out = eval(&mut s, &Binding::empty(), &e);
        s.abort().unwrap();
        out
    }

    #[test]
    fn arithmetic() {
        assert_eq!(eval_str("1 + 2 * 3").unwrap(), Datum::Int8(7));
        assert_eq!(eval_str("10 / 4").unwrap(), Datum::Int8(2));
        assert_eq!(eval_str("10 / 4.0").unwrap(), Datum::Float8(2.5));
        assert_eq!(eval_str("-(3) + 1").unwrap(), Datum::Int8(-2));
        assert!(eval_str("1 / 0").is_err());
        assert!(eval_str("1.0 / 0").is_err());
    }

    #[test]
    fn comparisons_and_logic() {
        assert_eq!(eval_str("1 < 2 and 2 < 3").unwrap(), Datum::Bool(true));
        assert_eq!(eval_str("1 > 2 or 3 >= 3").unwrap(), Datum::Bool(true));
        assert_eq!(eval_str("not (1 = 1)").unwrap(), Datum::Bool(false));
        assert_eq!(eval_str(r#""abc" != "abd""#).unwrap(), Datum::Bool(true));
        assert_eq!(eval_str("null = null").unwrap(), Datum::Bool(false));
    }

    #[test]
    fn in_operator_is_substring() {
        assert_eq!(
            eval_str(r#""RISC" in "RISC, pipeline, cache""#).unwrap(),
            Datum::Bool(true)
        );
        assert_eq!(
            eval_str(r#""CISC" in "RISC, pipeline""#).unwrap(),
            Datum::Bool(false)
        );
        assert!(eval_str(r#"1 in "x""#).is_err());
    }

    #[test]
    fn short_circuit_avoids_rhs_errors() {
        assert_eq!(
            eval_str("false and (1 / 0 = 1)").unwrap(),
            Datum::Bool(false)
        );
        assert_eq!(eval_str("true or (1 / 0 = 1)").unwrap(), Datum::Bool(true));
    }

    #[test]
    fn column_resolution() {
        let db = Db::open_in_memory().unwrap();
        let mut s = db.begin().unwrap();
        let schema = Schema::new([("name", TypeId::TEXT), ("age", TypeId::INT4)]);
        let row = vec![Datum::Text("mao".into()), Datum::Int4(29)];
        let b = Binding::single("e", &schema, &row);
        let e = parse_expr("e.age + 1").unwrap();
        assert_eq!(eval(&mut s, &b, &e).unwrap(), Datum::Int8(30));
        let e = parse_expr("age + 1").unwrap(); // Unqualified.
        assert_eq!(eval(&mut s, &b, &e).unwrap(), Datum::Int8(30));
        let e = parse_expr("e.salary").unwrap();
        assert!(eval(&mut s, &b, &e).is_err());
        let e = parse_expr("q.age").unwrap();
        assert!(eval(&mut s, &b, &e).is_err());
        s.abort().unwrap();
    }

    #[test]
    fn ambiguous_unqualified_column_is_an_error() {
        let db = Db::open_in_memory().unwrap();
        let mut s = db.begin().unwrap();
        let schema = Schema::new([("file", TypeId::OID)]);
        let r1 = vec![Datum::Oid(1)];
        let r2 = vec![Datum::Oid(2)];
        let b = Binding {
            vars: vec![("n", &schema, &r1), ("a", &schema, &r2)],
        };
        let e = parse_expr("file").unwrap();
        assert!(matches!(eval(&mut s, &b, &e), Err(DbError::Bind(_))));
        let e = parse_expr("n.file").unwrap();
        assert_eq!(eval(&mut s, &b, &e).unwrap(), Datum::Oid(1));
        s.abort().unwrap();
    }

    #[test]
    fn now_pseudo_function() {
        let db = Db::open_in_memory().unwrap();
        let mut s = db.begin().unwrap();
        let e = parse_expr("now()").unwrap();
        let v = eval(&mut s, &Binding::empty(), &e).unwrap();
        assert!(matches!(v, Datum::Time(_)));
        s.abort().unwrap();
    }

    #[test]
    fn registered_functions_callable() {
        let db = Db::open_in_memory().unwrap();
        db.functions()
            .register("t.sq", |_s, a| Ok(Datum::Int8(a[0].as_int()?.pow(2))));
        db.define_function("sq", 1, TypeId::INT8, "t.sq", None)
            .unwrap();
        let mut s = db.begin().unwrap();
        let e = parse_expr("sq(7)").unwrap();
        assert_eq!(
            eval(&mut s, &Binding::empty(), &e).unwrap(),
            Datum::Int8(49)
        );
        let e = parse_expr("missing(7)").unwrap();
        assert!(eval(&mut s, &Binding::empty(), &e).is_err());
        s.abort().unwrap();
    }

    #[test]
    fn coercions() {
        assert_eq!(
            coerce(Datum::Int8(5), TypeId::INT4).unwrap(),
            Datum::Int4(5)
        );
        assert_eq!(coerce(Datum::Int8(5), TypeId::OID).unwrap(), Datum::Oid(5));
        assert_eq!(
            coerce(Datum::Int8(5), TypeId::TIME).unwrap(),
            Datum::Time(5)
        );
        assert_eq!(
            coerce(Datum::Int4(5), TypeId::INT8).unwrap(),
            Datum::Int8(5)
        );
        assert_eq!(
            coerce(Datum::Int8(5), TypeId::FLOAT8).unwrap(),
            Datum::Float8(5.0)
        );
        assert!(coerce(Datum::Int8(-1), TypeId::OID).is_err());
        assert!(coerce(Datum::Int8(i64::MAX), TypeId::INT4).is_err());
        // Unrelated types pass through unchanged.
        assert_eq!(
            coerce(Datum::Text("x".into()), TypeId::INT4).unwrap(),
            Datum::Text("x".into())
        );
    }
}
