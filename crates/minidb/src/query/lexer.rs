//! Tokenizer for the POSTQUEL-flavoured query language.

use crate::error::{DbError, DbResult};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (keywords are recognized by the parser).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Double-quoted string literal.
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// End of input.
    Eof,
}

/// Tokenizes `input`.
pub fn lex(input: &str) -> DbResult<Vec<Token>> {
    let mut out = Vec::new();
    let bytes: Vec<char> = input.chars().collect();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            '[' => {
                out.push(Token::LBracket);
                i += 1;
            }
            ']' => {
                out.push(Token::RBracket);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '.' => {
                out.push(Token::Dot);
                i += 1;
            }
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '-' => {
                out.push(Token::Minus);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '/' => {
                out.push(Token::Slash);
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&'=') {
                    out.push(Token::Ne);
                    i += 2;
                } else {
                    return Err(DbError::Parse("stray '!'".into()));
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&'=') {
                    out.push(Token::Le);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&'=') {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '"' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => return Err(DbError::Parse("unterminated string".into())),
                        Some('"') => {
                            i += 1;
                            break;
                        }
                        Some('\\') => {
                            match bytes.get(i + 1) {
                                Some('"') => s.push('"'),
                                Some('\\') => s.push('\\'),
                                Some('n') => s.push('\n'),
                                other => {
                                    return Err(DbError::Parse(format!(
                                        "bad escape {other:?} in string"
                                    )))
                                }
                            }
                            i += 2;
                        }
                        Some(&c) => {
                            s.push(c);
                            i += 1;
                        }
                    }
                }
                out.push(Token::Str(s));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i + 1 < bytes.len() && bytes[i] == '.' && bytes[i + 1].is_ascii_digit() {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text: String = bytes[start..i].iter().collect();
                if is_float {
                    out.push(Token::Float(text.parse().map_err(|_| {
                        DbError::Parse(format!("bad float literal {text}"))
                    })?));
                } else {
                    out.push(Token::Int(text.parse().map_err(|_| {
                        DbError::Parse(format!("bad integer literal {text}"))
                    })?));
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                out.push(Token::Ident(bytes[start..i].iter().collect()));
            }
            other => return Err(DbError::Parse(format!("unexpected character '{other}'"))),
        }
    }
    out.push(Token::Eof);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_the_paper_query() {
        let toks = lex(r#"retrieve (filename) where "RISC" in keywords(file)"#).unwrap();
        assert_eq!(toks[0], Token::Ident("retrieve".into()));
        assert!(toks.contains(&Token::Str("RISC".into())));
        assert!(toks.contains(&Token::Ident("keywords".into())));
        assert_eq!(*toks.last().unwrap(), Token::Eof);
    }

    #[test]
    fn lexes_operators() {
        let toks = lex("a >= 1 and b != 2.5 or c <= -3").unwrap();
        assert!(toks.contains(&Token::Ge));
        assert!(toks.contains(&Token::Ne));
        assert!(toks.contains(&Token::Le));
        assert!(toks.contains(&Token::Float(2.5)));
        assert!(toks.contains(&Token::Minus));
    }

    #[test]
    fn lexes_qualified_names_and_calls() {
        let toks = lex("e.filename = dir(file)").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("e".into()),
                Token::Dot,
                Token::Ident("filename".into()),
                Token::Eq,
                Token::Ident("dir".into()),
                Token::LParen,
                Token::Ident("file".into()),
                Token::RParen,
                Token::Eof,
            ]
        );
    }

    #[test]
    fn string_escapes() {
        let toks = lex(r#""a\"b\\c\nd""#).unwrap();
        assert_eq!(toks[0], Token::Str("a\"b\\c\nd".into()));
    }

    #[test]
    fn errors_are_clean() {
        assert!(lex("\"unterminated").is_err());
        assert!(lex("a ! b").is_err());
        assert!(lex("§").is_err());
    }

    #[test]
    fn brackets_for_time_travel() {
        let toks = lex("from e in emp[42]").unwrap();
        assert!(toks.contains(&Token::LBracket));
        assert!(toks.contains(&Token::RBracket));
    }
}
