//! The reference interpreter: the original match-and-eval executor, kept
//! as the semantic oracle the planned pipeline is differentially tested
//! against (`tests/properties.rs`).
//!
//! This is deliberately a direct port of the pre-planner `exec.rs` — an
//! odometer nested loop over materialized candidate row sets, with the one
//! "optimization" the old code had (equality pins against an indexed
//! column become index probes). Two latent index-path bugs the oracle
//! flushed out are fixed here *and* in the planner, each with a dedicated
//! unit test in `exec.rs`:
//!
//! 1. A cross-type pin (`int4_col = 5.0`) used to probe the B-tree with
//!    the literal's encoding, missing rows the predicate would match.
//!    An index is now only used when the literal coerces *exactly* to the
//!    column type.
//! 2. An out-of-range pin (`int4_col = 5000000000`) used to propagate the
//!    coercion overflow as a query error, while the same query without an
//!    index quietly returned the empty set. A literal that fails to coerce
//!    now just disqualifies the index.
//!
//! This module is `#[doc(hidden)]` public so integration tests (which are
//! external crates) can drive it; it is not part of the supported API.

use crate::datum::{Datum, Row, Schema};
use crate::db::Session;
use crate::error::{DbError, DbResult};
use crate::ids::Tid;
use crate::xact::Snapshot;
use simdev::SimInstant;

use super::ast::{BinOp, Expr, FromItem, Stmt, Target};
use super::eval::{coerce, eval, Binding};
use super::exec::{
    is_aggregate, sort_rows, targets_reference_columns, Accumulator, QueryResult,
};
use super::parser::parse;

/// One bound range variable with its materialized candidate rows.
struct BoundRel {
    var: String,
    schema: Schema,
    rows: Vec<(Tid, Row)>,
}

/// Parses and executes one DML statement through the reference
/// interpreter.
pub fn query(s: &mut Session, input: &str) -> DbResult<QueryResult> {
    execute(s, parse(input)?)
}

/// Executes one DML statement through the reference interpreter. DDL and
/// `explain` are planner-era concerns and are rejected.
pub fn execute(s: &mut Session, stmt: Stmt) -> DbResult<QueryResult> {
    match stmt {
        Stmt::Retrieve {
            into,
            targets,
            from,
            qual,
            sort,
            limit,
        } => {
            let result = exec_retrieve(s, targets, from, qual, sort, limit)?;
            match into {
                None => Ok(result),
                Some(name) => s.materialize_into(&name, result),
            }
        }
        Stmt::Append { rel, values } => exec_append(s, &rel, values),
        Stmt::Delete { var, rel, qual } => exec_delete(s, &var, &rel, qual),
        Stmt::Replace {
            var,
            rel,
            values,
            qual,
        } => exec_replace(s, &var, &rel, values, qual),
        _ => Err(DbError::Invalid(
            "reference interpreter only executes DML statements".into(),
        )),
    }
}

/// Materializes the candidate rows for one `from` item, using an index
/// when the qualification pins an indexed column to a literal of the
/// column's exact type.
fn bind_from(s: &mut Session, item: &FromItem, qual: Option<&Expr>) -> DbResult<BoundRel> {
    // Virtual system relations: rows are produced on the spot, not
    // fetched from a heap. They have no history — reject a time-travel
    // bracket rather than silently answering about the present.
    if let Some((schema, rows)) = s.bind_virtual(&item.rel) {
        if item.as_of.is_some() {
            return Err(DbError::Invalid(format!(
                "virtual relation \"{}\" has no history (time-travel bracket not allowed)",
                item.rel
            )));
        }
        return Ok(BoundRel {
            var: item.var.clone(),
            schema,
            rows: rows
                .into_iter()
                .enumerate()
                .map(|(i, r)| (Tid::new((i >> 16) as u32, (i & 0xffff) as u16), r))
                .collect(),
        });
    }
    let rel = s.db().relation_id(&item.rel)?;
    let schema = s.db().schema_of(rel)?;
    let snap = match &item.as_of {
        Some(e) => {
            let t = eval(s, &Binding::empty(), e)?.as_int()?;
            Some(Snapshot::AsOf(SimInstant::from_nanos(t.max(0) as u64)))
        }
        None => None,
    };

    // Index selection: look for `var.col = <literal>` conjuncts.
    if let Some(q) = qual {
        let mut eq_pins: Vec<(usize, Datum)> = Vec::new();
        collect_eq_pins(q, &item.var, &schema, &mut eq_pins);
        for (col, lit) in &eq_pins {
            if let Some(idx) = s.db().find_index(rel, &[*col]) {
                let ty = schema.columns[*col].ty;
                // Only probe when the literal coerces exactly to the
                // column type: a lossy coercion (or a failing one, e.g.
                // int4 overflow) means the B-tree's key encoding does not
                // agree with predicate evaluation — fall through to the
                // sequential scan instead of missing rows or erroring.
                let Ok(key) = coerce(lit.clone(), ty) else {
                    continue;
                };
                if key.type_id() != Some(ty) {
                    continue;
                }
                let key = [key];
                let rows = match &snap {
                    Some(sn) => s.index_scan_eq_with(idx, &key, sn)?,
                    None => s.index_scan_eq(idx, &key)?,
                };
                return Ok(BoundRel {
                    var: item.var.clone(),
                    schema,
                    rows,
                });
            }
        }
    }
    let rows = match &snap {
        Some(sn) => s.scan_with_snapshot(rel, sn)?,
        None => s.seq_scan(rel)?,
    };
    Ok(BoundRel {
        var: item.var.clone(),
        schema,
        rows,
    })
}

fn exec_retrieve(
    s: &mut Session,
    targets: Vec<Target>,
    from: Vec<FromItem>,
    qual: Option<Expr>,
    sort: Vec<(String, bool)>,
    limit: Option<u64>,
) -> DbResult<QueryResult> {
    let aggregated = targets.iter().any(|t| is_aggregate(&t.expr));
    // Mixing aggregates with plain targets groups implicitly by the
    // plain ones (POSTQUEL's aggregate "by" semantics).
    let grouped = aggregated && !targets.iter().all(|t| is_aggregate(&t.expr));

    // `limit 0` asks for no rows at all. The volcano executor's Limit node
    // never pulls its child, so not a single target expression runs; match
    // that by skipping evaluation entirely (sort keys are still validated,
    // as the planner's binder would).
    if limit == Some(0) {
        let columns: Vec<String> = targets.into_iter().map(|t| t.name).collect();
        sort_rows(&columns, &sort, &mut [])?;
        return Ok(QueryResult {
            columns,
            rows: Vec::new(),
            affected: 0,
        });
    }

    // Constant retrieve: no relations at all.
    if from.is_empty() && !targets_reference_columns(&targets) && !aggregated {
        let b = Binding::empty();
        let mut row = Vec::with_capacity(targets.len());
        for t in &targets {
            row.push(eval(s, &b, &t.expr)?);
        }
        return Ok(QueryResult {
            columns: targets.into_iter().map(|t| t.name).collect(),
            rows: vec![row],
            affected: 0,
        });
    }
    if from.is_empty() {
        return Err(DbError::Bind(
            "column references require a from clause".into(),
        ));
    }

    let bound: Vec<BoundRel> = from
        .iter()
        .map(|f| bind_from(s, f, qual.as_ref()))
        .collect::<DbResult<_>>()?;

    let mut aggs: Vec<Accumulator> = if aggregated && !grouped {
        targets
            .iter()
            .map(|t| Accumulator::for_target(&t.expr))
            .collect::<DbResult<_>>()?
    } else {
        Vec::new()
    };
    // Group mode: key bytes -> (key datums per plain target, accumulators
    // per aggregate target), insertion-ordered.
    let mut groups: Vec<(Vec<Datum>, Vec<Accumulator>)> = Vec::new();
    let mut group_index: std::collections::HashMap<Vec<u8>, usize> =
        std::collections::HashMap::new();

    // Nested-loop join over the bound relations. An empty relation
    // yields no combinations at all.
    let mut out_rows = Vec::new();
    if bound.iter().all(|b| !b.rows.is_empty()) {
        let mut cursor = vec![0usize; bound.len()];
        'outer: loop {
            {
                let binding = Binding {
                    vars: bound
                        .iter()
                        .zip(&cursor)
                        .map(|(b, &i)| (b.var.as_str(), &b.schema, &b.rows[i].1))
                        .collect(),
                };
                let keep = match &qual {
                    Some(q) => eval(s, &binding, q)?.as_bool()?,
                    None => true,
                };
                if keep {
                    if grouped {
                        // Evaluate plain targets (the group key) and
                        // aggregate arguments under the same binding.
                        let mut key = Vec::new();
                        let mut arg_vals = Vec::new();
                        for t in &targets {
                            let binding = Binding {
                                vars: bound
                                    .iter()
                                    .zip(&cursor)
                                    .map(|(b, &i)| (b.var.as_str(), &b.schema, &b.rows[i].1))
                                    .collect(),
                            };
                            if is_aggregate(&t.expr) {
                                let Expr::Call { args, .. } = &t.expr else {
                                    return Err(DbError::Eval(
                                        "aggregate target is not a function call".into(),
                                    ));
                                };
                                let v = match args.first() {
                                    Some(a) => eval(s, &binding, a)?,
                                    None => Datum::Int8(1),
                                };
                                arg_vals.push(Some(v));
                            } else {
                                key.push(eval(s, &binding, &t.expr)?);
                                arg_vals.push(None);
                            }
                        }
                        let key_bytes = crate::datum::encode_row(&key);
                        let gi = match group_index.get(&key_bytes) {
                            Some(&gi) => gi,
                            None => {
                                let accs = targets
                                    .iter()
                                    .filter(|t| is_aggregate(&t.expr))
                                    .map(|t| Accumulator::for_target(&t.expr))
                                    .collect::<DbResult<Vec<_>>>()?;
                                groups.push((key, accs));
                                group_index.insert(key_bytes, groups.len() - 1);
                                groups.len() - 1
                            }
                        };
                        let accs = &mut groups[gi].1;
                        for (ai, v) in arg_vals.into_iter().flatten().enumerate() {
                            accs[ai].add(v)?;
                        }
                    } else if aggregated {
                        for (acc, t) in aggs.iter_mut().zip(&targets) {
                            let Expr::Call { args, .. } = &t.expr else {
                                return Err(DbError::Eval(
                                    "aggregate target is not a function call".into(),
                                ));
                            };
                            let v = match args.first() {
                                Some(a) => {
                                    let binding = Binding {
                                        vars: bound
                                            .iter()
                                            .zip(&cursor)
                                            .map(|(b, &i)| {
                                                (b.var.as_str(), &b.schema, &b.rows[i].1)
                                            })
                                            .collect(),
                                    };
                                    eval(s, &binding, a)?
                                }
                                None => Datum::Int8(1), // count() counts rows.
                            };
                            acc.add(v)?;
                        }
                    } else {
                        let mut row = Vec::with_capacity(targets.len());
                        for t in &targets {
                            let binding = Binding {
                                vars: bound
                                    .iter()
                                    .zip(&cursor)
                                    .map(|(b, &i)| (b.var.as_str(), &b.schema, &b.rows[i].1))
                                    .collect(),
                            };
                            row.push(eval(s, &binding, &t.expr)?);
                        }
                        out_rows.push(row);
                    }
                }
            }
            // Odometer increment.
            for i in (0..bound.len()).rev() {
                cursor[i] += 1;
                if cursor[i] < bound[i].rows.len() {
                    continue 'outer;
                }
                cursor[i] = 0;
            }
            break;
        }
    }
    if grouped {
        for (key, accs) in groups {
            let mut finished = accs.into_iter().map(Accumulator::finish);
            let mut key_it = key.into_iter();
            let row: Vec<Datum> = targets
                .iter()
                .map(|t| {
                    if is_aggregate(&t.expr) {
                        finished.next().ok_or_else(|| {
                            DbError::Invalid("group produced too few accumulators".into())
                        })
                    } else {
                        key_it.next().ok_or_else(|| {
                            DbError::Invalid("group produced too few key values".into())
                        })
                    }
                })
                .collect::<DbResult<_>>()?;
            out_rows.push(row);
        }
    } else if aggregated {
        out_rows = vec![aggs.into_iter().map(Accumulator::finish).collect()];
    }
    let columns: Vec<String> = targets.into_iter().map(|t| t.name).collect();
    sort_rows(&columns, &sort, &mut out_rows)?;
    if let Some(n) = limit {
        out_rows.truncate(n as usize);
    }
    Ok(QueryResult {
        columns,
        rows: out_rows,
        affected: 0,
    })
}

fn exec_append(s: &mut Session, rel_name: &str, values: Vec<(String, Expr)>) -> DbResult<QueryResult> {
    let rel = s.db().relation_id(rel_name)?;
    let schema = s.db().schema_of(rel)?;
    let mut row = vec![Datum::Null; schema.len()];
    for (col, e) in &values {
        let i = schema
            .column_index(col)
            .ok_or_else(|| DbError::Bind(format!("no column \"{col}\" in {rel_name}")))?;
        let v = eval(s, &Binding::empty(), e)?;
        row[i] = coerce(v, schema.columns[i].ty)?;
    }
    s.insert(rel, row)?;
    Ok(QueryResult {
        affected: 1,
        ..Default::default()
    })
}

fn exec_delete(s: &mut Session, var: &str, rel_name: &str, qual: Option<Expr>) -> DbResult<QueryResult> {
    let rel = s.db().relation_id(rel_name)?;
    let schema = s.db().schema_of(rel)?;
    let candidates = s.seq_scan(rel)?;
    let mut victims = Vec::new();
    for (tid, row) in &candidates {
        let binding = Binding::single(var, &schema, row);
        let keep = match &qual {
            Some(q) => eval(s, &binding, q)?.as_bool()?,
            None => true,
        };
        if keep {
            victims.push(*tid);
        }
    }
    let mut affected = 0;
    for tid in victims {
        if s.delete(rel, tid)? {
            affected += 1;
        }
    }
    Ok(QueryResult {
        affected,
        ..Default::default()
    })
}

fn exec_replace(
    s: &mut Session,
    var: &str,
    rel_name: &str,
    values: Vec<(String, Expr)>,
    qual: Option<Expr>,
) -> DbResult<QueryResult> {
    let rel = s.db().relation_id(rel_name)?;
    let schema = s.db().schema_of(rel)?;
    let candidates = s.seq_scan(rel)?;
    let mut updates = Vec::new();
    for (tid, row) in &candidates {
        let binding = Binding::single(var, &schema, row);
        let keep = match &qual {
            Some(q) => eval(s, &binding, q)?.as_bool()?,
            None => true,
        };
        if !keep {
            continue;
        }
        let mut new_row = row.clone();
        for (col, e) in &values {
            let i = schema
                .column_index(col)
                .ok_or_else(|| DbError::Bind(format!("no column \"{col}\" in {rel_name}")))?;
            let v = eval(s, &binding, e)?;
            new_row[i] = coerce(v, schema.columns[i].ty)?;
        }
        updates.push((*tid, new_row));
    }
    let affected = updates.len();
    for (tid, new_row) in updates {
        s.update(rel, tid, new_row)?;
    }
    Ok(QueryResult {
        affected,
        ..Default::default()
    })
}

/// Collects `var.col = literal` (or `literal = var.col`) conjuncts usable
/// for index selection.
fn collect_eq_pins(e: &Expr, var: &str, schema: &Schema, out: &mut Vec<(usize, Datum)>) {
    match e {
        Expr::Binary {
            op: BinOp::And,
            lhs,
            rhs,
        } => {
            collect_eq_pins(lhs, var, schema, out);
            collect_eq_pins(rhs, var, schema, out);
        }
        Expr::Binary {
            op: BinOp::Eq,
            lhs,
            rhs,
        } => {
            let sides = [(lhs, rhs), (rhs, lhs)];
            for (col_side, lit_side) in sides {
                if let (Expr::Column { var: v, attr }, Expr::Lit(d)) =
                    (col_side.as_ref(), lit_side.as_ref())
                {
                    let applies = match v {
                        Some(v) => v == var,
                        None => true,
                    };
                    if applies {
                        if let Some(i) = schema.column_index(attr) {
                            out.push((i, d.clone()));
                            return;
                        }
                    }
                }
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datum::TypeId;
    use crate::db::Db;

    fn setup() -> Db {
        let db = Db::open_in_memory().unwrap();
        db.create_table(
            "emp",
            Schema::new([("name", TypeId::TEXT), ("age", TypeId::INT4)]),
        )
        .unwrap();
        let rel = db.relation_id("emp").unwrap();
        db.create_index("emp_age", rel, &["age"]).unwrap();
        let mut s = db.begin().unwrap();
        for (n, a) in [("mao", 29), ("mike", 45), ("margo", 35)] {
            s.query(&format!(r#"append emp (name = "{n}", age = {a})"#))
                .unwrap();
        }
        s.commit().unwrap();
        db
    }

    #[test]
    fn reference_matches_planned_on_basics() {
        let db = setup();
        let mut s = db.begin().unwrap();
        for q in [
            "retrieve (e.name, e.age) from e in emp",
            "retrieve (e.name) from e in emp where e.age = 35",
            "retrieve (e.name) from e in emp where e.age > 30 sort by name limit 1",
            "retrieve (n = count(), a = avg(e.age)) from e in emp",
        ] {
            let planned = s.query(q).unwrap();
            let refr = query(&mut s, q).unwrap();
            assert_eq!(planned.columns, refr.columns, "{q}");
            let mut p = planned.rows.clone();
            let mut r = refr.rows.clone();
            p.sort_by(|a, b| crate::datum::encode_row(a).cmp(&crate::datum::encode_row(b)));
            r.sort_by(|a, b| crate::datum::encode_row(a).cmp(&crate::datum::encode_row(b)));
            assert_eq!(p, r, "{q}");
        }
        s.commit().unwrap();
    }

    #[test]
    fn cross_type_pin_falls_back_to_seq_scan() {
        // int4 column pinned with a float literal: the index encoding
        // would miss the row, the fixed reference path must not.
        let db = setup();
        let mut s = db.begin().unwrap();
        let r = query(&mut s, "retrieve (e.name) from e in emp where e.age = 35.0").unwrap();
        assert_eq!(r.rows, vec![vec![Datum::Text("margo".into())]]);
        s.commit().unwrap();
    }

    #[test]
    fn overflowing_pin_is_empty_not_an_error() {
        let db = setup();
        let mut s = db.begin().unwrap();
        let r = query(
            &mut s,
            "retrieve (e.name) from e in emp where e.age = 5000000000",
        )
        .unwrap();
        assert!(r.rows.is_empty());
        s.commit().unwrap();
    }

    #[test]
    fn limit_zero_never_evaluates_targets() {
        // The volcano Limit node with n = 0 never pulls its child, so an
        // error-capable target (`age + 1` over a null age) is never
        // evaluated. The reference path must short-circuit identically.
        let db = setup();
        let mut s = db.begin().unwrap();
        s.query(r#"append emp (name = "ghost")"#).unwrap(); // age is null
        assert!(matches!(
            query(&mut s, "retrieve (x = e.age + 1) from e in emp"),
            Err(DbError::Eval(_))
        ));
        let planned = s
            .query("retrieve (x = e.age + 1) from e in emp sort by x limit 0")
            .unwrap();
        let refr = query(
            &mut s,
            "retrieve (x = e.age + 1) from e in emp sort by x limit 0",
        )
        .unwrap();
        assert!(planned.rows.is_empty());
        assert!(refr.rows.is_empty());
        // Sort keys are still validated even when nothing runs.
        assert!(matches!(
            query(&mut s, "retrieve (e.age) from e in emp sort by ghost limit 0"),
            Err(DbError::Bind(_))
        ));
        s.commit().unwrap();
    }

    #[test]
    fn rejects_non_dml() {
        let db = setup();
        let mut s = db.begin().unwrap();
        assert!(matches!(
            query(&mut s, "define type blob"),
            Err(DbError::Invalid(_))
        ));
        assert!(matches!(
            query(&mut s, "explain retrieve (x = 1)"),
            Err(DbError::Invalid(_))
        ));
        s.abort().unwrap();
    }
}
