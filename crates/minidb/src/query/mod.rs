//! The POSTQUEL-flavoured query language.
//!
//! "Instead of mastering the use of many different programs, the user may
//! examine the file system's structure and contents by formulating simple
//! POSTQUEL queries." Supported statements:
//!
//! * `retrieve (targets) [from var in rel[, ...]] [where qual]` — with
//!   optional per-relation time travel: `from e in naming[<nanos>]`.
//! * `append rel (col = expr, ...)`
//! * `delete var from var in rel [where qual]` (or the short form
//!   `delete rel [where qual]`)
//! * `replace var (col = expr, ...) [from ...] [where qual]`
//! * `define type name`
//! * `define function name (nargs) returns type as "impl.key" [for type]`
//! * `define rule name on access|update|periodic to rel where qual do action`
//!
//! Function calls in any expression position dispatch through the catalog to
//! registered Rust implementations, which run inside the data manager — the
//! mechanism behind the paper's `snow(file)` example and its fastest
//! benchmark configuration.
//!
//! DML statements run through a cost-based pipeline: [`bind`] resolves
//! names and types against the catalog, [`optimize`] builds a physical
//! [`plan::Plan`] (choosing B-tree index scans when a qualification bounds
//! an indexed column, pushing single-variable conjuncts below the joins,
//! nesting loops in `from`-clause order), and [`exec`] runs it with a
//! volcano-style iterator per node. `explain [analyze] <stmt>` renders the
//! chosen plan; `pg_stat_planner` counts its decisions. The pre-planner
//! interpreter survives in [`reference`] as the differential-testing
//! oracle.

pub mod ast;
pub mod bind;
pub mod eval;
pub mod exec;
pub mod lexer;
pub mod optimize;
pub mod parser;
pub mod plan;
#[doc(hidden)]
pub mod reference;

pub use ast::{BinOp, Expr, FromItem, Stmt, Target};
pub use eval::{coerce, eval, Binding};
pub use exec::QueryResult;
pub use parser::{expr_to_source, parse, parse_expr};
pub use plan::{Access, Plan, ScanPlan};
