//! Recursive-descent parser for the POSTQUEL-flavoured language.

use crate::datum::Datum;
use crate::error::{DbError, DbResult};

use super::ast::{BinOp, Expr, FromItem, Stmt, Target};
use super::lexer::{lex, Token};

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.toks[self.pos]
    }

    fn next(&mut self) -> Token {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, tok: &Token) -> DbResult<()> {
        if self.peek() == tok {
            self.next();
            Ok(())
        } else {
            Err(DbError::Parse(format!(
                "expected {tok:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> DbResult<()> {
        match self.peek() {
            Token::Ident(s) if s.eq_ignore_ascii_case(kw) => {
                self.next();
                Ok(())
            }
            other => Err(DbError::Parse(format!("expected '{kw}', found {other:?}"))),
        }
    }

    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn ident(&mut self) -> DbResult<String> {
        match self.next() {
            Token::Ident(s) => Ok(s),
            other => Err(DbError::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    // ---- expressions -------------------------------------------------

    fn expr(&mut self) -> DbResult<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> DbResult<Expr> {
        let mut lhs = self.and_expr()?;
        while self.at_kw("or") {
            self.next();
            let rhs = self.and_expr()?;
            lhs = Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> DbResult<Expr> {
        let mut lhs = self.not_expr()?;
        while self.at_kw("and") {
            self.next();
            let rhs = self.not_expr()?;
            lhs = Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> DbResult<Expr> {
        if self.at_kw("not") {
            self.next();
            return Ok(Expr::Not(Box::new(self.not_expr()?)));
        }
        self.cmp_expr()
    }

    fn cmp_expr(&mut self) -> DbResult<Expr> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Token::Eq => BinOp::Eq,
            Token::Ne => BinOp::Ne,
            Token::Lt => BinOp::Lt,
            Token::Le => BinOp::Le,
            Token::Gt => BinOp::Gt,
            Token::Ge => BinOp::Ge,
            Token::Ident(s) if s.eq_ignore_ascii_case("in") => BinOp::In,
            _ => return Ok(lhs),
        };
        self.next();
        let rhs = self.add_expr()?;
        Ok(Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        })
    }

    fn add_expr(&mut self) -> DbResult<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Token::Plus => BinOp::Add,
                Token::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.next();
            let rhs = self.mul_expr()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn mul_expr(&mut self) -> DbResult<Expr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Token::Star => BinOp::Mul,
                Token::Slash => BinOp::Div,
                _ => return Ok(lhs),
            };
            self.next();
            let rhs = self.unary_expr()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn unary_expr(&mut self) -> DbResult<Expr> {
        if matches!(self.peek(), Token::Minus) {
            self.next();
            return Ok(Expr::Neg(Box::new(self.unary_expr()?)));
        }
        self.primary()
    }

    fn primary(&mut self) -> DbResult<Expr> {
        match self.next() {
            Token::Int(v) => Ok(Expr::Lit(Datum::Int8(v))),
            Token::Float(v) => Ok(Expr::Lit(Datum::Float8(v))),
            Token::Str(s) => Ok(Expr::Lit(Datum::Text(s))),
            Token::LParen => {
                let e = self.expr()?;
                self.eat(&Token::RParen)?;
                Ok(e)
            }
            Token::Ident(name) => {
                if name.eq_ignore_ascii_case("true") {
                    return Ok(Expr::Lit(Datum::Bool(true)));
                }
                if name.eq_ignore_ascii_case("false") {
                    return Ok(Expr::Lit(Datum::Bool(false)));
                }
                if name.eq_ignore_ascii_case("null") {
                    return Ok(Expr::Lit(Datum::Null));
                }
                match self.peek() {
                    Token::LParen => {
                        self.next();
                        let mut args = Vec::new();
                        if *self.peek() != Token::RParen {
                            loop {
                                args.push(self.expr()?);
                                if *self.peek() == Token::Comma {
                                    self.next();
                                } else {
                                    break;
                                }
                            }
                        }
                        self.eat(&Token::RParen)?;
                        Ok(Expr::Call { name, args })
                    }
                    Token::Dot => {
                        self.next();
                        let attr = self.ident()?;
                        Ok(Expr::Column {
                            var: Some(name),
                            attr,
                        })
                    }
                    _ => Ok(Expr::Column {
                        var: None,
                        attr: name,
                    }),
                }
            }
            other => Err(DbError::Parse(format!("unexpected token {other:?}"))),
        }
    }

    // ---- statements --------------------------------------------------

    fn parse_from_clause(&mut self) -> DbResult<Vec<FromItem>> {
        let mut items = Vec::new();
        if !self.at_kw("from") {
            return Ok(items);
        }
        self.next();
        loop {
            let var = self.ident()?;
            self.eat_kw("in")?;
            let rel = self.ident()?;
            let as_of = if *self.peek() == Token::LBracket {
                self.next();
                let e = self.expr()?;
                self.eat(&Token::RBracket)?;
                Some(e)
            } else {
                None
            };
            items.push(FromItem { var, rel, as_of });
            if *self.peek() == Token::Comma {
                self.next();
            } else {
                break;
            }
        }
        Ok(items)
    }

    fn where_clause(&mut self) -> DbResult<Option<Expr>> {
        if self.at_kw("where") {
            self.next();
            Ok(Some(self.expr()?))
        } else {
            Ok(None)
        }
    }

    fn assignments(&mut self) -> DbResult<Vec<(String, Expr)>> {
        self.eat(&Token::LParen)?;
        let mut out = Vec::new();
        loop {
            let col = self.ident()?;
            self.eat(&Token::Eq)?;
            let e = self.expr()?;
            out.push((col, e));
            if *self.peek() == Token::Comma {
                self.next();
            } else {
                break;
            }
        }
        self.eat(&Token::RParen)?;
        Ok(out)
    }

    fn retrieve(&mut self) -> DbResult<Stmt> {
        let into = if self.at_kw("into") {
            self.next();
            Some(self.ident()?)
        } else {
            None
        };
        self.eat(&Token::LParen)?;
        let mut targets = Vec::new();
        loop {
            // `name = expr` or bare `expr`.
            let save = self.pos;
            let name = if let Token::Ident(n) = self.peek().clone() {
                self.next();
                if *self.peek() == Token::Eq {
                    self.next();
                    Some(n)
                } else {
                    self.pos = save;
                    None
                }
            } else {
                None
            };
            let expr = self.expr()?;
            let name = name.unwrap_or_else(|| default_target_name(&expr, targets.len()));
            targets.push(Target { name, expr });
            if *self.peek() == Token::Comma {
                self.next();
            } else {
                break;
            }
        }
        self.eat(&Token::RParen)?;
        let from = self.parse_from_clause()?;
        let qual = self.where_clause()?;
        let sort = self.sort_clause()?;
        let limit = self.limit_clause()?;
        Ok(Stmt::Retrieve {
            into,
            targets,
            from,
            qual,
            sort,
            limit,
        })
    }

    fn limit_clause(&mut self) -> DbResult<Option<u64>> {
        if !self.at_kw("limit") {
            return Ok(None);
        }
        self.next();
        match self.next() {
            Token::Int(n) if n >= 0 => Ok(Some(n as u64)),
            other => Err(DbError::Parse(format!(
                "expected a non-negative row count after limit, found {other:?}"
            ))),
        }
    }

    fn sort_clause(&mut self) -> DbResult<Vec<(String, bool)>> {
        let mut out = Vec::new();
        if !self.at_kw("sort") {
            return Ok(out);
        }
        self.next();
        self.eat_kw("by")?;
        loop {
            let col = self.ident()?;
            let mut desc = false;
            if self.at_kw("desc") {
                self.next();
                desc = true;
            } else if self.at_kw("asc") {
                self.next();
            }
            out.push((col, desc));
            if *self.peek() == Token::Comma {
                self.next();
            } else {
                break;
            }
        }
        Ok(out)
    }

    fn append(&mut self) -> DbResult<Stmt> {
        let rel = self.ident()?;
        let values = self.assignments()?;
        Ok(Stmt::Append { rel, values })
    }

    fn delete(&mut self) -> DbResult<Stmt> {
        let var = self.ident()?;
        let (var, rel) = if self.at_kw("from") {
            let from = self.parse_from_clause()?;
            let item = from
                .into_iter()
                .find(|f| f.var == var)
                .ok_or_else(|| DbError::Parse(format!("range variable {var} not in from")))?;
            (item.var, item.rel)
        } else {
            (var.clone(), var)
        };
        let qual = self.where_clause()?;
        Ok(Stmt::Delete { var, rel, qual })
    }

    fn replace(&mut self) -> DbResult<Stmt> {
        let var = self.ident()?;
        let values = self.assignments()?;
        let (var, rel) = if self.at_kw("from") {
            let from = self.parse_from_clause()?;
            let item = from
                .into_iter()
                .find(|f| f.var == var)
                .ok_or_else(|| DbError::Parse(format!("range variable {var} not in from")))?;
            (item.var, item.rel)
        } else {
            (var.clone(), var)
        };
        let qual = self.where_clause()?;
        Ok(Stmt::Replace {
            var,
            rel,
            values,
            qual,
        })
    }

    fn define(&mut self) -> DbResult<Stmt> {
        let what = self.ident()?;
        match what.to_ascii_lowercase().as_str() {
            "type" => Ok(Stmt::DefineType {
                name: self.ident()?,
            }),
            "function" => {
                let name = self.ident()?;
                self.eat(&Token::LParen)?;
                let nargs = match self.next() {
                    Token::Int(n) if n >= 0 => n as usize,
                    other => {
                        return Err(DbError::Parse(format!(
                            "expected argument count, found {other:?}"
                        )))
                    }
                };
                self.eat(&Token::RParen)?;
                self.eat_kw("returns")?;
                let returns = self.ident()?;
                self.eat_kw("as")?;
                let impl_key = match self.next() {
                    Token::Str(s) => s,
                    other => {
                        return Err(DbError::Parse(format!(
                            "expected implementation key string, found {other:?}"
                        )))
                    }
                };
                let for_type = if self.at_kw("for") {
                    self.next();
                    Some(self.ident()?)
                } else {
                    None
                };
                Ok(Stmt::DefineFunction {
                    name,
                    nargs,
                    returns,
                    impl_key,
                    for_type,
                })
            }
            "rule" => {
                let name = self.ident()?;
                self.eat_kw("on")?;
                let event = self.ident()?;
                self.eat_kw("to")?;
                let rel = self.ident()?;
                self.eat_kw("where")?;
                let qual = self.expr()?;
                self.eat_kw("do")?;
                let action = self.expr()?;
                Ok(Stmt::DefineRule {
                    name,
                    event,
                    rel,
                    qual: expr_to_source(&qual),
                    action: expr_to_source(&action),
                })
            }
            other => Err(DbError::Parse(format!("cannot define \"{other}\""))),
        }
    }
}

fn default_target_name(e: &Expr, i: usize) -> String {
    match e {
        Expr::Column { attr, .. } => attr.clone(),
        Expr::Call { name, .. } => name.clone(),
        _ => format!("col{i}"),
    }
}

/// Renders an expression back to parseable source text (used to persist
/// rule qualifications and actions in the catalog).
pub fn expr_to_source(e: &Expr) -> String {
    match e {
        Expr::Lit(Datum::Text(s)) => {
            format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
        }
        Expr::Lit(Datum::Null) => "null".into(),
        Expr::Lit(d) => format!("{d}"),
        Expr::Column { var: Some(v), attr } => format!("{v}.{attr}"),
        Expr::Column { var: None, attr } => attr.clone(),
        Expr::Call { name, args } => {
            let args: Vec<String> = args.iter().map(expr_to_source).collect();
            format!("{name}({})", args.join(", "))
        }
        Expr::Binary { op, lhs, rhs } => {
            let op = match op {
                BinOp::Or => "or",
                BinOp::And => "and",
                BinOp::Eq => "=",
                BinOp::Ne => "!=",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
                BinOp::In => "in",
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
            };
            format!("({} {op} {})", expr_to_source(lhs), expr_to_source(rhs))
        }
        Expr::Not(e) => format!("(not {})", expr_to_source(e)),
        Expr::Neg(e) => format!("(-{})", expr_to_source(e)),
    }
}

impl Parser {
    /// One statement. `allow_explain` is false inside an `explain` so the
    /// verb cannot nest.
    fn statement(&mut self, allow_explain: bool) -> DbResult<Stmt> {
        let verb = self.ident()?;
        match verb.to_ascii_lowercase().as_str() {
            "retrieve" => self.retrieve(),
            "append" => self.append(),
            "delete" => self.delete(),
            "replace" => self.replace(),
            "define" => self.define(),
            "explain" if allow_explain => {
                let analyze = if self.at_kw("analyze") {
                    self.next();
                    true
                } else {
                    false
                };
                let inner = self.statement(false)?;
                Ok(Stmt::Explain {
                    analyze,
                    inner: Box::new(inner),
                })
            }
            other => Err(DbError::Parse(format!("unknown command \"{other}\""))),
        }
    }
}

/// Parses one statement.
pub fn parse(input: &str) -> DbResult<Stmt> {
    let mut p = Parser {
        toks: lex(input)?,
        pos: 0,
    };
    let stmt = p.statement(true)?;
    if *p.peek() != Token::Eof {
        return Err(DbError::Parse(format!("trailing input: {:?}", p.peek())));
    }
    Ok(stmt)
}

/// Parses a bare expression (rule qualifications and actions).
pub fn parse_expr(input: &str) -> DbResult<Expr> {
    let mut p = Parser {
        toks: lex(input)?,
        pos: 0,
    };
    let e = p.expr()?;
    if *p.peek() != Token::Eof {
        return Err(DbError::Parse(format!("trailing input: {:?}", p.peek())));
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_retrieve() {
        let s = parse(r#"retrieve (filename) where owner = "mao""#).unwrap();
        let Stmt::Retrieve {
            targets,
            from,
            qual,
            ..
        } = s
        else {
            panic!()
        };
        assert_eq!(targets.len(), 1);
        assert_eq!(targets[0].name, "filename");
        assert!(from.is_empty());
        assert!(qual.is_some());
    }

    #[test]
    fn parses_paper_snow_query() {
        // The AVHRR query from the paper (lightly normalized).
        let s = parse(
            r#"retrieve (snow(file), filename)
               where filetype(file) = "tm" and snow(file) / size(file) > 0.5
                 and month_of(file) = "April""#,
        )
        .unwrap();
        let Stmt::Retrieve { targets, qual, .. } = s else {
            panic!()
        };
        assert_eq!(targets.len(), 2);
        assert_eq!(targets[0].name, "snow");
        let q = qual.unwrap();
        // Top level is an `and` chain.
        assert!(matches!(q, Expr::Binary { op: BinOp::And, .. }));
    }

    #[test]
    fn parses_range_variables_and_join() {
        let s = parse(
            "retrieve (n.filename, a.size) from n in naming, a in fileatt \
             where n.file = a.file",
        )
        .unwrap();
        let Stmt::Retrieve { from, .. } = s else {
            panic!()
        };
        assert_eq!(from.len(), 2);
        assert_eq!(from[0].var, "n");
        assert_eq!(from[1].rel, "fileatt");
    }

    #[test]
    fn parses_time_travel_bracket() {
        let s = parse("retrieve (e.filename) from e in naming[123456]").unwrap();
        let Stmt::Retrieve { from, .. } = s else {
            panic!()
        };
        assert_eq!(from[0].as_of, Some(Expr::Lit(Datum::Int8(123456))));
    }

    #[test]
    fn parses_append_delete_replace() {
        let s = parse(r#"append naming (filename = "etc", parentid = 0)"#).unwrap();
        assert!(
            matches!(s, Stmt::Append { ref rel, ref values } if rel == "naming" && values.len() == 2)
        );

        let s = parse(r#"delete naming where filename = "etc""#).unwrap();
        assert!(
            matches!(s, Stmt::Delete { ref rel, ref qual, .. } if rel == "naming" && qual.is_some())
        );

        let s = parse(r#"delete p from p in emp where p.age > 90"#).unwrap();
        assert!(matches!(s, Stmt::Delete { ref var, ref rel, .. } if var == "p" && rel == "emp"));

        let s = parse(r#"replace p (age = p.age + 1) from p in emp where p.name = "mao""#).unwrap();
        let Stmt::Replace {
            var,
            rel,
            values,
            qual,
        } = s
        else {
            panic!()
        };
        assert_eq!((var.as_str(), rel.as_str()), ("p", "emp"));
        assert_eq!(values[0].0, "age");
        assert!(qual.is_some());
    }

    #[test]
    fn parses_defines() {
        let s = parse("define type tm").unwrap();
        assert_eq!(s, Stmt::DefineType { name: "tm".into() });

        let s =
            parse(r#"define function snow (1) returns int8 as "inversion.snow" for tm"#).unwrap();
        let Stmt::DefineFunction {
            name,
            nargs,
            returns,
            impl_key,
            for_type,
        } = s
        else {
            panic!()
        };
        assert_eq!(name, "snow");
        assert_eq!(nargs, 1);
        assert_eq!(returns, "int8");
        assert_eq!(impl_key, "inversion.snow");
        assert_eq!(for_type.as_deref(), Some("tm"));

        let s = parse(
            r#"define rule cold on periodic to fileatt where atime < 100 do migrate(file, 1)"#,
        )
        .unwrap();
        let Stmt::DefineRule {
            name,
            event,
            rel,
            qual,
            action,
        } = s
        else {
            panic!()
        };
        assert_eq!(name, "cold");
        assert_eq!(event, "periodic");
        assert_eq!(rel, "fileatt");
        // Round-trippable source.
        assert!(parse_expr(&qual).is_ok());
        assert!(parse_expr(&action).is_ok());
    }

    #[test]
    fn precedence_and_parens() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        let Expr::Binary {
            op: BinOp::Add,
            rhs,
            ..
        } = e
        else {
            panic!()
        };
        assert!(matches!(*rhs, Expr::Binary { op: BinOp::Mul, .. }));

        let e = parse_expr("(1 + 2) * 3").unwrap();
        assert!(matches!(e, Expr::Binary { op: BinOp::Mul, .. }));

        let e = parse_expr("a = 1 or b = 2 and c = 3").unwrap();
        // `and` binds tighter than `or`.
        assert!(matches!(e, Expr::Binary { op: BinOp::Or, .. }));
    }

    #[test]
    fn expr_source_roundtrips() {
        for src in [
            r#"(a.size > 100)"#,
            r#"("RISC" in keywords(file))"#,
            r#"((not (a = 1)) and (b != "x"))"#,
            r#"(-(3) + f(1, 2))"#,
        ] {
            let e = parse_expr(src).unwrap();
            let rendered = expr_to_source(&e);
            let re = parse_expr(&rendered).unwrap();
            assert_eq!(e, re, "{src} -> {rendered}");
        }
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse("frobnicate (x)").is_err());
        assert!(parse("retrieve (").is_err());
        assert!(parse("retrieve (a) where").is_err());
        assert!(parse("append t").is_err());
        assert!(parse("define gadget x").is_err());
        assert!(parse("retrieve (a) extra").is_err());
    }

    #[test]
    fn parses_explain_and_limit() {
        let s = parse("explain retrieve (e.a) from e in t").unwrap();
        let Stmt::Explain { analyze, inner } = s else {
            panic!()
        };
        assert!(!analyze);
        assert!(matches!(*inner, Stmt::Retrieve { .. }));

        let s = parse("explain analyze delete e from e in t where e.a = 1").unwrap();
        let Stmt::Explain { analyze, inner } = s else {
            panic!()
        };
        assert!(analyze);
        assert!(matches!(*inner, Stmt::Delete { .. }));

        let s = parse("retrieve (e.a) from e in t sort by a limit 3").unwrap();
        let Stmt::Retrieve { limit, .. } = s else {
            panic!()
        };
        assert_eq!(limit, Some(3));

        // `explain` does not nest, and limit wants a non-negative count.
        assert!(parse("explain explain retrieve (e.a) from e in t").is_err());
        assert!(parse("retrieve (e.a) from e in t limit -1").is_err());
        assert!(parse("retrieve (e.a) from e in t limit x").is_err());
    }
}

#[cfg(test)]
mod robustness_tests {
    use super::*;

    /// The parser must reject garbage with errors, never panic.
    #[test]
    fn parser_never_panics_on_fragments() {
        let srcs = [
            "retrieve",
            "retrieve (",
            "retrieve ()",
            "retrieve (a from",
            "retrieve (a) from x",
            "retrieve (a) from x in",
            "append",
            "append t (",
            "append t (a =)",
            "delete",
            "replace t",
            "replace t (a = 1) from",
            "define",
            "define function f",
            "define rule r on",
            "sort by",
            "retrieve (a) sort",
            "retrieve (a) from e in t sort by",
            "retrieve into (a)",
            "retrieve (count(1,2,3)) from e in t",
            "((((((((((",
            "\"",
            "1 + + 2",
            "a . . b",
            "[[[",
            "explain",
            "explain analyze",
            "retrieve (a) limit",
            "retrieve (a) from e in t limit 1 2",
        ];
        for src in srcs {
            let _ = parse(src);
            let _ = parse_expr(src);
        }
    }

    #[test]
    fn parses_into_and_sort() {
        let s =
            parse("retrieve into young (e.name) from e in emp where e.age < 30 sort by name desc")
                .unwrap();
        let Stmt::Retrieve { into, sort, .. } = s else {
            panic!()
        };
        assert_eq!(into.as_deref(), Some("young"));
        assert_eq!(sort, vec![("name".to_string(), true)]);

        let s = parse("retrieve (e.a) from e in t sort by a, b asc, c desc").unwrap();
        let Stmt::Retrieve { sort, .. } = s else {
            panic!()
        };
        assert_eq!(
            sort,
            vec![
                ("a".to_string(), false),
                ("b".to_string(), false),
                ("c".to_string(), true)
            ]
        );
    }

    #[test]
    fn deeply_nested_expressions_parse() {
        let mut src = String::from("1");
        for _ in 0..200 {
            src = format!("({src} + 1)");
        }
        assert!(parse_expr(&src).is_ok());
    }
}
