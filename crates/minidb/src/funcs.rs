//! The in-process function implementation registry.
//!
//! "Users may write functions in C or in POSTQUEL ... these functions are
//! dynamically loaded into the data manager process and executed with its
//! permissions." The Rust analogue of dynamic loading: implementations are
//! `Arc<dyn Fn>` values registered under an *implementation key*; the
//! catalog persists each function's name, signature, and key
//! ([`crate::catalog::ProcEntry`]), and calls resolve the key against this
//! registry at run time. After a restart the same keys must be re-registered
//! (exactly as a 1993 installation had to keep its shared objects around).
//!
//! Implementations receive a mutable [`crate::db::Session`], so a function
//! invoked from the query language can itself read relations — this is what
//! lets Inversion's `snow(file)` open and scan a file *inside* the data
//! manager, the paper's fastest configuration.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::datum::Datum;
use crate::db::Session;
use crate::error::{DbError, DbResult};

/// The signature of a registered function implementation.
pub type FnImpl = Arc<dyn Fn(&mut Session, &[Datum]) -> DbResult<Datum> + Send + Sync>;

/// A resolved function: catalog definition plus implementation.
#[derive(Clone)]
pub struct FuncDef {
    /// The function's name as used in queries.
    pub name: String,
    /// Number of arguments it expects.
    pub nargs: usize,
    /// The callable.
    pub imp: FnImpl,
}

impl FuncDef {
    /// Invokes the function, checking arity.
    pub fn call(&self, session: &mut Session, args: &[Datum]) -> DbResult<Datum> {
        if args.len() != self.nargs {
            return Err(DbError::Eval(format!(
                "function {} expects {} arguments, got {}",
                self.name,
                self.nargs,
                args.len()
            )));
        }
        (self.imp)(session, args)
    }
}

/// Registry mapping implementation keys to callables.
#[derive(Default)]
pub struct FunctionRegistry {
    impls: RwLock<HashMap<String, FnImpl>>,
}

impl FunctionRegistry {
    /// Creates a registry preloaded with the builtin implementations.
    pub fn with_builtins() -> FunctionRegistry {
        let reg = FunctionRegistry::default();
        reg.register("builtin.length", |_s, args| {
            Ok(Datum::Int4(args[0].as_text()?.len() as i32))
        });
        reg.register("builtin.abs", |_s, args| match &args[0] {
            Datum::Int4(v) => Ok(Datum::Int4(v.abs())),
            Datum::Int8(v) => Ok(Datum::Int8(v.abs())),
            Datum::Float8(v) => Ok(Datum::Float8(v.abs())),
            other => Err(DbError::Eval(format!("abs: bad argument {other:?}"))),
        });
        reg.register("builtin.lower", |_s, args| {
            Ok(Datum::Text(args[0].as_text()?.to_lowercase()))
        });
        reg.register("builtin.upper", |_s, args| {
            Ok(Datum::Text(args[0].as_text()?.to_uppercase()))
        });
        reg
    }

    /// Registers (or replaces) the implementation behind `key`.
    pub fn register(
        &self,
        key: impl Into<String>,
        f: impl Fn(&mut Session, &[Datum]) -> DbResult<Datum> + Send + Sync + 'static,
    ) {
        self.impls.write().insert(key.into(), Arc::new(f));
    }

    /// Resolves an implementation key.
    pub fn resolve(&self, key: &str) -> DbResult<FnImpl> {
        self.impls.read().get(key).cloned().ok_or_else(|| {
            DbError::NotFound(format!(
                "function implementation \"{key}\" (is its module loaded?)"
            ))
        })
    }

    /// Whether `key` has an implementation.
    pub fn has(&self, key: &str) -> bool {
        self.impls.read().contains_key(key)
    }

    /// Registered implementation keys, sorted.
    pub fn keys(&self) -> Vec<String> {
        let mut v: Vec<String> = self.impls.read().keys().cloned().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_are_present() {
        let reg = FunctionRegistry::with_builtins();
        assert!(reg.has("builtin.length"));
        assert!(reg.has("builtin.abs"));
        assert!(!reg.has("builtin.nope"));
        assert!(reg.keys().len() >= 4);
    }

    #[test]
    fn resolve_missing_is_not_found() {
        let reg = FunctionRegistry::default();
        assert!(matches!(reg.resolve("x"), Err(DbError::NotFound(_))));
    }

    #[test]
    fn register_and_call_through_session() {
        let reg = FunctionRegistry::with_builtins();
        reg.register("test.add", |_s, args| {
            Ok(Datum::Int8(args[0].as_int()? + args[1].as_int()?))
        });
        let db = crate::db::Db::open_in_memory().unwrap();
        let mut s = db.begin().unwrap();
        let f = FuncDef {
            name: "add".into(),
            nargs: 2,
            imp: reg.resolve("test.add").unwrap(),
        };
        let out = f.call(&mut s, &[Datum::Int4(2), Datum::Int4(3)]).unwrap();
        assert_eq!(out, Datum::Int8(5));
        // Arity check.
        assert!(f.call(&mut s, &[Datum::Int4(2)]).is_err());
        s.abort().unwrap();
    }
}
