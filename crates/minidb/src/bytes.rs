//! Corrupt-tolerant little-endian byte readers for on-disk decoders.
//!
//! Every on-disk structure (page headers, slot arrays, tuple headers, the
//! transaction status log, the relation map) is decoded through these
//! helpers instead of `slice[a..b].try_into().unwrap()`. A short or
//! out-of-range slice yields [`DbError::Corrupt`] rather than a panic, so
//! structurally damaged input surfaces as an error the [`crate::check`]
//! verifier can report.

use crate::error::{DbError, DbResult};

fn short(what: &str, have: usize, off: usize, want: usize) -> DbError {
    DbError::Corrupt(format!(
        "short {what}: need {want} bytes at offset {off}, have {have}"
    ))
}

/// Reads a little-endian `u16` at `off`, or `Err(Corrupt)` if out of range.
pub(crate) fn le_u16(b: &[u8], off: usize) -> DbResult<u16> {
    match b.get(off..off.wrapping_add(2)) {
        Some(s) => {
            let mut a = [0u8; 2];
            a.copy_from_slice(s);
            Ok(u16::from_le_bytes(a))
        }
        None => Err(short("u16", b.len(), off, 2)),
    }
}

/// Reads a little-endian `u32` at `off`, or `Err(Corrupt)` if out of range.
pub(crate) fn le_u32(b: &[u8], off: usize) -> DbResult<u32> {
    match b.get(off..off.wrapping_add(4)) {
        Some(s) => {
            let mut a = [0u8; 4];
            a.copy_from_slice(s);
            Ok(u32::from_le_bytes(a))
        }
        None => Err(short("u32", b.len(), off, 4)),
    }
}

/// Reads a little-endian `u64` at `off`, or `Err(Corrupt)` if out of range.
pub(crate) fn le_u64(b: &[u8], off: usize) -> DbResult<u64> {
    match b.get(off..off.wrapping_add(8)) {
        Some(s) => {
            let mut a = [0u8; 8];
            a.copy_from_slice(s);
            Ok(u64::from_le_bytes(a))
        }
        None => Err(short("u64", b.len(), off, 8)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_in_range() {
        let b = [0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09];
        assert_eq!(le_u16(&b, 0).unwrap(), 0x0201);
        assert_eq!(le_u32(&b, 1).unwrap(), 0x0504_0302);
        assert_eq!(le_u64(&b, 1).unwrap(), 0x0908_0706_0504_0302);
    }

    #[test]
    fn short_reads_are_corrupt_not_panics() {
        let b = [0u8; 4];
        assert!(le_u16(&b, 3).is_err());
        assert!(le_u32(&b, 1).is_err());
        assert!(le_u64(&b, 0).is_err());
        assert!(le_u64(&b, usize::MAX).is_err(), "offset overflow guarded");
    }
}
