//! The vacuum cleaner: archiving obsolete record versions.
//!
//! "Periodically, obsolete records must be garbage-collected from the
//! database, and either moved elsewhere or physically deleted. ... POSTGRES
//! includes a special-purpose process, called the vacuum cleaner, that
//! archives records. Obsolete records are physically removed from the table
//! in which they originally appeared, and are moved to an archive."
//!
//! Archive rows are `(amin, amax, original-row-bytes)` where `amin`/`amax`
//! are the *commit times* of the inserting and deleting transactions —
//! materializing times at archive time means historical visibility no longer
//! needs the originals' transaction-status entries. Historical scans
//! ([`crate::db::Session::scan_with_snapshot`]) merge the archive back in.
//!
//! Vacuuming rewrites the heap compactly and rebuilds its indices, so it
//! requires a quiescent system (no active transactions).

use simdev::SimInstant;

use crate::btree::BTree;
use crate::catalog::{RelKind, RelationEntry};
use crate::datum::{decode_row, Datum, Schema, TypeId};
use crate::db::Db;
use crate::error::{DbError, DbResult};
use crate::heap::Heap;
use crate::ids::{DeviceId, RelId};
use crate::xact::{TupleHeader, XactState};

/// What one vacuum pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VacuumStats {
    /// Versions still visible to some present or future transaction.
    pub kept: u64,
    /// Dead versions moved to the archive relation.
    pub archived: u64,
    /// Versions discarded outright (aborted inserts, or `no_history` heaps).
    pub discarded: u64,
}

/// Vacuums `rel`, archiving dead versions onto `archive_dev`.
///
/// Dead versions (insert and delete both committed) move to the archive
/// relation — created on first need as `"<name>,arch"` with schema
/// `(amin time, amax time, data bytes)` — unless the relation was created
/// with `no_history`, in which case they are discarded. Tuples from aborted
/// transactions are always discarded. The heap is rewritten compactly and
/// every index on it rebuilt.
///
/// Errors with [`DbError::Invalid`] if any transaction is active.
pub fn vacuum(db: &Db, rel: RelId, archive_dev: DeviceId) -> DbResult<VacuumStats> {
    if !db.inner.xlog.active_set().is_empty() {
        return Err(DbError::Invalid(
            "vacuum requires a quiescent system (transactions active)".into(),
        ));
    }
    // The rewrite below is unlogged, and it reformats pages the log may
    // still hold records for. Checkpointing first drains those pages and
    // truncates the log, so a crash mid-vacuum replays nothing stale onto
    // the rewritten relation.
    db.checkpoint()?;
    let entry = {
        let cat = db.inner.catalog.read();
        let e = cat.relation(rel)?.clone();
        if e.kind != RelKind::Heap {
            return Err(DbError::Invalid(format!("{rel} is not a heap")));
        }
        e
    };

    // Classify every tuple version.
    enum Fate {
        Keep(TupleHeader, Vec<u8>),
        Archive(SimInstant, SimInstant, Vec<u8>),
    }
    let mut fates = Vec::new();
    let mut stats = VacuumStats::default();
    {
        let heap = Heap {
            wal: None,
            pool: &db.inner.pool,
            smgr: &db.inner.smgr,
            xlog: &db.inner.xlog,
            stats: &db.inner.stats,
            dev: entry.device,
            rel,
        };
        heap.scan_all_raw(|_tid, hdr, row_bytes| {
            let xmin_state = db.inner.xlog.state(hdr.xmin);
            let XactState::Committed(amin) = xmin_state else {
                // Aborted or crashed inserter: the version never existed.
                stats.discarded += 1;
                return Ok(());
            };
            if hdr.xmax.is_valid() {
                if let XactState::Committed(amax) = db.inner.xlog.state(hdr.xmax) {
                    // Dead to everyone: archive (or discard).
                    if entry.no_history {
                        stats.discarded += 1;
                    } else {
                        stats.archived += 1;
                        fates.push(Fate::Archive(amin, amax, row_bytes.to_vec()));
                    }
                    return Ok(());
                }
                // Deleter aborted: clear the stale xmax on the kept copy.
                stats.kept += 1;
                fates.push(Fate::Keep(
                    TupleHeader {
                        xmin: hdr.xmin,
                        xmax: crate::ids::XactId::INVALID,
                    },
                    row_bytes.to_vec(),
                ));
                return Ok(());
            }
            stats.kept += 1;
            fates.push(Fate::Keep(hdr, row_bytes.to_vec()));
            Ok(())
        })?;
    }

    // Ensure the archive relation exists if we need it.
    let mut archive: Option<(RelId, DeviceId)> = None;
    if fates.iter().any(|f| matches!(f, Fate::Archive(..))) {
        let existing = entry.archive;
        let (arch_id, arch_dev) = match existing {
            Some(a) => {
                let cat = db.inner.catalog.read();
                (a, cat.relation(a)?.device)
            }
            None => {
                let arch_id = {
                    let mut cat = db.inner.catalog.write();
                    let id = cat.alloc_oid();
                    cat.add_relation(RelationEntry {
                        id,
                        name: format!("{},arch", entry.name),
                        kind: RelKind::Heap,
                        device: archive_dev,
                        schema: Schema::new([
                            ("amin", TypeId::TIME),
                            ("amax", TypeId::TIME),
                            ("data", TypeId::BYTES),
                        ]),
                        index: None,
                        indexes: vec![],
                        archive: None,
                        no_history: true,
                    })?;
                    cat.relation_mut(rel)?.archive = Some(id);
                    id
                };
                db.inner.smgr.with(archive_dev, |m| m.create_rel(arch_id))?;
                (arch_id, archive_dev)
            }
        };
        archive = Some((arch_id, arch_dev));
    }

    // Move dead versions to the archive.
    if let Some((arch_id, arch_dev)) = archive {
        let arch_heap = Heap {
            wal: None,
            pool: &db.inner.pool,
            smgr: &db.inner.smgr,
            xlog: &db.inner.xlog,
            stats: &db.inner.stats,
            dev: arch_dev,
            rel: arch_id,
        };
        for f in &fates {
            if let Fate::Archive(amin, amax, bytes) = f {
                arch_heap.insert(
                    crate::ids::XactId::FROZEN,
                    &[
                        Datum::Time(amin.as_nanos()),
                        Datum::Time(amax.as_nanos()),
                        Datum::Bytes(bytes.clone()),
                    ],
                )?;
            }
        }
    }

    // Rewrite the heap with only the kept versions.
    db.inner.pool.discard_rel(rel);
    db.inner.smgr.invalidate_rel_io(entry.device, rel);
    db.inner.smgr.with(entry.device, |m| m.truncate(rel))?;
    let heap = Heap {
        wal: None,
        pool: &db.inner.pool,
        smgr: &db.inner.smgr,
        xlog: &db.inner.xlog,
        stats: &db.inner.stats,
        dev: entry.device,
        rel,
    };
    let mut kept_rows: Vec<(crate::ids::Tid, Vec<u8>)> = Vec::new();
    for f in &fates {
        if let Fate::Keep(hdr, bytes) = f {
            let tid = heap.insert_bytes(*hdr, bytes)?;
            kept_rows.push((tid, bytes.clone()));
        }
    }

    // Rebuild every index on the heap.
    let (_, indexes) = db.heap_parts(rel)?;
    for (idx, cols) in indexes {
        let idx_dev = db.inner.catalog.read().relation(idx)?.device;
        db.inner.pool.discard_rel(idx);
        db.inner.smgr.invalidate_rel_io(idx_dev, idx);
        db.inner.smgr.with(idx_dev, |m| m.truncate(idx))?;
        let bt = BTree {
            wal: None,
            pool: &db.inner.pool,
            smgr: &db.inner.smgr,
            stats: &db.inner.stats,
            dev: idx_dev,
            rel: idx,
        };
        bt.create()?;
        for (tid, bytes) in &kept_rows {
            let row = decode_row(bytes)?;
            let key: Vec<Datum> = cols.iter().map(|&i| row[i].clone()).collect();
            bt.insert(&key, *tid)?;
        }
    }

    // Make the rewrite durable and the catalog change persistent. (The
    // rewrite was unlogged, so its durability is this flush, not the log.)
    db.inner.pool.flush_all(&db.inner.smgr)?;
    db.inner.smgr.sync_all()?;
    db.persist_catalog()?;
    db.inner.stats.vacuum_passes.bump();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datum::Schema;
    use crate::db::Db;

    fn setup() -> (Db, RelId) {
        let db = Db::open_in_memory().unwrap();
        let rel = db
            .create_table("t", Schema::new([("k", TypeId::INT4), ("v", TypeId::TEXT)]))
            .unwrap();
        (db, rel)
    }

    fn row(k: i32, v: &str) -> Vec<Datum> {
        vec![Datum::Int4(k), Datum::Text(v.into())]
    }

    #[test]
    fn vacuum_keeps_live_archives_dead() {
        let (db, rel) = setup();
        let mut s = db.begin().unwrap();
        let t_old = s.insert(rel, row(1, "old")).unwrap();
        s.insert(rel, row(2, "live")).unwrap();
        s.commit().unwrap();
        let t_mid = db.now();
        let mut s = db.begin().unwrap();
        s.update(rel, t_old, row(1, "new")).unwrap();
        s.commit().unwrap();

        let stats = vacuum(&db, rel, DeviceId::DEFAULT).unwrap();
        assert_eq!(stats.kept, 2); // "new" and "live".
        assert_eq!(stats.archived, 1); // "old".
        assert_eq!(stats.discarded, 0);

        // Present view: two rows, updated value.
        let mut r = db.begin().unwrap();
        let rows = r.seq_scan(rel).unwrap();
        assert_eq!(rows.len(), 2);
        r.commit().unwrap();

        // Historical view still works, now served from the archive.
        let mut h = db.snapshot_at(t_mid);
        let mut vals: Vec<String> = h
            .seq_scan(rel)
            .unwrap()
            .into_iter()
            .map(|(_, r)| r[1].as_text().unwrap().to_string())
            .collect();
        vals.sort();
        assert_eq!(vals, vec!["live", "old"]);
    }

    #[test]
    fn vacuum_discards_aborted() {
        let (db, rel) = setup();
        let mut s = db.begin().unwrap();
        s.insert(rel, row(1, "aborted")).unwrap();
        s.abort().unwrap();
        let mut s = db.begin().unwrap();
        s.insert(rel, row(2, "kept")).unwrap();
        s.commit().unwrap();

        let stats = vacuum(&db, rel, DeviceId::DEFAULT).unwrap();
        assert_eq!(stats.discarded, 1);
        assert_eq!(stats.kept, 1);
        assert_eq!(stats.archived, 0);
        // No archive relation was created.
        assert!(db.catalog().relation(rel).unwrap().archive.is_none());
    }

    #[test]
    fn vacuum_no_history_discards_dead() {
        let db = Db::open_in_memory().unwrap();
        let rel = db
            .create_table_on(
                "nh",
                Schema::new([("k", TypeId::INT4)]),
                DeviceId::DEFAULT,
                true,
            )
            .unwrap();
        let mut s = db.begin().unwrap();
        let tid = s.insert(rel, vec![Datum::Int4(1)]).unwrap();
        s.commit().unwrap();
        let t_before = db.now();
        let mut s = db.begin().unwrap();
        s.delete(rel, tid).unwrap();
        s.commit().unwrap();

        let stats = vacuum(&db, rel, DeviceId::DEFAULT).unwrap();
        assert_eq!(stats.discarded, 1);
        assert_eq!(stats.archived, 0);
        // History is gone: the as-of view is empty now.
        let mut h = db.snapshot_at(t_before);
        assert!(h.seq_scan(rel).unwrap().is_empty());
    }

    #[test]
    fn vacuum_rebuilds_indexes() {
        let (db, rel) = setup();
        let idx = db.create_index("t_k", rel, &["k"]).unwrap();
        let mut s = db.begin().unwrap();
        let tid = s.insert(rel, row(1, "a")).unwrap();
        s.insert(rel, row(2, "b")).unwrap();
        s.commit().unwrap();
        let mut s = db.begin().unwrap();
        s.delete(rel, tid).unwrap();
        s.commit().unwrap();

        vacuum(&db, rel, DeviceId::DEFAULT).unwrap();

        let mut r = db.begin().unwrap();
        assert!(r.index_scan_eq(idx, &[Datum::Int4(1)]).unwrap().is_empty());
        let hits = r.index_scan_eq(idx, &[Datum::Int4(2)]).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].1[1], Datum::Text("b".into()));
        r.commit().unwrap();
    }

    #[test]
    fn vacuum_refuses_during_active_transaction() {
        let (db, rel) = setup();
        let s = db.begin().unwrap();
        assert!(matches!(
            vacuum(&db, rel, DeviceId::DEFAULT),
            Err(DbError::Invalid(_))
        ));
        drop(s);
    }

    #[test]
    fn repeated_vacuum_accumulates_archive() {
        let (db, rel) = setup();
        for gen in 0..3 {
            let mut s = db.begin().unwrap();
            let tid = s.insert(rel, row(gen, "v")).unwrap();
            s.commit().unwrap();
            let mut s = db.begin().unwrap();
            s.delete(rel, tid).unwrap();
            s.commit().unwrap();
            let stats = vacuum(&db, rel, DeviceId::DEFAULT).unwrap();
            assert_eq!(stats.archived, 1, "generation {gen}");
        }
        // All three dead generations are in the archive.
        let arch = db.catalog().relation(rel).unwrap().archive.unwrap();
        let mut r = db.begin().unwrap();
        assert_eq!(r.seq_scan(arch).unwrap().len(), 3);
        r.commit().unwrap();
    }

    #[test]
    fn vacuum_compacts_heap_pages() {
        let (db, rel) = setup();
        let mut s = db.begin().unwrap();
        let mut tids = Vec::new();
        for i in 0..200 {
            tids.push(
                s.insert(rel, vec![Datum::Int4(i), Datum::Text("x".repeat(500))])
                    .unwrap(),
            );
        }
        s.commit().unwrap();
        let mut s = db.begin().unwrap();
        for tid in &tids[..190] {
            s.delete(rel, *tid).unwrap();
        }
        s.commit().unwrap();
        let before = db
            .inner
            .smgr
            .with(DeviceId::DEFAULT, |m| m.nblocks(rel))
            .unwrap();
        vacuum(&db, rel, DeviceId::DEFAULT).unwrap();
        let after = db
            .inner
            .smgr
            .with(DeviceId::DEFAULT, |m| m.nblocks(rel))
            .unwrap();
        assert!(after < before, "heap should shrink: {before} -> {after}");
        let mut r = db.begin().unwrap();
        assert_eq!(r.seq_scan(rel).unwrap().len(), 10);
        r.commit().unwrap();
    }
}
