//! Queryable statistics: cheap counters for every subsystem, exposed as
//! virtual system relations.
//!
//! POSTGRES kept per-subsystem performance counters and made them visible
//! through ordinary relations so the query language could inspect the
//! system's own behaviour. This module is the reproduction's equivalent: a
//! central [`StatsRegistry`] of relaxed atomic counters that the buffer
//! cache, lock manager, transaction system, access methods, storage
//! manager, and vacuum cleaner bump as they work, plus a snapshot type
//! ([`StatsSnapshot`]) that freezes everything for reporting.
//!
//! The executor surfaces the registry as **virtual system relations** —
//! `pg_stat_buffer`, `pg_stat_lock`, `pg_stat_xact`, `pg_stat_relation`,
//! and `pg_stat_device` — scannable with ordinary POSTQUEL:
//!
//! ```text
//! retrieve (s.hits, s.misses) from s in pg_stat_buffer
//! ```
//!
//! Layers above the engine (Inversion's `inv_stat`, for instance) register
//! their own virtual relations through [`VirtualTables`].
//!
//! Counters use `Ordering::Relaxed` throughout: they are monotone event
//! counts, never used for synchronisation, so the cheapest ordering is the
//! right one. Snapshots are therefore not a consistent cut across threads,
//! which is fine for observability — each individual counter is exact.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::buffer::BufferStats;
use crate::datum::{Row, Schema};
use crate::ids::DeviceId;

/// A monotone event counter, safe to bump from any thread.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn bump(&self) {
        self.0.fetch_add(1, Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// A monotone high-water mark, safe to observe from any thread.
#[derive(Debug, Default)]
pub struct MaxGauge(AtomicU64);

impl MaxGauge {
    /// A zeroed gauge.
    pub const fn new() -> MaxGauge {
        MaxGauge(AtomicU64::new(0))
    }

    /// Raises the mark to `v` if `v` exceeds it.
    pub fn observe(&self, v: u64) {
        self.0.fetch_max(v, Relaxed);
    }

    /// The current high-water mark.
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// Number of latency buckets in a [`LatencyHistogram`].
pub const LATENCY_BUCKETS: usize = 7;

/// Upper bounds (exclusive, nanoseconds) of the histogram buckets; the last
/// bucket is unbounded.
pub const LATENCY_BOUNDS_NS: [u64; LATENCY_BUCKETS - 1] = [
    10_000,        // < 10 µs
    100_000,       // < 100 µs
    1_000_000,     // < 1 ms
    10_000_000,    // < 10 ms
    100_000_000,   // < 100 ms
    1_000_000_000, // < 1 s
];

/// A log-scale latency histogram over *simulated* time.
///
/// Device operations advance the [`simdev`] clock by their modeled cost;
/// the storage manager measures that advance and records it here, so the
/// histogram reflects RZ58 seeks and jukebox platter loads, not host time.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [Counter; LATENCY_BUCKETS],
}

impl LatencyHistogram {
    /// Records one observation of `ns` simulated nanoseconds.
    pub fn record(&self, ns: u64) {
        let i = LATENCY_BOUNDS_NS
            .iter()
            .position(|&b| ns < b)
            .unwrap_or(LATENCY_BUCKETS - 1);
        self.buckets[i].bump();
    }

    /// The bucket counts.
    pub fn snapshot(&self) -> [u64; LATENCY_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].get())
    }
}

/// Transaction-system counters.
#[derive(Debug, Default)]
pub struct XactCounters {
    /// Transactions committed.
    pub commits: Counter,
    /// Transactions aborted.
    pub aborts: Counter,
    /// Scans executed against an `AsOf` (time-travel) snapshot.
    pub time_travel_reads: Counter,
    /// Commit batches that durably committed more than one record with a
    /// single status-log sync.
    pub group_commits: Counter,
    /// Commit records persisted through the group-commit coordinator
    /// (every committed write transaction counts once, batched or not).
    pub batched_records: Counter,
    /// Dirty pages written back by commits (scoped to each transaction's
    /// own dirty set).
    pub pages_flushed_at_commit: Counter,
    /// Data-device syncs issued by commit processing; with scoped sync a
    /// single-table commit costs exactly one, and group commit amortizes
    /// the status-log force so this stays *below* `commits` under load.
    pub sync_calls: Counter,
    /// Commit latency (begin-to-durable, simulated time) distribution.
    pub commit_latency: LatencyHistogram,
}

/// Write-ahead-log and checkpointer counters.
#[derive(Debug, Default)]
pub struct WalCounters {
    /// REDO records appended to the log.
    pub records_appended: Counter,
    /// Record bytes appended (headers included).
    pub bytes_appended: Counter,
    /// Log forces: block writes plus one sync that advanced the durable
    /// horizon. Group commit amortizes these across a batch.
    pub log_forces: Counter,
    /// Checkpoint cycles completed.
    pub checkpoints: Counter,
    /// Dirty pages written out by checkpoint cycles.
    pub ckpt_pages_drained: Counter,
    /// Pages fixed up by first-touch REDO replay after a crash.
    pub replayed_pages: Counter,
    /// Individual REDO records applied during replay.
    pub replayed_records: Counter,
}

/// Heap access-method counters.
#[derive(Debug, Default)]
pub struct HeapCounters {
    /// Full-relation scans.
    pub scans: Counter,
    /// Single-tuple fetches by TID.
    pub fetches: Counter,
    /// Tuples appended (inserts and the insert half of updates).
    pub appends: Counter,
}

/// B-tree access-method counters.
#[derive(Debug, Default)]
pub struct BTreeCounters {
    /// Key searches and range scans.
    pub searches: Counter,
    /// Entries inserted.
    pub inserts: Counter,
    /// Node splits (the paper's interleaved-write culprit).
    pub splits: Counter,
    /// Index pages forced out by eager write-through.
    pub page_writes: Counter,
}

/// Lock-manager counters.
#[derive(Debug, Default)]
pub struct LockCounters {
    /// Locks granted.
    pub acquisitions: Counter,
    /// Wait episodes (a request that had to block at least once).
    pub waits: Counter,
    /// Requests refused because they would close a waits-for cycle.
    pub deadlocks: Counter,
    /// Requests that gave up after the lock timeout.
    pub timeouts: Counter,
}

/// Query-planner counters, surfaced as the `pg_stat_planner` virtual
/// relation.
#[derive(Debug, Default)]
pub struct PlannerCounters {
    /// Statements planned (one per bind → plan → optimize pass).
    pub plans_built: Counter,
    /// Heap scans the optimizer resolved to a B-tree index scan.
    pub index_scans_chosen: Counter,
    /// Heap scans the optimizer left as sequential scans.
    pub seq_scans_chosen: Counter,
    /// Nested-loop join nodes planned.
    pub joins_planned: Counter,
}

/// Device slots tracked per registry. [`DeviceId`]s at or above this index
/// share the last slot; real configurations use a handful of devices.
pub const DEVICE_SLOTS: usize = 16;

/// Per-device storage-manager I/O counters.
#[derive(Debug, Default)]
pub struct DeviceIoCounters {
    /// Page reads issued to the device manager.
    pub reads: Counter,
    /// Page writes (including blank extensions) issued.
    pub writes: Counter,
    /// Total simulated nanoseconds spent in reads.
    pub read_ns: Counter,
    /// Total simulated nanoseconds spent in writes.
    pub write_ns: Counter,
    /// Read latency distribution.
    pub read_hist: LatencyHistogram,
    /// Write latency distribution.
    pub write_hist: LatencyHistogram,
}

/// Per-device I/O scheduler counters (see [`crate::io`]), surfaced as the
/// `pg_stat_io` virtual relation.
#[derive(Debug, Default)]
pub struct IoQueueCounters {
    /// Requests submitted to the queue (reads, writes, and combines).
    pub submitted: Counter,
    /// Requests that left the queue (served or benignly dropped).
    pub completed: Counter,
    /// Requests serviced at the same or the next elevator key as their
    /// predecessor — the sequential runs the C-SCAN sweep manufactured.
    pub batched_neighbors: Counter,
    /// Elevator wraps (the hand ran past the top of the key space).
    pub elevator_passes: Counter,
    /// High-water mark of the queue depth.
    pub queue_depth_hw: MaxGauge,
    /// Queue barriers executed (`sync` drains).
    pub barrier_waits: Counter,
}

/// The central statistics registry, one per [`crate::Db`].
///
/// Every field is independently updatable with relaxed atomics; the
/// registry is shared (via `Arc`) with the lock manager and storage
/// manager so instrumentation costs one `fetch_add` per event.
#[derive(Debug, Default)]
pub struct StatsRegistry {
    /// Transaction counters.
    pub xact: XactCounters,
    /// Write-ahead-log and checkpointer counters.
    pub wal: WalCounters,
    /// Heap counters.
    pub heap: HeapCounters,
    /// B-tree counters.
    pub btree: BTreeCounters,
    /// Lock-manager counters.
    pub lock: LockCounters,
    /// Query-planner counters.
    pub planner: PlannerCounters,
    /// Vacuum passes completed.
    pub vacuum_passes: Counter,
    /// Per-device I/O, indexed by [`DeviceId`] (clamped to [`DEVICE_SLOTS`]).
    pub dev: [DeviceIoCounters; DEVICE_SLOTS],
    /// Per-device I/O scheduler counters, indexed like `dev`.
    pub io: [IoQueueCounters; DEVICE_SLOTS],
}

impl StatsRegistry {
    /// A zeroed registry.
    pub fn new() -> StatsRegistry {
        StatsRegistry::default()
    }

    /// The I/O counters for `dev`.
    pub fn device(&self, dev: DeviceId) -> &DeviceIoCounters {
        &self.dev[(dev.0 as usize).min(DEVICE_SLOTS - 1)]
    }

    /// The I/O scheduler counters for `dev`.
    pub fn io_queue(&self, dev: DeviceId) -> &IoQueueCounters {
        &self.io[(dev.0 as usize).min(DEVICE_SLOTS - 1)]
    }
}

/// Frozen transaction counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct XactStats {
    /// Transactions committed.
    pub commits: u64,
    /// Transactions aborted.
    pub aborts: u64,
    /// Time-travel scans.
    pub time_travel_reads: u64,
    /// Multi-record commit batches.
    pub group_commits: u64,
    /// Commit records persisted via the coordinator.
    pub batched_records: u64,
    /// Dirty pages written back at commit.
    pub pages_flushed_at_commit: u64,
    /// Data-device syncs issued by commits.
    pub sync_calls: u64,
    /// Commit latency bucket counts (bounds in [`LATENCY_BOUNDS_NS`]).
    pub commit_latency: [u64; LATENCY_BUCKETS],
}

/// Frozen WAL and checkpointer counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// REDO records appended.
    pub records_appended: u64,
    /// Record bytes appended.
    pub bytes_appended: u64,
    /// Log forces (block writes + one sync each).
    pub log_forces: u64,
    /// Checkpoint cycles completed.
    pub checkpoints: u64,
    /// Dirty pages drained by checkpoints.
    pub ckpt_pages_drained: u64,
    /// Pages replayed on first touch after a crash.
    pub replayed_pages: u64,
    /// REDO records applied during replay.
    pub replayed_records: u64,
}

/// Frozen heap counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeapOpStats {
    /// Full-relation scans.
    pub scans: u64,
    /// Single-tuple fetches.
    pub fetches: u64,
    /// Tuples appended.
    pub appends: u64,
}

/// Frozen B-tree counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BTreeOpStats {
    /// Key searches and range scans.
    pub searches: u64,
    /// Entries inserted.
    pub inserts: u64,
    /// Node splits.
    pub splits: u64,
    /// Eagerly written index pages.
    pub page_writes: u64,
}

/// Frozen planner counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlannerStats {
    /// Statements planned.
    pub plans_built: u64,
    /// Scans resolved to index scans.
    pub index_scans_chosen: u64,
    /// Scans left sequential.
    pub seq_scans_chosen: u64,
    /// Nested-loop joins planned.
    pub joins_planned: u64,
}

/// Frozen lock counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockStats {
    /// Locks granted.
    pub acquisitions: u64,
    /// Wait episodes.
    pub waits: u64,
    /// Deadlocks detected.
    pub deadlocks: u64,
    /// Lock timeouts.
    pub timeouts: u64,
}

/// Frozen per-device I/O counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeviceIoStats {
    /// The device id.
    pub device: u8,
    /// The device manager's name.
    pub name: String,
    /// Page reads.
    pub reads: u64,
    /// Page writes.
    pub writes: u64,
    /// Simulated nanoseconds reading.
    pub read_ns: u64,
    /// Simulated nanoseconds writing.
    pub write_ns: u64,
    /// Read latency bucket counts (bounds in [`LATENCY_BOUNDS_NS`]).
    pub read_hist: [u64; LATENCY_BUCKETS],
    /// Write latency bucket counts.
    pub write_hist: [u64; LATENCY_BUCKETS],
    /// Scheduler requests submitted.
    pub io_submitted: u64,
    /// Scheduler requests completed.
    pub io_completed: u64,
    /// Requests serviced adjacent to their predecessor.
    pub io_batched_neighbors: u64,
    /// Elevator wraps.
    pub io_elevator_passes: u64,
    /// Queue depth high-water mark.
    pub io_queue_depth_hw: u64,
    /// Queue barriers executed.
    pub io_barrier_waits: u64,
}

/// A frozen copy of every counter the engine keeps, including the buffer
/// cache's [`BufferStats`]. Produced by [`crate::Db::stats`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsSnapshot {
    /// Buffer cache counters.
    pub buffer: BufferStats,
    /// Transaction counters.
    pub xact: XactStats,
    /// WAL and checkpointer counters.
    pub wal: WalStats,
    /// Heap counters.
    pub heap: HeapOpStats,
    /// B-tree counters.
    pub btree: BTreeOpStats,
    /// Lock counters.
    pub lock: LockStats,
    /// Planner counters.
    pub planner: PlannerStats,
    /// Vacuum passes completed.
    pub vacuum_passes: u64,
    /// Per-device I/O, one entry per registered device.
    pub devices: Vec<DeviceIoStats>,
}

fn sub(a: u64, b: u64) -> u64 {
    a.saturating_sub(b)
}

impl StatsSnapshot {
    /// Freezes the non-buffer, non-device counters of `reg`.
    pub fn from_registry(reg: &StatsRegistry) -> StatsSnapshot {
        StatsSnapshot {
            buffer: BufferStats::default(),
            xact: XactStats {
                commits: reg.xact.commits.get(),
                aborts: reg.xact.aborts.get(),
                time_travel_reads: reg.xact.time_travel_reads.get(),
                group_commits: reg.xact.group_commits.get(),
                batched_records: reg.xact.batched_records.get(),
                pages_flushed_at_commit: reg.xact.pages_flushed_at_commit.get(),
                sync_calls: reg.xact.sync_calls.get(),
                commit_latency: reg.xact.commit_latency.snapshot(),
            },
            wal: WalStats {
                records_appended: reg.wal.records_appended.get(),
                bytes_appended: reg.wal.bytes_appended.get(),
                log_forces: reg.wal.log_forces.get(),
                checkpoints: reg.wal.checkpoints.get(),
                ckpt_pages_drained: reg.wal.ckpt_pages_drained.get(),
                replayed_pages: reg.wal.replayed_pages.get(),
                replayed_records: reg.wal.replayed_records.get(),
            },
            heap: HeapOpStats {
                scans: reg.heap.scans.get(),
                fetches: reg.heap.fetches.get(),
                appends: reg.heap.appends.get(),
            },
            btree: BTreeOpStats {
                searches: reg.btree.searches.get(),
                inserts: reg.btree.inserts.get(),
                splits: reg.btree.splits.get(),
                page_writes: reg.btree.page_writes.get(),
            },
            lock: LockStats {
                acquisitions: reg.lock.acquisitions.get(),
                waits: reg.lock.waits.get(),
                deadlocks: reg.lock.deadlocks.get(),
                timeouts: reg.lock.timeouts.get(),
            },
            planner: PlannerStats {
                plans_built: reg.planner.plans_built.get(),
                index_scans_chosen: reg.planner.index_scans_chosen.get(),
                seq_scans_chosen: reg.planner.seq_scans_chosen.get(),
                joins_planned: reg.planner.joins_planned.get(),
            },
            vacuum_passes: reg.vacuum_passes.get(),
            devices: Vec::new(),
        }
    }

    /// The counter growth since `baseline` (saturating per field).
    pub fn delta(&self, baseline: &StatsSnapshot) -> StatsSnapshot {
        let devices = self
            .devices
            .iter()
            .map(|d| {
                let base = baseline
                    .devices
                    .iter()
                    .find(|b| b.device == d.device)
                    .cloned()
                    .unwrap_or_default();
                DeviceIoStats {
                    device: d.device,
                    name: d.name.clone(),
                    reads: sub(d.reads, base.reads),
                    writes: sub(d.writes, base.writes),
                    read_ns: sub(d.read_ns, base.read_ns),
                    write_ns: sub(d.write_ns, base.write_ns),
                    read_hist: std::array::from_fn(|i| sub(d.read_hist[i], base.read_hist[i])),
                    write_hist: std::array::from_fn(|i| sub(d.write_hist[i], base.write_hist[i])),
                    io_submitted: sub(d.io_submitted, base.io_submitted),
                    io_completed: sub(d.io_completed, base.io_completed),
                    io_batched_neighbors: sub(
                        d.io_batched_neighbors,
                        base.io_batched_neighbors,
                    ),
                    io_elevator_passes: sub(d.io_elevator_passes, base.io_elevator_passes),
                    // A high-water mark is not a rate; the interval's mark
                    // is the current one.
                    io_queue_depth_hw: d.io_queue_depth_hw,
                    io_barrier_waits: sub(d.io_barrier_waits, base.io_barrier_waits),
                }
            })
            .collect();
        StatsSnapshot {
            buffer: BufferStats {
                hits: sub(self.buffer.hits, baseline.buffer.hits),
                misses: sub(self.buffer.misses, baseline.buffer.misses),
                evictions: sub(self.buffer.evictions, baseline.buffer.evictions),
                writebacks: sub(self.buffer.writebacks, baseline.buffer.writebacks),
                prefetches: sub(self.buffer.prefetches, baseline.buffer.prefetches),
                prefetch_hits: sub(self.buffer.prefetch_hits, baseline.buffer.prefetch_hits),
            },
            xact: XactStats {
                commits: sub(self.xact.commits, baseline.xact.commits),
                aborts: sub(self.xact.aborts, baseline.xact.aborts),
                time_travel_reads: sub(
                    self.xact.time_travel_reads,
                    baseline.xact.time_travel_reads,
                ),
                group_commits: sub(self.xact.group_commits, baseline.xact.group_commits),
                batched_records: sub(self.xact.batched_records, baseline.xact.batched_records),
                pages_flushed_at_commit: sub(
                    self.xact.pages_flushed_at_commit,
                    baseline.xact.pages_flushed_at_commit,
                ),
                sync_calls: sub(self.xact.sync_calls, baseline.xact.sync_calls),
                commit_latency: std::array::from_fn(|i| {
                    sub(self.xact.commit_latency[i], baseline.xact.commit_latency[i])
                }),
            },
            wal: WalStats {
                records_appended: sub(self.wal.records_appended, baseline.wal.records_appended),
                bytes_appended: sub(self.wal.bytes_appended, baseline.wal.bytes_appended),
                log_forces: sub(self.wal.log_forces, baseline.wal.log_forces),
                checkpoints: sub(self.wal.checkpoints, baseline.wal.checkpoints),
                ckpt_pages_drained: sub(
                    self.wal.ckpt_pages_drained,
                    baseline.wal.ckpt_pages_drained,
                ),
                replayed_pages: sub(self.wal.replayed_pages, baseline.wal.replayed_pages),
                replayed_records: sub(self.wal.replayed_records, baseline.wal.replayed_records),
            },
            heap: HeapOpStats {
                scans: sub(self.heap.scans, baseline.heap.scans),
                fetches: sub(self.heap.fetches, baseline.heap.fetches),
                appends: sub(self.heap.appends, baseline.heap.appends),
            },
            btree: BTreeOpStats {
                searches: sub(self.btree.searches, baseline.btree.searches),
                inserts: sub(self.btree.inserts, baseline.btree.inserts),
                splits: sub(self.btree.splits, baseline.btree.splits),
                page_writes: sub(self.btree.page_writes, baseline.btree.page_writes),
            },
            lock: LockStats {
                acquisitions: sub(self.lock.acquisitions, baseline.lock.acquisitions),
                waits: sub(self.lock.waits, baseline.lock.waits),
                deadlocks: sub(self.lock.deadlocks, baseline.lock.deadlocks),
                timeouts: sub(self.lock.timeouts, baseline.lock.timeouts),
            },
            planner: PlannerStats {
                plans_built: sub(self.planner.plans_built, baseline.planner.plans_built),
                index_scans_chosen: sub(
                    self.planner.index_scans_chosen,
                    baseline.planner.index_scans_chosen,
                ),
                seq_scans_chosen: sub(
                    self.planner.seq_scans_chosen,
                    baseline.planner.seq_scans_chosen,
                ),
                joins_planned: sub(self.planner.joins_planned, baseline.planner.joins_planned),
            },
            vacuum_passes: sub(self.vacuum_passes, baseline.vacuum_passes),
            devices,
        }
    }

    /// Serializes the snapshot as a JSON object (hand-rolled: the build
    /// environment is offline, so no serde).
    pub fn to_json(&self) -> String {
        fn hist(h: &[u64]) -> String {
            let inner: Vec<String> = h.iter().map(u64::to_string).collect();
            format!("[{}]", inner.join(","))
        }
        let devices: Vec<String> = self
            .devices
            .iter()
            .map(|d| {
                format!(
                    "{{\"device\":{},\"name\":{},\"reads\":{},\"writes\":{},\
                     \"read_ns\":{},\"write_ns\":{},\"read_hist\":{},\"write_hist\":{},\
                     \"io_submitted\":{},\"io_completed\":{},\"io_batched_neighbors\":{},\
                     \"io_elevator_passes\":{},\"io_queue_depth_hw\":{},\"io_barrier_waits\":{}}}",
                    d.device,
                    json_string(&d.name),
                    d.reads,
                    d.writes,
                    d.read_ns,
                    d.write_ns,
                    hist(&d.read_hist),
                    hist(&d.write_hist),
                    d.io_submitted,
                    d.io_completed,
                    d.io_batched_neighbors,
                    d.io_elevator_passes,
                    d.io_queue_depth_hw,
                    d.io_barrier_waits,
                )
            })
            .collect();
        format!(
            "{{\"buffer\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\"writebacks\":{},\
             \"prefetches\":{},\"prefetch_hits\":{}}},\
             \"lock\":{{\"acquisitions\":{},\"waits\":{},\"deadlocks\":{},\"timeouts\":{}}},\
             \"xact\":{{\"commits\":{},\"aborts\":{},\"time_travel_reads\":{},\
             \"group_commits\":{},\"batched_records\":{},\"pages_flushed_at_commit\":{},\
             \"sync_calls\":{},\"commit_latency\":{}}},\
             \"wal\":{{\"records_appended\":{},\"bytes_appended\":{},\"log_forces\":{},\
             \"checkpoints\":{},\"ckpt_pages_drained\":{},\"replayed_pages\":{},\
             \"replayed_records\":{}}},\
             \"heap\":{{\"scans\":{},\"fetches\":{},\"appends\":{}}},\
             \"btree\":{{\"searches\":{},\"inserts\":{},\"splits\":{},\"page_writes\":{}}},\
             \"planner\":{{\"plans_built\":{},\"index_scans_chosen\":{},\
             \"seq_scans_chosen\":{},\"joins_planned\":{}}},\
             \"vacuum_passes\":{},\
             \"devices\":[{}]}}",
            self.buffer.hits,
            self.buffer.misses,
            self.buffer.evictions,
            self.buffer.writebacks,
            self.buffer.prefetches,
            self.buffer.prefetch_hits,
            self.lock.acquisitions,
            self.lock.waits,
            self.lock.deadlocks,
            self.lock.timeouts,
            self.xact.commits,
            self.xact.aborts,
            self.xact.time_travel_reads,
            self.xact.group_commits,
            self.xact.batched_records,
            self.xact.pages_flushed_at_commit,
            self.xact.sync_calls,
            hist(&self.xact.commit_latency),
            self.wal.records_appended,
            self.wal.bytes_appended,
            self.wal.log_forces,
            self.wal.checkpoints,
            self.wal.ckpt_pages_drained,
            self.wal.replayed_pages,
            self.wal.replayed_records,
            self.heap.scans,
            self.heap.fetches,
            self.heap.appends,
            self.btree.searches,
            self.btree.inserts,
            self.btree.splits,
            self.btree.page_writes,
            self.planner.plans_built,
            self.planner.index_scans_chosen,
            self.planner.seq_scans_chosen,
            self.planner.joins_planned,
            self.vacuum_passes,
            devices.join(","),
        )
    }
}

/// Escapes `s` as a JSON string literal.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A row producer for one virtual relation. Called at scan time; must be
/// cheap and must not call back into the executing session.
pub type VirtualRowsFn = Arc<dyn Fn() -> Vec<Row> + Send + Sync>;

/// One registered virtual relation: a fixed schema plus a row producer.
#[derive(Clone)]
pub struct VirtualTable {
    /// Column names and types of the relation.
    pub schema: Schema,
    /// Produces the current rows.
    pub rows: VirtualRowsFn,
}

/// The extension point for layered systems: relations that exist only as
/// row producers, scannable from the query language but backed by no heap.
/// The engine's own `pg_stat_*` relations are built in; Inversion registers
/// `inv_stat` here.
#[derive(Default)]
pub struct VirtualTables {
    map: RwLock<HashMap<String, VirtualTable>>,
}

impl VirtualTables {
    /// An empty registry.
    pub fn new() -> VirtualTables {
        VirtualTables::default()
    }

    /// Registers (or replaces) the virtual relation `name`.
    pub fn register(&self, name: &str, schema: Schema, rows: VirtualRowsFn) {
        self.map
            .write()
            .insert(name.to_string(), VirtualTable { schema, rows });
    }

    /// Looks up a virtual relation.
    pub fn get(&self, name: &str) -> Option<VirtualTable> {
        self.map.read().get(name).cloned()
    }

    /// The registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.map.read().keys().cloned().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datum::{Datum, TypeId};

    #[test]
    fn counters_bump_and_add() {
        let c = Counter::new();
        c.bump();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn histogram_buckets_by_magnitude() {
        let h = LatencyHistogram::default();
        h.record(1_000); // < 10 µs
        h.record(50_000); // < 100 µs
        h.record(5_000_000); // < 10 ms
        h.record(2_000_000_000); // >= 1 s
        assert_eq!(h.snapshot(), [1, 1, 0, 1, 0, 0, 1]);
    }

    #[test]
    fn device_slot_clamps() {
        let reg = StatsRegistry::new();
        reg.device(DeviceId(200)).reads.bump();
        assert_eq!(reg.dev[DEVICE_SLOTS - 1].reads.get(), 1);
        reg.device(DeviceId(0)).writes.add(3);
        assert_eq!(reg.dev[0].writes.get(), 3);
    }

    #[test]
    fn snapshot_delta_subtracts() {
        let reg = StatsRegistry::new();
        reg.xact.commits.add(5);
        reg.lock.waits.add(2);
        let t0 = StatsSnapshot::from_registry(&reg);
        reg.xact.commits.add(3);
        reg.lock.waits.add(1);
        reg.heap.scans.bump();
        let t1 = StatsSnapshot::from_registry(&reg);
        let d = t1.delta(&t0);
        assert_eq!(d.xact.commits, 3);
        assert_eq!(d.lock.waits, 1);
        assert_eq!(d.heap.scans, 1);
        assert_eq!(d.xact.aborts, 0);
    }

    #[test]
    fn json_roundtrip_shape() {
        let reg = StatsRegistry::new();
        reg.btree.splits.add(7);
        let mut snap = StatsSnapshot::from_registry(&reg);
        snap.devices.push(DeviceIoStats {
            device: 0,
            name: "rz\"58".into(),
            reads: 1,
            ..DeviceIoStats::default()
        });
        let j = snap.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"splits\":7"));
        assert!(j.contains("\\\"58"), "device name must be escaped: {j}");
        // Balanced braces and brackets — cheap well-formedness check.
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn virtual_tables_register_and_scan() {
        let vt = VirtualTables::new();
        vt.register(
            "v_test",
            Schema::new([("n", TypeId::INT4)]),
            Arc::new(|| vec![vec![Datum::Int4(7)]]),
        );
        let t = vt.get("v_test").unwrap();
        assert_eq!(t.schema.columns[0].name, "n");
        assert_eq!((t.rows)(), vec![vec![Datum::Int4(7)]]);
        assert!(vt.get("missing").is_none());
        assert_eq!(vt.names(), vec!["v_test".to_string()]);
    }
}
