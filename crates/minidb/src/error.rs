//! Engine error types.

use std::fmt;

use simdev::DevError;

/// Errors surfaced by the storage engine.
#[derive(Debug, Clone, PartialEq)]
pub enum DbError {
    /// An underlying device failed.
    Device(DevError),
    /// A named object (table, index, type, function, rule) does not exist.
    NotFound(String),
    /// An object with this name already exists.
    AlreadyExists(String),
    /// A tuple, key, or page was malformed.
    Corrupt(String),
    /// A tuple was too large to fit on one page.
    TupleTooBig {
        /// Encoded tuple size.
        size: usize,
        /// Largest size that fits.
        max: usize,
    },
    /// Deadlock detected; the transaction should be aborted and retried.
    Deadlock,
    /// A lock wait timed out.
    LockTimeout,
    /// The operation requires an active transaction.
    NoTransaction,
    /// A transaction is already active on this session.
    TransactionActive,
    /// The session is read-only (historical snapshots cannot be written).
    ReadOnly,
    /// A query failed to parse.
    Parse(String),
    /// A query failed type checking or binding.
    Bind(String),
    /// A runtime evaluation error (division by zero, bad cast, ...).
    Eval(String),
    /// Catch-all for invalid API usage.
    Invalid(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Device(e) => write!(f, "device error: {e}"),
            DbError::NotFound(what) => write!(f, "not found: {what}"),
            DbError::AlreadyExists(what) => write!(f, "already exists: {what}"),
            DbError::Corrupt(what) => write!(f, "corrupt data: {what}"),
            DbError::TupleTooBig { size, max } => {
                write!(f, "tuple of {size} bytes exceeds page capacity {max}")
            }
            DbError::Deadlock => write!(f, "deadlock detected"),
            DbError::LockTimeout => write!(f, "lock wait timed out"),
            DbError::NoTransaction => write!(f, "no transaction in progress"),
            DbError::TransactionActive => write!(f, "a transaction is already in progress"),
            DbError::ReadOnly => write!(f, "historical snapshots are read-only"),
            DbError::Parse(msg) => write!(f, "parse error: {msg}"),
            DbError::Bind(msg) => write!(f, "bind error: {msg}"),
            DbError::Eval(msg) => write!(f, "evaluation error: {msg}"),
            DbError::Invalid(msg) => write!(f, "invalid operation: {msg}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<DevError> for DbError {
    fn from(e: DevError) -> Self {
        DbError::Device(e)
    }
}

/// Convenience alias for engine results.
pub type DbResult<T> = Result<T, DbError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_errors_convert() {
        let e: DbError = DevError::NoSpace.into();
        assert_eq!(e, DbError::Device(DevError::NoSpace));
        assert!(e.to_string().contains("device full"));
    }

    #[test]
    fn display_mentions_detail() {
        assert!(DbError::NotFound("naming".into())
            .to_string()
            .contains("naming"));
        assert!(DbError::TupleTooBig {
            size: 9000,
            max: 8150
        }
        .to_string()
        .contains("9000"));
    }
}
