//! Transactions: the status file, snapshots, and tuple visibility.
//!
//! POSTGRES's no-overwrite storage manager needs no write-ahead log: "only
//! the start time and commit state of a transaction must be recorded in the
//! status file, no special log processing is required at crash recovery
//! time". This module is that status file plus the visibility rules that
//! make both ordinary reads and *time travel* work.
//!
//! A transaction that crashes before committing simply never gets a
//! `Committed` entry; its tuples are invisible to everyone forever. That is
//! the whole recovery story, and why the paper calls recovery "essentially
//! instantaneous".

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering::SeqCst};

use parking_lot::{Condvar, Mutex};
use simdev::{SimClock, SimDuration, SimInstant};

use crate::error::{DbError, DbResult};
use crate::ids::{DeviceId, XactId};
use crate::smgr::SharedDevice;

/// Commit state of one transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XactState {
    /// Never started (or started and crashed before commit — equivalent).
    Unknown,
    /// Running right now (volatile; never persisted).
    InProgress,
    /// Committed at the given instant.
    Committed(SimInstant),
    /// Explicitly aborted.
    Aborted,
}

const ENTRY_SIZE: usize = 9; // 1 status byte + 8 commit-time bytes.
const ENTRIES_PER_BLOCK: usize = simdev::BLOCK_SIZE / ENTRY_SIZE;

const ST_UNKNOWN: u8 = 0;
/// Marker byte in block 0's slot 0 (the invalid xid's slot): the following
/// eight bytes hold the durable xid-allocation ceiling.
const ST_CEILING: u8 = 1;
const ST_COMMITTED: u8 = 2;
const ST_ABORTED: u8 = 3;

/// How many xids one durable ceiling bump covers. Allocation crosses the
/// ceiling only after persisting a higher one, so at most this many ids are
/// skipped after a crash.
const CEILING_STEP: usize = 1024;

struct LogInner {
    /// Entry `i` describes `XactId(i)`; index 0 is the invalid xid.
    entries: Vec<XactState>,
    /// First xid NOT covered by the durably persisted allocation ceiling.
    /// `start` never hands out `entries.len() >= ceiling` without first
    /// persisting a higher ceiling, so a crash can never lead to an already
    /// used xid being allocated again — even when every trace of the old
    /// transaction (WAL records, status entry) is gone but its tuples
    /// reached disk through a checkpoint or an eviction.
    ceiling: usize,
    /// Status blocks whose in-memory state is ahead of the device. Under
    /// WAL-protected commit the log force is the commit point and status
    /// entries are only marked in memory; checkpoints drain this set via
    /// [`XactLog::persist_dirty`].
    dirty: HashSet<u64>,
}

impl LogInner {
    fn mark_dirty(&mut self, xid: XactId) {
        self.dirty.insert((xid.0 as usize / ENTRIES_PER_BLOCK) as u64);
    }
}

/// The transaction status file.
///
/// Persistent entries live on a dedicated device (`pg_log` in POSTGRES);
/// commit and abort write through synchronously, which *is* the commit
/// point. In-progress state is memory-only, so a crash leaves those
/// transactions `Unknown` — i.e. aborted.
pub struct XactLog {
    dev: SharedDevice,
    inner: Mutex<LogInner>,
}

impl XactLog {
    /// Creates a fresh log on `dev`, with [`XactId::FROZEN`] pre-committed at
    /// the epoch (bootstrap tuples are stamped with it).
    pub fn create(dev: SharedDevice) -> DbResult<XactLog> {
        let log = XactLog {
            dev,
            inner: Mutex::new(LogInner {
                entries: vec![XactState::Unknown, XactState::Committed(SimInstant::EPOCH)],
                dirty: HashSet::new(),
                ceiling: CEILING_STEP,
            }),
        };
        // Writes block 0, which carries both FROZEN and the initial ceiling.
        log.persist_entry(XactId::FROZEN)?;
        Ok(log)
    }

    /// Reloads the log from `dev` after a crash or restart.
    ///
    /// Any transaction that was in progress at the crash has no persistent
    /// entry and is reported [`XactState::Unknown`], making its updates
    /// permanently invisible — this is the entirety of crash recovery.
    pub fn recover(dev: SharedDevice) -> DbResult<XactLog> {
        let mut entries = vec![XactState::Unknown];
        let mut blk = vec![0u8; simdev::BLOCK_SIZE];
        let mut blkno = 0u64;
        let mut ceiling = 0usize;
        'outer: loop {
            {
                let mut d = dev.lock();
                if blkno >= d.nblocks() {
                    break;
                }
                d.read_block(blkno, &mut blk)?;
            }
            let first = blkno as usize * ENTRIES_PER_BLOCK;
            for i in 0..ENTRIES_PER_BLOCK {
                let xid = first + i;
                if xid == 0 {
                    if blk[0] == ST_CEILING {
                        ceiling = crate::bytes::le_u64(&blk, 1)? as usize;
                    }
                    continue;
                }
                let off = i * ENTRY_SIZE;
                let status = blk[off];
                match status {
                    ST_COMMITTED => {
                        let t = crate::bytes::le_u64(&blk, off + 1)?;
                        while entries.len() <= xid {
                            entries.push(XactState::Unknown);
                        }
                        entries[xid] = XactState::Committed(SimInstant::from_nanos(t));
                    }
                    ST_ABORTED => {
                        while entries.len() <= xid {
                            entries.push(XactState::Unknown);
                        }
                        entries[xid] = XactState::Aborted;
                    }
                    ST_UNKNOWN => {
                        // An all-unknown tail past the allocation ceiling
                        // ends the log. Below the ceiling it proves nothing:
                        // a restart skips to the ceiling, so entries may sit
                        // beyond an arbitrarily long run of never-used ids.
                        if entries.len() <= xid && xid >= ceiling {
                            break 'outer;
                        }
                    }
                    other => {
                        return Err(DbError::Corrupt(format!(
                            "bad status byte {other} for xid {xid}"
                        )))
                    }
                }
            }
            blkno += 1;
        }
        if entries.len() < 2 {
            entries.resize(2, XactState::Unknown);
        }
        entries[1] = XactState::Committed(SimInstant::EPOCH);
        // Skip to the durable ceiling: ids below it may have been handed out
        // and left traces on disk even though no status entry survived.
        if entries.len() < ceiling {
            entries.resize(ceiling, XactState::Unknown);
        }
        let ceiling = ceiling.max(entries.len());
        Ok(XactLog {
            dev,
            inner: Mutex::new(LogInner {
                entries,
                dirty: HashSet::new(),
                ceiling,
            }),
        })
    }

    /// Overlays one recovered outcome from the write-ahead log onto the
    /// status file: commit and abort records newer than the last persisted
    /// checkpoint exist only in the WAL, and restart replays them here. The
    /// entry vector is extended as needed so the xids are never reallocated;
    /// the touched block is marked dirty for the next checkpoint.
    pub fn apply_recovered(&self, xid: XactId, state: XactState) {
        let _order = crate::lock::order::token(crate::lock::order::XACT_LOG);
        let mut g = self.inner.lock();
        let idx = xid.0 as usize;
        while g.entries.len() <= idx {
            g.entries.push(XactState::Unknown);
        }
        g.entries[idx] = state;
        g.mark_dirty(xid);
    }

    /// Allocates a new transaction id, marked in-progress (volatile).
    ///
    /// Ids are only handed out below the durable allocation ceiling; when
    /// the next id would reach it, a higher ceiling is persisted first. The
    /// occasional status-block write is what makes xid allocation itself
    /// crash-safe: without it, a restart could reissue an id whose tuples a
    /// checkpoint already pushed to disk, and the new transaction would see
    /// the orphaned rows as its own.
    pub fn start(&self) -> DbResult<XactId> {
        loop {
            {
                let _order = crate::lock::order::token(crate::lock::order::XACT_LOG);
                let mut g = self.inner.lock();
                if g.entries.len() < g.ceiling {
                    let xid = XactId(g.entries.len() as u32);
                    g.entries.push(XactState::InProgress);
                    return Ok(xid);
                }
            }
            self.extend_ceiling()?;
        }
    }

    /// Durably raises the allocation ceiling by [`CEILING_STEP`]. The new
    /// value is installed in memory only after the status block carrying it
    /// has synced; on failure the old ceiling stands and no id past it is
    /// ever allocated. A durable ceiling higher than the in-memory one (a
    /// torn bump) is harmless: it only wastes ids.
    fn extend_ceiling(&self) -> DbResult<()> {
        let target = {
            let _order = crate::lock::order::token(crate::lock::order::XACT_LOG);
            let mut g = self.inner.lock();
            let target = g.entries.len() + CEILING_STEP;
            g.ceiling = g.ceiling.max(target);
            target
        };
        if let Err(e) = self.persist_blocks(&[0]) {
            // Retreat to what is certainly covered by a durable ceiling (a
            // concurrent successful bump may re-raise it; worst case some
            // ids are skipped, which is always safe).
            let _order = crate::lock::order::token(crate::lock::order::XACT_LOG);
            let mut g = self.inner.lock();
            if g.ceiling == target {
                g.ceiling = g.entries.len();
            }
            return Err(e);
        }
        Ok(())
    }


    /// Verifies the status log's own structural invariants.
    ///
    /// Entry 0 is the invalid xid and must be `Unknown`; entry 1 is
    /// [`XactId::FROZEN`] and must be `Committed` (it stands in for every
    /// pre-history transaction).
    pub fn check(&self) -> Vec<crate::check::Finding> {
        let mut out = Vec::new();
        let _order = crate::lock::order::token(crate::lock::order::XACT_LOG);
        let g = self.inner.lock();
        match g.entries.first() {
            Some(XactState::Unknown) | None => {}
            Some(other) => out.push(crate::check::Finding::new(
                "pg_log",
                "xact-invalid-entry",
                format!("entry 0 (invalid xid) is {other:?}, want Unknown"),
            )),
        }
        match g.entries.get(XactId::FROZEN.0 as usize) {
            Some(XactState::Committed(_)) => {}
            other => out.push(crate::check::Finding::new(
                "pg_log",
                "xact-frozen-entry",
                format!("frozen xid entry is {other:?}, want Committed"),
            )),
        }
        out
    }

    /// The current state of `xid`.
    pub fn state(&self, xid: XactId) -> XactState {
        let _order = crate::lock::order::token(crate::lock::order::XACT_LOG);
        let g = self.inner.lock();
        g.entries
            .get(xid.0 as usize)
            .copied()
            .unwrap_or(XactState::Unknown)
    }

    /// Marks `xid` committed at `now` and persists the fact. This write is
    /// the commit point; data pages must already be on stable storage.
    pub fn commit(&self, xid: XactId, now: SimInstant) -> DbResult<()> {
        {
            let _order = crate::lock::order::token(crate::lock::order::XACT_LOG);
            let mut g = self.inner.lock();
            let slot = g
                .entries
                .get_mut(xid.0 as usize)
                .ok_or_else(|| DbError::Invalid(format!("commit of unknown {xid}")))?;
            if !matches!(slot, XactState::InProgress) {
                return Err(DbError::Invalid(format!("commit of non-running {xid}")));
            }
            *slot = XactState::Committed(now);
        }
        self.persist_entry(xid)
    }

    /// Marks `xid` committed at `now` *without* a persistent record — legal
    /// only for transactions that wrote nothing, which need no durability.
    /// After a crash such a transaction reads as `Unknown`, which is
    /// indistinguishable because it had no effects.
    pub fn commit_readonly(&self, xid: XactId, now: SimInstant) -> DbResult<()> {
        let _order = crate::lock::order::token(crate::lock::order::XACT_LOG);
        let mut g = self.inner.lock();
        let slot = g
            .entries
            .get_mut(xid.0 as usize)
            .ok_or_else(|| DbError::Invalid(format!("commit of unknown {xid}")))?;
        if !matches!(slot, XactState::InProgress) {
            return Err(DbError::Invalid(format!("commit of non-running {xid}")));
        }
        *slot = XactState::Committed(now);
        Ok(())
    }

    /// Marks `xid` aborted and persists the fact.
    pub fn abort(&self, xid: XactId) -> DbResult<()> {
        {
            let _order = crate::lock::order::token(crate::lock::order::XACT_LOG);
            let mut g = self.inner.lock();
            let slot = g
                .entries
                .get_mut(xid.0 as usize)
                .ok_or_else(|| DbError::Invalid(format!("abort of unknown {xid}")))?;
            if !matches!(slot, XactState::InProgress) {
                return Err(DbError::Invalid(format!("abort of non-running {xid}")));
            }
            *slot = XactState::Aborted;
        }
        self.persist_entry(xid)
    }

    /// Marks `xid` aborted in memory only — used when the abort record will
    /// piggyback on a group-commit batch instead of forcing its own sync.
    /// Volatility is safe for aborts: after a crash the missing record reads
    /// `Unknown`, which means exactly the same thing.
    pub fn mark_aborted(&self, xid: XactId) -> DbResult<()> {
        let _order = crate::lock::order::token(crate::lock::order::XACT_LOG);
        let mut g = self.inner.lock();
        let slot = g
            .entries
            .get_mut(xid.0 as usize)
            .ok_or_else(|| DbError::Invalid(format!("abort of unknown {xid}")))?;
        if !matches!(slot, XactState::InProgress) {
            return Err(DbError::Invalid(format!("abort of non-running {xid}")));
        }
        *slot = XactState::Aborted;
        g.mark_dirty(xid);
        Ok(())
    }

    /// Marks `xid` committed at `now` in memory only. Legal when a
    /// write-ahead-log force is the commit point: durability comes from the
    /// WAL commit record, and the status block catches up at the next
    /// checkpoint via [`XactLog::persist_dirty`].
    pub fn mark_committed(&self, xid: XactId, now: SimInstant) -> DbResult<()> {
        self.mark_committed_batch(&[xid], now)
    }

    /// Marks every member of `commits` committed at `now`, in memory only,
    /// after validating that all of them are running. The caller must then
    /// force the WAL commit records; if the force fails it must call
    /// [`XactLog::remark_aborted`] so the in-memory state agrees with what a
    /// crash would reconstruct (no durable record — `Unknown` — aborted).
    pub fn mark_committed_batch(&self, commits: &[XactId], now: SimInstant) -> DbResult<()> {
        let _order = crate::lock::order::token(crate::lock::order::XACT_LOG);
        let mut g = self.inner.lock();
        for &xid in commits {
            match g.entries.get(xid.0 as usize) {
                Some(XactState::InProgress) => {}
                other => {
                    return Err(DbError::Invalid(format!(
                        "commit of non-running {xid} ({other:?})"
                    )))
                }
            }
        }
        for &xid in commits {
            if let Some(slot) = g.entries.get_mut(xid.0 as usize) {
                *slot = XactState::Committed(now);
            }
            g.mark_dirty(xid);
        }
        Ok(())
    }

    /// Rolls back an in-memory commit mark after a failed WAL force: the
    /// commit records never became durable, so the transactions must read
    /// aborted on this side of the crash too.
    pub fn remark_aborted(&self, xids: &[XactId]) {
        let _order = crate::lock::order::token(crate::lock::order::XACT_LOG);
        let mut g = self.inner.lock();
        for &xid in xids {
            if let Some(slot) = g.entries.get_mut(xid.0 as usize) {
                *slot = XactState::Aborted;
            }
            g.mark_dirty(xid);
        }
    }

    /// Rewrites every status block whose in-memory state is ahead of the
    /// device and syncs the log device once. Called by checkpoints; after a
    /// clean return the status file alone reconstructs every outcome up to
    /// the checkpoint.
    pub fn persist_dirty(&self) -> DbResult<()> {
        let blknos: Vec<u64> = {
            let _order = crate::lock::order::token(crate::lock::order::XACT_LOG);
            let g = self.inner.lock();
            let mut v: Vec<u64> = g.dirty.iter().copied().collect();
            v.sort_unstable();
            v
        };
        if blknos.is_empty() {
            return Ok(());
        }
        self.persist_blocks(&blknos)?;
        {
            let _order = crate::lock::order::token(crate::lock::order::XACT_LOG);
            let mut g = self.inner.lock();
            for b in &blknos {
                g.dirty.remove(b);
            }
        }
        Ok(())
    }

    /// Durably commits a whole batch with a *single* log-device sync: marks
    /// every member of `commits` committed at `now`, then rewrites each
    /// status block the batch touches — commit and piggybacked abort records
    /// alike (`aborts` must already be marked via [`XactLog::mark_aborted`])
    /// — and syncs the log device once. Data pages of every member must
    /// already be on stable storage.
    ///
    /// If persisting fails, the commit members are re-marked aborted in
    /// memory before the error returns: no durable record exists, so after
    /// a crash they would read `Unknown` either way, and the in-memory state
    /// must agree.
    pub fn commit_batch(
        &self,
        commits: &[XactId],
        aborts: &[XactId],
        now: SimInstant,
    ) -> DbResult<()> {
        {
            let _order = crate::lock::order::token(crate::lock::order::XACT_LOG);
            let mut g = self.inner.lock();
            for &xid in commits {
                match g.entries.get(xid.0 as usize) {
                    Some(XactState::InProgress) => {}
                    other => {
                        return Err(DbError::Invalid(format!(
                            "batch commit of non-running {xid} ({other:?})"
                        )))
                    }
                }
            }
            for &xid in commits {
                if let Some(slot) = g.entries.get_mut(xid.0 as usize) {
                    *slot = XactState::Committed(now);
                }
            }
        }
        let mut blknos: Vec<u64> = commits
            .iter()
            .chain(aborts)
            .map(|x| (x.0 as usize / ENTRIES_PER_BLOCK) as u64)
            .collect();
        blknos.sort_unstable();
        blknos.dedup();
        match self.persist_blocks(&blknos) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _order = crate::lock::order::token(crate::lock::order::XACT_LOG);
                let mut g = self.inner.lock();
                for &xid in commits {
                    if let Some(slot) = g.entries.get_mut(xid.0 as usize) {
                        *slot = XactState::Aborted;
                    }
                }
                Err(e)
            }
        }
    }

    /// The set of transaction ids currently in progress.
    pub fn active_set(&self) -> HashSet<XactId> {
        let _order = crate::lock::order::token(crate::lock::order::XACT_LOG);
        let g = self.inner.lock();
        g.entries
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, XactState::InProgress))
            .map(|(i, _)| XactId(i as u32))
            .collect()
    }

    /// The commit time of `xid`, if committed.
    pub fn commit_time(&self, xid: XactId) -> Option<SimInstant> {
        match self.state(xid) {
            XactState::Committed(t) => Some(t),
            _ => None,
        }
    }

    /// Rewrites the status block containing `xid` on the log device.
    fn persist_entry(&self, xid: XactId) -> DbResult<()> {
        self.persist_blocks(&[(xid.0 as usize / ENTRIES_PER_BLOCK) as u64])
    }

    /// Rewrites the listed status blocks (sorted, deduplicated by the
    /// caller) on the log device and syncs it once.
    fn persist_blocks(&self, blknos: &[u64]) -> DbResult<()> {
        let mut blocks = Vec::with_capacity(blknos.len());
        {
            let _order = crate::lock::order::token(crate::lock::order::XACT_LOG);
            let g = self.inner.lock();
            for &blkno in blknos {
                let first = blkno as usize * ENTRIES_PER_BLOCK;
                let mut blk = vec![0u8; simdev::BLOCK_SIZE];
                for i in 0..ENTRIES_PER_BLOCK {
                    let x = first + i;
                    let off = i * ENTRY_SIZE;
                    if x == 0 {
                        // The invalid xid's slot carries the allocation
                        // ceiling instead of a status.
                        blk[off] = ST_CEILING;
                        blk[off + 1..off + 9]
                            .copy_from_slice(&(g.ceiling as u64).to_le_bytes());
                        continue;
                    }
                    match g.entries.get(x).copied().unwrap_or(XactState::Unknown) {
                        XactState::Committed(t) => {
                            blk[off] = ST_COMMITTED;
                            blk[off + 1..off + 9].copy_from_slice(&t.as_nanos().to_le_bytes());
                        }
                        XactState::Aborted => blk[off] = ST_ABORTED,
                        // In-progress is deliberately not persisted.
                        XactState::InProgress | XactState::Unknown => blk[off] = ST_UNKNOWN,
                    }
                }
                blocks.push((blkno, blk));
            }
        }
        let _order = crate::lock::order::token(crate::lock::order::SMGR_DEVICE);
        let mut d = self.dev.lock();
        for (blkno, blk) in &blocks {
            d.write_block(*blkno, blk)?;
        }
        d.sync()?;
        Ok(())
    }
}

/// One record waiting in the group-commit coordinator's pending batch.
#[derive(Debug, Clone)]
pub struct PendingRecord {
    /// The transaction whose status record rides in this batch.
    pub xid: XactId,
    /// Data devices the transaction's dirty set touched. The committer has
    /// already *flushed* its pages to them; the batch leader issues one
    /// sync over the union. Empty for piggybacked aborts.
    pub devices: Vec<DeviceId>,
    /// `true` for a commit record, `false` for a piggybacked abort.
    pub commit: bool,
}

struct CoordState {
    /// Records awaiting the next batch.
    pending: Vec<PendingRecord>,
    /// Whether some committer is currently driving a batch to disk.
    leader_active: bool,
    /// Results for batch members, delivered by the leader.
    done: HashMap<XactId, DbResult<()>>,
}

/// RAII marker that a committer has started flushing its dirty pages and
/// will submit a record shortly. The batch leader's straggler wait keeps
/// the window open while any of these are live, which is what turns N
/// concurrent committers into one batch instead of N. A guard dropped
/// without reaching [`GroupCommitter::submit`] (a flush error, say)
/// deregisters itself.
#[must_use = "pass the guard to submit(), or drop it on the error path"]
pub struct InFlight<'a> {
    committer: &'a GroupCommitter,
    armed: bool,
}

impl Drop for InFlight<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.committer.flushing.fetch_sub(1, SeqCst);
        }
    }
}

/// The group-commit coordinator.
///
/// Committers flush their own dirty pages first, then [`submit`] their
/// status record. Whoever finds no leader active becomes the batch leader:
/// it holds the commit window open for stragglers (in virtual time —
/// advancing the [`SimClock`] by `window` when concurrent committers are
/// observed), drains the pending queue, and runs the caller-supplied batch
/// processor (device sync + [`XactLog::commit_batch`]) once for everyone.
/// Followers park on a condvar and wake with their result.
///
/// Its mutex ranks `commit-coord` in the lock hierarchy, *outside*
/// `xact-log` and the device ranks, because the leader persists records and
/// syncs devices on the batch's behalf; committers must enter holding no
/// other ranked lock.
///
/// [`submit`]: GroupCommitter::submit
pub struct GroupCommitter {
    state: Mutex<CoordState>,
    cond: Condvar,
    /// Committers between [`GroupCommitter::begin_commit`] and their
    /// [`GroupCommitter::submit`] — mid-flush, record not yet pending.
    flushing: AtomicUsize,
    clock: SimClock,
    window: SimDuration,
}

impl GroupCommitter {
    /// A coordinator batching over `window` of virtual time; a zero window
    /// disables batching (callers then commit directly, one sync each).
    pub fn new(clock: SimClock, window: SimDuration) -> GroupCommitter {
        GroupCommitter {
            state: Mutex::new(CoordState {
                pending: Vec::new(),
                leader_active: false,
                done: HashMap::new(),
            }),
            cond: Condvar::new(),
            flushing: AtomicUsize::new(0),
            clock,
            window,
        }
    }

    /// The configured batching window.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// Announces a commit in flight (about to flush its pages). Call
    /// *before* the flush so a concurrent leader holds the batch open.
    pub fn begin_commit(&self) -> InFlight<'_> {
        self.flushing.fetch_add(1, SeqCst);
        InFlight {
            committer: self,
            armed: true,
        }
    }

    /// Queues an abort record to ride along with the next commit batch,
    /// without waiting for it. Fire-and-forget is *correct* for aborts: the
    /// transaction is already marked aborted in memory, and on disk the
    /// absence of any record means exactly the same thing — so there is
    /// nothing to wait for. (If no commit ever comes, the record simply
    /// never hits the disk, which changes nothing.)
    pub fn enqueue_abort(&self, xid: XactId) {
        let _order = crate::lock::order::token(crate::lock::order::COMMIT_COORD);
        self.state.lock().pending.push(PendingRecord {
            xid,
            devices: Vec::new(),
            commit: false,
        });
    }

    /// Submits a commit `record` and blocks until a batch containing it has
    /// been durably processed, returning that batch's result. `process`
    /// runs on whichever committer ends up leading the batch.
    pub fn submit(
        &self,
        record: PendingRecord,
        mut inflight: InFlight<'_>,
        process: impl Fn(&[PendingRecord]) -> DbResult<()>,
    ) -> DbResult<()> {
        let xid = record.xid;
        let _order = crate::lock::order::token(crate::lock::order::COMMIT_COORD);
        let mut g = self.state.lock();
        g.pending.push(record);
        if inflight.armed {
            inflight.armed = false;
            self.flushing.fetch_sub(1, SeqCst);
        }
        loop {
            if let Some(result) = g.done.remove(&xid) {
                return result;
            }
            if !g.leader_active && !g.pending.is_empty() {
                g.leader_active = true;
                drop(g);
                self.await_stragglers();
                let batch = {
                    let mut g2 = self.state.lock();
                    std::mem::take(&mut g2.pending)
                };
                let result = process(&batch);
                g = self.state.lock();
                for r in &batch {
                    // Only commit submitters wait for a result; abort
                    // records are fire-and-forget (see `enqueue_abort`),
                    // and a `done` entry for them would never be drained.
                    if r.commit {
                        g.done.insert(r.xid, result.clone());
                    }
                }
                g.leader_active = false;
                self.cond.notify_all();
            } else {
                self.cond.wait(&mut g);
            }
        }
    }

    /// The leader's window: while concurrent committers are mid-flush (or
    /// the pending queue keeps growing), keep the batch open. Charges the
    /// virtual clock `window` once iff stragglers were actually observed,
    /// so a solo commit pays nothing. Host-side, "waiting" is a bounded
    /// yield loop — committers between `begin_commit` and `submit` only
    /// run device models and never block on this coordinator — with a hard
    /// iteration cap so a storm of arrivals (e.g. abort/retry loops) can
    /// only delay a batch, never hold it open forever.
    fn await_stragglers(&self) {
        if self.window.as_nanos() == 0 {
            return;
        }
        let mut advanced = false;
        let mut quiet = 0u32;
        let mut last_len = self.pending_len();
        for _ in 0..4096 {
            if quiet >= 64 {
                break;
            }
            if self.flushing.load(SeqCst) > 0 {
                if !advanced {
                    self.clock.advance(self.window);
                    advanced = true;
                }
                quiet = 0;
                std::thread::yield_now();
                continue;
            }
            let len = self.pending_len();
            if len != last_len {
                last_len = len;
                quiet = 0;
            } else {
                quiet += 1;
            }
            std::thread::yield_now();
        }
    }

    fn pending_len(&self) -> usize {
        let _order = crate::lock::order::token(crate::lock::order::COMMIT_COORD);
        self.state.lock().pending.len()
    }
}

/// A tuple header as stored on-page: the inserting and deleting transactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TupleHeader {
    /// The transaction that created this version.
    pub xmin: XactId,
    /// The transaction that deleted/superseded it (INVALID if none).
    pub xmax: XactId,
}

impl TupleHeader {
    /// On-page size of the header.
    pub const SIZE: usize = 8;

    /// Encodes into the first [`TupleHeader::SIZE`] bytes of a tuple.
    pub fn encode(self) -> [u8; 8] {
        let mut out = [0u8; 8];
        out[..4].copy_from_slice(&self.xmin.0.to_le_bytes());
        out[4..].copy_from_slice(&self.xmax.0.to_le_bytes());
        out
    }

    /// Decodes from the start of a tuple.
    pub fn decode(buf: &[u8]) -> DbResult<TupleHeader> {
        if buf.len() < 8 {
            return Err(DbError::Corrupt("tuple shorter than header".into()));
        }
        Ok(TupleHeader {
            xmin: XactId(crate::bytes::le_u32(buf, 0)?),
            xmax: XactId(crate::bytes::le_u32(buf, 4)?),
        })
    }
}

/// What a reader is allowed to see.
#[derive(Debug, Clone)]
pub enum Snapshot {
    /// The view of a running transaction: its own updates plus everything
    /// committed before it started.
    Current {
        /// The reading transaction.
        xid: XactId,
        /// Transactions in progress when the snapshot was taken.
        active: HashSet<XactId>,
    },
    /// Time travel: the transaction-consistent state at a past instant.
    AsOf(SimInstant),
    /// Every tuple version regardless of state (vacuum, debugging).
    Dirty,
}

impl Snapshot {
    /// Whether this snapshot permits writes.
    pub fn is_writable(&self) -> bool {
        matches!(self, Snapshot::Current { .. })
    }

    /// Decides visibility of a tuple under this snapshot.
    pub fn visible(&self, hdr: TupleHeader, log: &XactLog) -> bool {
        match self {
            Snapshot::Dirty => true,
            Snapshot::Current { xid, active } => {
                let ins_visible = if hdr.xmin == *xid {
                    true
                } else {
                    matches!(log.state(hdr.xmin), XactState::Committed(_))
                        && !active.contains(&hdr.xmin)
                };
                if !ins_visible {
                    return false;
                }
                if !hdr.xmax.is_valid() {
                    return true;
                }
                if hdr.xmax == *xid {
                    return false; // We deleted it ourselves.
                }
                // Deleted by someone else: gone only if that commit is in
                // our past.
                !matches!(log.state(hdr.xmax), XactState::Committed(_))
                    || active.contains(&hdr.xmax)
            }
            Snapshot::AsOf(t) => {
                let committed_by = |x: XactId| match log.state(x) {
                    XactState::Committed(ct) => ct <= *t,
                    _ => false,
                };
                if !committed_by(hdr.xmin) {
                    return false;
                }
                !(hdr.xmax.is_valid() && committed_by(hdr.xmax))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smgr::shared_device;
    use simdev::{DiskProfile, MagneticDisk, SimClock};

    fn log_device() -> SharedDevice {
        let clock = SimClock::new();
        shared_device(MagneticDisk::new(
            "log",
            clock,
            DiskProfile::tiny_for_tests(1024),
        ))
    }

    #[test]
    fn frozen_is_committed_at_epoch() {
        let log = XactLog::create(log_device()).unwrap();
        assert_eq!(
            log.state(XactId::FROZEN),
            XactState::Committed(SimInstant::EPOCH)
        );
    }

    #[test]
    fn lifecycle_start_commit() {
        let log = XactLog::create(log_device()).unwrap();
        let x = log.start().unwrap();
        assert_eq!(log.state(x), XactState::InProgress);
        assert!(log.active_set().contains(&x));
        log.commit(x, SimInstant::from_nanos(100)).unwrap();
        assert_eq!(
            log.state(x),
            XactState::Committed(SimInstant::from_nanos(100))
        );
        assert!(!log.active_set().contains(&x));
        assert_eq!(log.commit_time(x), Some(SimInstant::from_nanos(100)));
    }

    #[test]
    fn lifecycle_start_abort() {
        let log = XactLog::create(log_device()).unwrap();
        let x = log.start().unwrap();
        log.abort(x).unwrap();
        assert_eq!(log.state(x), XactState::Aborted);
        assert!(log.commit_time(x).is_none());
    }

    #[test]
    fn double_commit_rejected() {
        let log = XactLog::create(log_device()).unwrap();
        let x = log.start().unwrap();
        log.commit(x, SimInstant::EPOCH).unwrap();
        assert!(log.commit(x, SimInstant::EPOCH).is_err());
        assert!(log.abort(x).is_err());
    }

    #[test]
    fn recovery_loses_in_progress_keeps_committed() {
        let dev = log_device();
        let committed;
        let aborted;
        let in_progress;
        {
            let log = XactLog::create(dev.clone()).unwrap();
            committed = log.start().unwrap();
            aborted = log.start().unwrap();
            in_progress = log.start().unwrap();
            log.commit(committed, SimInstant::from_nanos(7)).unwrap();
            log.abort(aborted).unwrap();
            // `in_progress` crashes here: no persistent record.
        }
        let log = XactLog::recover(dev).unwrap();
        assert_eq!(
            log.state(committed),
            XactState::Committed(SimInstant::from_nanos(7))
        );
        assert_eq!(log.state(aborted), XactState::Aborted);
        assert_eq!(log.state(in_progress), XactState::Unknown);
    }

    #[test]
    fn recovered_log_allocates_fresh_xids() {
        let dev = log_device();
        let old;
        {
            let log = XactLog::create(dev.clone()).unwrap();
            old = log.start().unwrap();
            log.commit(old, SimInstant::from_nanos(1)).unwrap();
        }
        let log = XactLog::recover(dev).unwrap();
        let new = log.start().unwrap();
        assert!(new.0 > old.0, "new xid {new} must not reuse {old}");
    }

    #[test]
    fn header_roundtrips() {
        let h = TupleHeader {
            xmin: XactId(3),
            xmax: XactId(9),
        };
        assert_eq!(TupleHeader::decode(&h.encode()).unwrap(), h);
        assert!(TupleHeader::decode(&[0u8; 4]).is_err());
    }

    fn hdr(xmin: u32, xmax: u32) -> TupleHeader {
        TupleHeader {
            xmin: XactId(xmin),
            xmax: XactId(xmax),
        }
    }

    #[test]
    fn current_snapshot_sees_own_and_committed() {
        let log = XactLog::create(log_device()).unwrap();
        let committed = log.start().unwrap();
        log.commit(committed, SimInstant::from_nanos(5)).unwrap();
        let other_active = log.start().unwrap();
        let me = log.start().unwrap();
        let snap = Snapshot::Current {
            xid: me,
            active: log.active_set(),
        };

        // Own insert visible; own delete invisible.
        assert!(snap.visible(hdr(me.0, 0), &log));
        assert!(!snap.visible(hdr(me.0, me.0), &log));
        // Committed insert visible.
        assert!(snap.visible(hdr(committed.0, 0), &log));
        // Concurrent (active) insert invisible.
        assert!(!snap.visible(hdr(other_active.0, 0), &log));
        // Aborted/unknown insert invisible.
        assert!(!snap.visible(hdr(9999, 0), &log));
        // Delete by a concurrent active transaction doesn't hide it from us.
        assert!(snap.visible(hdr(committed.0, other_active.0), &log));
    }

    #[test]
    fn concurrent_commit_after_snapshot_stays_invisible() {
        let log = XactLog::create(log_device()).unwrap();
        let other = log.start().unwrap();
        let me = log.start().unwrap();
        let snap = Snapshot::Current {
            xid: me,
            active: log.active_set(),
        };
        log.commit(other, SimInstant::from_nanos(50)).unwrap();
        // `other` committed *after* our snapshot: still invisible.
        assert!(!snap.visible(hdr(other.0, 0), &log));
    }

    #[test]
    fn as_of_snapshot_is_a_consistent_past() {
        let log = XactLog::create(log_device()).unwrap();
        let early = log.start().unwrap();
        log.commit(early, SimInstant::from_nanos(10)).unwrap();
        let late = log.start().unwrap();
        log.commit(late, SimInstant::from_nanos(100)).unwrap();

        let t50 = Snapshot::AsOf(SimInstant::from_nanos(50));
        // Inserted early: visible at t=50. Inserted late: not yet.
        assert!(t50.visible(hdr(early.0, 0), &log));
        assert!(!t50.visible(hdr(late.0, 0), &log));
        // Deleted late: still visible at t=50 (the delete hadn't happened).
        assert!(t50.visible(hdr(early.0, late.0), &log));
        // At t=100 the delete has landed.
        let t100 = Snapshot::AsOf(SimInstant::from_nanos(100));
        assert!(!t100.visible(hdr(early.0, late.0), &log));
    }

    #[test]
    fn as_of_ignores_aborted_and_running() {
        let log = XactLog::create(log_device()).unwrap();
        let ab = log.start().unwrap();
        log.abort(ab).unwrap();
        let run = log.start().unwrap();
        let snap = Snapshot::AsOf(SimInstant::from_nanos(1_000_000));
        assert!(!snap.visible(hdr(ab.0, 0), &log));
        assert!(!snap.visible(hdr(run.0, 0), &log));
        // Delete by an aborted transaction never takes effect.
        assert!(snap.visible(hdr(1, ab.0), &log));
    }

    #[test]
    fn dirty_sees_everything() {
        let log = XactLog::create(log_device()).unwrap();
        assert!(Snapshot::Dirty.visible(hdr(424242, 999), &log));
    }

    #[test]
    fn snapshot_writability() {
        assert!(Snapshot::Current {
            xid: XactId(2),
            active: HashSet::new()
        }
        .is_writable());
        assert!(!Snapshot::AsOf(SimInstant::EPOCH).is_writable());
        assert!(!Snapshot::Dirty.is_writable());
    }
}
