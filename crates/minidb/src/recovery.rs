//! Single-pass REDO with instant recovery.
//!
//! Restart does not replay the log into the data files before opening for
//! business. Instead, [`crate::wal::Wal::recover`] scans the log once and
//! this module indexes the page records into a [`Redo`] map keyed by page
//! address. The storage manager consults the map on every page read: the
//! first touch of a stale page replays exactly the records that page is
//! missing (the per-page LSN gate makes this idempotent), while new
//! sessions run concurrently — the paper's "essentially instantaneous"
//! recovery, upgraded to survive unflushed data pages.
//!
//! Replay changes the *in-memory* copy only; the map keeps its entries so
//! a re-read after eviction replays again. The first checkpoint after
//! recovery sweeps every still-pending page through the buffer pool,
//! flushes them, and empties the map — the "fall back to a full sweep"
//! half of instant recovery.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering::SeqCst};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::DbResult;
use crate::ids::{DeviceId, RelId};
use crate::page;
use crate::stats::StatsRegistry;
use crate::wal::WalRecord;

/// The address of one page in the cluster.
pub type PageAddr = (DeviceId, RelId, u64);

/// The pending-REDO map: for each page with unreplayed records, the records
/// in log order with their end LSNs.
///
/// Its mutex is a leaf: `replay_into` runs while the storage manager is
/// mid-read (arbitrary ranks held) and acquires nothing else inside, so it
/// carries no rank of its own.
pub struct Redo {
    map: Mutex<HashMap<PageAddr, Vec<(u64, WalRecord)>>>,
    /// Pages still pending; the fast path on every read checks this.
    pending: AtomicUsize,
    stats: Arc<StatsRegistry>,
}

impl Redo {
    /// An empty map (fresh database, nothing to replay).
    pub fn empty(stats: Arc<StatsRegistry>) -> Redo {
        Redo {
            map: Mutex::new(HashMap::new()),
            pending: AtomicUsize::new(0),
            stats,
        }
    }

    /// Indexes the page records of a recovered log by page address.
    pub fn from_records(records: &[(u64, WalRecord)], stats: Arc<StatsRegistry>) -> Redo {
        let mut map: HashMap<PageAddr, Vec<(u64, WalRecord)>> = HashMap::new();
        for (end, rec) in records {
            if let Some(addr) = rec.page_addr() {
                map.entry(addr).or_default().push((*end, rec.clone()));
            }
        }
        let pending = map.len();
        Redo {
            map: Mutex::new(map),
            pending: AtomicUsize::new(pending),
            stats,
        }
    }

    /// Whether every page has been swept (the fast path on reads).
    pub fn is_empty(&self) -> bool {
        self.pending.load(SeqCst) == 0
    }

    /// Number of pages with pending records.
    pub fn pending_pages(&self) -> usize {
        self.pending.load(SeqCst)
    }

    /// The addresses of every page with pending records (checkpoint sweep
    /// and allocation fixup iterate these).
    pub fn pages(&self) -> Vec<PageAddr> {
        self.map.lock().keys().copied().collect()
    }

    /// Replays onto `buf` (just read from `addr`) every pending record the
    /// page has not seen, gated by the page LSN; stamps the LSN of the last
    /// record applied. Entries stay mapped — replay mutates only the
    /// caller's in-memory copy, so a later re-read of the same device page
    /// must replay again; [`Redo::clear`] retires them once a checkpoint
    /// has made the replayed pages durable.
    pub fn replay_into(&self, addr: PageAddr, buf: &mut [u8]) -> DbResult<()> {
        let map = self.map.lock();
        let Some(records) = map.get(&addr) else {
            return Ok(());
        };
        let mut applied = 0u64;
        for (end, rec) in records {
            if *end > page::lsn(buf) {
                rec.redo(buf)?;
                page::set_lsn(buf, *end);
                applied += 1;
            }
        }
        if applied > 0 {
            self.stats.wal.replayed_pages.bump();
            self.stats.wal.replayed_records.add(applied);
        }
        Ok(())
    }

    /// Drops one page's pending records — recovery's allocation fixup calls
    /// this for pages of relations that were dropped after their records
    /// were logged (the records are unreachable, not missing).
    pub fn forget(&self, addr: PageAddr) {
        if self.map.lock().remove(&addr).is_some() {
            self.pending.fetch_sub(1, SeqCst);
        }
    }

    /// Empties the map once a checkpoint has flushed every pending page.
    pub fn clear(&self) {
        self.map.lock().clear();
        self.pending.store(0, SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Oid, XactId};

    fn stats() -> Arc<StatsRegistry> {
        Arc::new(StatsRegistry::new())
    }

    fn addr(blkno: u64) -> PageAddr {
        (DeviceId::DEFAULT, Oid(5), blkno)
    }

    fn insert_at(blkno: u64, slot: u16, byte: u8) -> WalRecord {
        WalRecord::Insert {
            dev: DeviceId::DEFAULT,
            rel: Oid(5),
            blkno,
            slot,
            tuple: vec![byte; 32],
        }
    }

    #[test]
    fn indexes_only_page_records() {
        let recs = vec![
            (10, insert_at(0, 0, 1)),
            (
                20,
                WalRecord::Commit {
                    xid: XactId(2),
                    time_ns: 1,
                },
            ),
            (30, insert_at(1, 0, 2)),
            (40, insert_at(0, 1, 3)),
        ];
        let redo = Redo::from_records(&recs, stats());
        assert_eq!(redo.pending_pages(), 2);
        let mut pages = redo.pages();
        pages.sort();
        assert_eq!(pages, vec![addr(0), addr(1)]);
    }

    #[test]
    fn replay_is_lsn_gated_and_idempotent() {
        let reg = stats();
        let recs = vec![
            (
                10,
                WalRecord::PageInit {
                    dev: DeviceId::DEFAULT,
                    rel: Oid(5),
                    blkno: 0,
                    special_size: 0,
                },
            ),
            (20, insert_at(0, 0, 7)),
            (30, insert_at(0, 1, 8)),
        ];
        let redo = Redo::from_records(&recs, reg.clone());

        // A stale page that saw only the first two records.
        let mut buf = vec![0u8; page::PAGE_SIZE];
        page::init(&mut buf, 0);
        page::insert(&mut buf, &[7u8; 32]).unwrap();
        page::set_lsn(&mut buf, 20);

        redo.replay_into(addr(0), &mut buf).unwrap();
        assert_eq!(page::nslots(&buf), 2);
        assert_eq!(page::lsn(&buf), 30);
        assert_eq!(reg.wal.replayed_records.get(), 1);

        // Replaying again applies nothing (the LSN gate holds).
        redo.replay_into(addr(0), &mut buf).unwrap();
        assert_eq!(page::nslots(&buf), 2);
        assert_eq!(reg.wal.replayed_records.get(), 1);

        // A page with no pending records is untouched.
        let before = buf.clone();
        redo.replay_into(addr(9), &mut buf).unwrap();
        assert_eq!(buf, before);

        redo.clear();
        assert!(redo.is_empty());
        // From-scratch replay after clear: nothing happens any more.
        let mut blank = vec![0u8; page::PAGE_SIZE];
        redo.replay_into(addr(0), &mut blank).unwrap();
        assert_eq!(blank, vec![0u8; page::PAGE_SIZE]);
    }
}
