//! The asynchronous per-device I/O scheduler.
//!
//! Every registered device gets a request queue and one worker thread that
//! drains it in **C-SCAN (elevator) order** over a per-relation block key:
//! the worker sweeps the key space upward, services the nearest request at
//! or above its hand, and wraps to the smallest key when the sweep runs
//! dry. Neighboring blocks of one relation therefore reach the device
//! back-to-back, and the simdev seek model charges track-to-track
//! sequential transfers instead of full random strokes.
//!
//! The queue carries two request kinds:
//!
//! * **write-behind** — dirty clock-sweep victims, checkpointer drains, and
//!   vacuum rewrites submit a page copy and continue. The WAL-before-data
//!   rule is enforced at the *submission site* (the buffer pool forces the
//!   log up to the page's LSN before it calls
//!   [`crate::smgr::Smgr::write_page_back`]), so a queued page is always
//!   covered by a durable log record.
//! * **read-ahead** — the prefetch window submits reads that complete into
//!   a [`ReadTicket`]; a later demand fetch *claims* the ticket (or the
//!   bytes of a still-queued write) instead of touching the device.
//!
//! `sync` is a **queue barrier**: it waits until every request submitted
//! before it has left the queue, then syncs the device. A failed write is
//! *parked* (it stays queued, preserving eventual durability) and its error
//! surfaces at the next barrier; each barrier un-parks failures for one
//! retry. Writes whose relation vanished underneath them (dropped or
//! truncated) complete as benign no-ops.
//!
//! Fairness: plain C-SCAN already bounds waiting, but a hostile submit
//! stream could keep landing just above the hand. Each time the worker
//! services a request while an older one is eligible, the oldest request's
//! bypass count rises; once it reaches [`STARVE_LIMIT`] the oldest request
//! is served next regardless of elevator position.
//!
//! Locking: the queue mutex ranks `io-queue` — inside `buffer-frame` (so a
//! writeback can submit while holding its frame lock) and outside
//! `smgr-device`. It is never held across a wait for I/O: the worker
//! alternates queue lock and device lock strictly, and every *waiting*
//! entry point (barrier, ticket claim, throttle) asserts that the caller
//! holds no buffer shard or frame latch.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::error::{DbError, DbResult};
use crate::ids::{DeviceId, RelId};
use crate::lock::order;
use crate::smgr::DeviceManager;
use crate::stats::StatsRegistry;
use simdev::DevError;

/// How many later-submitted requests may be serviced ahead of an older
/// eligible one before the elevator is overridden and the older request is
/// served next (the starvation bound).
pub const STARVE_LIMIT: u64 = 16;

/// Read tickets are claimable for this many outstanding entries; beyond it
/// the oldest unclaimed entries are forgotten (their reads still complete,
/// nobody observes them).
const READ_MAP_CAP: usize = 256;

/// Scheduling policy: C-SCAN by default, FIFO as a test baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// C-SCAN elevator over the block key.
    Elevator,
    /// Strict submission order (used to measure the elevator's benefit).
    Fifo,
}

/// State of a prefetch read's completion handoff.
enum TicketState {
    Pending,
    Done(Box<[u8]>),
    Failed,
}

/// One-shot completion slot for an asynchronous read.
pub struct ReadTicket {
    state: Mutex<TicketState>,
    cv: Condvar,
}

impl ReadTicket {
    fn new() -> Arc<ReadTicket> {
        Arc::new(ReadTicket {
            state: Mutex::new(TicketState::Pending),
            cv: Condvar::new(),
        })
    }

    fn complete(&self, bytes: Box<[u8]>) {
        let _order = order::token(order::IO_QUEUE);
        *self.state.lock() = TicketState::Done(bytes);
        self.cv.notify_all();
    }

    fn fail(&self) {
        let _order = order::token(order::IO_QUEUE);
        *self.state.lock() = TicketState::Failed;
        self.cv.notify_all();
    }

    /// Blocks until the read completes; `None` if it failed (the caller
    /// falls back to a synchronous device read). Must not be called with a
    /// buffer *shard* latch held. Holding a frame latch is fine — the frame
    /// is `LOADING` and this wait stands in for the device read that would
    /// otherwise block there; the worker completing the ticket never
    /// acquires buffer latches, so no cycle can form.
    pub fn wait(&self) -> Option<Vec<u8>> {
        debug_assert!(
            !order::is_held(order::BUFFER_SHARD),
            "waiting on a read ticket while holding a buffer shard latch"
        );
        let _order = order::token(order::IO_QUEUE);
        let mut st = self.state.lock();
        loop {
            match &*st {
                TicketState::Pending => self.cv.wait(&mut st),
                TicketState::Done(b) => return Some(b.to_vec()),
                TicketState::Failed => return None,
            }
        }
    }
}

/// What a request asks the device to do.
enum ReqOp {
    Write(Arc<[u8]>),
    Read(Arc<ReadTicket>),
}

struct Request {
    key: u64,
    rel: RelId,
    blkno: u64,
    bypassed: u64,
    in_flight: bool,
    parked: bool,
    /// Generation at which this request last failed; a barrier bumps the
    /// queue generation to grant every parked request one retry.
    retry_gen: u64,
    error: Option<DbError>,
    op: ReqOp,
}

/// The elevator key: relation-major, block-minor, so neighboring blocks of
/// one relation are neighbors in the sweep. With extent allocation the
/// logical order within a relation matches the physical order, which is
/// what lets the worker compute the key without the device manager's lock.
fn sort_key(rel: RelId, blkno: u64) -> u64 {
    (u64::from(rel.0) << 40) | (blkno & ((1u64 << 40) - 1))
}

struct QState {
    reqs: BTreeMap<u64, Request>,
    /// Latest queued (not yet completed) write per page.
    writes_by_page: HashMap<(RelId, u64), u64>,
    /// Claimable read tickets per page — outstanding or completed but
    /// unclaimed — with insertion order for capping.
    reads_by_page: HashMap<(RelId, u64), Arc<ReadTicket>>,
    read_order: VecDeque<(RelId, u64)>,
    next_seq: u64,
    /// The elevator hand: next sweep position in key space.
    hand: u64,
    /// Last serviced key (neighbor-batching stat).
    last_key: Option<u64>,
    retry_gen: u64,
    paused: bool,
    shutdown: bool,
    aborted: bool,
    policy: Policy,
}

impl QState {
    fn pending_writes(&self) -> usize {
        self.reqs
            .values()
            .filter(|r| matches!(r.op, ReqOp::Write(_)) && !r.parked)
            .count()
    }
}

/// One device's request queue plus the handles its worker needs.
pub struct DevQueue {
    dev: DeviceId,
    depth: usize,
    state: Mutex<QState>,
    /// Wakes the worker (new request, un-pause, shutdown).
    cv_worker: Condvar,
    /// Wakes waiters (request completed or parked, abort).
    cv_done: Condvar,
    mgr: Arc<Mutex<Box<dyn DeviceManager>>>,
    clock: simdev::SimClock,
    stats: Arc<StatsRegistry>,
}

impl DevQueue {
    fn new(
        dev: DeviceId,
        depth: usize,
        mgr: Arc<Mutex<Box<dyn DeviceManager>>>,
        clock: simdev::SimClock,
        stats: Arc<StatsRegistry>,
    ) -> Arc<DevQueue> {
        Arc::new(DevQueue {
            dev,
            depth: depth.max(1),
            state: Mutex::new(QState {
                reqs: BTreeMap::new(),
                writes_by_page: HashMap::new(),
                reads_by_page: HashMap::new(),
                read_order: VecDeque::new(),
                next_seq: 0,
                hand: 0,
                last_key: None,
                retry_gen: 0,
                paused: false,
                shutdown: false,
                aborted: false,
                policy: Policy::Elevator,
            }),
            cv_worker: Condvar::new(),
            cv_done: Condvar::new(),
            mgr,
            clock,
            stats,
        })
    }

    /// Queues an asynchronous write of `buf` to `(rel, blkno)` and returns
    /// immediately. Returns `false` once the queue is shut down or aborted
    /// (the caller falls back to a synchronous write). Never blocks, so it
    /// is safe under a frame latch; backpressure is [`DevQueue::throttle`].
    pub fn submit_write(&self, rel: RelId, blkno: u64, buf: &[u8]) -> bool {
        let _order = order::token(order::IO_QUEUE);
        let mut st = self.state.lock();
        if st.shutdown || st.aborted {
            return false;
        }
        let key = (rel, blkno);
        // A still-queued, not-in-flight write for the same page is
        // *combined*: its payload is replaced in place (same seq, so any
        // barrier already covering it still covers the new bytes).
        if let Some(&seq) = st.writes_by_page.get(&key) {
            if let Some(req) = st.reqs.get_mut(&seq) {
                if !req.in_flight {
                    req.op = ReqOp::Write(Arc::from(buf));
                    self.note_depth(&st);
                    self.stats.io_queue(self.dev).submitted.bump();
                    self.cv_worker.notify_one();
                    return true;
                }
            }
        }
        let seq = st.next_seq;
        st.next_seq += 1;
        st.reqs.insert(
            seq,
            Request {
                key: sort_key(rel, blkno),
                rel,
                blkno,
                bypassed: 0,
                in_flight: false,
                parked: false,
                retry_gen: 0,
                error: None,
                op: ReqOp::Write(Arc::from(buf)),
            },
        );
        st.writes_by_page.insert(key, seq);
        // The queued write supersedes any claimable read of the same page:
        // a claim must never hand out pre-write bytes.
        st.reads_by_page.remove(&key);
        self.note_depth(&st);
        self.stats.io_queue(self.dev).submitted.bump();
        self.cv_worker.notify_one();
        true
    }

    /// Queues an asynchronous read of `(rel, blkno)` for the prefetch
    /// window. Returns `false` if the page is already covered (a queued
    /// write or read exists) or the queue is down.
    pub fn submit_read(&self, rel: RelId, blkno: u64) -> bool {
        let _order = order::token(order::IO_QUEUE);
        let mut st = self.state.lock();
        if st.shutdown || st.aborted {
            return false;
        }
        let key = (rel, blkno);
        if st.writes_by_page.contains_key(&key) || st.reads_by_page.contains_key(&key) {
            return false;
        }
        let ticket = ReadTicket::new();
        let seq = st.next_seq;
        st.next_seq += 1;
        st.reqs.insert(
            seq,
            Request {
                key: sort_key(rel, blkno),
                rel,
                blkno,
                bypassed: 0,
                in_flight: false,
                parked: false,
                retry_gen: 0,
                error: None,
                op: ReqOp::Read(Arc::clone(&ticket)),
            },
        );
        st.reads_by_page.insert(key, ticket);
        st.read_order.push_back(key);
        while st.read_order.len() > READ_MAP_CAP {
            if let Some(old) = st.read_order.pop_front() {
                st.reads_by_page.remove(&old);
            }
        }
        self.note_depth(&st);
        self.stats.io_queue(self.dev).submitted.bump();
        self.cv_worker.notify_one();
        true
    }

    /// Drops any claimable read ticket for `(rel, blkno)` — called before
    /// a synchronous write lands so a claim never hands out pre-write
    /// bytes.
    pub fn invalidate_page(&self, rel: RelId, blkno: u64) {
        let _order = order::token(order::IO_QUEUE);
        let mut st = self.state.lock();
        st.reads_by_page.remove(&(rel, blkno));
    }

    /// Drops every claimable read ticket for `rel` — truncation and
    /// relation drop call this so a reborn block can never be satisfied
    /// with pre-truncation bytes.
    pub fn invalidate_rel(&self, rel: RelId) {
        let _order = order::token(order::IO_QUEUE);
        let mut st = self.state.lock();
        st.reads_by_page.retain(|&(r, _), _| r != rel);
    }

    /// Claims queued work covering `(rel, blkno)`: the payload of a
    /// still-queued write (newest bytes win), or the ticket of an
    /// outstanding read. Any claimable read for the page is consumed either
    /// way — a ticket must never be claimed after newer bytes existed.
    pub fn claim(&self, rel: RelId, blkno: u64) -> Option<Claimed> {
        let _order = order::token(order::IO_QUEUE);
        let mut st = self.state.lock();
        let key = (rel, blkno);
        let ticket = st.reads_by_page.remove(&key);
        if let Some(&seq) = st.writes_by_page.get(&key) {
            if let Some(req) = st.reqs.get(&seq) {
                if let ReqOp::Write(data) = &req.op {
                    return Some(Claimed::Bytes(data.to_vec()));
                }
            }
        }
        ticket.map(Claimed::Ticket)
    }

    /// Blocks while more than `depth` writes are pending — the eviction
    /// path's backpressure, called with every latch dropped.
    pub fn throttle(&self) {
        debug_assert!(
            !order::is_held(order::BUFFER_SHARD) && !order::is_held(order::BUFFER_FRAME),
            "throttling on the io queue while holding a buffer latch"
        );
        let _order = order::token(order::IO_QUEUE);
        let mut st = self.state.lock();
        while !st.aborted && !st.shutdown && st.pending_writes() > self.depth {
            self.cv_done.wait(&mut st);
        }
    }

    /// The queue barrier: waits until every request submitted before the
    /// call has left the queue. Parked (failed) writes get one retry per
    /// barrier; if they fail again the barrier returns their error (they
    /// stay parked, so durability is still eventually reachable once the
    /// fault clears and a later barrier retries).
    pub fn barrier(&self) -> DbResult<()> {
        debug_assert!(
            !order::is_held(order::BUFFER_SHARD) && !order::is_held(order::BUFFER_FRAME),
            "io barrier while holding a buffer latch"
        );
        let _order = order::token(order::IO_QUEUE);
        let mut st = self.state.lock();
        let target = st.next_seq;
        st.retry_gen += 1;
        let gen = st.retry_gen;
        self.stats.io_queue(self.dev).barrier_waits.bump();
        self.cv_worker.notify_one();
        loop {
            if st.aborted {
                return Err(DbError::Invalid("io scheduler aborted (crash)".into()));
            }
            let mut covered = st.reqs.range(..target).map(|(_, r)| r).peekable();
            if covered.peek().is_none() {
                return Ok(());
            }
            // Only requests parked in *this* generation have exhausted
            // their retry; anything else is still in motion.
            if covered.all(|r| r.parked && r.retry_gen == gen) {
                let seq = st
                    .reqs
                    .range(..target)
                    .find(|(_, r)| r.error.is_some())
                    .map(|(&s, _)| s);
                return Err(match seq.and_then(|s| {
                    st.reqs.get_mut(&s).and_then(|r| r.error.take())
                }) {
                    Some(e) => e,
                    None => DbError::Invalid("asynchronous write failed".into()),
                });
            }
            self.cv_done.wait(&mut st);
        }
    }

    /// Pauses or resumes the worker (requests keep queueing while paused;
    /// the torture battery uses this to crash with requests in flight).
    pub fn pause(&self, paused: bool) {
        let _order = order::token(order::IO_QUEUE);
        self.state.lock().paused = paused;
        self.cv_worker.notify_all();
    }

    /// Crash: discards every queued request, fails outstanding tickets,
    /// errors current and future barriers, and stops the worker.
    pub fn abort(&self) {
        let tickets: Vec<Arc<ReadTicket>> = {
            let _order = order::token(order::IO_QUEUE);
            let mut st = self.state.lock();
            st.aborted = true;
            st.shutdown = true;
            st.paused = false;
            let tickets = st
                .reqs
                .values()
                .filter_map(|r| match &r.op {
                    ReqOp::Read(t) => Some(Arc::clone(t)),
                    ReqOp::Write(_) => None,
                })
                .collect();
            st.reqs.clear();
            st.writes_by_page.clear();
            st.reads_by_page.clear();
            st.read_order.clear();
            self.cv_worker.notify_all();
            self.cv_done.notify_all();
            tickets
        };
        for t in tickets {
            t.fail();
        }
    }

    /// Requests currently queued (including in flight and parked).
    pub fn depth(&self) -> usize {
        let _order = order::token(order::IO_QUEUE);
        self.state.lock().reqs.len()
    }

    /// Switches the scheduling policy (tests measure Elevator vs Fifo).
    pub fn set_policy(&self, policy: Policy) {
        let _order = order::token(order::IO_QUEUE);
        self.state.lock().policy = policy;
    }

    fn note_depth(&self, st: &QState) {
        self.stats
            .io_queue(self.dev)
            .queue_depth_hw
            .observe(st.reqs.len() as u64);
    }

    /// Picks the next request per policy and starvation bound, marks it in
    /// flight, and returns its seq plus a snapshot of the work to do.
    fn pick(&self, st: &mut QState) -> Option<(u64, RelId, u64, WorkOp)> {
        let gen = st.retry_gen;
        let eligible: Vec<(u64, u64)> = st
            .reqs
            .iter()
            .filter(|(_, r)| !r.in_flight && (!r.parked || r.retry_gen < gen))
            .map(|(&s, r)| (s, r.key))
            .collect();
        let &(oldest_seq, _) = eligible.first()?;
        let io_stats = self.stats.io_queue(self.dev);
        let starved = st
            .reqs
            .get(&oldest_seq)
            .is_some_and(|r| r.bypassed >= STARVE_LIMIT);
        let chosen = if starved || st.policy == Policy::Fifo {
            oldest_seq
        } else {
            match eligible.iter().filter(|&&(_, k)| k >= st.hand).min_by_key(|&&(_, k)| k) {
                Some(&(s, _)) => s,
                None => {
                    // Sweep ran dry above the hand: wrap to the smallest key.
                    io_stats.elevator_passes.bump();
                    let &(s, _) = eligible.iter().min_by_key(|&&(_, k)| k)?;
                    s
                }
            }
        };
        if chosen != oldest_seq {
            if let Some(o) = st.reqs.get_mut(&oldest_seq) {
                o.bypassed += 1;
            }
        }
        let req = st.reqs.get_mut(&chosen)?;
        req.in_flight = true;
        req.parked = false;
        if st
            .last_key
            .is_some_and(|lk| req.key == lk || req.key == lk + 1)
        {
            io_stats.batched_neighbors.bump();
        }
        st.last_key = Some(req.key);
        st.hand = req.key + 1;
        let work = match &req.op {
            ReqOp::Write(data) => WorkOp::Write(Arc::clone(data)),
            ReqOp::Read(t) => WorkOp::Read(Arc::clone(t)),
        };
        Some((chosen, req.rel, req.blkno, work))
    }

    /// Applies an I/O outcome back to the queue. Write failures against a
    /// vanished relation (dropped/truncated under the queued request) are
    /// benign completions; other write failures park the request.
    fn finish(&self, st: &mut QState, seq: u64, outcome: Outcome) {
        let Some(req) = st.reqs.get_mut(&seq) else {
            return; // Aborted while in flight.
        };
        let io_stats = self.stats.io_queue(self.dev);
        let benign = |e: &DbError| {
            matches!(
                e,
                DbError::NotFound(_) | DbError::Device(DevError::OutOfRange { .. })
            )
        };
        let key = (req.rel, req.blkno);
        match outcome {
            Outcome::WriteOk => {
                st.reqs.remove(&seq);
                if st.writes_by_page.get(&key) == Some(&seq) {
                    st.writes_by_page.remove(&key);
                }
                io_stats.completed.bump();
            }
            Outcome::WriteErr(e) if benign(&e) => {
                st.reqs.remove(&seq);
                if st.writes_by_page.get(&key) == Some(&seq) {
                    st.writes_by_page.remove(&key);
                }
                io_stats.completed.bump();
            }
            Outcome::WriteErr(e) => {
                req.in_flight = false;
                req.parked = true;
                req.retry_gen = st.retry_gen;
                req.error = Some(e);
            }
            Outcome::ReadDone(ticket, bytes) => {
                ticket.complete(bytes);
                st.reqs.remove(&seq);
                // The completed ticket stays claimable in `reads_by_page`:
                // a demand read arriving after the prefetch finished takes
                // the bytes instead of paying the device again. Writes to
                // the page (queued or synchronous) and relation truncation
                // invalidate it; the read-map cap bounds how many completed
                // pages linger unclaimed.
                io_stats.completed.bump();
            }
            Outcome::ReadErr(ticket) => {
                ticket.fail();
                st.reqs.remove(&seq);
                if st
                    .reads_by_page
                    .get(&key)
                    .is_some_and(|t| Arc::ptr_eq(t, &ticket))
                {
                    st.reads_by_page.remove(&key);
                }
                io_stats.completed.bump();
            }
        }
        self.cv_done.notify_all();
    }

    /// The worker loop: pick under the queue lock, do I/O under the device
    /// lock, report back under the queue lock — never both at once.
    fn run(self: &Arc<DevQueue>) {
        loop {
            let job = {
                let _order = order::token(order::IO_QUEUE);
                let mut st = self.state.lock();
                loop {
                    if st.shutdown {
                        return;
                    }
                    if !st.paused {
                        if let Some(job) = self.pick(&mut st) {
                            break job;
                        }
                    }
                    self.cv_worker.wait(&mut st);
                }
            };
            let (seq, rel, blkno, work) = job;
            let outcome = match work {
                WorkOp::Write(data) => {
                    let (res, took) = self.clock.timed(|| {
                        let _dev = order::token(order::SMGR_DEVICE);
                        self.mgr.lock().write(rel, blkno, &data)
                    });
                    let d = self.stats.device(self.dev);
                    d.writes.bump();
                    d.write_ns.add(took.as_nanos());
                    d.write_hist.record(took.as_nanos());
                    match res {
                        Ok(()) => Outcome::WriteOk,
                        Err(e) => Outcome::WriteErr(e),
                    }
                }
                WorkOp::Read(ticket) => {
                    let mut buf = vec![0u8; simdev::BLOCK_SIZE];
                    let (res, took) = self.clock.timed(|| {
                        let _dev = order::token(order::SMGR_DEVICE);
                        self.mgr.lock().read(rel, blkno, &mut buf)
                    });
                    let d = self.stats.device(self.dev);
                    d.reads.bump();
                    d.read_ns.add(took.as_nanos());
                    d.read_hist.record(took.as_nanos());
                    match res {
                        Ok(()) => Outcome::ReadDone(ticket, buf.into_boxed_slice()),
                        Err(_) => Outcome::ReadErr(ticket),
                    }
                }
            };
            let _order = order::token(order::IO_QUEUE);
            let mut st = self.state.lock();
            self.finish(&mut st, seq, outcome);
        }
    }
}

/// A claim's result: newest queued bytes, or a ticket to wait on.
pub enum Claimed {
    Bytes(Vec<u8>),
    Ticket(Arc<ReadTicket>),
}

enum WorkOp {
    Write(Arc<[u8]>),
    Read(Arc<ReadTicket>),
}

enum Outcome {
    WriteOk,
    WriteErr(DbError),
    ReadDone(Arc<ReadTicket>, Box<[u8]>),
    ReadErr(Arc<ReadTicket>),
}

/// The per-device queues plus their worker threads; owned by the smgr.
pub struct IoLayer {
    depth: usize,
    queues: HashMap<DeviceId, Arc<DevQueue>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl IoLayer {
    /// Creates an empty layer; `depth` is the write-behind backpressure
    /// bound per device.
    pub fn new(depth: usize) -> IoLayer {
        IoLayer {
            depth,
            queues: HashMap::new(),
            workers: Vec::new(),
        }
    }

    /// Adds a queue + worker for `dev`, draining through `mgr`.
    pub fn add_device(
        &mut self,
        dev: DeviceId,
        mgr: Arc<Mutex<Box<dyn DeviceManager>>>,
        clock: simdev::SimClock,
        stats: Arc<StatsRegistry>,
    ) {
        let q = DevQueue::new(dev, self.depth, mgr, clock, stats);
        let worker = Arc::clone(&q);
        self.queues.insert(dev, q);
        self.workers.push(std::thread::spawn(move || worker.run()));
    }

    /// The queue for `dev`, if one was added.
    pub fn queue(&self, dev: DeviceId) -> Option<&Arc<DevQueue>> {
        self.queues.get(&dev)
    }

    /// Pauses/resumes every worker.
    pub fn pause(&self, paused: bool) {
        for q in self.queues.values() {
            q.pause(paused);
        }
    }

    /// Crash-aborts every queue (see [`DevQueue::abort`]).
    pub fn abort(&self) {
        for q in self.queues.values() {
            q.abort();
        }
    }

    /// Total requests queued across devices.
    pub fn depth(&self) -> usize {
        self.queues.values().map(|q| q.depth()).sum()
    }
}

impl Drop for IoLayer {
    fn drop(&mut self) {
        for q in self.queues.values() {
            let _order = order::token(order::IO_QUEUE);
            let mut st = q.state.lock();
            st.shutdown = true;
            q.cv_worker.notify_all();
        }
        for w in self.workers.drain(..) {
            w.join().ok();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::RelId;
    use crate::smgr::{shared_device, GenericManager};
    use simdev::{DiskProfile, MagneticDisk, SimClock};

    const DEV: DeviceId = DeviceId(0);

    /// A formatted disk manager with `nblocks` pre-extended blocks of one
    /// relation, wrapped for the scheduler.
    fn rig(
        profile: DiskProfile,
        extent: u64,
        nblocks: u64,
    ) -> (
        SimClock,
        Arc<Mutex<Box<dyn DeviceManager>>>,
        Arc<StatsRegistry>,
        RelId,
    ) {
        let clock = SimClock::new();
        let dev = shared_device(MagneticDisk::new("d", clock.clone(), profile));
        let mut m = GenericManager::format(dev).expect("format");
        m.set_extent_size(extent);
        let rel = crate::ids::Oid(3);
        m.create_rel(rel).expect("create");
        let page = vec![0u8; simdev::BLOCK_SIZE];
        for _ in 0..nblocks {
            m.extend(rel, &page).expect("extend");
        }
        let mgr: Arc<Mutex<Box<dyn DeviceManager>>> = Arc::new(Mutex::new(Box::new(m)));
        (clock, mgr, Arc::new(StatsRegistry::new()), rel)
    }

    /// Simulated cost of draining 64 writes submitted in a hostile
    /// interleaved order (0, 32, 1, 33, ...) under the given policy.
    fn drain_cost(policy: Policy) -> (u64, Arc<StatsRegistry>) {
        let (clock, mgr, stats, rel) = rig(DiskProfile::rz58(), 32, 64);
        let mut io = IoLayer::new(256);
        io.add_device(DEV, mgr, clock.clone(), Arc::clone(&stats));
        let q = Arc::clone(io.queue(DEV).expect("queue"));
        q.set_policy(policy);
        q.pause(true); // Build the whole queue before the sweep starts.
        let page = vec![0u8; simdev::BLOCK_SIZE];
        for i in 0..32 {
            assert!(q.submit_write(rel, i, &page));
            assert!(q.submit_write(rel, 32 + i, &page));
        }
        let start = clock.now();
        q.pause(false);
        q.barrier().expect("barrier");
        (clock.now().since(start).as_nanos(), stats)
    }

    #[test]
    fn elevator_beats_fifo_on_interleaved_writes() {
        let (fifo, _) = drain_cost(Policy::Fifo);
        let (elevator, stats) = drain_cost(Policy::Elevator);
        // The C-SCAN sweep turns the interleaved stream into one sequential
        // pass; FIFO pays a seek + rotation per request. The rz58 model
        // prices that at roughly 3x — demand well over the paper's 1.3x.
        assert!(
            elevator * 13 / 10 < fifo,
            "elevator ({elevator} ns) should beat FIFO ({fifo} ns) by >= 1.3x"
        );
        let io = stats.io_queue(DEV);
        assert!(io.batched_neighbors.get() > 0, "no neighbors batched");
        assert_eq!(io.submitted.get(), 64);
        assert_eq!(io.completed.get(), 64);
        assert!(io.queue_depth_hw.get() >= 64);
    }

    #[test]
    fn starvation_bound_overrides_the_elevator() {
        let (_clock, mgr, stats, rel) = rig(DiskProfile::tiny_for_tests(4096), 1, 256);
        // No worker thread: the test drives `pick` by hand.
        let q = DevQueue::new(DEV, 64, mgr, SimClock::new(), stats);
        let page = vec![0u8; simdev::BLOCK_SIZE];
        // The victim: oldest request, parked high in the key space.
        assert!(q.submit_write(rel, 200, &page));
        let mut served = Vec::new();
        // Hostile pattern: each round submits a fresh request exactly at
        // the elevator hand, so plain C-SCAN would bypass block 200
        // forever.
        for i in 0..=STARVE_LIMIT {
            assert!(q.submit_write(rel, i, &page));
            let _order = order::token(order::IO_QUEUE);
            let mut st = q.state.lock();
            let (seq, _, blkno, _) = q.pick(&mut st).expect("pick");
            served.push(blkno);
            q.finish(&mut st, seq, Outcome::WriteOk);
        }
        // Exactly STARVE_LIMIT bypasses, then the bound forces the victim.
        let limit = STARVE_LIMIT as usize;
        assert_eq!(served.len(), limit + 1);
        assert!(served[..limit].iter().copied().eq(0..STARVE_LIMIT));
        assert_eq!(served[limit], 200, "starved request was not forced");
    }

    #[test]
    fn claim_consumes_tickets_and_prefers_queued_writes() {
        let (_clock, mgr, stats, rel) = rig(DiskProfile::tiny_for_tests(4096), 1, 8);
        let q = DevQueue::new(DEV, 64, mgr, SimClock::new(), stats);
        // An outstanding read is claimable as a ticket, once.
        assert!(q.submit_read(rel, 5));
        assert!(!q.submit_read(rel, 5), "duplicate read accepted");
        assert!(matches!(q.claim(rel, 5), Some(Claimed::Ticket(_))));
        assert!(q.claim(rel, 5).is_none(), "ticket claimed twice");
        // A queued write supersedes a later ticket and yields its payload.
        assert!(q.submit_read(rel, 6));
        let mut page = vec![0u8; simdev::BLOCK_SIZE];
        page[0] = 0xAB;
        assert!(q.submit_write(rel, 6, &page));
        match q.claim(rel, 6) {
            Some(Claimed::Bytes(b)) => assert_eq!(b[0], 0xAB),
            _ => panic!("expected the queued write's bytes"),
        }
        // Aborted queues refuse new work and error the barrier.
        q.abort();
        assert!(!q.submit_write(rel, 1, &page));
        assert!(q.barrier().is_err());
    }
}
